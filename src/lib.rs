//! Root crate of the workspace: re-exports the [`difi`] facade so
//! `use difi_repro::prelude::*` (or `difi::prelude::*`) works from either
//! entry point. See the workspace README for the crate layout.

pub use difi::*;
