pub use difi::*;
