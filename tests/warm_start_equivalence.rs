//! Differential oracle for the checkpointed warm-start engine: on real
//! workloads and both simulator backends, a campaign served from golden-run
//! checkpoints must be **byte-identical** to the cold-start campaign — same
//! classifications, outputs, and exception counts for every mask. The
//! fault-free prefix is deterministic, so restoring it from a snapshot
//! instead of re-simulating it may change wall-clock time only.

use difi::prelude::*;
use std::io::Read;

/// Campaign size: full-scale in release (scripts/check.sh runs this test in
/// release explicitly); trimmed in debug where the simulator is ~10× slower,
/// while keeping the required ≥2-workloads × 3-setups matrix intact.
const N_MASKS: u64 = if cfg!(debug_assertions) { 3 } else { 8 };
const K_CHECKPOINTS: usize = if cfg!(debug_assertions) { 2 } else { 4 };

fn backends() -> Vec<Box<dyn InjectorDispatcher + Send>> {
    vec![
        Box::new(MaFin::new()),
        Box::new(GeFin::x86()),
        Box::new(GeFin::arm()),
    ]
}

fn campaign_pair(
    dispatcher: &dyn InjectorDispatcher,
    bench: Bench,
    n: u64,
    checkpoints: usize,
) -> (CampaignLog, CampaignLog) {
    let program = build(bench, dispatcher.isa()).expect("assembles");
    let golden = golden_run(dispatcher, &program, 200_000_000);
    let structure = StructureId::L2Data;
    let desc = difi::core::dispatch::structure_desc(dispatcher, structure).expect("injectable");
    let masks = MaskGenerator::new(1979).transient(&desc, golden.cycles_measured(), n);
    let cfg = CampaignConfig {
        threads: 2,
        early_stop: true,
        golden_max_cycles: 200_000_000,
    };
    let cold = run_campaign(dispatcher, &program, structure, 1979, &masks, &cfg);
    let warm = run_campaign_checkpointed(
        dispatcher,
        &program,
        structure,
        1979,
        &masks,
        &cfg,
        checkpoints,
    );
    (cold, warm)
}

fn saved_bytes(log: &CampaignLog, tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join("difi_warm_start_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}.jsonl"));
    log.save(&path).expect("save");
    let mut bytes = Vec::new();
    std::fs::File::open(&path)
        .expect("open")
        .read_to_end(&mut bytes)
        .expect("read");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn checkpointed_campaign_is_byte_identical_to_cold_start() {
    // ≥2 workloads × both simulator backends (MarsSim and GemSim).
    for bench in [Bench::Sha, Bench::Fft] {
        for dispatcher in backends() {
            let d = dispatcher.as_ref();
            let (cold, warm) = campaign_pair(d, bench, N_MASKS, K_CHECKPOINTS);
            assert_eq!(
                cold,
                warm,
                "{:?}/{}: warm-start log diverged from cold-start oracle",
                bench,
                d.name()
            );
            // Byte-identical through the logs repository too.
            let tag_c = format!("{}_{bench:?}_cold", d.name());
            let tag_w = format!("{}_{bench:?}_warm", d.name());
            assert_eq!(
                saved_bytes(&cold, &tag_c),
                saved_bytes(&warm, &tag_w),
                "{:?}/{}: serialized logs differ",
                bench,
                d.name()
            );
            // Identical classification tallies follow, but assert anyway —
            // this is the acceptance criterion stated in the paper's terms.
            let cc = classify_log(&cold);
            let cw = classify_log(&warm);
            assert_eq!(cc.total(), N_MASKS);
            assert_eq!(cc, cw, "{:?}/{}", bench, d.name());
        }
    }
}

#[test]
fn snapshots_capture_and_resume_mid_run() {
    // Direct API check on one backend: snapshots come back at the requested
    // cycles, and a run resumed from the *latest eligible* checkpoint equals
    // the cold run bit-for-bit.
    let mafin = MaFin::new();
    let program = build(Bench::Sha, mafin.isa()).expect("assembles");
    let golden = golden_run(&mafin, &program, 200_000_000);
    let g = golden.cycles_measured();
    let limits = RunLimits::campaign(g);

    let at = [g / 4, g / 2];
    let snaps = mafin
        .golden_snapshots(&program, &at, &limits)
        .expect("MaFIN supports warm starts");
    assert_eq!(snaps.len(), 2, "both checkpoints are inside the golden run");
    assert_eq!([snaps[0].cycle, snaps[1].cycle], at);

    // A fault injected in the last quarter may resume from the g/2 snapshot.
    let spec = InjectionSpec::single_transient(0, StructureId::IntRegFile, 7, 12, g / 2 + g / 4);
    let cold = mafin.run(&program, &spec, &limits);
    let warm = mafin.run_from(&snaps[1], &program, &spec, &limits);
    assert_eq!(cold, warm, "resumed run must equal the cold run exactly");

    // Capture past the end of the program stops early instead of spinning.
    let tail = mafin
        .golden_snapshots(&program, &[g / 2, g.saturating_mul(10)], &limits)
        .expect("supported");
    assert_eq!(tail.len(), 1, "unreachable checkpoint is dropped");
}
