//! End-to-end campaign integration: mask generation → parallel campaign →
//! logs repository round-trip → reconfigurable classification, across the
//! paper's three setups.

use difi::prelude::*;

fn small_campaign(
    dispatcher: &dyn InjectorDispatcher,
    bench: Bench,
    structure: StructureId,
    n: u64,
    early_stop: bool,
) -> CampaignLog {
    let program = build(bench, dispatcher.isa()).expect("assembles");
    let golden = golden_run(dispatcher, &program, 200_000_000);
    let desc = difi::core::dispatch::structure_desc(dispatcher, structure).expect("injectable");
    let masks = MaskGenerator::new(99).transient(&desc, golden.cycles_measured(), n);
    run_campaign(
        dispatcher,
        &program,
        structure,
        99,
        &masks,
        &CampaignConfig {
            threads: 1,
            early_stop,
            golden_max_cycles: 200_000_000,
        },
    )
}

#[test]
fn campaign_classifies_every_run_on_all_setups() {
    for dispatcher in setups::all() {
        let log = small_campaign(
            dispatcher.as_ref(),
            Bench::Fft,
            StructureId::IntRegFile,
            12,
            true,
        );
        let counts = classify_log(&log);
        assert_eq!(counts.total(), 12, "{}", dispatcher.name());
        assert!(
            counts.masked >= 6,
            "{}: register-file faults are mostly masked (paper Fig. 2)",
            dispatcher.name()
        );
    }
}

#[test]
fn early_stop_does_not_change_verdicts() {
    // §III.B.2: the optimizations are pure speedups — identical masks must
    // classify identically with and without them.
    let mafin = MaFin::new();
    let with = small_campaign(&mafin, Bench::Fft, StructureId::L2Data, 25, true);
    let without = small_campaign(&mafin, Bench::Fft, StructureId::L2Data, 25, false);
    let cw = classify_log(&with);
    let co = classify_log(&without);
    assert_eq!(cw.masked, co.masked);
    assert_eq!(cw.sdc, co.sdc);
    assert_eq!(cw.crash, co.crash);
    // And they must save simulated work.
    let cyc = |l: &CampaignLog| l.runs.iter().filter_map(|r| r.result.cycles).sum::<u64>();
    assert!(
        cyc(&with) < cyc(&without),
        "early stop must reduce simulated cycles"
    );
}

#[test]
fn logs_repository_roundtrip_preserves_reclassification() {
    let gefin = GeFin::x86();
    let log = small_campaign(&gefin, Bench::Fft, StructureId::L1dData, 15, true);
    let dir = std::env::temp_dir().join("difi_integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("campaign.jsonl");
    log.save(&path).expect("save");
    let back = CampaignLog::load(&path).expect("load");
    assert_eq!(back, log);
    // Reclassify the loaded log with a reconfigured parser: no re-run needed.
    let six = classify_log(&back);
    let regrouped = classify_log_with(
        &back,
        &Classifier::from_golden(&back.golden).simulator_crash_as_assert(),
    );
    assert_eq!(six.total(), regrouped.total());
    assert!(regrouped.assert_ >= six.assert_);
    assert_eq!(
        six.crash + six.assert_,
        regrouped.crash + regrouped.assert_,
        "regrouping moves runs between crash and assert only"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn campaigns_are_reproducible_from_the_seed() {
    let mafin = MaFin::new();
    let a = small_campaign(&mafin, Bench::Fft, StructureId::L1iData, 10, true);
    let b = small_campaign(&mafin, Bench::Fft, StructureId::L1iData, 10, true);
    assert_eq!(a.runs.len(), b.runs.len());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.spec, rb.spec);
        assert_eq!(ra.result, rb.result, "same seed ⇒ same outcome");
    }
}

#[test]
fn multi_fault_masks_run_end_to_end() {
    // §III.A: multiple faults per run, across structures.
    let mafin = MaFin::new();
    let program = build(Bench::Fft, mafin.isa()).expect("assembles");
    let golden = golden_run(&mafin, &program, 200_000_000);
    let l1d = difi::core::dispatch::structure_desc(&mafin, StructureId::L1dData).unwrap();
    let rf = difi::core::dispatch::structure_desc(&mafin, StructureId::IntRegFile).unwrap();
    let mut gen = MaskGenerator::new(5);
    let mut masks = gen.multi_bit_same_entry(&l1d, golden.cycles_measured(), 3, 5);
    masks.extend(gen.multi_structure(&[l1d, rf], golden.cycles_measured(), 5));
    let log = run_campaign(
        &mafin,
        &program,
        StructureId::L1dData,
        5,
        &masks,
        &CampaignConfig::default(),
    );
    assert_eq!(log.runs.len(), 10);
    assert_eq!(classify_log(&log).total(), 10);
}

#[test]
fn intermittent_and_permanent_models_run_end_to_end() {
    let gefin = GeFin::arm();
    let program = build(Bench::Fft, gefin.isa()).expect("assembles");
    let golden = golden_run(&gefin, &program, 200_000_000);
    let desc = difi::core::dispatch::structure_desc(&gefin, StructureId::IntRegFile).unwrap();
    let mut gen = MaskGenerator::new(6);
    let mut masks = gen.intermittent(&desc, golden.cycles_measured(), 500, 6);
    masks.extend(gen.permanent(&desc, 6));
    let log = run_campaign(
        &gefin,
        &program,
        StructureId::IntRegFile,
        6,
        &masks,
        &CampaignConfig::default(),
    );
    let counts = classify_log(&log);
    assert_eq!(counts.total(), 12);
}

#[test]
fn instruction_triggered_masks_apply() {
    let mafin = MaFin::new();
    let program = build(Bench::Fft, mafin.isa()).expect("assembles");
    let spec = InjectionSpec {
        id: 0,
        faults: vec![FaultRecord {
            core: 0,
            structure: StructureId::IntRegFile,
            entry: 250,
            bit: 1,
            kind: FaultKindSer::Flip,
            at: InjectTime::Instruction(100),
            duration: FaultDuration::Transient,
        }],
    };
    let raw = mafin.run(&program, &spec, &RunLimits::campaign(10_000_000));
    // Physical register 250 is free at boot; either early-masked or clean.
    assert!(matches!(
        raw.status,
        RunStatus::EarlyStopMasked(_) | RunStatus::Completed { .. }
    ));
}
