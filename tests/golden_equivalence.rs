//! The workspace's central correctness gate: every benchmark of the study,
//! run fault-free on every detailed simulator configuration, must be
//! architecturally identical to the functional emulator (which the workload
//! tests in turn pin to host-side reference implementations).

use difi::isa::emu::{EmuExit, Emulator};
use difi::prelude::*;

fn golden_matches(bench: Bench, dispatcher: &dyn InjectorDispatcher) {
    let program = build(bench, dispatcher.isa()).expect("benchmark assembles");
    let emu = Emulator::new(&program).run(200_000_000);
    assert_eq!(
        emu.exit,
        EmuExit::Exited(0),
        "{bench}/{}: emulator reference must complete",
        dispatcher.name()
    );
    let raw = golden_run(dispatcher, &program, 200_000_000);
    assert_eq!(
        raw.status,
        RunStatus::Completed { exit_code: 0 },
        "{bench}/{}: pipeline must complete (got {:?})",
        dispatcher.name(),
        raw.status
    );
    assert_eq!(
        raw.output,
        emu.output,
        "{bench}/{}: pipeline output differs from architectural reference",
        dispatcher.name()
    );
    assert_eq!(
        raw.exceptions,
        Some(emu.exceptions),
        "{bench}/{}: exception counts differ",
        dispatcher.name()
    );
    assert_eq!(
        raw.instructions,
        Some(emu.instructions),
        "{bench}/{}: committed instruction counts differ",
        dispatcher.name()
    );
    assert!(
        raw.cycles_measured() > 1000,
        "{bench}/{}: implausibly short run",
        dispatcher.name()
    );
}

macro_rules! golden_tests {
    ($($name:ident => $bench:expr;)*) => {
        $(
            #[test]
            fn $name() {
                for d in setups::all() {
                    golden_matches($bench, d.as_ref());
                }
            }
        )*
    };
}

golden_tests! {
    golden_djpeg => Bench::Djpeg;
    golden_search => Bench::Search;
    golden_smooth => Bench::Smooth;
    golden_edge => Bench::Edge;
    golden_corner => Bench::Corner;
    golden_sha => Bench::Sha;
    golden_fft => Bench::Fft;
    golden_qsort => Bench::Qsort;
    golden_cjpeg => Bench::Cjpeg;
    golden_caes => Bench::Caes;
}
