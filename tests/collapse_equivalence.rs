//! Collapse-equivalence differential oracle: statically collapsing the mask
//! space may change *how much* is simulated, never *what is concluded*.
//!
//! (a) Per-mask identity: on two workloads × the paper's three setups, a
//!     collapsed campaign must classify every individual mask exactly as
//!     the full campaign does — not just matching totals.
//! (b) Savings + provenance: collapsing dispatches strictly fewer simulator
//!     runs, the collapse ratio beats 1×, every logged run carries the
//!     equivalence-class provenance of its partition, and replicated
//!     members never report fabricated measurements.
//! (c) Journal/resume: a collapsed journaled campaign interrupted mid-run
//!     resumes to the identical log (composed with the warm-start engine).

use difi::prelude::*;

const STRUCTURE: StructureId = StructureId::IntRegFile;
const MAX_CYCLES: u64 = 200_000_000;

fn profile_for(dispatcher: &dyn InjectorDispatcher, program: &Program) -> AceProfile {
    let logs = dispatcher.golden_residency(program, &[STRUCTURE], MAX_CYCLES);
    let log = logs.into_iter().next().expect("residency trace recorded");
    AceProfile::new(log).expect("int_prf is a data plane")
}

/// A dense per-cycle sweep inside real inter-event gaps of the golden
/// residency trace — the shape that provably forms multi-member classes
/// (every cycle between two consecutive events resolves to the same first
/// covering access) — plus a seeded random tail covering the rest of the
/// space.
fn sweep_masks(
    profile: &AceProfile,
    desc: &StructureDesc,
    cycles: u64,
    seed: u64,
) -> Vec<InjectionSpec> {
    let points: u64 = if cfg!(debug_assertions) { 6 } else { 24 };
    let tail: u64 = if cfg!(debug_assertions) { 8 } else { 20 };
    let mut masks = MaskGenerator::new(seed).transient(desc, cycles, tail);
    let mut id = tail;
    let log = profile.log();
    let mut sites = 0u32;
    'entries: for entry in 0..desc.entries {
        for w in log.events_for(entry).windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let bit = b.bit_lo;
            // Consecutive events with a cycle gap: every injection in
            // (a.cycle, b.cycle] meets `b` as its first covering access.
            if b.cycle > a.cycle + 2 && b.covers(bit) {
                let lo = a.cycle + 1;
                for k in 0..points.min(b.cycle - lo + 1) {
                    masks.push(InjectionSpec::single_transient(
                        id,
                        STRUCTURE,
                        entry,
                        bit,
                        lo + k,
                    ));
                    id += 1;
                }
                sites += 1;
                if sites >= 3 {
                    break 'entries;
                }
                break;
            }
        }
    }
    assert!(sites > 0, "no inter-event gap found to sweep");
    masks
}

fn cfg() -> CampaignConfig {
    CampaignConfig {
        threads: 2,
        early_stop: true,
        golden_max_cycles: MAX_CYCLES,
    }
}

#[test]
fn collapsed_campaign_classifies_every_mask_like_the_full_campaign() {
    // Debug builds check one workload to keep `cargo test` fast; the
    // release oracle (scripts/check.sh) covers the full 2×3 matrix.
    let benches: &[Bench] = if cfg!(debug_assertions) {
        &[Bench::Fft]
    } else {
        &[Bench::Sha, Bench::Fft]
    };
    for dispatcher in setups::all() {
        let d = dispatcher.as_ref();
        for &bench in benches {
            let program = build(bench, d.isa()).expect("assembles");
            let golden = golden_run(d, &program, MAX_CYCLES);
            let desc = difi::core::dispatch::structure_desc(d, STRUCTURE).expect("injectable");
            let profile = profile_for(d, &program);
            let masks = sweep_masks(&profile, &desc, golden.cycles_measured(), 2015);
            let full = run_campaign(d, &program, STRUCTURE, 2015, &masks, &cfg());
            let collapsed =
                run_campaign_collapsed(d, &program, STRUCTURE, 2015, &masks, &cfg(), &profile);
            assert!(
                collapsed.dispatched < masks.len(),
                "{} {}: a dense sweep must collapse",
                d.name(),
                bench.name()
            );
            assert_eq!(full.runs.len(), collapsed.log.runs.len());
            let classifier = Classifier::from_golden(&full.golden);
            for (a, b) in full.runs.iter().zip(&collapsed.log.runs) {
                assert_eq!(a.spec.id, b.spec.id);
                assert_eq!(
                    classifier.classify(&a.result),
                    classifier.classify(&b.result),
                    "{} {} mask {}: collapsing changed the verdict \
                     (full {:?} vs collapsed {:?}, provenance {:?})",
                    d.name(),
                    bench.name(),
                    a.spec.id,
                    a.result.status,
                    b.result.status,
                    b.provenance
                );
            }
        }
    }
}

#[test]
fn collapse_saves_dispatches_with_sound_provenance() {
    let mafin = MaFin::new();
    let bench = if cfg!(debug_assertions) {
        Bench::Fft
    } else {
        Bench::Sha
    };
    let program = build(bench, mafin.isa()).expect("assembles");
    let golden = golden_run(&mafin, &program, MAX_CYCLES);
    let desc = difi::core::dispatch::structure_desc(&mafin, STRUCTURE).expect("injectable");
    let profile = profile_for(&mafin, &program);
    let masks = sweep_masks(&profile, &desc, golden.cycles_measured(), 99);
    let collapsed =
        run_campaign_collapsed(&mafin, &program, STRUCTURE, 99, &masks, &cfg(), &profile);
    let part = &collapsed.partition;
    assert!(
        part.collapse_ratio() > 1.0,
        "dense sweep must yield a ratio above 1x, got {:.3}",
        part.collapse_ratio()
    );
    assert_eq!(collapsed.dispatched, part.dispatch_count());
    assert!(collapsed.dispatched < masks.len());

    // Every run's provenance matches the partition's own record.
    let prov = part.provenance(&masks);
    for (i, run) in collapsed.log.runs.iter().enumerate() {
        assert_eq!(
            run.provenance,
            Some(prov[i]),
            "mask index {i}: journaled provenance disagrees with the partition"
        );
    }

    for class in &part.classes {
        if class.proof == ProofKind::DeadInterval {
            // Dead classes resolve statically — logged, never dispatched.
            for &i in &class.members {
                assert!(
                    matches!(
                        collapsed.log.runs[i].result.status,
                        RunStatus::EarlyStopMasked(EarlyStop::StaticallyPruned)
                    ),
                    "dead-class member {i} was not statically resolved"
                );
            }
        } else {
            // One representative ran; members inherit its classification
            // fields but no fabricated measurements.
            let rep = &collapsed.log.runs[class.representative()].result;
            for &i in &class.members {
                if i == class.representative() {
                    continue;
                }
                let m = &collapsed.log.runs[i].result;
                assert_eq!(m.status, rep.status);
                assert_eq!(m.output, rep.output);
                assert_eq!(m.exceptions, rep.exceptions);
                assert_eq!(m.fault_consumed, rep.fault_consumed);
                assert_eq!(m.cycles, None, "member {i} never executed");
                assert_eq!(m.instructions, None, "member {i} never executed");
            }
        }
    }
}

#[test]
fn collapsed_journal_interrupted_resumes_identically() {
    let mafin = MaFin::new();
    let program = build(Bench::Fft, mafin.isa()).expect("assembles");
    let golden = golden_run(&mafin, &program, MAX_CYCLES);
    let desc = difi::core::dispatch::structure_desc(&mafin, STRUCTURE).expect("injectable");
    let profile = profile_for(&mafin, &program);
    let masks = sweep_masks(&profile, &desc, golden.cycles_measured(), 7);
    let c = cfg();
    let dir = std::env::temp_dir().join("difi_collapse_oracle");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("collapsed.journal");
    std::fs::remove_file(&path).ok();

    // Collapse composed with the warm-start engine, as the campaign bin
    // does for `--collapse --checkpoints N`.
    let strategy = || Strategy::Collapsed {
        profile: &profile,
        checkpoints: 2,
    };
    let full = CampaignRunner::new(&mafin, &program, STRUCTURE, 7, &c)
        .with_strategy(strategy())
        .run_journaled(&masks, &path, &[])
        .expect("journaled campaign");
    for run in &full.runs {
        assert!(run.provenance.is_some(), "provenance on every run");
    }

    // Interrupt: keep the header and the first half of the run lines.
    let text = std::fs::read_to_string(&path).expect("read journal");
    let keep = 1 + (text.lines().count() - 1) / 2;
    let kept: String = text.lines().take(keep).map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, kept).expect("truncate journal");

    let resumed = CampaignRunner::new(&mafin, &program, STRUCTURE, 7, &c)
        .with_strategy(strategy())
        .resume(&masks, &path, &[])
        .expect("resume campaign");
    assert_eq!(full, resumed, "resume after interruption diverged");

    // The completed journal reloads to the same runs, provenance included.
    let back = load_journal(&path).expect("journal reloads");
    assert_eq!(back.runs.len(), masks.len());
    std::fs::remove_file(&path).ok();
}
