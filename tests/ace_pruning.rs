//! ACE-pruning soundness and savings: the static analysis may only remove
//! simulated work, never change a verdict.
//!
//! (a) Soundness spot-check: every mask the pruner classifies Masked is
//!     re-run as a *real* injection (early stops disabled) and must come
//!     back Masked, on two workloads × both simulator backends.
//! (b) Savings: a pruned campaign dispatches measurably fewer runs than the
//!     unpruned campaign over the same masks while producing identical
//!     per-class totals.

use difi::prelude::*;

const STRUCTURE: StructureId = StructureId::IntRegFile;
const MAX_CYCLES: u64 = 200_000_000;

fn profile_for(dispatcher: &dyn InjectorDispatcher, program: &Program) -> AceProfile {
    let logs = dispatcher.golden_residency(program, &[STRUCTURE], MAX_CYCLES);
    let log = logs.into_iter().next().expect("residency trace recorded");
    AceProfile::new(log).expect("int_prf is a data plane")
}

fn pruned_campaign(
    dispatcher: &dyn InjectorDispatcher,
    bench: Bench,
    n: u64,
    seed: u64,
) -> (PrunedCampaign, Vec<InjectionSpec>, Program) {
    let program = build(bench, dispatcher.isa()).expect("assembles");
    let golden = golden_run(dispatcher, &program, MAX_CYCLES);
    let desc = difi::core::dispatch::structure_desc(dispatcher, STRUCTURE).expect("injectable");
    let masks = MaskGenerator::new(seed).transient(&desc, golden.cycles_measured(), n);
    let profile = profile_for(dispatcher, &program);
    let pruned = run_campaign_pruned(
        dispatcher,
        &program,
        STRUCTURE,
        seed,
        &masks,
        &CampaignConfig {
            threads: 2,
            early_stop: true,
            golden_max_cycles: MAX_CYCLES,
        },
        &profile,
    );
    (pruned, masks, program)
}

#[test]
fn pruned_masks_reclassify_masked_under_real_injection() {
    // Soundness: two workloads × both backends; every pruned mask, actually
    // injected with every early stop disabled, must classify Masked.
    let mafin = MaFin::new();
    let gefin = GeFin::x86();
    let backends: [&dyn InjectorDispatcher; 2] = [&mafin, &gefin];
    for dispatcher in backends {
        for bench in [Bench::Fft, Bench::Qsort] {
            let (pruned, masks, program) = pruned_campaign(dispatcher, bench, 14, 2025);
            assert!(
                !pruned.pruned_ids.is_empty(),
                "{} {bench}: register-file masks must include provably-dead sites",
                dispatcher.name()
            );
            let classifier = Classifier::from_golden(&pruned.log.golden);
            let mut limits = RunLimits::campaign(pruned.log.golden.cycles_measured());
            limits.early_stop = false;
            for id in &pruned.pruned_ids {
                let spec = masks
                    .iter()
                    .find(|m| m.id == *id)
                    .expect("pruned id exists");
                let result = dispatcher.run(&program, spec, &limits);
                assert_eq!(
                    classifier.classify(&result),
                    Outcome::Masked,
                    "{} {bench}: mask {id} was pruned but a real run contradicts it ({:?})",
                    dispatcher.name(),
                    result.status
                );
            }
        }
    }
}

#[test]
fn pruning_saves_dispatches_with_identical_totals() {
    let mafin = MaFin::new();
    let gefin = GeFin::x86();
    let backends: [&dyn InjectorDispatcher; 2] = [&mafin, &gefin];
    for dispatcher in backends {
        let (pruned, masks, program) = pruned_campaign(dispatcher, Bench::Fft, 20, 7);
        let baseline = run_campaign(
            dispatcher,
            &program,
            STRUCTURE,
            7,
            &masks,
            &CampaignConfig {
                threads: 2,
                early_stop: true,
                golden_max_cycles: MAX_CYCLES,
            },
        );
        // Fewer dispatches, nothing dropped.
        assert!(
            pruned.dispatched < masks.len(),
            "{}: pruning must save dispatches",
            dispatcher.name()
        );
        assert_eq!(
            pruned.dispatched + pruned.pruned_ids.len(),
            masks.len(),
            "every mask is either dispatched or logged as pruned"
        );
        assert_eq!(pruned.log.runs.len(), baseline.runs.len());
        // Identical per-class totals.
        let cp = classify_log(&pruned.log);
        let cb = classify_log(&baseline);
        assert_eq!(cp.masked, cb.masked, "{}", dispatcher.name());
        assert_eq!(cp.sdc, cb.sdc, "{}", dispatcher.name());
        assert_eq!(cp.due, cb.due, "{}", dispatcher.name());
        assert_eq!(cp.timeout, cb.timeout, "{}", dispatcher.name());
        assert_eq!(cp.crash, cb.crash, "{}", dispatcher.name());
        assert_eq!(cp.assert_, cb.assert_, "{}", dispatcher.name());
        // Pruned runs are logged with the dedicated early-stop reason.
        let logged_pruned = pruned
            .log
            .runs
            .iter()
            .filter(|r| {
                matches!(
                    r.result.status,
                    RunStatus::EarlyStopMasked(EarlyStop::StaticallyPruned)
                )
            })
            .count();
        assert_eq!(logged_pruned, pruned.pruned_ids.len());
    }
}

#[test]
fn static_avf_tracks_measured_vulnerability_order() {
    // The AVF comparison axis: static ACE-derived AVF must upper-bound (or
    // at least not wildly undercut) the measured non-Masked rate for the
    // register file, and the comparison renders for both backends.
    let mafin = MaFin::new();
    let gefin = GeFin::x86();
    let backends: [&dyn InjectorDispatcher; 2] = [&mafin, &gefin];
    let mut cmp = AvfComparison::new();
    for dispatcher in backends {
        let (pruned, _, program) = pruned_campaign(dispatcher, Bench::Fft, 16, 11);
        let profile = profile_for(dispatcher, &program);
        let avf = profile.static_avf();
        assert!(avf.exact, "small traces must be complete");
        let counts = classify_log(&pruned.log);
        cmp.push(
            "fft",
            dispatcher.name(),
            "int_prf",
            avf.avf,
            avf.exact,
            &counts,
        );
        assert!(
            avf.avf >= counts.vulnerability() - 0.15,
            "{}: static AVF {:.4} should not undercut measured {:.4} by a wide margin",
            dispatcher.name(),
            avf.avf,
            counts.vulnerability()
        );
    }
    let table = cmp.render();
    assert!(table.contains("int_prf"));
    assert!(table.contains("MaFIN-x86") && table.contains("GeFIN-x86"));
}
