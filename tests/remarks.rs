//! Executable checks of the *mechanisms* behind the paper's Remarks — the
//! qualitative divergences between MaFIN and GeFIN that the differential
//! study attributes to simulator internals.

use difi::prelude::*;
use difi::uarch::pipeline::engine::EngineLimits;

fn limits() -> EngineLimits {
    EngineLimits {
        max_cycles: 200_000_000,
        early_stop: false,
        deadlock_window: 200_000,
    }
}

/// Remark 3 (mechanism 1): "Load instructions are issued as soon as
/// possible and before aliasing with earlier stores is determined" — under
/// a store whose *address* resolves late, MaFIN speculatively issues the
/// younger load, detects the ordering violation when the store resolves,
/// and replays; GeFIN waits and never replays. The replayed issues are why
/// MaFIN's issued/committed load ratio exceeds GeFIN's.
#[test]
fn remark3_load_issue_ratio_diverges() {
    use difi::isa::asm::Asm;
    use difi::isa::uop::{Cond, IntOp, Width};
    // Each iteration: a division produces the store's *address offset*
    // (always zero, but the pipeline cannot know that), then a store to
    // [r4 + off] followed immediately by a load of [r4].
    let mut a = Asm::new(Isa::X86e);
    let buf = a.bss(64, 8);
    a.li(4, buf as i64);
    a.li(6, 7);
    a.li(7, 9);
    a.li(5, 0); // i
    a.li(9, 0); // acc
    let top = a.here_label();
    a.op(IntOp::DivU, 8, 6, 7); // slow: 7/9 = 0 → store offset
    a.op(IntOp::Add, 8, 4, 8); // store address, late-resolving
    a.store(Width::B8, 5, 8, 0);
    a.load(Width::B8, false, 10, 4, 0); // aliases the store above
    a.op(IntOp::Add, 9, 9, 10);
    a.opi(IntOp::Add, 5, 5, 1);
    a.bri(Cond::LtS, 5, 200, top);
    a.write_int(9);
    a.exit(0);
    let px = a.finish("alias").expect("assembles");

    let mars = MaFin::new().boot(&px).run(&[], &limits());
    let gem = GeFin::x86().boot(&px).run(&[], &limits());
    assert_eq!(mars.output, gem.output, "replay preserves correctness");
    assert!(
        mars.stats.load_replays > 0,
        "aggressive issue must hit ordering violations here"
    );
    assert_eq!(gem.stats.load_replays, 0, "conservative loads never replay");
    assert!(
        mars.stats.load_issue_ratio() > gem.stats.load_issue_ratio(),
        "replays inflate MaFIN's issued/committed ratio ({:.3} vs {:.3})",
        mars.stats.load_issue_ratio(),
        gem.stats.load_issue_ratio()
    );
}

/// Remark 3 (mechanism 2): kernel services escape to the hypervisor on
/// MaFIN (cache-bypassing accesses) and stay in-cache on GeFIN.
#[test]
fn remark3_hypervisor_escape_only_on_mafin() {
    let bench = Bench::Smooth;
    let p = build(bench, Isa::X86e).expect("assembles");
    let mars = MaFin::new().boot(&p).run(&[], &limits());
    let gem = GeFin::x86().boot(&p).run(&[], &limits());
    assert!(mars.stats.hypervisor_calls > 0);
    assert_eq!(gem.stats.hypervisor_calls, 0);
    assert_eq!(mars.output, gem.output, "same architectural results");
}

/// Remark 3 (consequence): a fault in a *clean* L1D line is masked under
/// MaFIN's store-through coherence once the line is evicted, but the same
/// dirty-line fault propagates under GeFIN's strict write-back hierarchy.
#[test]
fn remark3_clean_line_masking_differs() {
    use difi::uarch::cache::CacheConfig;
    use difi::uarch::mem::{MemPolicy, MemSystem};
    let image: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
    // MARSS-like: store-through.
    let mut marss = MemSystem::with_configs(
        image.clone(),
        MemPolicy {
            store_through_to_memory: true,
            ..Default::default()
        },
        CacheConfig::L1,
        CacheConfig::L1,
        CacheConfig::L2,
    );
    let mut gem5 = MemSystem::with_configs(
        image,
        MemPolicy::default(),
        CacheConfig::L1,
        CacheConfig::L1,
        CacheConfig::L2,
    );
    for sys in [&mut marss, &mut gem5] {
        // Dirty a line, inject, evict, reload.
        sys.write_data(0x0, &[0xAA; 8]);
        let line = sys.l1d.lookup(0x0).expect("resident");
        sys.l1d.inject_data_flip(line as u64, 0);
        let mut b = [0u8; 1];
        for i in 1..=4u64 {
            sys.read_data(i * 8192, &mut b); // evict set 0
        }
        sys.read_data(0x0, &mut b);
        // Both propagate for dirty lines (the writeback carries the fault).
        assert_eq!(b[0], 0xAB, "dirty-line fault propagates in both");
    }
    // Clean lines: only the write-back hierarchy keeps the fault alive
    // (in store-through mode memory still has the good copy, and clean
    // evictions drop the faulty array contents).
    let image: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
    let mut marss = MemSystem::new(
        image,
        MemPolicy {
            store_through_to_memory: true,
            ..Default::default()
        },
    );
    let mut b = [0u8; 1];
    marss.read_data(0x0, &mut b);
    let clean = b[0];
    let line = marss.l1d.lookup(0x0).expect("resident");
    marss.l1d.inject_data_flip(line as u64, 0);
    for i in 1..=4u64 {
        marss.read_data(i * 8192, &mut b);
    }
    marss.read_data(0x0, &mut b);
    assert_eq!(
        b[0], clean,
        "clean-line fault dies on eviction (MaFIN masking)"
    );
}

/// Remark 1: the LSQ data plane holds 32 entries (loads + stores) on MaFIN
/// but only the 16 store-queue entries on GeFIN, so load data is only
/// corruptible on MaFIN.
#[test]
fn remark1_lsq_geometry() {
    let m = difi::core::dispatch::structure_desc(&MaFin::new(), StructureId::LsqData).unwrap();
    let g = difi::core::dispatch::structure_desc(&GeFin::x86(), StructureId::LsqData).unwrap();
    assert_eq!(m.entries, 32);
    assert_eq!(g.entries, 16);
}

/// Remark 8: for the same L1I instruction-array faults, MaFIN's non-masked
/// outcomes are dominated by Asserts while GeFIN's are dominated by
/// Crashes.
#[test]
fn remark8_assert_vs_crash_composition() {
    let bench = Bench::Fft;
    let mut mars_counts = ClassCounts::default();
    let mut gem_counts = ClassCounts::default();
    for (dispatcher, counts) in [
        (
            Box::new(MaFin::new()) as Box<dyn InjectorDispatcher>,
            &mut mars_counts,
        ),
        (Box::new(GeFin::x86()), &mut gem_counts),
    ] {
        let program = build(bench, dispatcher.isa()).expect("assembles");
        let golden = golden_run(dispatcher.as_ref(), &program, 200_000_000);
        let desc = difi::core::dispatch::structure_desc(dispatcher.as_ref(), StructureId::L1iData)
            .unwrap();
        // Directed at the code-resident lines early in the run so the
        // corrupted instructions are refetched.
        let mut masks = Vec::new();
        let mut id = 0;
        for line in 0..16u64 {
            for bit in [40u32, 200, 360] {
                masks.push(InjectionSpec::single_transient(
                    id,
                    StructureId::L1iData,
                    line,
                    bit,
                    golden.cycles_measured() / 10,
                ));
                id += 1;
            }
        }
        let _ = desc;
        let log = run_campaign(
            dispatcher.as_ref(),
            &program,
            StructureId::L1iData,
            0,
            &masks,
            &CampaignConfig::default(),
        );
        *counts = classify_log(&log);
    }
    assert!(
        mars_counts.assert_ > mars_counts.crash,
        "MaFIN: asserts dominate crashes for L1I faults ({} vs {})",
        mars_counts.assert_,
        mars_counts.crash
    );
    assert!(
        gem_counts.crash > gem_counts.assert_,
        "GeFIN: crashes dominate asserts for L1I faults ({} vs {})",
        gem_counts.crash,
        gem_counts.assert_
    );
}

/// Remark 6: the two front-ends really differ — same workload, different
/// misprediction counts (chooser indexing + BTB organization).
#[test]
fn remark6_front_ends_differ() {
    let p = build(Bench::Qsort, Isa::X86e).expect("assembles");
    let mars = MaFin::new().boot(&p).run(&[], &limits());
    let gem = GeFin::x86().boot(&p).run(&[], &limits());
    assert_ne!(
        mars.stats.predictor.mispredicts, gem.stats.predictor.mispredicts,
        "distinct predictor organizations must behave differently"
    );
}
