//! Differential oracle for the observability layer: fault-lifecycle event
//! streams are a *deterministic function of the mask*, independent of the
//! execution strategy. On real workloads and all three experimental setups,
//! identical masks must produce identical [`FaultTrace`]s under cold
//! starts, the checkpointed warm-start engine, and crash-resume — and
//! enabling tracing must leave the campaign log itself byte-identical
//! (tracing observes, never perturbs).

use difi::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Campaign size: full-scale in release (scripts/check.sh runs this test in
/// release explicitly); trimmed in debug where the simulator is ~10× slower,
/// while keeping the required 3-strategies × 2-workloads × 3-setups matrix
/// intact.
const N_MASKS: u64 = if cfg!(debug_assertions) { 3 } else { 8 };

fn backends() -> Vec<Box<dyn InjectorDispatcher + Send>> {
    vec![
        Box::new(MaFin::new()),
        Box::new(GeFin::x86()),
        Box::new(GeFin::arm()),
    ]
}

struct Cell {
    program: Program,
    masks: Vec<InjectionSpec>,
    cfg: CampaignConfig,
}

fn cell(dispatcher: &dyn InjectorDispatcher, bench: Bench) -> Cell {
    let program = build(bench, dispatcher.isa()).expect("assembles");
    let golden = golden_run(dispatcher, &program, 200_000_000);
    let desc =
        difi::core::dispatch::structure_desc(dispatcher, StructureId::L2Data).expect("injectable");
    let masks = MaskGenerator::new(1979).transient(&desc, golden.cycles_measured(), N_MASKS);
    let cfg = CampaignConfig {
        threads: 2,
        early_stop: true,
        golden_max_cycles: 200_000_000,
    };
    Cell {
        program,
        masks,
        cfg,
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("difi_trace_determinism");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.journal"))
}

/// Truncates a complete journal to its header plus half the run lines —
/// the crash point the resumed strategy re-dispatches from.
fn cut_to_half(path: &Path) {
    let text = std::fs::read_to_string(path).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "journal too small to cut meaningfully");
    let keep = 1 + (lines.len() - 1) / 2;
    let kept: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(path, kept).expect("truncate journal");
}

#[test]
fn traces_are_identical_across_all_strategies() {
    for bench in [Bench::Sha, Bench::Fft] {
        for dispatcher in backends() {
            let d = dispatcher.as_ref();
            let c = cell(d, bench);
            let tag = format!("{}_{bench:?}", d.name());

            // Strategy 1 — cold, traced. The reference streams.
            let cold_mem = MemoryTraceSink::new();
            let cold_log = CampaignRunner::new(d, &c.program, StructureId::L2Data, 1979, &c.cfg)
                .with_tracing(true)
                .run_with_sinks(&c.masks, &[&cold_mem]);
            let cold_traces = cold_mem.into_traces();
            assert_eq!(
                cold_traces.len(),
                c.masks.len(),
                "{tag}: every dispatched mask must produce a trace"
            );
            for (i, t) in &cold_traces {
                assert_eq!(t.id, c.masks[*i].id, "{tag}: trace/mask id mismatch");
                assert!(
                    t.first(TraceEventKind::Injected).is_some(),
                    "{tag}: mask {i} trace has no injection event"
                );
                assert!(
                    t.first(TraceEventKind::Classified).is_some(),
                    "{tag}: mask {i} trace was never classified"
                );
            }

            // Tracing observes, never perturbs: the traced log is
            // byte-identical to a plain untraced campaign.
            let plain = run_campaign(d, &c.program, StructureId::L2Data, 1979, &c.masks, &c.cfg);
            assert_eq!(
                plain, cold_log,
                "{tag}: enabling tracing changed the campaign log"
            );

            // Strategy 2 — checkpointed warm-start, traced.
            let warm_mem = MemoryTraceSink::new();
            let warm_log = CampaignRunner::new(d, &c.program, StructureId::L2Data, 1979, &c.cfg)
                .with_strategy(Strategy::Checkpointed { checkpoints: 3 })
                .with_tracing(true)
                .run_with_sinks(&c.masks, &[&warm_mem]);
            assert_eq!(cold_log, warm_log, "{tag}: warm-start log diverged");
            assert_eq!(
                cold_traces,
                warm_mem.into_traces(),
                "{tag}: warm-start event streams diverged from cold"
            );

            // Strategy 3 — crash-resume, traced. Journal a full traced
            // campaign, cut it to half, resume: the re-dispatched masks
            // must reproduce their cold event streams exactly.
            let path = temp_journal(&tag);
            let runner = CampaignRunner::new(d, &c.program, StructureId::L2Data, 1979, &c.cfg)
                .with_tracing(true);
            let full = runner
                .run_journaled(&c.masks, &path, &[])
                .expect("journaled traced campaign");
            assert_eq!(cold_log, full, "{tag}: journaled traced log diverged");
            cut_to_half(&path);
            let resumed_mem = MemoryTraceSink::new();
            let resumed = runner
                .resume(&c.masks, &path, &[&resumed_mem])
                .expect("resume traced campaign");
            assert_eq!(cold_log, resumed, "{tag}: resumed log diverged");
            let resumed_traces = resumed_mem.into_traces();
            assert!(
                !resumed_traces.is_empty(),
                "{tag}: resume re-dispatched nothing — the cut was a no-op"
            );
            let by_index: BTreeMap<usize, &FaultTrace> =
                cold_traces.iter().map(|(i, t)| (*i, t)).collect();
            for (i, t) in &resumed_traces {
                assert_eq!(
                    Some(&t),
                    by_index.get(i),
                    "{tag}: mask {i} produced a different event stream on resume"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }
}
