//! Table I / Table IV feature claims, checked as executable facts:
//! both injectors target all major microarchitecture structures, both are
//! full-system style (kernel state in simulated memory), both support every
//! fault model, and the per-injector geometries match Table II.

use difi::prelude::*;
use difi::uarch::StructureId;

/// Table I row 1: "Injection framework that targets all major
/// microarchitecture structures — Both MaFIN and GeFIN".
#[test]
fn both_injectors_cover_all_major_structures() {
    let must_have = [
        StructureId::IntRegFile,
        StructureId::FpRegFile,
        StructureId::IssueQueue,
        StructureId::LsqData,
        StructureId::L1dData,
        StructureId::L1dTag,
        StructureId::L1dValid,
        StructureId::L1iData,
        StructureId::L1iTag,
        StructureId::L1iValid,
        StructureId::L2Data,
        StructureId::L2Tag,
        StructureId::L2Valid,
        StructureId::DtlbEntry,
        StructureId::DtlbValid,
        StructureId::ItlbEntry,
        StructureId::ItlbValid,
        StructureId::Btb,
        StructureId::Ras,
    ];
    for dispatcher in setups::all() {
        let have: Vec<StructureId> = dispatcher.structures().iter().map(|d| d.id).collect();
        for s in must_have {
            assert!(
                have.contains(&s),
                "{} must inject into {} (Table IV)",
                dispatcher.name(),
                s.name()
            );
        }
    }
}

/// Table II geometries, as exposed through the dispatchers.
#[test]
fn structure_geometries_match_table_ii() {
    let geom = |d: &dyn InjectorDispatcher, s: StructureId| {
        d.structures()
            .into_iter()
            .find(|x| x.id == s)
            .unwrap_or_else(|| panic!("{} missing {}", d.name(), s.name()))
    };
    let mafin = MaFin::new();
    let gx = GeFin::x86();
    let ga = GeFin::arm();

    // Physical register files: 256/256 vs 256/128.
    assert_eq!(geom(&mafin, StructureId::IntRegFile).entries, 256);
    assert_eq!(geom(&mafin, StructureId::FpRegFile).entries, 256);
    assert_eq!(geom(&gx, StructureId::FpRegFile).entries, 128);
    assert_eq!(geom(&ga, StructureId::FpRegFile).entries, 128);

    // LSQ data plane: 32 unified vs 16 (store queue only) — Remark 1.
    assert_eq!(geom(&mafin, StructureId::LsqData).entries, 32);
    assert_eq!(geom(&gx, StructureId::LsqData).entries, 16);

    // Caches: 32 KB L1s (512 lines × 512 bits), 1 MB L2.
    for d in setups::all() {
        assert_eq!(
            geom(d.as_ref(), StructureId::L1dData).total_bits(),
            32 * 1024 * 8
        );
        assert_eq!(
            geom(d.as_ref(), StructureId::L1iData).total_bits(),
            32 * 1024 * 8
        );
        assert_eq!(
            geom(d.as_ref(), StructureId::L2Data).total_bits(),
            1024 * 1024 * 8
        );
        assert_eq!(geom(d.as_ref(), StructureId::Ras).entries, 16);
    }

    // BTBs: split 1K+512 (MARSS) vs unified direct-mapped 2K (gem5).
    assert_eq!(geom(&mafin, StructureId::Btb).entries, 1536);
    assert_eq!(geom(&gx, StructureId::Btb).entries, 2048);
}

/// Table I row 5: both are full-system injectors — kernel state lives in
/// simulated memory and its corruption produces system crashes.
#[test]
fn kernel_state_is_fault_reachable() {
    use difi::isa::kernel;
    use difi::isa::program::MemoryMap;
    let map = MemoryMap::DEFAULT;
    let mut mem = vec![0u8; map.size as usize];
    kernel::install(&mut mem, &map);
    // The kernel magic and dispatch table are ordinary simulated memory.
    assert_ne!(
        &mem[map.kernel_base as usize..map.kernel_base as usize + 8],
        &[0u8; 8]
    );
    mem[map.kernel_base as usize] ^= 1;
    let mut fm = kernel::FlatMem { mem: &mut mem };
    assert!(matches!(
        kernel::handle_syscall(&mut fm, &map, 0, 0, 0),
        kernel::KernelOutcome::Panic(_)
    ));
}

/// Table I row 7: transient, intermittent, permanent fault models on all
/// structures — the mask generator emits all three for any geometry.
#[test]
fn all_fault_models_generate_for_every_structure() {
    let mafin = MaFin::new();
    for desc in mafin.structures() {
        let mut gen = MaskGenerator::new(desc.id as u64);
        assert_eq!(gen.transient(&desc, 1000, 3).len(), 3);
        assert_eq!(gen.intermittent(&desc, 1000, 100, 3).len(), 3);
        assert_eq!(gen.permanent(&desc, 3).len(), 3);
        for m in gen.transient(&desc, 1000, 20) {
            let f = &m.faults[0];
            assert!(f.entry < desc.entries && (f.bit as u64) < desc.bits);
        }
    }
}

/// §IV.A: total study shape — 5 components × 10 benchmarks × 3 setups.
#[test]
fn study_dimensions_match_the_paper() {
    assert_eq!(setups::figure_structures().len(), 5);
    assert_eq!(Bench::ALL.len(), 10);
    assert_eq!(setups::all().len(), 3);
    // 2000 injections each would be the paper's 300,000 total.
    assert_eq!(5 * 10 * 3 * 2000, 300_000);
}
