//! Differential oracle for crash-resume: on real workloads and all three
//! experimental setups, a journaled campaign interrupted at an arbitrary
//! point — including mid-append, leaving a torn journal line — and resumed
//! with `CampaignRunner::resume` must produce a `CampaignLog`
//! **byte-identical** to the uninterrupted campaign. Each run is
//! deterministic and independent, and the journal records completed runs
//! exactly; so replaying the missing subset reconstructs the same log.

use difi::prelude::*;
use std::io::Read;
use std::path::{Path, PathBuf};

/// Campaign size: full-scale in release (scripts/check.sh runs this test in
/// release explicitly); trimmed in debug where the simulator is ~10× slower,
/// while keeping the required ≥2-workloads × 3-setups matrix intact.
const N_MASKS: u64 = if cfg!(debug_assertions) { 3 } else { 8 };

fn backends() -> Vec<Box<dyn InjectorDispatcher + Send>> {
    vec![
        Box::new(MaFin::new()),
        Box::new(GeFin::x86()),
        Box::new(GeFin::arm()),
    ]
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("difi_resume_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.journal"))
}

fn saved_bytes(log: &CampaignLog, tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join("difi_resume_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}.jsonl"));
    log.save(&path).expect("save");
    let mut bytes = Vec::new();
    std::fs::File::open(&path)
        .expect("open")
        .read_to_end(&mut bytes)
        .expect("read");
    std::fs::remove_file(&path).ok();
    bytes
}

/// The crash points exercised per cell, expressed over the journal's lines
/// (line 0 is the header): everything kept, only the header, half the runs,
/// all but the last run, and a tear mid-way through the last line.
#[derive(Debug, Clone, Copy)]
enum Cut {
    HeaderOnly,
    HalfRuns,
    AllButLast,
    MidLastLine,
    EmptyFile,
}

impl Cut {
    const ALL: [Cut; 5] = [
        Cut::HeaderOnly,
        Cut::HalfRuns,
        Cut::AllButLast,
        Cut::MidLastLine,
        Cut::EmptyFile,
    ];

    /// Applies the cut to a complete journal file in place.
    fn apply(self, path: &Path) {
        let bytes = std::fs::read(path).expect("read journal");
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .filter(|&i| i < bytes.len())
            .collect();
        let n_lines = line_starts.len();
        assert!(n_lines >= 3, "journal too small to cut meaningfully");
        let keep = match self {
            Cut::EmptyFile => 0,
            Cut::HeaderOnly => line_starts[1],
            Cut::HalfRuns => line_starts[1 + (n_lines - 1) / 2],
            Cut::AllButLast => line_starts[n_lines - 1],
            Cut::MidLastLine => {
                // Tear inside the final line — the crash-mid-append case the
                // tolerant loader must drop (and resume must re-dispatch).
                let last = line_starts[n_lines - 1];
                last + (bytes.len() - last) / 2
            }
        };
        std::fs::write(path, &bytes[..keep]).expect("truncate journal");
    }
}

struct Cell {
    program: Program,
    masks: Vec<InjectionSpec>,
    cfg: CampaignConfig,
}

fn cell(dispatcher: &dyn InjectorDispatcher, bench: Bench) -> Cell {
    let program = build(bench, dispatcher.isa()).expect("assembles");
    let golden = golden_run(dispatcher, &program, 200_000_000);
    let desc =
        difi::core::dispatch::structure_desc(dispatcher, StructureId::L2Data).expect("injectable");
    let masks = MaskGenerator::new(1979).transient(&desc, golden.cycles_measured(), N_MASKS);
    let cfg = CampaignConfig {
        threads: 2,
        early_stop: true,
        golden_max_cycles: 200_000_000,
    };
    Cell {
        program,
        masks,
        cfg,
    }
}

#[test]
fn resumed_campaign_is_byte_identical_after_any_crash_point() {
    // ≥2 workloads × the paper's three setups × five crash points.
    for bench in [Bench::Sha, Bench::Fft] {
        for dispatcher in backends() {
            let d = dispatcher.as_ref();
            let c = cell(d, bench);
            let runner = CampaignRunner::new(d, &c.program, StructureId::L2Data, 1979, &c.cfg);
            let tag = format!("{}_{bench:?}", d.name());
            let path = temp_journal(&tag);

            let full = runner
                .run_journaled(&c.masks, &path, &[])
                .expect("uninterrupted journaled campaign");
            let full_bytes = saved_bytes(&full, &format!("{tag}_full"));
            let complete_journal = std::fs::read(&path).expect("read journal");

            for cut in Cut::ALL {
                std::fs::write(&path, &complete_journal).expect("restore journal");
                cut.apply(&path);
                let resumed = runner
                    .resume(&c.masks, &path, &[])
                    .unwrap_or_else(|e| panic!("{tag}/{cut:?}: resume failed: {e}"));
                assert_eq!(
                    full, resumed,
                    "{tag}/{cut:?}: resumed log diverged from the uninterrupted one"
                );
                assert_eq!(
                    full_bytes,
                    saved_bytes(&resumed, &format!("{tag}_{cut:?}")),
                    "{tag}/{cut:?}: serialized logs differ"
                );
                // After resume the journal itself is complete: a second
                // resume reloads it without dispatching anything new and
                // still agrees byte-for-byte.
                let again = runner
                    .resume(&c.masks, &path, &[])
                    .unwrap_or_else(|e| panic!("{tag}/{cut:?}: re-resume failed: {e}"));
                assert_eq!(full, again, "{tag}/{cut:?}: second resume diverged");
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn resume_composes_with_the_warm_start_strategy() {
    // A checkpointed (warm-start) journaled campaign interrupted and
    // resumed must still match its own uninterrupted run — strategies and
    // journaling are orthogonal axes of the runner.
    let mafin = MaFin::new();
    let c = cell(&mafin, Bench::Sha);
    let runner = CampaignRunner::new(&mafin, &c.program, StructureId::L2Data, 1979, &c.cfg)
        .with_strategy(Strategy::Checkpointed { checkpoints: 2 });
    let path = temp_journal("warm_resume");

    let full = runner
        .run_journaled(&c.masks, &path, &[])
        .expect("journaled warm campaign");
    Cut::HalfRuns.apply(&path);
    let resumed = runner.resume(&c.masks, &path, &[]).expect("resume");
    assert_eq!(full, resumed, "warm-start resume diverged");

    // And the whole family agrees with the cold-start oracle.
    let cold = run_campaign(
        &mafin,
        &c.program,
        StructureId::L2Data,
        1979,
        &c.masks,
        &c.cfg,
    );
    assert_eq!(cold, resumed, "resumed warm log diverged from cold oracle");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_refuses_a_foreign_journal() {
    // Resuming a MaFIN journal under a GeFIN campaign (or with reshaped
    // masks) must fail loudly instead of silently mixing incompatible runs.
    let mafin = MaFin::new();
    let c = cell(&mafin, Bench::Sha);
    let runner = CampaignRunner::new(&mafin, &c.program, StructureId::L2Data, 1979, &c.cfg);
    let path = temp_journal("foreign");
    runner
        .run_journaled(&c.masks, &path, &[])
        .expect("journaled campaign");

    let gefin = GeFin::x86();
    let g = cell(&gefin, Bench::Sha);
    let wrong = CampaignRunner::new(&gefin, &g.program, StructureId::L2Data, 1979, &g.cfg);
    assert!(
        wrong.resume(&g.masks, &path, &[]).is_err(),
        "a GeFIN campaign accepted a MaFIN journal"
    );

    let reseeded = CampaignRunner::new(&mafin, &c.program, StructureId::L2Data, 1980, &c.cfg);
    assert!(
        reseeded.resume(&c.masks, &path, &[]).is_err(),
        "a reseeded campaign accepted the journal"
    );
    std::fs::remove_file(&path).ok();
}
