#!/usr/bin/env bash
# Full local gate: formatting, lints, release build, tests.
# Mirrors what CI would run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> dependency freeze (std-only workspace)"
# The workspace is std-only by design; fail if any Cargo.toml gains an
# external dependency. Intra-workspace `path` and `workspace = true` deps
# are the only accepted forms.
python3 - <<'PY'
import glob, re, sys

def dep_section(header):
    # [dependencies], [dev-dependencies], [workspace.dependencies],
    # [build-dependencies], [target.'cfg'.dependencies] — and the table
    # form [dependencies.<name>], whose body is one dependency spec.
    parts = header.split(".")
    for i, p in enumerate(parts):
        if p.endswith("dependencies"):
            return "table" if i + 1 < len(parts) else "list"
    return None

OK_SPEC = re.compile(r'\bpath\b|workspace\s*=\s*true')
violations = []
for toml in ["Cargo.toml"] + sorted(glob.glob("crates/*/Cargo.toml")):
    mode = None        # None | "list" | "table"
    table = None       # (location, header, body_ok) for table mode
    def flush():
        if table is not None and not table[2]:
            violations.append(f"{table[0]}: [{table[1]}] has no path/workspace source")
    for n, line in enumerate(open(toml), 1):
        stripped = line.strip()
        if stripped.startswith("["):
            flush()
            header = stripped.strip("[]")
            mode = dep_section(header)
            table = [f"{toml}:{n}", header, False] if mode == "table" else None
            continue
        if mode is None or not stripped or stripped.startswith("#"):
            continue
        if mode == "table":
            if OK_SPEC.search(stripped):
                table[2] = True
            continue
        m = re.match(r'([A-Za-z0-9_-]+)\s*=\s*(.*)', stripped)
        if m and not OK_SPEC.search(m.group(2)):
            violations.append(f"{toml}:{n}: {stripped}")
    flush()

if violations:
    print("error: external dependency introduced (workspace is std-only):", file=sys.stderr)
    for v in violations:
        print("  " + v, file=sys.stderr)
    sys.exit(1)
print("dependency freeze OK: all deps are path/workspace-internal")
PY

echo "==> no ignored tier-1 tests"
# An #[ignore] on a tier-1 test silently shrinks the gate; fail loudly instead.
if grep -rn '#\[ignore' tests/ crates/ --include='*.rs'; then
    echo "error: #[ignore]d tests found — tier-1 tests must all run" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> warm-start checkpoint equivalence (release)"
# The differential oracle for the checkpointed campaign engine: run it
# explicitly (and in release — it simulates full campaigns twice).
cargo test --release -q --test warm_start_equivalence

echo "==> crash-resume equivalence (release)"
# The differential oracle for the journaled campaign engine: interrupt a
# journal at several crash points (including a torn line) and require the
# resumed log to be byte-identical to the uninterrupted one.
cargo test --release -q --test resume_equivalence

echo "==> trace determinism across strategies (release)"
# The differential oracle for the observability layer: identical masks must
# produce identical fault-lifecycle event streams under cold, checkpointed
# and crash-resumed campaigns — and tracing must not perturb the log.
cargo test --release -q --test trace_determinism

echo "==> collapse equivalence (release)"
# The differential oracle for mask-space equivalence collapsing: on two
# workloads across the paper's three setups, a collapsed campaign must
# classify every individual mask exactly as the full campaign does, save
# dispatches with sound per-class provenance, and resume from an
# interrupted collapsed journal identically.
cargo test --release -q --test collapse_equivalence

echo "==> campaign binary journal/resume smoke"
# End-to-end over the CLI: journal a tiny campaign with live progress, then
# resume the (already complete) journal and require the same classification.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
run_campaign_bin() {
    cargo run --release -q -p difi-bench --bin campaign -- \
        --injector MaFIN-x86 --bench sha --structure l1d_data \
        --injections 10 --seed 2015 "$@"
}
run_campaign_bin --journal "$smoke_dir/smoke.journal" --progress \
    | tee "$smoke_dir/journaled.out" >/dev/null
run_campaign_bin --resume "$smoke_dir/smoke.journal" \
    | tee "$smoke_dir/resumed.out" >/dev/null
if ! diff <(grep -A99 '^classification' "$smoke_dir/journaled.out" | sed 's/([^)]*)//') \
          <(grep -A99 '^classification' "$smoke_dir/resumed.out" | sed 's/([^)]*)//'); then
    echo "error: resumed campaign classification differs from journaled run" >&2
    exit 1
fi

echo "==> campaign binary collapse smoke"
# End-to-end over the CLI: a collapsed campaign on a data-plane structure
# must print the equivalence-collapse summary and classify the same number
# of runs as requested.
run_campaign_bin --collapse | tee "$smoke_dir/collapsed.out" >/dev/null
grep -q '^collapse: 10 masks -> ' "$smoke_dir/collapsed.out" || {
    echo "error: --collapse summary missing from campaign output" >&2
    exit 1
}
grep -q 'classification (10 runs' "$smoke_dir/collapsed.out" || {
    echo "error: collapsed campaign did not log all 10 masks" >&2
    exit 1
}

echo "==> campaign binary trace/metrics smoke"
# End-to-end observability: a traced campaign must emit parseable JSONL
# event streams and a metrics JSON whose counters match the run count.
run_campaign_bin --trace "$smoke_dir/traces.jsonl" \
    --metrics-out "$smoke_dir/metrics.json" >/dev/null
python3 - "$smoke_dir/traces.jsonl" "$smoke_dir/metrics.json" <<'PY'
import json, sys
traces = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert traces, "trace file is empty"
for t in traces:
    events = t["trace"]["events"]
    kinds = [e["kind"] for e in events]
    assert "injected" in kinds, f"trace {t['index']} missing injection event"
    assert "classified" in kinds, f"trace {t['index']} never classified"
metrics = json.load(open(sys.argv[2]))["metrics"]
counters = metrics["counters"]
assert counters["campaign.runs"] == 10, counters
assert counters["campaign.traces"] == len(traces), counters
assert sum(v for k, v in counters.items() if k.startswith("campaign.status.")) == 10
assert metrics["gauges"]["phase.golden_ns"] > 0
print(f"trace/metrics smoke OK: {len(traces)} traces, counters consistent")
PY

echo "All checks passed."
