#!/usr/bin/env bash
# Full local gate: formatting, lints, release build, tests.
# Mirrors what CI would run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> no ignored tier-1 tests"
# An #[ignore] on a tier-1 test silently shrinks the gate; fail loudly instead.
if grep -rn '#\[ignore' tests/ crates/ --include='*.rs'; then
    echo "error: #[ignore]d tests found — tier-1 tests must all run" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> warm-start checkpoint equivalence (release)"
# The differential oracle for the checkpointed campaign engine: run it
# explicitly (and in release — it simulates full campaigns twice).
cargo test --release -q --test warm_start_equivalence

echo "All checks passed."
