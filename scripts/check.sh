#!/usr/bin/env bash
# Full local gate: formatting, lints, release build, tests.
# Mirrors what CI would run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "All checks passed."
