//! A minimal, dependency-free JSON value, parser and writer.
//!
//! The logs repository (§III.B of the paper) persists every run as a JSON
//! line so the parser/classifier can be reconfigured without re-running
//! campaigns. The build environment pins the workspace to the standard
//! library only, so the small subset of JSON the repository needs —
//! objects, arrays, strings, integers, floats, booleans and null — is
//! implemented here. Integers are kept in native 64-bit form (not `f64`)
//! because mask identifiers and cycle counts use the full `u64` range.

use crate::{Error, Result};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (also used for values that fit in `u64`).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Required-field lookup that produces a [`Error::Parse`] on absence.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when `key` is missing.
    pub fn req(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| Error::Parse(format!("missing field '{key}'")))
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // Keep a decimal point / exponent so the value reparses
                    // as a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Compact (single-line) JSON serialization.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`Error::Parse`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::Parse(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::Parse(format!("bad literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::Parse(format!("unexpected input at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::Parse(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(Error::Parse(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::Parse("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(Error::Parse("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::Parse("bad \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::Parse("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::Parse("unknown escape".into())),
                    }
                }
                _ => {
                    // Re-scan as UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::Parse("invalid utf-8".into()))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::Parse("unterminated string".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::Parse("invalid number".into()))?;
        if !is_float {
            if s.starts_with('-') {
                if let Ok(v) = s.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = s.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        s.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| Error::Parse(format!("invalid number '{s}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::F64(1.5),
            Json::Str("hello \"world\"\n\t\\".into()),
            Json::Str("unicode: é λ".into()),
        ] {
            let s = v.to_string();
            assert_eq!(parse(&s).unwrap(), v, "roundtrip of {s}");
        }
    }

    #[test]
    fn u64_max_survives_exactly() {
        let s = Json::U64(u64::MAX).to_string();
        assert_eq!(s, "18446744073709551615");
        assert_eq!(parse(&s).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj(vec![
            ("id", Json::U64(7)),
            (
                "items",
                Json::Arr(vec![Json::U64(1), Json::Str("x".into())]),
            ),
            (
                "inner",
                Json::obj(vec![("flag", Json::Bool(false)), ("n", Json::Null)]),
            ),
        ]);
        let s = v.to_string();
        let back = parse(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            back.get("inner")
                .and_then(|i| i.get("flag"))
                .and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn parses_whitespace_and_float_forms() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , -3 ] } ").unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_i64(), Some(-3));
    }

    #[test]
    fn float_writes_reparse_as_float() {
        let s = Json::F64(2.0).to_string();
        assert_eq!(s, "2.0");
        assert_eq!(parse(&s).unwrap(), Json::F64(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn control_chars_escape() {
        let v = Json::Str("\u{1}".into());
        assert_eq!(v.to_string(), "\"\\u0001\"");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn req_reports_missing_field() {
        let v = parse("{\"a\":1}").unwrap();
        assert!(v.req("a").is_ok());
        let e = v.req("b").unwrap_err();
        assert!(e.to_string().contains("'b'"));
    }

    #[test]
    fn every_low_codepoint_string_roundtrips() {
        // Exhaustive over the range where escaping decisions are made
        // (controls, quotes, backslash, Latin-1, BMP samples) — every
        // single-char string must survive write → parse unchanged.
        let mut failed = Vec::new();
        for cp in 0u32..0x300 {
            let Some(c) = char::from_u32(cp) else {
                continue;
            };
            let v = Json::Str(c.to_string());
            if parse(&v.to_string()).ok() != Some(v) {
                failed.push(cp);
            }
        }
        assert!(failed.is_empty(), "lossy codepoints: {failed:x?}");
        // Non-BMP and other notorious cases.
        for s in ["\u{1f600}", "\u{2028}\u{2029}", "a\u{0}b", "\u{e000}", "𝕊"] {
            let v = Json::Str(s.into());
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{s:?}");
        }
    }

    #[test]
    fn seeded_sweep_arbitrary_strings_roundtrip() {
        // Random strings drawn from a hostile pool: JSON syntax bytes,
        // escapes, controls, multi-byte chars.
        let pool: Vec<char> = ('\u{0}'..='\u{ff}')
            .chain(['"', '\\', '\u{2028}', '\u{fffd}', '\u{1f4a9}', '𐍈'])
            .collect();
        let mut rng = crate::rng::Xoshiro256::seed_from(0xD1F1);
        for _ in 0..500 {
            let len = rng.gen_range(0, 40) as usize;
            let s: String = (0..len)
                .map(|_| pool[rng.gen_range(0, pool.len() as u64) as usize])
                .collect();
            let v = Json::Str(s.clone());
            let text = v.to_string();
            assert_eq!(parse(&text).unwrap(), v, "string {s:?} via {text:?}");
        }
    }
}
