//! Deterministic pseudo-random number generation.
//!
//! Campaign reproducibility is a core requirement of the paper's methodology:
//! the fault mask generator must produce the same "masks repository" from the
//! same seed so that campaigns can be re-run, extended, and audited. We
//! implement xoshiro256\*\* (public domain, Blackman & Vigna) seeded through
//! SplitMix64, both small enough to verify by inspection and stable forever.

/// SplitMix64 — used to expand a single `u64` seed into generator state.
///
/// # Example
///
/// ```
/// use difi_util::rng::SplitMix64;
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(SplitMix64::new(42).next_u64(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workhorse generator for fault mask sampling.
///
/// All campaign-visible randomness (fault locations, bit positions, injection
/// cycles) flows through this type, so a `(seed, campaign parameters)` pair
/// fully determines a campaign.
///
/// # Example
///
/// ```
/// use difi_util::rng::Xoshiro256;
/// let mut r = Xoshiro256::seed_from(7);
/// let x = r.gen_range(0, 100);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose state is expanded from `seed` via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[lo, hi)` using Lemire-style rejection.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi");
        let span = hi - lo;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Derives an independent child generator; used to hand each injection
    /// run its own stream so campaigns parallelize deterministically.
    pub fn fork(&mut self, tag: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.is_empty() {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0, (i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the SplitMix64 reference
        // implementation.
        let mut sm = SplitMix64::new(1234567);
        let v: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(v[0], 6457827717110365317);
        assert_eq!(v[1], 3203168211198807973);
        assert_eq!(v[2], 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Xoshiro256::seed_from(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10, 17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Xoshiro256::seed_from(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = Xoshiro256::seed_from(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from(6);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from(7);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn gen_range_panics_on_empty_span() {
        let mut r = Xoshiro256::seed_from(8);
        r.gen_range(5, 5);
    }
}
