//! Statistical fault sampling and reporting mathematics.
//!
//! Section IV.A of the paper sizes every injection campaign with the formula
//! of Leveugle et al., *"Statistical fault injection: Quantified error and
//! confidence"*, DATE 2009 (reference \[20\]): given the population size `N`
//! (storage bits × execution cycles), a confidence level and an error margin
//! `e`, the required number of injections is
//!
//! ```text
//! n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))
//! ```
//!
//! with `p = 0.5` (the most pessimistic proportion) and `t` the two-sided
//! normal quantile for the confidence level. For 99% confidence and 3% error
//! this yields **1843** for any realistically large population — the paper
//! rounds up to 2000 injections, which corresponds to a 2.88% margin.

/// Two-sided normal quantile for a confidence level.
///
/// Computed via the Acklam inverse-normal-CDF approximation (relative error
/// below 1.15e-9), evaluated at `(1 + confidence) / 2`.
///
/// # Panics
///
/// Panics if `confidence` is not strictly inside `(0, 1)`.
pub fn normal_quantile_two_sided(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    inverse_normal_cdf((1.0 + confidence) / 2.0)
}

/// Acklam's rational approximation to the inverse standard normal CDF.
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// Required number of fault injections for a population of `population`
/// fault sites (bits × cycles), per Leveugle et al. \[20\].
///
/// Uses the most pessimistic proportion `p = 0.5`.
///
/// # Example
///
/// ```
/// use difi_util::stats::sample_size;
/// // Paper, Section IV.A: 99%/3% => 1843; 99%/5% => 663.
/// let big = u64::MAX >> 8;
/// assert_eq!(sample_size(big, 0.99, 0.03), 1843);
/// assert_eq!(sample_size(big, 0.99, 0.05), 663);
/// ```
///
/// # Panics
///
/// Panics if `population == 0`, or if `confidence`/`error_margin` are outside
/// `(0, 1)`.
pub fn sample_size(population: u64, confidence: f64, error_margin: f64) -> u64 {
    assert!(population > 0, "population must be nonzero");
    assert!(
        error_margin > 0.0 && error_margin < 1.0,
        "error margin must be in (0, 1)"
    );
    let t = normal_quantile_two_sided(confidence);
    let n = population as f64;
    let p = 0.5;
    let denom = 1.0 + error_margin * error_margin * (n - 1.0) / (t * t * p * (1.0 - p));
    // Rounded to nearest, matching the paper's published 1843 (99%/3%) and
    // 663 (99%/5%) figures.
    (n / denom).round() as u64
}

/// Error margin actually achieved by `n` injections into a population of
/// `population` sites (the inverse of [`sample_size`]).
///
/// The paper reports that rounding 1843 up to 2000 injections tightens the
/// margin to 2.88%.
pub fn achieved_error_margin(population: u64, confidence: f64, n: u64) -> f64 {
    assert!(n > 0 && population > 0);
    let t = normal_quantile_two_sided(confidence);
    let nn = n as f64;
    let pop = population as f64;
    let p = 0.5;
    // Invert the sample-size formula for e.
    ((pop - nn) / nn * (t * t * p * (1.0 - p)) / (pop - 1.0)).sqrt()
}

/// A Wilson score confidence interval for a binomial proportion, used when
/// reporting per-class rates from a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
}

impl Proportion {
    /// Computes the Wilson interval for `successes` out of `trials` at the
    /// given confidence.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `successes > trials`.
    pub fn wilson(successes: u64, trials: u64, confidence: f64) -> Proportion {
        assert!(trials > 0, "trials must be nonzero");
        assert!(successes <= trials, "successes cannot exceed trials");
        let z = normal_quantile_two_sided(confidence);
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        Proportion {
            estimate: p,
            lo: (center - half).max(0.0),
            hi: (center + half).min(1.0),
        }
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_standard_table() {
        assert!((normal_quantile_two_sided(0.95) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile_two_sided(0.99) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile_two_sided(0.90) - 1.644854).abs() < 1e-4);
    }

    #[test]
    fn paper_sample_sizes() {
        // "For a 99% confidence and a 3% error margin ... 1843".
        // Representative population: 32KB cache data bits over 10M cycles.
        let pop = 32u64 * 1024 * 8 * 10_000_000;
        assert_eq!(sample_size(pop, 0.99, 0.03), 1843);
        // "if the error margin ... increased from 3% to 5% then ... only 663".
        assert_eq!(sample_size(pop, 0.99, 0.05), 663);
    }

    #[test]
    fn paper_error_margin_for_2000_runs() {
        // "2000 injections correspond to 2.88% error margin".
        let pop = 32u64 * 1024 * 8 * 10_000_000;
        let e = achieved_error_margin(pop, 0.99, 2000);
        assert!((e - 0.0288).abs() < 0.0002, "got {e}");
    }

    #[test]
    fn sample_size_small_population_is_capped() {
        // For tiny populations the formula approaches exhaustive injection.
        assert_eq!(sample_size(10, 0.99, 0.03), 10);
        assert!(sample_size(2000, 0.99, 0.03) <= 2000);
    }

    #[test]
    fn sample_size_monotone_in_error() {
        let pop = 1u64 << 40;
        assert!(sample_size(pop, 0.99, 0.01) > sample_size(pop, 0.99, 0.03));
        assert!(sample_size(pop, 0.99, 0.03) > sample_size(pop, 0.99, 0.10));
    }

    #[test]
    fn wilson_interval_brackets_estimate() {
        let p = Proportion::wilson(150, 2000, 0.99);
        assert!(p.lo < p.estimate && p.estimate < p.hi);
        assert!((p.estimate - 0.075).abs() < 1e-12);
        assert!(p.hi - p.lo < 0.04);
    }

    #[test]
    fn wilson_extremes_stay_in_unit_interval() {
        let z = Proportion::wilson(0, 100, 0.99);
        assert_eq!(z.lo, 0.0);
        assert!(z.hi > 0.0);
        let o = Proportion::wilson(100, 100, 0.99);
        assert_eq!(o.hi, 1.0);
        assert!(o.lo < 1.0);
    }

    #[test]
    fn mean_stddev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 1e-3);
    }
}
