//! Bit-granular storage used by fault-injectable hardware arrays.
//!
//! Microarchitectural fault injection operates on *storage bits*: every
//! modeled array (cache tag/data/valid arrays, register files, queue
//! payloads) must expose its content at single-bit granularity so transient
//! flips and stuck-at faults land exactly where a real particle strike or
//! defect would. [`BitPlane`] is the common dense backing store; byte-level
//! helpers serve the wide cache data arrays, which are stored as bytes for
//! simulation speed but remain injectable per bit.

/// A dense two-dimensional bit array: `entries` rows of `width` bits.
///
/// This is the backing store for every fault-injectable structure whose
/// payload is not naturally byte-shaped (tags, valid bits, queue metadata,
/// register values).
///
/// # Example
///
/// ```
/// use difi_util::bits::BitPlane;
/// let mut p = BitPlane::new(4, 20);
/// p.set(2, 19, true);
/// assert!(p.get(2, 19));
/// p.flip(2, 19);
/// assert!(!p.get(2, 19));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPlane {
    words: Vec<u64>,
    entries: usize,
    width: usize,
    words_per_entry: usize,
}

impl BitPlane {
    /// Creates a zeroed plane of `entries` rows, each `width` bits wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(entries: usize, width: usize) -> Self {
        assert!(width > 0, "bit plane width must be nonzero");
        let words_per_entry = width.div_ceil(64);
        BitPlane {
            words: vec![0; entries * words_per_entry],
            entries,
            width,
            words_per_entry,
        }
    }

    /// Number of rows.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Bits per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of storage bits (`entries * width`).
    pub fn total_bits(&self) -> u64 {
        self.entries as u64 * self.width as u64
    }

    #[inline]
    fn index(&self, entry: usize, bit: usize) -> (usize, u64) {
        debug_assert!(entry < self.entries, "entry {entry} out of range");
        debug_assert!(bit < self.width, "bit {bit} out of range");
        (entry * self.words_per_entry + bit / 64, 1u64 << (bit % 64))
    }

    /// Reads one bit.
    #[inline]
    pub fn get(&self, entry: usize, bit: usize) -> bool {
        let (w, m) = self.index(entry, bit);
        self.words[w] & m != 0
    }

    /// Writes one bit.
    #[inline]
    pub fn set(&mut self, entry: usize, bit: usize, value: bool) {
        let (w, m) = self.index(entry, bit);
        if value {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Inverts one bit (the transient-fault primitive).
    #[inline]
    pub fn flip(&mut self, entry: usize, bit: usize) {
        let (w, m) = self.index(entry, bit);
        self.words[w] ^= m;
    }

    /// Reads up to 64 bits starting at `bit` within `entry` (word-level,
    /// touching at most two backing words — this is the hot path of cache
    /// tag probes and register reads).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the span crosses the entry's width.
    #[inline]
    pub fn get_field(&self, entry: usize, bit: usize, len: usize) -> u64 {
        debug_assert!(len > 0 && len <= 64 && bit + len <= self.width);
        let base = entry * self.words_per_entry;
        let w = base + bit / 64;
        let off = bit % 64;
        let mask = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        let lo = self.words[w] >> off;
        let v = if off + len <= 64 {
            lo
        } else {
            lo | (self.words[w + 1] << (64 - off))
        };
        v & mask
    }

    /// Writes up to 64 bits starting at `bit` within `entry` (word-level).
    #[inline]
    pub fn set_field(&mut self, entry: usize, bit: usize, len: usize, value: u64) {
        debug_assert!(len > 0 && len <= 64 && bit + len <= self.width);
        let base = entry * self.words_per_entry;
        let w = base + bit / 64;
        let off = bit % 64;
        let mask = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        let value = value & mask;
        self.words[w] = (self.words[w] & !(mask << off)) | (value << off);
        if off + len > 64 {
            let hi_bits = off + len - 64;
            let hi_mask = (1u64 << hi_bits) - 1;
            self.words[w + 1] = (self.words[w + 1] & !hi_mask) | (value >> (64 - off));
        }
    }

    /// Clears an entire entry to zero.
    pub fn clear_entry(&mut self, entry: usize) {
        let base = entry * self.words_per_entry;
        for w in &mut self.words[base..base + self.words_per_entry] {
            *w = 0;
        }
    }

    /// Population count of one entry (used by tests and diagnostics).
    pub fn count_ones(&self, entry: usize) -> u32 {
        let base = entry * self.words_per_entry;
        self.words[base..base + self.words_per_entry]
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }
}

/// Flips bit `bit` (0 = LSB of byte 0) inside a byte-backed array.
///
/// Cache data arrays are stored as bytes for speed; this is their
/// transient-fault primitive.
#[inline]
pub fn flip_bit_in_bytes(bytes: &mut [u8], bit: u64) {
    let byte = (bit / 8) as usize;
    bytes[byte] ^= 1 << (bit % 8);
}

/// Reads bit `bit` from a byte-backed array.
#[inline]
pub fn get_bit_in_bytes(bytes: &[u8], bit: u64) -> bool {
    bytes[(bit / 8) as usize] >> (bit % 8) & 1 != 0
}

/// Sets bit `bit` in a byte-backed array to `value` (the stuck-at primitive).
#[inline]
pub fn set_bit_in_bytes(bytes: &mut [u8], bit: u64, value: bool) {
    let byte = (bit / 8) as usize;
    if value {
        bytes[byte] |= 1 << (bit % 8);
    } else {
        bytes[byte] &= !(1 << (bit % 8));
    }
}

/// Returns the number of low-order bits needed to represent `n - 1`
/// (i.e. `ceil(log2(n))`), with `bits_for(1) == 0`.
pub fn bits_for(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_set_get_flip_roundtrip() {
        let mut p = BitPlane::new(8, 70);
        assert!(!p.get(3, 65));
        p.set(3, 65, true);
        assert!(p.get(3, 65));
        p.flip(3, 65);
        assert!(!p.get(3, 65));
        p.flip(3, 65);
        assert!(p.get(3, 65));
    }

    #[test]
    fn plane_entries_are_independent() {
        let mut p = BitPlane::new(4, 64);
        p.set(1, 0, true);
        assert!(!p.get(0, 0));
        assert!(!p.get(2, 0));
        assert_eq!(p.count_ones(1), 1);
        assert_eq!(p.count_ones(0), 0);
    }

    #[test]
    fn field_roundtrip_across_word_boundary() {
        let mut p = BitPlane::new(2, 100);
        p.set_field(1, 60, 20, 0xABCDE);
        assert_eq!(p.get_field(1, 60, 20), 0xABCDE);
        // Neighbouring bits untouched.
        assert!(!p.get(1, 59));
        assert!(!p.get(1, 80));
    }

    #[test]
    fn clear_entry_zeroes_full_row() {
        let mut p = BitPlane::new(3, 130);
        for b in 0..130 {
            p.set(2, b, true);
        }
        p.clear_entry(2);
        assert_eq!(p.count_ones(2), 0);
    }

    #[test]
    fn byte_helpers_roundtrip() {
        let mut b = vec![0u8; 8];
        flip_bit_in_bytes(&mut b, 13);
        assert!(get_bit_in_bytes(&b, 13));
        assert_eq!(b[1], 1 << 5);
        set_bit_in_bytes(&mut b, 13, false);
        assert!(!get_bit_in_bytes(&b, 13));
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn bits_for_matches_log2_ceiling() {
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(128), 7);
        assert_eq!(bits_for(129), 8);
        assert_eq!(bits_for(1024), 10);
    }

    #[test]
    fn total_bits_geometry() {
        let p = BitPlane::new(256, 64);
        assert_eq!(p.total_bits(), 256 * 64);
    }
}
