//! Line-oriented JSON (JSONL) framing for append-only journals.
//!
//! The streaming campaign engine persists one JSON value per line so a run
//! that crashes mid-campaign loses at most the line being written. That
//! failure mode is *expected*, so the loader is tolerant of exactly one torn
//! tail: a final line that is truncated, corrupt, or missing its newline is
//! **dropped** (reported, not fatal), while damage anywhere earlier in the
//! file is a hard [`Error::Parse`] — silent mid-file data loss must never be
//! papered over.

use crate::json::{self, Json};
use crate::{Error, Result};
use std::io::Write;
use std::path::Path;

/// Writes one JSONL record: the compact serialization of `value` plus a
/// terminating newline. Callers flush per record when crash tolerance
/// matters.
///
/// # Errors
///
/// Returns [`Error::Io`] on write failure.
pub fn write_line<W: Write>(w: &mut W, value: &Json) -> Result<()> {
    writeln!(w, "{value}").map_err(Error::from)
}

/// Why the tail of a JSONL file was dropped by [`load_tolerant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DroppedTail {
    /// 1-based line number of the dropped line.
    pub line_no: usize,
    /// Human-readable reason (parse error, invalid UTF-8, …).
    pub reason: String,
}

/// The result of a tolerant JSONL load.
#[derive(Debug)]
pub struct LoadedLines {
    /// Every successfully parsed line, in file order.
    pub lines: Vec<Json>,
    /// Byte length of the valid prefix of the file. Truncating the file to
    /// this length removes the torn tail (if any) so appends resume on a
    /// clean line boundary.
    pub valid_len: u64,
    /// The torn tail line, if one was dropped.
    pub dropped: Option<DroppedTail>,
}

/// Loads a JSONL file, tolerating a torn tail.
///
/// Blank lines are skipped. A line that fails to parse (or is not valid
/// UTF-8) is dropped if nothing but whitespace follows it — the torn-tail
/// signature of a crash mid-append. An unterminated final line that *does*
/// parse is accepted: our writer emits the newline in the same buffered
/// write as the value, so a parseable tail is a complete record.
///
/// # Errors
///
/// Returns [`Error::Io`] on read failure and [`Error::Parse`] for damage
/// anywhere before the final line.
pub fn load_tolerant(path: &Path) -> Result<LoadedLines> {
    let bytes = std::fs::read(path)?;
    let mut lines = Vec::new();
    let mut pos = 0usize;
    let mut valid_len = 0usize;
    let mut line_no = 0usize;
    let mut dropped = None;

    while pos < bytes.len() {
        let (line_end, next_pos) = match bytes[pos..].iter().position(|&b| b == b'\n') {
            Some(off) => (pos + off, pos + off + 1),
            None => (bytes.len(), bytes.len()),
        };
        line_no += 1;
        let parsed = std::str::from_utf8(&bytes[pos..line_end])
            .map_err(|e| format!("invalid utf-8: {e}"))
            .and_then(|s| {
                if s.trim().is_empty() {
                    Ok(None)
                } else {
                    json::parse(s).map(Some).map_err(|e| e.to_string())
                }
            });
        match parsed {
            Ok(Some(v)) => {
                lines.push(v);
                valid_len = next_pos;
            }
            Ok(None) => valid_len = next_pos, // blank line: valid, no record
            Err(reason) => {
                let tail_is_blank = bytes[next_pos..]
                    .iter()
                    .all(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'));
                if tail_is_blank {
                    dropped = Some(DroppedTail { line_no, reason });
                    break;
                }
                return Err(Error::Parse(format!("jsonl line {line_no}: {reason}")));
            }
        }
        pos = next_pos;
    }

    Ok(LoadedLines {
        lines,
        valid_len: valid_len as u64,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("difi_jsonl_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_file(name: &str, records: &[Json]) -> std::path::PathBuf {
        let path = temp_path(name);
        let mut buf = Vec::new();
        for r in records {
            write_line(&mut buf, r).unwrap();
        }
        std::fs::write(&path, buf).unwrap();
        path
    }

    #[test]
    fn roundtrip_multiple_lines() {
        let records = vec![
            Json::obj(vec![("a", Json::U64(1))]),
            Json::Str("two".into()),
            Json::Arr(vec![Json::Bool(true), Json::Null]),
        ];
        let path = write_file("roundtrip.jsonl", &records);
        let loaded = load_tolerant(&path).unwrap();
        assert_eq!(loaded.lines, records);
        assert!(loaded.dropped.is_none());
        assert_eq!(
            loaded.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "whole file is valid"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_sweep_hostile_strings_survive_append_reload() {
        // Strings drawn from a hostile pool (JSON syntax bytes, escapes,
        // controls, multi-byte chars) must survive append → reload exactly,
        // at any record count.
        let pool: Vec<char> = ('\u{0}'..='\u{ff}')
            .chain(['"', '\\', '\u{2028}', '\u{fffd}', '\u{1f4a9}', '𐍈'])
            .collect();
        let mut rng = Xoshiro256::seed_from(0x1a5e);
        for round in 0..40u64 {
            let n = rng.gen_range(0, 12) as usize;
            let records: Vec<Json> = (0..n)
                .map(|i| {
                    let len = rng.gen_range(0, 32) as usize;
                    let s: String = (0..len)
                        .map(|_| pool[rng.gen_range(0, pool.len() as u64) as usize])
                        .collect();
                    Json::obj(vec![("i", Json::U64(i as u64)), ("s", Json::Str(s))])
                })
                .collect();
            let path = write_file("sweep.jsonl", &records);
            let loaded = load_tolerant(&path).unwrap();
            assert_eq!(loaded.lines, records, "round {round}: lossy reload");
            assert!(loaded.dropped.is_none());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn truncated_tail_is_dropped_at_every_cut_point() {
        // Truncating the file anywhere inside the final line must drop that
        // line (and only it), never abort the load.
        let records: Vec<Json> = (0..5u64)
            .map(|i| {
                Json::obj(vec![
                    ("id", Json::U64(i)),
                    ("s", Json::Str("payload".into())),
                ])
            })
            .collect();
        let path = write_file("trunc.jsonl", &records);
        let full = std::fs::read(&path).unwrap();
        let last_start = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .unwrap()
            + 1;
        for cut in last_start + 1..full.len() - 1 {
            std::fs::write(&path, &full[..cut]).unwrap();
            let loaded = load_tolerant(&path).unwrap();
            assert_eq!(loaded.lines, records[..4], "cut at byte {cut}");
            let d = loaded.dropped.as_ref().expect("tail dropped");
            assert_eq!(d.line_no, 5);
            assert_eq!(
                loaded.valid_len as usize, last_start,
                "valid prefix ends where the torn line starts"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unterminated_but_complete_tail_is_accepted() {
        // A crash can lose only the newline: the record itself is complete
        // and must be kept.
        let records: Vec<Json> = (0..3u64)
            .map(Json::U64)
            .map(|v| Json::Arr(vec![v]))
            .collect();
        let path = write_file("nonewline.jsonl", &records);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.pop(); // drop final '\n'
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_tolerant(&path).unwrap();
        assert_eq!(loaded.lines, records);
        assert!(loaded.dropped.is_none());
        assert_eq!(loaded.valid_len as usize, bytes.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let records: Vec<Json> = (0..4u64)
            .map(|i| Json::obj(vec![("id", Json::U64(i))]))
            .collect();
        let path = write_file("midcorrupt.jsonl", &records);
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Corrupt the second line, keeping later lines intact.
        text = text.replacen("{\"id\":1}", "{\"id\":x}", 1);
        std::fs::write(&path, &text).unwrap();
        let err = load_tolerant(&path).unwrap_err();
        assert!(
            err.to_string().contains("line 2"),
            "error names the damaged line: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_and_empty_file_are_fine() {
        let path = temp_path("blank.jsonl");
        std::fs::write(&path, "\n  \n{\"a\":1}\n\n").unwrap();
        let loaded = load_tolerant(&path).unwrap();
        assert_eq!(loaded.lines, vec![Json::obj(vec![("a", Json::U64(1))])]);
        assert!(loaded.dropped.is_none());

        std::fs::write(&path, "").unwrap();
        let loaded = load_tolerant(&path).unwrap();
        assert!(loaded.lines.is_empty());
        assert_eq!(loaded.valid_len, 0);
        std::fs::remove_file(&path).ok();
    }
}
