//! # difi-util
//!
//! Foundation utilities shared by every crate in the `difi` workspace:
//!
//! * [`rng`] — a small, deterministic pseudo-random generator family
//!   (SplitMix64 seeding + xoshiro256\*\*). Fault-injection campaigns must be
//!   reproducible bit-for-bit from a published seed, independent of external
//!   crate versions, so the campaign RNG lives in-repo.
//! * [`bits`] — bit-level storage helpers used by the fault-injectable
//!   storage arrays (caches, register files, queues).
//! * [`stats`] — the statistical fault-sampling mathematics of
//!   Leveugle et al., DATE 2009 (reference \[20\] of the paper), plus
//!   confidence intervals for reporting.
//! * [`jsonl`] — line-oriented JSON framing for append-only journals, with
//!   a loader tolerant of the torn tail line a crash mid-append leaves.
//!
//! # Example
//!
//! ```
//! use difi_util::stats::sample_size;
//! // The paper: 99% confidence, 3% error margin => 1843 injections for all
//! // structure/benchmark pairs of the study.
//! let n = sample_size(32 * 1024 * 8 * 1_000_000, 0.99, 0.03);
//! assert_eq!(n, 1843);
//! ```

pub mod bits;
pub mod json;
pub mod jsonl;
pub mod rng;
pub mod stats;

/// Convenience result alias used across the workspace for fallible setup
/// paths (program assembly, configuration validation, log parsing).
pub type Result<T> = std::result::Result<T, Error>;

/// Workspace-level error type for setup/configuration failures.
///
/// Simulation outcomes (crashes, asserts, timeouts) are *data*, not errors —
/// they are carried in `difi_core::RunStatus` instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A configuration value is out of range or inconsistent.
    Config(String),
    /// A program image could not be assembled or loaded.
    Program(String),
    /// A persisted log or report could not be parsed.
    Parse(String),
    /// An I/O error (message-only so the type stays `Clone + Eq`).
    Io(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Config(m) => write!(f, "invalid configuration: {m}"),
            Error::Program(m) => write!(f, "invalid program: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_and_unpunctuated() {
        let e = Error::Config("rob size must be nonzero".into());
        let s = e.to_string();
        assert!(s.starts_with("invalid configuration"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
