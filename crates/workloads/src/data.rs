//! Deterministic input-data generation shared by the kernels and their host
//! references.

use difi_util::rng::Xoshiro256;

/// Pseudo-random bytes from a fixed seed (per-kernel seeds keep the inputs
//  independent).
pub fn bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut r = Xoshiro256::seed_from(seed);
    (0..n).map(|_| r.next_u64() as u8).collect()
}

/// Pseudo-random `u32` words.
pub fn words(seed: u64, n: usize) -> Vec<u32> {
    let mut r = Xoshiro256::seed_from(seed);
    (0..n).map(|_| r.next_u64() as u32).collect()
}

/// A synthetic 8-bit grayscale image with smooth gradients, a bright
/// rectangle, a dark disc, and mild noise — enough structure for the
/// SUSAN-style kernels to find edges and corners.
pub fn image(seed: u64, w: usize, h: usize) -> Vec<u8> {
    let mut r = Xoshiro256::seed_from(seed);
    let mut img = vec![0u8; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut v = ((x * 255) / w.max(1) + (y * 128) / h.max(1)) / 2;
            // Bright rectangle.
            if (w / 5..w / 2).contains(&x) && (h / 4..h / 2).contains(&y) {
                v = v.saturating_add(90);
            }
            // Dark disc.
            let (cx, cy) = (3 * w / 4, 3 * h / 4);
            let dx = x as i64 - cx as i64;
            let dy = y as i64 - cy as i64;
            if dx * dx + dy * dy < ((w / 6) * (w / 6)) as i64 {
                v = v.saturating_sub(70);
            }
            let noise = (r.next_u64() % 9) as usize;
            img[y * w + x] = (v + noise).min(255) as u8;
        }
    }
    img
}

/// Skewed-alphabet text (letters weighted toward a small set, with word
/// breaks) for the search benchmark.
pub fn text(seed: u64, n: usize) -> Vec<u8> {
    let mut r = Xoshiro256::seed_from(seed);
    let common = b"etaoinshrdlu";
    (0..n)
        .map(|_| {
            let v = r.next_u64();
            if v.is_multiple_of(7) {
                b' '
            } else {
                common[(v % common.len() as u64) as usize]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(bytes(1, 64), bytes(1, 64));
        assert_ne!(bytes(1, 64), bytes(2, 64));
        assert_eq!(words(3, 16), words(3, 16));
        assert_eq!(image(4, 32, 32), image(4, 32, 32));
        assert_eq!(text(5, 100), text(5, 100));
    }

    #[test]
    fn image_has_structure() {
        let img = image(7, 64, 64);
        let mean: u64 = img.iter().map(|&b| b as u64).sum::<u64>() / img.len() as u64;
        assert!(mean > 30 && mean < 220);
        // Not constant.
        assert!(img.iter().any(|&b| b as u64 > mean + 20));
        assert!(img.iter().any(|&b| (b as u64) < mean.saturating_sub(20)));
    }

    #[test]
    fn text_is_searchable() {
        let t = text(9, 1000);
        assert!(t.iter().filter(|&&c| c == b' ').count() > 50);
    }
}
