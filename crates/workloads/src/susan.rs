//! `smooth`, `edge`, `corner` — SUSAN-style image kernels on a 64×64
//! grayscale image.
//!
//! MiBench's susan family is load-dominated neighbourhood processing:
//! * **smooth** — 3×3 mean filter;
//! * **edge** — Sobel gradient magnitude with a threshold;
//! * **corner** — Harris-style response from windowed gradient products.
//!
//! Outputs are weighted checksums (plus feature counts for edge/corner).

use crate::data;
use difi_isa::asm::Asm;
use difi_isa::uop::{Cond, IntOp, Width};

const W: usize = 96;
const H: usize = 96;
const SEED: u64 = 0x1F4A_0004;

fn img() -> Vec<u8> {
    data::image(SEED, W, H)
}

/// Position-weighted checksum used by all three kernels.
fn weight(i: usize) -> u64 {
    ((i & 15) + 1) as u64
}

/// Emits the smoothing kernel.
pub fn emit_smooth(a: &mut Asm) {
    let src = a.data_bytes(&img());
    let dst = a.bss((W * H) as u64, 8);
    // r3 = src, r4 = dst, r5 = y, r6 = x.
    a.li(3, src as i64);
    a.li(4, dst as i64);
    a.li(5, 1);
    let yloop = a.here_label();
    let ydone = a.label();
    a.bri(Cond::GeS, 5, (H - 1) as i32, ydone);
    a.li(6, 1);
    let xloop = a.here_label();
    let xdone = a.label();
    a.bri(Cond::GeS, 6, (W - 1) as i32, xdone);
    // sum 3×3 neighbourhood into r7.
    a.li(7, 0);
    a.opi(IntOp::Mul, 10, 5, W as i32);
    a.op(IntOp::Add, 10, 10, 6);
    a.op(IntOp::Add, 10, 3, 10); // &src[y*W+x]
    for dy in -1i32..=1 {
        for dx in -1i32..=1 {
            a.load(Width::B1, false, 11, 10, dy * W as i32 + dx);
            a.op(IntOp::Add, 7, 7, 11);
        }
    }
    a.li(11, 9);
    a.op(IntOp::DivU, 7, 7, 11);
    a.opi(IntOp::Mul, 10, 5, W as i32);
    a.op(IntOp::Add, 10, 10, 6);
    a.op(IntOp::Add, 10, 4, 10);
    a.store(Width::B1, 7, 10, 0);
    a.opi(IntOp::Add, 6, 6, 1);
    a.jmp(xloop);
    a.bind(xdone);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(yloop);
    a.bind(ydone);

    // Checksum the interior of dst.
    a.li(5, 0); // i
    a.li(7, 0); // sum
    a.li(8, 0); // plain sum
    let ck = a.here_label();
    let ck_done = a.label();
    a.bri(Cond::GeS, 5, (W * H) as i32, ck_done);
    a.op(IntOp::Add, 10, 4, 5);
    a.load(Width::B1, false, 11, 10, 0);
    a.op(IntOp::Add, 8, 8, 11);
    a.opi(IntOp::And, 2, 5, 15);
    a.opi(IntOp::Add, 2, 2, 1);
    a.op(IntOp::Mul, 11, 11, 2);
    a.op(IntOp::Add, 7, 7, 11);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(ck);
    a.bind(ck_done);
    a.write_int(7);
    a.write_int(8);
    a.exit(0);
}

/// Host reference for smooth.
pub fn reference_smooth() -> Vec<u8> {
    let src = img();
    let mut dst = vec![0u8; W * H];
    for y in 1..H - 1 {
        for x in 1..W - 1 {
            let mut sum = 0u64;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    sum += src[((y as i64 + dy) * W as i64 + x as i64 + dx) as usize] as u64;
                }
            }
            dst[y * W + x] = (sum / 9) as u8;
        }
    }
    let mut wsum = 0u64;
    let mut psum = 0u64;
    for (i, &v) in dst.iter().enumerate() {
        wsum += v as u64 * weight(i);
        psum += v as u64;
    }
    format!("{wsum}\n{psum}\n").into_bytes()
}

/// Emits the Sobel edge kernel.
pub fn emit_edge(a: &mut Asm) {
    let src = a.data_bytes(&img());
    // r3 = src, r5 = y, r6 = x, r7 = count, r8 = checksum.
    a.li(3, src as i64);
    a.li(7, 0);
    a.li(8, 0);
    a.li(5, 1);
    let yloop = a.here_label();
    let ydone = a.label();
    a.bri(Cond::GeS, 5, (H - 1) as i32, ydone);
    a.li(6, 1);
    let xloop = a.here_label();
    let xdone = a.label();
    a.bri(Cond::GeS, 6, (W - 1) as i32, xdone);
    a.opi(IntOp::Mul, 10, 5, W as i32);
    a.op(IntOp::Add, 10, 10, 6);
    a.op(IntOp::Add, 10, 3, 10); // &src[y*W+x]
                                 // gx = (p[-1-W]+2p[-1]+p[-1+W]) - (p[1-W]+2p[1]+p[1+W])  … r11
                                 // (signed arithmetic in 64-bit registers; pixels are zero-extended)
    let wi = W as i32;
    a.load(Width::B1, false, 11, 10, -1 - wi);
    a.load(Width::B1, false, 2, 10, -1);
    a.opi(IntOp::Shl, 2, 2, 1);
    a.op(IntOp::Add, 11, 11, 2);
    a.load(Width::B1, false, 2, 10, -1 + wi);
    a.op(IntOp::Add, 11, 11, 2);
    a.load(Width::B1, false, 2, 10, 1 - wi);
    a.op(IntOp::Sub, 11, 11, 2);
    a.load(Width::B1, false, 2, 10, 1);
    a.opi(IntOp::Shl, 2, 2, 1);
    a.op(IntOp::Sub, 11, 11, 2);
    a.load(Width::B1, false, 2, 10, 1 + wi);
    a.op(IntOp::Sub, 11, 11, 2);
    // gy similar (rows) … r12
    a.load(Width::B1, false, 12, 10, -wi - 1);
    a.load(Width::B1, false, 2, 10, -wi);
    a.opi(IntOp::Shl, 2, 2, 1);
    a.op(IntOp::Add, 12, 12, 2);
    a.load(Width::B1, false, 2, 10, -wi + 1);
    a.op(IntOp::Add, 12, 12, 2);
    a.load(Width::B1, false, 2, 10, wi - 1);
    a.op(IntOp::Sub, 12, 12, 2);
    a.load(Width::B1, false, 2, 10, wi);
    a.opi(IntOp::Shl, 2, 2, 1);
    a.op(IntOp::Sub, 12, 12, 2);
    a.load(Width::B1, false, 2, 10, wi + 1);
    a.op(IntOp::Sub, 12, 12, 2);
    // |gx| + |gy| via conditional negation.
    for r in [11u8, 12] {
        let nonneg = a.label();
        a.bri(Cond::GeS, r, 0, nonneg);
        a.li(2, 0);
        a.op(IntOp::Sub, r, 2, r);
        a.bind(nonneg);
    }
    a.op(IntOp::Add, 11, 11, 12);
    a.op(IntOp::Add, 8, 8, 11); // checksum += mag
    let below = a.label();
    a.bri(Cond::LtS, 11, 96, below);
    a.opi(IntOp::Add, 7, 7, 1);
    a.bind(below);
    a.opi(IntOp::Add, 6, 6, 1);
    a.jmp(xloop);
    a.bind(xdone);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(yloop);
    a.bind(ydone);
    a.write_int(7);
    a.write_int(8);
    a.exit(0);
}

/// Host reference for edge.
pub fn reference_edge() -> Vec<u8> {
    let src = img();
    let p = |x: i64, y: i64| src[(y * W as i64 + x) as usize] as i64;
    let mut count = 0u64;
    let mut sum = 0u64;
    for y in 1..(H - 1) as i64 {
        for x in 1..(W - 1) as i64 {
            let gx = p(x - 1, y - 1) + 2 * p(x - 1, y) + p(x - 1, y + 1)
                - p(x + 1, y - 1)
                - 2 * p(x + 1, y)
                - p(x + 1, y + 1);
            let gy = p(x - 1, y - 1) + 2 * p(x, y - 1) + p(x + 1, y - 1)
                - p(x - 1, y + 1)
                - 2 * p(x, y + 1)
                - p(x + 1, y + 1);
            let mag = gx.abs() + gy.abs();
            sum += mag as u64;
            if mag >= 96 {
                count += 1;
            }
        }
    }
    format!("{count}\n{sum}\n").into_bytes()
}

/// Emits the Harris-style corner kernel.
pub fn emit_corner(a: &mut Asm) {
    let src = a.data_bytes(&img());
    let sums = a.bss(3 * 8, 8); // sxx, syy, sxy scratch
                                // r3 = src, r5 = y, r6 = x, r7 = corner count, r8 = response checksum.
    a.li(3, src as i64);
    a.li(7, 0);
    a.li(8, 0);
    a.li(5, 2);
    let yloop = a.here_label();
    let ydone = a.label();
    a.bri(Cond::GeS, 5, (H - 2) as i32, ydone);
    a.li(6, 2);
    let xloop = a.here_label();
    let xdone = a.label();
    a.bri(Cond::GeS, 6, (W - 2) as i32, xdone);
    // Zero the windowed sums.
    a.li(2, sums as i64);
    a.li(1, 0);
    a.store(Width::B8, 1, 2, 0);
    a.store(Width::B8, 1, 2, 8);
    a.store(Width::B8, 1, 2, 16);
    let wi = W as i32;
    for dy in -1i32..=1 {
        for dx in -1i32..=1 {
            // gx, gy by central differences at (x+dx, y+dy).
            a.opi(IntOp::Mul, 10, 5, wi);
            a.op(IntOp::Add, 10, 10, 6);
            a.op(IntOp::Add, 10, 3, 10);
            let off = dy * wi + dx;
            a.load(Width::B1, false, 11, 10, off + 1);
            a.load(Width::B1, false, 2, 10, off - 1);
            a.op(IntOp::Sub, 11, 11, 2); // gx
            a.load(Width::B1, false, 12, 10, off + wi);
            a.load(Width::B1, false, 2, 10, off - wi);
            a.op(IntOp::Sub, 12, 12, 2); // gy
            a.li(2, sums as i64);
            a.op(IntOp::Mul, 1, 11, 11);
            a.load(Width::B8, false, 0, 2, 0);
            a.op(IntOp::Add, 0, 0, 1);
            a.store(Width::B8, 0, 2, 0); // sxx
            a.op(IntOp::Mul, 1, 12, 12);
            a.load(Width::B8, false, 0, 2, 8);
            a.op(IntOp::Add, 0, 0, 1);
            a.store(Width::B8, 0, 2, 8); // syy
            a.op(IntOp::Mul, 1, 11, 12);
            a.load(Width::B8, false, 0, 2, 16);
            a.op(IntOp::Add, 0, 0, 1);
            a.store(Width::B8, 0, 2, 16); // sxy
        }
    }
    // response = sxx*syy - sxy^2 - ((sxx+syy)^2 >> 5)
    a.li(2, sums as i64);
    a.load(Width::B8, false, 10, 2, 0);
    a.load(Width::B8, false, 11, 2, 8);
    a.load(Width::B8, false, 12, 2, 16);
    a.op(IntOp::Mul, 1, 10, 11);
    a.op(IntOp::Mul, 0, 12, 12);
    a.op(IntOp::Sub, 1, 1, 0);
    a.op(IntOp::Add, 10, 10, 11);
    a.op(IntOp::Mul, 10, 10, 10);
    a.opi(IntOp::Sar, 10, 10, 5);
    a.op(IntOp::Sub, 1, 1, 10); // response
    let not_corner = a.label();
    a.li(2, 500_000);
    a.br(Cond::LtS, 1, 2, not_corner);
    a.opi(IntOp::Add, 7, 7, 1);
    a.op(IntOp::Add, 8, 8, 1); // checksum accumulates responses of corners
    a.bind(not_corner);
    a.opi(IntOp::Add, 6, 6, 1);
    a.jmp(xloop);
    a.bind(xdone);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(yloop);
    a.bind(ydone);
    a.write_int(7);
    a.write_int(8);
    a.exit(0);
}

/// Host reference for corner.
pub fn reference_corner() -> Vec<u8> {
    let src = img();
    let p = |x: i64, y: i64| src[(y * W as i64 + x) as usize] as i64;
    let mut count = 0u64;
    let mut sum = 0u64;
    for y in 2..(H - 2) as i64 {
        for x in 2..(W - 2) as i64 {
            let (mut sxx, mut syy, mut sxy) = (0i64, 0i64, 0i64);
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let gx = p(x + dx + 1, y + dy) - p(x + dx - 1, y + dy);
                    let gy = p(x + dx, y + dy + 1) - p(x + dx, y + dy - 1);
                    sxx += gx * gx;
                    syy += gy * gy;
                    sxy += gx * gy;
                }
            }
            let response = sxx * syy - sxy * sxy - (((sxx + syy) * (sxx + syy)) >> 5);
            if response >= 500_000 {
                count += 1;
                sum = sum.wrapping_add(response as u64);
            }
        }
    }
    format!("{count}\n{sum}\n").into_bytes()
}

#[cfg(test)]
mod tests {
    #[test]
    fn references_are_nontrivial() {
        let e = String::from_utf8(super::reference_edge()).unwrap();
        let edges: u64 = e.lines().next().unwrap().parse().unwrap();
        assert!(edges > 20, "the image must contain edges (got {edges})");
        let c = String::from_utf8(super::reference_corner()).unwrap();
        let corners: u64 = c.lines().next().unwrap().parse().unwrap();
        assert!(corners > 0, "the image must contain corners");
        let s = super::reference_smooth();
        assert!(!s.is_empty());
    }
}
