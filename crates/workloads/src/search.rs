//! `search` — Boyer–Moore–Horspool multi-pattern search over a 16 KiB text.
//!
//! MiBench's `search` (Pratt–Boyer–Moore) is dominated by byte compares and
//! shift-table lookups. Four 8-byte patterns are searched; two are extracted
//! from the text (guaranteed hits), two are synthetic (rare/absent).
//!
//! Output: per-pattern match counts, then the sum of all match positions.

use crate::data;
use difi_isa::asm::Asm;
use difi_isa::uop::{Cond, IntOp, Width};

const TEXT_LEN: usize = 32 * 1024;
const M: usize = 8;
const SEED: u64 = 0x5EA2_0002;

fn patterns(text: &[u8]) -> Vec<Vec<u8>> {
    vec![
        text[1000..1000 + M].to_vec(),
        text[9000..9000 + M].to_vec(),
        b"etaoinsh".to_vec(),
        b"zzqqxxjj".to_vec(),
    ]
}

/// Emits the kernel.
pub fn emit(a: &mut Asm) {
    let text = data::text(SEED, TEXT_LEN);
    let pats = patterns(&text);
    let text_addr = a.data_bytes(&text);
    let pat_addrs: Vec<u64> = pats.iter().map(|p| a.data_bytes(p)).collect();
    let shift = a.bss(256 * 8, 8);
    let possum_addr = a.bss(8, 8);

    // r3 = text, r4 = pattern, r5 = shift table, r6 = pos, r7 = limit.
    a.li(5, shift as i64);
    a.li(10, 0);
    a.store(Width::B8, 10, 5, 0); // (possum init below)
    a.li(11, possum_addr as i64);
    a.store(Width::B8, 10, 11, 0);

    for &pat in &pat_addrs {
        // Build the shift table: all = M, then pat bytes.
        a.li(6, 0);
        let fill = a.here_label();
        let fill_done = a.label();
        a.bri(Cond::GeS, 6, 256, fill_done);
        a.opi(IntOp::Shl, 10, 6, 3);
        a.op(IntOp::Add, 10, 5, 10);
        a.li(11, M as i64);
        a.store(Width::B8, 11, 10, 0);
        a.opi(IntOp::Add, 6, 6, 1);
        a.jmp(fill);
        a.bind(fill_done);

        a.li(4, pat as i64);
        a.li(6, 0);
        let pfill = a.here_label();
        let pfill_done = a.label();
        a.bri(Cond::GeS, 6, (M - 1) as i32, pfill_done);
        a.op(IntOp::Add, 10, 4, 6);
        a.load(Width::B1, false, 11, 10, 0); // pat[k]
        a.opi(IntOp::Shl, 11, 11, 3);
        a.op(IntOp::Add, 11, 5, 11);
        a.li(2, (M - 1) as i64);
        a.op(IntOp::Sub, 2, 2, 6); // M-1-k
        a.store(Width::B8, 2, 11, 0);
        a.opi(IntOp::Add, 6, 6, 1);
        a.jmp(pfill);
        a.bind(pfill_done);

        // Search.
        a.li(3, text_addr as i64);
        a.li(6, 0); // pos
        a.li(7, (TEXT_LEN - M) as i64); // inclusive limit
        a.li(12, 0); // count
        let scan = a.here_label();
        let scan_done = a.label();
        let no_match = a.label();
        let advance = a.label();
        a.br(Cond::GtS, 6, 7, scan_done);
        // c = text[pos + M - 1]
        a.op(IntOp::Add, 10, 3, 6);
        a.load(Width::B1, false, 11, 10, (M - 1) as i32);
        // Tail byte check then full backward compare.
        a.load(Width::B1, false, 2, 4, (M - 1) as i32);
        a.br(Cond::Ne, 11, 2, advance);
        // Full compare, k = M-2 .. 0.
        a.li(2, (M - 2) as i64);
        let cmp = a.here_label();
        let matched = a.label();
        a.bri(Cond::LtS, 2, 0, matched);
        a.op(IntOp::Add, 1, 10, 2);
        a.load(Width::B1, false, 1, 1, 0); // text[pos+k] (r1 reused)
        a.op(IntOp::Add, 0, 4, 2);
        a.load(Width::B1, false, 0, 0, 0); // pat[k]
        a.br(Cond::Ne, 1, 0, no_match);
        a.opi(IntOp::Sub, 2, 2, 1);
        a.jmp(cmp);
        a.bind(matched);
        a.opi(IntOp::Add, 12, 12, 1);
        a.li(1, possum_addr as i64);
        a.load(Width::B8, false, 0, 1, 0);
        a.op(IntOp::Add, 0, 0, 6);
        a.store(Width::B8, 0, 1, 0);
        a.bind(no_match);
        a.bind(advance);
        // pos += shift[text[pos+M-1]] — reload the tail byte.
        a.op(IntOp::Add, 10, 3, 6);
        a.load(Width::B1, false, 11, 10, (M - 1) as i32);
        a.opi(IntOp::Shl, 11, 11, 3);
        a.op(IntOp::Add, 11, 5, 11);
        a.load(Width::B8, false, 11, 11, 0);
        a.op(IntOp::Add, 6, 6, 11);
        a.jmp(scan);
        a.bind(scan_done);
        a.write_int(12);
    }
    a.li(1, possum_addr as i64);
    a.load(Width::B8, false, 4, 1, 0);
    a.write_int(4);
    a.exit(0);
}

/// Host reference output.
pub fn reference() -> Vec<u8> {
    let text = data::text(SEED, TEXT_LEN);
    let pats = patterns(&text);
    let mut out = Vec::new();
    let mut possum: u64 = 0;
    for pat in &pats {
        let mut shift = [M as u64; 256];
        for (k, &b) in pat.iter().take(M - 1).enumerate() {
            shift[b as usize] = (M - 1 - k) as u64;
        }
        let mut count: u64 = 0;
        let mut pos: i64 = 0;
        while pos <= (TEXT_LEN - M) as i64 {
            let c = text[pos as usize + M - 1];
            if c == pat[M - 1] && text[pos as usize..pos as usize + M] == pat[..] {
                count += 1;
                possum += pos as u64;
            }
            pos += shift[c as usize] as i64;
        }
        out.extend_from_slice(format!("{count}\n").as_bytes());
    }
    out.extend_from_slice(format!("{possum}\n").as_bytes());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reference_finds_planted_patterns() {
        let out = String::from_utf8(super::reference()).unwrap();
        let counts: Vec<u64> = out.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(counts.len(), 5);
        assert!(counts[0] >= 1, "extracted pattern 1 must match");
        assert!(counts[1] >= 1, "extracted pattern 2 must match");
        assert_eq!(counts[3], 0, "absent pattern must not match");
    }
}
