//! # difi-workloads
//!
//! The ten MiBench-flavoured benchmarks of the paper's evaluation (§IV.B):
//! *djpeg, search, smooth, edge, corner, sha, fft, qsort, cjpeg, caes* —
//! reimplemented against the two-ISA macro-assembler so each kernel compiles
//! for both x86e and arme, the way the paper compiles MiBench for x86 and
//! ARM.
//!
//! Every kernel reproduces its benchmark's dominant character:
//!
//! | name   | kernel                                            | character |
//! |--------|---------------------------------------------------|-----------|
//! | djpeg  | dequantize + fixed-point 8×8 IDCT, image rebuild  | int mul/table |
//! | search | Boyer–Moore–Horspool over a 16 KiB text           | byte compares |
//! | smooth | 3×3 mean filter over a 64×64 image                | load-heavy |
//! | edge   | Sobel gradient magnitude + threshold              | load + arith |
//! | corner | Harris-style response over gradient products      | wide arithmetic |
//! | sha    | SHA-1 over a 4 KiB message                        | 32-bit logic ops |
//! | fft    | radix-2 complex FFT, N = 256, f64                 | floating point |
//! | qsort  | iterative quicksort of 1024 words                 | branchy, swaps |
//! | cjpeg  | fixed-point 8×8 DCT + quantize + zigzag + RLE     | int mul/control |
//! | caes   | AES-128 ECB over 2 KiB (S-box, MixColumns)        | table lookups |
//!
//! Each module carries a host-side *reference implementation*; the unit
//! tests check that the functional emulator's output for both ISAs equals
//! the reference byte-for-byte, which transitively validates the detailed
//! pipelines (they are equivalence-tested against the emulator).

mod aes;
mod data;
mod fftk;
mod jpeg;
mod search;
mod sha;
mod sortk;
mod susan;

use difi_isa::asm::Asm;
use difi_isa::program::{Isa, Program};
use difi_util::Result;

/// The ten benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bench {
    /// JPEG-style decompression (dequantize + IDCT).
    Djpeg,
    /// String search (Boyer–Moore–Horspool).
    Search,
    /// SUSAN-style smoothing filter.
    Smooth,
    /// SUSAN-style edge detection.
    Edge,
    /// SUSAN-style corner detection.
    Corner,
    /// SHA-1 digest.
    Sha,
    /// Radix-2 complex FFT (f64).
    Fft,
    /// Quicksort.
    Qsort,
    /// JPEG-style compression (DCT + quantize + RLE).
    Cjpeg,
    /// AES-128 ECB encryption.
    Caes,
}

impl Bench {
    /// All benchmarks in the paper's listing order.
    pub const ALL: [Bench; 10] = [
        Bench::Djpeg,
        Bench::Search,
        Bench::Smooth,
        Bench::Edge,
        Bench::Corner,
        Bench::Sha,
        Bench::Fft,
        Bench::Qsort,
        Bench::Cjpeg,
        Bench::Caes,
    ];

    /// The benchmark's name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Bench::Djpeg => "djpeg",
            Bench::Search => "search",
            Bench::Smooth => "smooth",
            Bench::Edge => "edge",
            Bench::Corner => "corner",
            Bench::Sha => "sha",
            Bench::Fft => "fft",
            Bench::Qsort => "qsort",
            Bench::Cjpeg => "cjpeg",
            Bench::Caes => "caes",
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(s: &str) -> Option<Bench> {
        Bench::ALL.into_iter().find(|b| b.name() == s)
    }
}

impl std::fmt::Display for Bench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds `bench` for `isa`.
///
/// # Errors
///
/// Returns an assembly error only on internal bugs (all kernels assemble);
/// exposed as `Result` because the assembler API is fallible.
pub fn build(bench: Bench, isa: Isa) -> Result<Program> {
    let mut a = Asm::new(isa);
    match bench {
        Bench::Djpeg => jpeg::emit_djpeg(&mut a),
        Bench::Search => search::emit(&mut a),
        Bench::Smooth => susan::emit_smooth(&mut a),
        Bench::Edge => susan::emit_edge(&mut a),
        Bench::Corner => susan::emit_corner(&mut a),
        Bench::Sha => sha::emit(&mut a),
        Bench::Fft => fftk::emit(&mut a),
        Bench::Qsort => sortk::emit(&mut a),
        Bench::Cjpeg => jpeg::emit_cjpeg(&mut a),
        Bench::Caes => aes::emit(&mut a),
    }
    a.finish(bench.name())
}

/// The host-side reference output for `bench` (ISA-independent).
pub fn reference_output(bench: Bench) -> Vec<u8> {
    match bench {
        Bench::Djpeg => jpeg::reference_djpeg(),
        Bench::Search => search::reference(),
        Bench::Smooth => susan::reference_smooth(),
        Bench::Edge => susan::reference_edge(),
        Bench::Corner => susan::reference_corner(),
        Bench::Sha => sha::reference(),
        Bench::Fft => fftk::reference(),
        Bench::Qsort => sortk::reference(),
        Bench::Cjpeg => jpeg::reference_cjpeg(),
        Bench::Caes => aes::reference(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difi_isa::emu::{EmuExit, Emulator};

    fn check(bench: Bench) {
        let expected = reference_output(bench);
        assert!(!expected.is_empty(), "{bench}: reference must be nonempty");
        for isa in [Isa::X86e, Isa::Arme] {
            let prog = build(bench, isa).expect("assembles");
            let run = Emulator::new(&prog).run(80_000_000);
            assert_eq!(
                run.exit,
                EmuExit::Exited(0),
                "{bench}/{isa}: must exit cleanly"
            );
            assert_eq!(
                run.output,
                expected,
                "{bench}/{isa}: output must match host reference (got {:?})",
                String::from_utf8_lossy(&run.output)
            );
        }
    }

    #[test]
    fn names_roundtrip() {
        for b in Bench::ALL {
            assert_eq!(Bench::from_name(b.name()), Some(b));
        }
        assert_eq!(Bench::from_name("nope"), None);
    }

    #[test]
    fn qsort_matches_reference() {
        check(Bench::Qsort);
    }

    #[test]
    fn search_matches_reference() {
        check(Bench::Search);
    }

    #[test]
    fn sha_matches_reference() {
        check(Bench::Sha);
    }

    #[test]
    fn smooth_matches_reference() {
        check(Bench::Smooth);
    }

    #[test]
    fn edge_matches_reference() {
        check(Bench::Edge);
    }

    #[test]
    fn corner_matches_reference() {
        check(Bench::Corner);
    }

    #[test]
    fn caes_matches_reference() {
        check(Bench::Caes);
    }

    #[test]
    fn fft_matches_reference() {
        check(Bench::Fft);
    }

    #[test]
    fn cjpeg_matches_reference() {
        check(Bench::Cjpeg);
    }

    #[test]
    fn djpeg_matches_reference() {
        check(Bench::Djpeg);
    }

    #[test]
    fn workloads_have_meaningful_size() {
        for b in Bench::ALL {
            let p = build(b, Isa::X86e).unwrap();
            assert!(
                p.code.len() > 150,
                "{b}: code footprint too small ({} bytes)",
                p.code.len()
            );
            assert!(!p.data.is_empty(), "{b}: must carry input data");
        }
    }
}
