//! `qsort` — iterative quicksort of 1024 random `u32` words.
//!
//! MiBench's qsort is the classic branchy, swap-heavy, data-dependent
//! kernel. This version uses Lomuto partitioning with an explicit stack in
//! simulated memory (recursion depth → real stack traffic).
//!
//! Output: a position-weighted checksum of the sorted array, then the first,
//! middle and last elements.

use crate::data;
use difi_isa::asm::Asm;
use difi_isa::uop::{Cond, IntOp, Width};

const N: usize = 4096;
const SEED: u64 = 0x9071_0001;

/// Emits the kernel.
pub fn emit(a: &mut Asm) {
    let arr = a.data_u32s(&data::words(SEED, N));
    let stack = a.bss((4 * N) as u64 * 8, 8);

    // r3 = arr, r12 = stack base, r4 = stack index (in entries).
    a.li(3, arr as i64);
    a.li(12, stack as i64);
    a.li(4, 0);

    // push (0, N-1)
    a.li(10, 0);
    a.store(Width::B8, 10, 12, 0);
    a.li(10, (N - 1) as i64);
    a.store(Width::B8, 10, 12, 8);
    a.li(4, 2);

    let main_loop = a.here_label();
    let done = a.label();
    let skip = a.label();
    a.bri(Cond::Eq, 4, 0, done);
    // pop hi, lo
    a.opi(IntOp::Sub, 4, 4, 2);
    a.opi(IntOp::Shl, 10, 4, 3); // byte offset = sp*8
    a.op(IntOp::Add, 10, 12, 10);
    a.load(Width::B8, false, 5, 10, 0); // lo
    a.load(Width::B8, false, 6, 10, 8); // hi
    a.br(Cond::GeS, 5, 6, main_loop); // lo >= hi → next

    // pivot = arr[hi]
    a.opi(IntOp::Shl, 10, 6, 2);
    a.op(IntOp::Add, 10, 3, 10);
    a.load(Width::B4, false, 9, 10, 0); // pivot
                                        // i = lo - 1 ; j = lo
    a.opi(IntOp::Sub, 7, 5, 1);
    a.mov(8, 5);
    let part_loop = a.here_label();
    let no_swap = a.label();
    a.br(Cond::GeS, 8, 6, skip); // j >= hi → partition done
    a.opi(IntOp::Shl, 10, 8, 2);
    a.op(IntOp::Add, 10, 3, 10);
    a.load(Width::B4, false, 11, 10, 0); // arr[j]
    a.br(Cond::GtU, 11, 9, no_swap);
    // i++; swap arr[i], arr[j]
    a.opi(IntOp::Add, 7, 7, 1);
    a.opi(IntOp::Shl, 10, 7, 2);
    a.op(IntOp::Add, 10, 3, 10);
    a.load(Width::B4, false, 2, 10, 0); // arr[i] (r2 free between syscalls)
    a.store(Width::B4, 11, 10, 0); // arr[i] = arr[j]
    a.opi(IntOp::Shl, 10, 8, 2);
    a.op(IntOp::Add, 10, 3, 10);
    a.store(Width::B4, 2, 10, 0); // arr[j] = old arr[i]
    a.bind(no_swap);
    a.opi(IntOp::Add, 8, 8, 1);
    a.jmp(part_loop);

    a.bind(skip);
    // i++; swap arr[i], arr[hi]
    a.opi(IntOp::Add, 7, 7, 1);
    a.opi(IntOp::Shl, 10, 7, 2);
    a.op(IntOp::Add, 10, 3, 10);
    a.load(Width::B4, false, 2, 10, 0); // arr[i]
    a.opi(IntOp::Shl, 11, 6, 2);
    a.op(IntOp::Add, 11, 3, 11);
    a.load(Width::B4, false, 1, 11, 0); // arr[hi]
    a.store(Width::B4, 1, 10, 0);
    a.store(Width::B4, 2, 11, 0);

    // push (lo, i-1)
    a.opi(IntOp::Shl, 10, 4, 3);
    a.op(IntOp::Add, 10, 12, 10);
    a.store(Width::B8, 5, 10, 0);
    a.opi(IntOp::Sub, 11, 7, 1);
    a.store(Width::B8, 11, 10, 8);
    // push (i+1, hi)
    a.opi(IntOp::Add, 11, 7, 1);
    a.store(Width::B8, 11, 10, 16);
    a.store(Width::B8, 6, 10, 24);
    a.opi(IntOp::Add, 4, 4, 4);
    a.jmp(main_loop);

    a.bind(done);
    // Weighted checksum: sum arr[k] * (k+1).
    a.li(5, 0); // k
    a.li(6, 0); // sum
    let ck = a.here_label();
    let ck_done = a.label();
    a.bri(Cond::GeS, 5, N as i32, ck_done);
    a.opi(IntOp::Shl, 10, 5, 2);
    a.op(IntOp::Add, 10, 3, 10);
    a.load(Width::B4, false, 11, 10, 0);
    a.opi(IntOp::Add, 2, 5, 1);
    a.op(IntOp::Mul, 11, 11, 2);
    a.op(IntOp::Add, 6, 6, 11);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(ck);
    a.bind(ck_done);
    a.write_int(6);
    // arr[0], arr[N/2], arr[N-1]
    a.load(Width::B4, false, 5, 3, 0);
    a.write_int(5);
    a.load(Width::B4, false, 5, 3, (N / 2 * 4) as i32);
    a.write_int(5);
    a.load(Width::B4, false, 5, 3, ((N - 1) * 4) as i32);
    a.write_int(5);
    a.exit(0);
}

/// Host reference output.
pub fn reference() -> Vec<u8> {
    let mut arr = data::words(SEED, N);
    arr.sort_unstable();
    let mut sum: u64 = 0;
    for (k, &v) in arr.iter().enumerate() {
        sum = sum.wrapping_add(v as u64 * (k as u64 + 1));
    }
    let mut out = Vec::new();
    for v in [sum, arr[0] as u64, arr[N / 2] as u64, arr[N - 1] as u64] {
        out.extend_from_slice(format!("{v}\n").as_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_sorted_checksum() {
        let out = reference();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let first: u64 = lines[1].parse().unwrap();
        let mid: u64 = lines[2].parse().unwrap();
        let last: u64 = lines[3].parse().unwrap();
        assert!(first <= mid && mid <= last);
    }
}
