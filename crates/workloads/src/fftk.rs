//! `fft` — radix-2 iterative complex FFT, N = 256, `f64`.
//!
//! MiBench's fft is the floating-point representative. The input signal and
//! twiddle factors are generated on the host and embedded as data (identical
//! bits for both ISAs); the bit-reversal permutation and every butterfly run
//! in simulated code. The simulated arithmetic mirrors the host reference
//! operation-for-operation, so the `f64` results are bit-exact.
//!
//! Output: the integer-scaled signal energy, then the raw bit patterns of
//! two spectrum bins.

use difi_isa::asm::Asm;
use difi_isa::uop::{Cond, FpOp, IntOp, Width};

const N: usize = 512;

fn input_signal() -> Vec<f64> {
    // Two tones plus a deterministic "noise" series.
    (0..N)
        .map(|k| {
            let a = ((k * k * 31 + k * 7) % 97) as f64 / 97.0;
            let tone = (2.0 * std::f64::consts::PI * 5.0 * k as f64 / N as f64).sin()
                + 0.5 * (2.0 * std::f64::consts::PI * 23.0 * k as f64 / N as f64).cos();
            tone + 0.25 * a
        })
        .collect()
}

/// Twiddles laid out in traversal order: for len = 2,4,…,N, for k in
/// 0..len/2 → (cos, -sin).
fn twiddles() -> Vec<f64> {
    let mut t = Vec::new();
    let mut len = 2;
    while len <= N {
        for k in 0..len / 2 {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
            t.push(ang.cos());
            t.push(ang.sin());
        }
        len *= 2;
    }
    t
}

fn bit_reverse_pairs() -> Vec<u32> {
    let bits = N.trailing_zeros();
    let mut pairs = Vec::new();
    for i in 0..N {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        if (j as usize) > i {
            pairs.push(i as u32);
            pairs.push(j);
        }
    }
    pairs
}

/// Emits the kernel.
pub fn emit(a: &mut Asm) {
    let sig = input_signal();
    // Interleaved re/im.
    let mut buf = Vec::with_capacity(2 * N);
    for v in &sig {
        buf.push(*v);
        buf.push(0.0);
    }
    let data_addr = a.data_f64s(&buf);
    let tw_addr = a.data_f64s(&twiddles());
    let pairs = bit_reverse_pairs();
    let pairs_addr = a.data_u32s(&pairs);

    // Bit-reverse permutation: swap complex entries per pair table.
    // r3 = data, r4 = pair ptr, r12 = pair end.
    a.li(3, data_addr as i64);
    a.li(4, pairs_addr as i64);
    a.li(12, (pairs_addr + (pairs.len() * 4) as u64) as i64);
    let swap_loop = a.here_label();
    let swap_done = a.label();
    a.br(Cond::GeU, 4, 12, swap_done);
    a.load(Width::B4, false, 5, 4, 0); // i
    a.load(Width::B4, false, 6, 4, 4); // j
    a.opi(IntOp::Shl, 5, 5, 4); // ×16 bytes per complex
    a.op(IntOp::Add, 5, 3, 5);
    a.opi(IntOp::Shl, 6, 6, 4);
    a.op(IntOp::Add, 6, 3, 6);
    a.fload(0, 5, 0);
    a.fload(1, 5, 8);
    a.fload(2, 6, 0);
    a.fload(3, 6, 8);
    a.fstore(2, 5, 0);
    a.fstore(3, 5, 8);
    a.fstore(0, 6, 0);
    a.fstore(1, 6, 8);
    a.opi(IntOp::Add, 4, 4, 8);
    a.jmp(swap_loop);
    a.bind(swap_done);

    // Butterfly stages.
    // r5 = len, r6 = k, r7 = start, r8 = tw ptr (per stage), r9/r10/r11 temps.
    a.li(5, 2);
    a.li(8, tw_addr as i64);
    let stage_loop = a.here_label();
    let stages_done = a.label();
    a.bri(Cond::GtS, 5, N as i32, stages_done);
    a.li(6, 0); // k
    let k_loop = a.here_label();
    let k_done = a.label();
    a.opi(IntOp::Shr, 9, 5, 1); // half = len/2
    a.br(Cond::GeS, 6, 9, k_done);
    // w = tw[k] for this stage: f4 = w_re, f5 = w_im.
    a.opi(IntOp::Shl, 10, 6, 4);
    a.op(IntOp::Add, 10, 8, 10);
    a.fload(4, 10, 0);
    a.fload(5, 10, 8);
    a.mov(7, 6); // idx = k (start offset walks by len)
    let s_loop = a.here_label();
    let s_done = a.label();
    a.bri(Cond::GeS, 7, N as i32, s_done);
    // u = data[idx]; v = data[idx + half] * w
    a.opi(IntOp::Shl, 10, 7, 4);
    a.op(IntOp::Add, 10, 3, 10); // &data[idx]
    a.opi(IntOp::Shl, 11, 9, 4);
    a.op(IntOp::Add, 11, 10, 11); // &data[idx + half]
    a.fload(0, 10, 0); // u_re
    a.fload(1, 10, 8); // u_im
    a.fload(2, 11, 0); // x_re
    a.fload(3, 11, 8); // x_im
                       // v_re = x_re*w_re - x_im*w_im ; v_im = x_re*w_im + x_im*w_re
                       // (f0 u_re, f1 u_im, f2 x_re, f3 x_im, f4 w_re, f5 w_im, f6 scratch)
    a.falu(FpOp::Mul, 6, 2, 4); // f6 = x_re*w_re
    a.falu(FpOp::Mul, 2, 2, 5); // f2 = x_re*w_im  (x_re consumed)
    a.falu(FpOp::Mul, 5, 3, 5); // f5 = x_im*w_im  (w_im consumed!)
    a.falu(FpOp::Sub, 6, 6, 5); // f6 = v_re
    a.falu(FpOp::Mul, 3, 3, 4); // f3 = x_im*w_re
    a.falu(FpOp::Add, 2, 2, 3); // f2 = v_im
                                // data[idx] = u + v ; data[idx+half] = u - v
    a.falu(FpOp::Add, 3, 0, 6);
    a.fstore(3, 10, 0);
    a.falu(FpOp::Add, 3, 1, 2);
    a.fstore(3, 10, 8);
    a.falu(FpOp::Sub, 3, 0, 6);
    a.fstore(3, 11, 0);
    a.falu(FpOp::Sub, 3, 1, 2);
    a.fstore(3, 11, 8);
    // w_im was consumed: reload both w components.
    a.opi(IntOp::Shl, 10, 6, 4);
    a.op(IntOp::Add, 10, 8, 10);
    a.fload(4, 10, 0);
    a.fload(5, 10, 8);
    a.op(IntOp::Add, 7, 7, 5); // idx += len
    a.jmp(s_loop);
    a.bind(s_done);
    a.opi(IntOp::Add, 6, 6, 1);
    a.jmp(k_loop);
    a.bind(k_done);
    // tw ptr += half * 16
    a.opi(IntOp::Shr, 9, 5, 1);
    a.opi(IntOp::Shl, 9, 9, 4);
    a.op(IntOp::Add, 8, 8, 9);
    a.opi(IntOp::Shl, 5, 5, 1);
    a.jmp(stage_loop);
    a.bind(stages_done);

    // Energy: sum(re² + im²), scaled ×1000, truncated to integer.
    a.fli(0, 0.0);
    a.li(5, 0);
    let e_loop = a.here_label();
    let e_done = a.label();
    a.bri(Cond::GeS, 5, N as i32, e_done);
    a.opi(IntOp::Shl, 10, 5, 4);
    a.op(IntOp::Add, 10, 3, 10);
    a.fload(1, 10, 0);
    a.fload(2, 10, 8);
    a.falu(FpOp::Mul, 1, 1, 1);
    a.falu(FpOp::Mul, 2, 2, 2);
    a.falu(FpOp::Add, 1, 1, 2);
    a.falu(FpOp::Add, 0, 0, 1);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(e_loop);
    a.bind(e_done);
    a.fli(1, 1000.0);
    a.falu(FpOp::Mul, 0, 0, 1);
    a.cvt_fi(4, 0);
    a.write_int(4);
    // Raw bits of bins 5 and 23 (real parts).
    for bin in [5i32, 23] {
        a.fload(1, 3, bin * 16);
        a.fbits(4, 1);
        a.write_int(4);
    }
    a.exit(0);
}

/// Host reference output (mirrors the simulated operation order exactly).
pub fn reference() -> Vec<u8> {
    let sig = input_signal();
    let mut re: Vec<f64> = sig.clone();
    let mut im: Vec<f64> = vec![0.0; N];
    // Bit-reverse (same pair table).
    let pairs = bit_reverse_pairs();
    for p in pairs.chunks_exact(2) {
        re.swap(p[0] as usize, p[1] as usize);
        im.swap(p[0] as usize, p[1] as usize);
    }
    let tw = twiddles();
    let mut tw_base = 0usize;
    let mut len = 2usize;
    while len <= N {
        let half = len / 2;
        for k in 0..half {
            let w_re = tw[tw_base + 2 * k];
            let w_im = tw[tw_base + 2 * k + 1];
            let mut idx = k;
            while idx < N {
                let (u_re, u_im) = (re[idx], im[idx]);
                let (x_re, x_im) = (re[idx + half], im[idx + half]);
                let v_re = x_re * w_re - x_im * w_im;
                let v_im = x_re * w_im + x_im * w_re;
                re[idx] = u_re + v_re;
                im[idx] = u_im + v_im;
                re[idx + half] = u_re - v_re;
                im[idx + half] = u_im - v_im;
                idx += len;
            }
        }
        tw_base += 2 * half;
        len *= 2;
    }
    let mut energy = 0.0f64;
    for i in 0..N {
        energy += re[i] * re[i] + im[i] * im[i];
    }
    let scaled = (energy * 1000.0).trunc() as i64 as u64;
    let mut out = format!("{scaled}\n").into_bytes();
    for bin in [5usize, 23] {
        out.extend_from_slice(format!("{}\n", re[bin].to_bits()).as_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reference_finds_the_tones() {
        // Bins 5 and 23 carry the planted tones: their magnitude should
        // dominate a quiet bin.
        let out = String::from_utf8(super::reference()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        let energy: u64 = lines[0].parse().unwrap();
        assert!(energy > 1_000_000, "signal energy must be large ({energy})");
        let bin5 = f64::from_bits(lines[1].parse::<u64>().unwrap());
        assert!(bin5.is_finite());
    }

    #[test]
    fn twiddle_layout_is_complete() {
        // Σ len/2 for len = 2,4,…,N equals N−1 complex twiddles.
        assert_eq!(super::twiddles().len(), 2 * (super::N - 1));
    }
}
