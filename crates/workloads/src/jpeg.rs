//! `cjpeg` / `djpeg` — JPEG-style compression and decompression.
//!
//! The MiBench JPEG pair is dominated by the 8×8 DCT/IDCT (integer
//! multiply-accumulate), quantization, zigzag reordering, and run-length
//! coding. Both kernels share an 8×8 fixed-point matrix-multiply
//! *subroutine* (real call/return traffic):
//!
//! * `cjpeg`: for each 8×8 block of a 32×32 image — level-shift, DCT via
//!   `C·B·Cᵀ`, quantize, zigzag, RLE-encode into an output stream.
//! * `djpeg`: from host-prepared quantized coefficients — dezigzag,
//!   dequantize, IDCT via `Cᵀ·X·C`, level-unshift with clamping, rebuild
//!   the image.
//!
//! Outputs: stream length + weighted checksum (cjpeg); image checksum
//! (djpeg).

use crate::data;
use difi_isa::asm::Asm;
use difi_isa::uop::{Cond, IntOp, Width};

const DIM: usize = 48;
const BLOCKS: usize = (DIM / 8) * (DIM / 8);
const FX: i64 = 1 << 12;
const SEED_C: u64 = 0xC1AE_0006;
const SEED_D: u64 = 0xD1AE_0007;

/// The 8×8 DCT basis, scaled by `FX`.
fn dct_matrix() -> Vec<i32> {
    let mut c = vec![0i32; 64];
    for (i, row) in c.chunks_exact_mut(8).enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            let scale = if i == 0 {
                (1.0f64 / 8.0).sqrt()
            } else {
                (2.0f64 / 8.0).sqrt()
            };
            let val =
                scale * ((2.0 * j as f64 + 1.0) * i as f64 * std::f64::consts::PI / 16.0).cos();
            *v = (val * FX as f64).round() as i32;
        }
    }
    c
}

fn transpose(m: &[i32]) -> Vec<i32> {
    let mut t = vec![0i32; 64];
    for i in 0..8 {
        for j in 0..8 {
            t[j * 8 + i] = m[i * 8 + j];
        }
    }
    t
}

/// JPEG luminance quantization table (quality ~50).
const QTABLE: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order.
const ZIGZAG: [i32; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Host 8×8 fixed-point matmul: `out = (a · b) >> 12` (i64 accumulate).
fn mat8(a: &[i64; 64], b: &[i64; 64]) -> [i64; 64] {
    let mut out = [0i64; 64];
    for i in 0..8 {
        for j in 0..8 {
            let mut acc = 0i64;
            for (k, bk) in b.iter().skip(j).step_by(8).enumerate() {
                acc += a[i * 8 + k] * bk;
            }
            out[i * 8 + j] = acc >> 12;
        }
    }
    out
}

fn to64(v: &[i32]) -> [i64; 64] {
    let mut o = [0i64; 64];
    for (d, s) in o.iter_mut().zip(v) {
        *d = *s as i64;
    }
    o
}

/// Host cjpeg: returns the RLE stream.
fn cjpeg_stream(image: &[u8]) -> Vec<u8> {
    let c = to64(&dct_matrix());
    let ct = to64(&transpose(&dct_matrix()));
    let mut stream = Vec::new();
    for by in 0..DIM / 8 {
        for bx in 0..DIM / 8 {
            let mut block = [0i64; 64];
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] = image[(by * 8 + y) * DIM + bx * 8 + x] as i64 - 128;
                }
            }
            let tmp = mat8(&c, &block);
            let dct = mat8(&tmp, &ct);
            // Quantize + zigzag + RLE.
            let mut run = 0u8;
            for &zz in ZIGZAG.iter() {
                let q = dct[zz as usize]
                    / QTABLE[ZIGZAG
                        .iter()
                        .position(|&z| z == zz)
                        .expect("zig-zag order is a permutation")] as i64;
                if q == 0 {
                    run = run.saturating_add(1);
                } else {
                    stream.push(run);
                    stream.extend_from_slice(&(q as i16).to_le_bytes());
                    run = 0;
                }
            }
            stream.push(0xFF); // end-of-block marker
            stream.push(run);
        }
    }
    stream
}

/// Emits the shared 8×8 fixed-point matmul subroutine at the current
/// position; call with r0 = A, r1 = B, r2 = OUT (all 64×i32, row-major).
/// Clobbers r5..r11. Returns its label.
fn emit_mat8(a: &mut Asm) -> difi_isa::asm::Label {
    let entry = a.here_label();
    // r5 = i, r6 = j, r7 = k, r8 = acc, r9/r10/r11 = temps.
    a.li(5, 0);
    let iloop = a.here_label();
    let idone = a.label();
    a.bri(Cond::GeS, 5, 8, idone);
    a.li(6, 0);
    let jloop = a.here_label();
    let jdone = a.label();
    a.bri(Cond::GeS, 6, 8, jdone);
    a.li(8, 0);
    a.li(7, 0);
    let kloop = a.here_label();
    let kdone = a.label();
    a.bri(Cond::GeS, 7, 8, kdone);
    // acc += A[i*8+k] * B[k*8+j]
    a.opi(IntOp::Shl, 9, 5, 3);
    a.op(IntOp::Add, 9, 9, 7);
    a.opi(IntOp::Shl, 9, 9, 2);
    a.op(IntOp::Add, 9, 0, 9);
    a.load(Width::B4, true, 9, 9, 0);
    a.opi(IntOp::Shl, 10, 7, 3);
    a.op(IntOp::Add, 10, 10, 6);
    a.opi(IntOp::Shl, 10, 10, 2);
    a.op(IntOp::Add, 10, 1, 10);
    a.load(Width::B4, true, 10, 10, 0);
    a.op(IntOp::Mul, 9, 9, 10);
    a.op(IntOp::Add, 8, 8, 9);
    a.opi(IntOp::Add, 7, 7, 1);
    a.jmp(kloop);
    a.bind(kdone);
    a.opi(IntOp::Sar, 8, 8, 12);
    a.opi(IntOp::Shl, 9, 5, 3);
    a.op(IntOp::Add, 9, 9, 6);
    a.opi(IntOp::Shl, 9, 9, 2);
    a.op(IntOp::Add, 9, 2, 9);
    a.store(Width::B4, 8, 9, 0);
    a.opi(IntOp::Add, 6, 6, 1);
    a.jmp(jloop);
    a.bind(jdone);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(iloop);
    a.bind(idone);
    a.ret();
    entry
}

/// Emits the cjpeg kernel.
pub fn emit_cjpeg(a: &mut Asm) {
    let image = data::image(SEED_C, DIM, DIM);
    let img_addr = a.data_bytes(&image);
    let c_addr = a.data_u32s(&dct_matrix().iter().map(|&v| v as u32).collect::<Vec<_>>());
    let ct_addr = a.data_u32s(
        &transpose(&dct_matrix())
            .iter()
            .map(|&v| v as u32)
            .collect::<Vec<_>>(),
    );
    let q_addr = a.data_u32s(&QTABLE.map(|v| v as u32));
    let zz_addr = a.data_u32s(&ZIGZAG.map(|v| v as u32));
    let block_addr = a.bss(64 * 4, 8);
    let tmp_addr = a.bss(64 * 4, 8);
    let dct_addr = a.bss(64 * 4, 8);
    let stream_addr = a.bss(8192, 8);
    let sp_addr = a.bss(8, 8); // stream write index
    let blk_addr = a.bss(8, 8); // block counter

    let over_mat8 = a.label();
    a.jmp(over_mat8);
    let mat8_label = emit_mat8(a);
    a.bind(over_mat8);

    a.li(10, 0);
    a.li(11, sp_addr as i64);
    a.store(Width::B8, 10, 11, 0);
    a.li(11, blk_addr as i64);
    a.store(Width::B8, 10, 11, 0);

    let block_loop = a.here_label();
    let blocks_done = a.label();
    a.li(11, blk_addr as i64);
    a.load(Width::B8, false, 12, 11, 0); // blk
    a.bri(Cond::GeS, 12, BLOCKS as i32, blocks_done);

    // by = blk / (DIM/8), bx = blk % (DIM/8).
    a.li(2, (DIM / 8) as i64);
    a.op(IntOp::DivU, 3, 12, 2); // by
    a.op(IntOp::RemU, 4, 12, 2); // bx
                                 // Load the block: block[y*8+x] = img[(by*8+y)*DIM + bx*8+x] - 128.
    a.li(5, 0); // y
    let ly = a.here_label();
    let ly_done = a.label();
    a.bri(Cond::GeS, 5, 8, ly_done);
    a.li(6, 0); // x
    let lx = a.here_label();
    let lx_done = a.label();
    a.bri(Cond::GeS, 6, 8, lx_done);
    a.opi(IntOp::Shl, 7, 3, 3); // by*8
    a.op(IntOp::Add, 7, 7, 5); // +y
    a.opi(IntOp::Mul, 7, 7, DIM as i32);
    a.opi(IntOp::Shl, 8, 4, 3); // bx*8
    a.op(IntOp::Add, 7, 7, 8);
    a.op(IntOp::Add, 7, 7, 6); // +x
    a.li(8, img_addr as i64);
    a.op(IntOp::Add, 7, 8, 7);
    a.load(Width::B1, false, 7, 7, 0);
    a.opi(IntOp::Sub, 7, 7, 128);
    a.opi(IntOp::Shl, 8, 5, 3);
    a.op(IntOp::Add, 8, 8, 6);
    a.opi(IntOp::Shl, 8, 8, 2);
    a.li(9, block_addr as i64);
    a.op(IntOp::Add, 8, 9, 8);
    a.store(Width::B4, 7, 8, 0);
    a.opi(IntOp::Add, 6, 6, 1);
    a.jmp(lx);
    a.bind(lx_done);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(ly);
    a.bind(ly_done);

    // tmp = C·block ; dct = tmp·Cᵀ.
    a.li(0, c_addr as i64);
    a.li(1, block_addr as i64);
    a.li(2, tmp_addr as i64);
    a.call(mat8_label);
    a.li(0, tmp_addr as i64);
    a.li(1, ct_addr as i64);
    a.li(2, dct_addr as i64);
    a.call(mat8_label);

    // Quantize + zigzag + RLE into the stream.
    a.li(11, sp_addr as i64);
    a.load(Width::B8, false, 4, 11, 0); // sp
    a.li(3, 0); // run
    a.li(5, 0); // t (scan index)
    let zz = a.here_label();
    let zz_done = a.label();
    let nonzero = a.label();
    let next_t = a.label();
    a.bri(Cond::GeS, 5, 64, zz_done);
    a.opi(IntOp::Shl, 6, 5, 2);
    a.li(7, zz_addr as i64);
    a.op(IntOp::Add, 6, 7, 6);
    a.load(Width::B4, false, 6, 6, 0); // zz[t]
    a.opi(IntOp::Shl, 6, 6, 2);
    a.li(7, dct_addr as i64);
    a.op(IntOp::Add, 6, 7, 6);
    a.load(Width::B4, true, 6, 6, 0); // coeff
    a.opi(IntOp::Shl, 7, 5, 2);
    a.li(8, q_addr as i64);
    a.op(IntOp::Add, 7, 8, 7);
    a.load(Width::B4, false, 7, 7, 0); // q[t]
    a.op(IntOp::DivS, 6, 6, 7); // coeff / q
    a.bri(Cond::Ne, 6, 0, nonzero);
    a.opi(IntOp::Add, 3, 3, 1);
    a.jmp(next_t);
    a.bind(nonzero);
    // stream[sp++] = run; stream[sp..sp+2] = coeff as i16.
    a.li(8, stream_addr as i64);
    a.op(IntOp::Add, 8, 8, 4);
    a.store(Width::B1, 3, 8, 0);
    a.store(Width::B2, 6, 8, 1);
    a.opi(IntOp::Add, 4, 4, 3);
    a.li(3, 0);
    a.bind(next_t);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(zz);
    a.bind(zz_done);
    // End-of-block marker 0xFF + trailing run.
    a.li(8, stream_addr as i64);
    a.op(IntOp::Add, 8, 8, 4);
    a.li(7, 0xFF);
    a.store(Width::B1, 7, 8, 0);
    a.store(Width::B1, 3, 8, 1);
    a.opi(IntOp::Add, 4, 4, 2);
    a.li(11, sp_addr as i64);
    a.store(Width::B8, 4, 11, 0);

    a.li(11, blk_addr as i64);
    a.load(Width::B8, false, 12, 11, 0);
    a.opi(IntOp::Add, 12, 12, 1);
    a.store(Width::B8, 12, 11, 0);
    a.jmp(block_loop);
    a.bind(blocks_done);

    // Output: stream length + weighted checksum.
    a.li(11, sp_addr as i64);
    a.load(Width::B8, false, 4, 11, 0);
    a.write_int(4);
    a.li(3, stream_addr as i64);
    a.li(5, 0);
    a.li(6, 0);
    let ck = a.here_label();
    let ck_done = a.label();
    a.br(Cond::GeS, 5, 4, ck_done);
    a.op(IntOp::Add, 10, 3, 5);
    a.load(Width::B1, false, 11, 10, 0);
    a.opi(IntOp::And, 2, 5, 15);
    a.opi(IntOp::Add, 2, 2, 1);
    a.op(IntOp::Mul, 11, 11, 2);
    a.op(IntOp::Add, 6, 6, 11);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(ck);
    a.bind(ck_done);
    a.write_int(6);
    a.exit(0);
}

/// Host cjpeg reference output.
pub fn reference_cjpeg() -> Vec<u8> {
    let stream = cjpeg_stream(&data::image(SEED_C, DIM, DIM));
    let mut weighted: u64 = 0;
    for (i, &b) in stream.iter().enumerate() {
        weighted = weighted.wrapping_add(((i as u64 & 15) + 1) * b as u64);
    }
    format!("{}\n{}\n", stream.len(), weighted).into_bytes()
}

/// Host-side coefficient preparation for djpeg (quantized, zigzag order,
/// i32 per entry, per block).
fn djpeg_coeffs() -> Vec<i32> {
    let image = data::image(SEED_D, DIM, DIM);
    let c = to64(&dct_matrix());
    let ct = to64(&transpose(&dct_matrix()));
    let mut coeffs = Vec::new();
    for by in 0..DIM / 8 {
        for bx in 0..DIM / 8 {
            let mut block = [0i64; 64];
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] = image[(by * 8 + y) * DIM + bx * 8 + x] as i64 - 128;
                }
            }
            let tmp = mat8(&c, &block);
            let dct = mat8(&tmp, &ct);
            for t in 0..64 {
                coeffs.push((dct[ZIGZAG[t] as usize] / QTABLE[t] as i64) as i32);
            }
        }
    }
    coeffs
}

/// Emits the djpeg kernel.
pub fn emit_djpeg(a: &mut Asm) {
    let coeffs = djpeg_coeffs();
    let co_addr = a.data_u32s(&coeffs.iter().map(|&v| v as u32).collect::<Vec<_>>());
    let c_addr = a.data_u32s(&dct_matrix().iter().map(|&v| v as u32).collect::<Vec<_>>());
    let ct_addr = a.data_u32s(
        &transpose(&dct_matrix())
            .iter()
            .map(|&v| v as u32)
            .collect::<Vec<_>>(),
    );
    let q_addr = a.data_u32s(&QTABLE.map(|v| v as u32));
    let zz_addr = a.data_u32s(&ZIGZAG.map(|v| v as u32));
    let x_addr = a.bss(64 * 4, 8);
    let tmp_addr = a.bss(64 * 4, 8);
    let out_addr = a.bss(64 * 4, 8);
    let img_addr = a.bss((DIM * DIM) as u64, 8);
    let blk_addr = a.bss(8, 8);

    let over_mat8 = a.label();
    a.jmp(over_mat8);
    let mat8_label = emit_mat8(a);
    a.bind(over_mat8);

    a.li(10, 0);
    a.li(11, blk_addr as i64);
    a.store(Width::B8, 10, 11, 0);

    let block_loop = a.here_label();
    let blocks_done = a.label();
    a.li(11, blk_addr as i64);
    a.load(Width::B8, false, 12, 11, 0);
    a.bri(Cond::GeS, 12, BLOCKS as i32, blocks_done);

    // Dezigzag + dequantize: X[zz[t]] = co[blk*64 + t] * q[t].
    a.li(5, 0); // t
    let dq = a.here_label();
    let dq_done = a.label();
    a.bri(Cond::GeS, 5, 64, dq_done);
    a.opi(IntOp::Shl, 6, 12, 6);
    a.op(IntOp::Add, 6, 6, 5);
    a.opi(IntOp::Shl, 6, 6, 2);
    a.li(7, co_addr as i64);
    a.op(IntOp::Add, 6, 7, 6);
    a.load(Width::B4, true, 6, 6, 0); // coeff
    a.opi(IntOp::Shl, 7, 5, 2);
    a.li(8, q_addr as i64);
    a.op(IntOp::Add, 7, 8, 7);
    a.load(Width::B4, false, 7, 7, 0);
    a.op(IntOp::Mul, 6, 6, 7); // dequantized
    a.opi(IntOp::Shl, 7, 5, 2);
    a.li(8, zz_addr as i64);
    a.op(IntOp::Add, 7, 8, 7);
    a.load(Width::B4, false, 7, 7, 0); // zz[t]
    a.opi(IntOp::Shl, 7, 7, 2);
    a.li(8, x_addr as i64);
    a.op(IntOp::Add, 7, 8, 7);
    a.store(Width::B4, 6, 7, 0);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(dq);
    a.bind(dq_done);

    // IDCT: tmp = Cᵀ·X ; out = tmp·C.
    a.li(0, ct_addr as i64);
    a.li(1, x_addr as i64);
    a.li(2, tmp_addr as i64);
    a.call(mat8_label);
    a.li(0, tmp_addr as i64);
    a.li(1, c_addr as i64);
    a.li(2, out_addr as i64);
    a.call(mat8_label);

    // Level-unshift with clamping into the image.
    a.li(2, (DIM / 8) as i64);
    a.op(IntOp::DivU, 3, 12, 2); // by
    a.op(IntOp::RemU, 4, 12, 2); // bx
    a.li(5, 0); // y
    let sy = a.here_label();
    let sy_done = a.label();
    a.bri(Cond::GeS, 5, 8, sy_done);
    a.li(6, 0); // x
    let sx = a.here_label();
    let sx_done = a.label();
    a.bri(Cond::GeS, 6, 8, sx_done);
    a.opi(IntOp::Shl, 7, 5, 3);
    a.op(IntOp::Add, 7, 7, 6);
    a.opi(IntOp::Shl, 7, 7, 2);
    a.li(8, out_addr as i64);
    a.op(IntOp::Add, 7, 8, 7);
    a.load(Width::B4, true, 7, 7, 0);
    a.opi(IntOp::Add, 7, 7, 128);
    // clamp to 0..255
    let not_low = a.label();
    let not_high = a.label();
    a.bri(Cond::GeS, 7, 0, not_low);
    a.li(7, 0);
    a.bind(not_low);
    a.bri(Cond::LeS, 7, 255, not_high);
    a.li(7, 255);
    a.bind(not_high);
    a.opi(IntOp::Shl, 8, 3, 3);
    a.op(IntOp::Add, 8, 8, 5);
    a.opi(IntOp::Mul, 8, 8, DIM as i32);
    a.opi(IntOp::Shl, 9, 4, 3);
    a.op(IntOp::Add, 8, 8, 9);
    a.op(IntOp::Add, 8, 8, 6);
    a.li(9, img_addr as i64);
    a.op(IntOp::Add, 8, 9, 8);
    a.store(Width::B1, 7, 8, 0);
    a.opi(IntOp::Add, 6, 6, 1);
    a.jmp(sx);
    a.bind(sx_done);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(sy);
    a.bind(sy_done);

    a.li(11, blk_addr as i64);
    a.load(Width::B8, false, 12, 11, 0);
    a.opi(IntOp::Add, 12, 12, 1);
    a.store(Width::B8, 12, 11, 0);
    a.jmp(block_loop);
    a.bind(blocks_done);

    // Image checksum (weighted + plain).
    a.li(3, img_addr as i64);
    a.li(5, 0);
    a.li(6, 0);
    a.li(7, 0);
    let ck = a.here_label();
    let ck_done = a.label();
    a.bri(Cond::GeS, 5, (DIM * DIM) as i32, ck_done);
    a.op(IntOp::Add, 10, 3, 5);
    a.load(Width::B1, false, 11, 10, 0);
    a.op(IntOp::Add, 7, 7, 11);
    a.opi(IntOp::And, 2, 5, 15);
    a.opi(IntOp::Add, 2, 2, 1);
    a.op(IntOp::Mul, 11, 11, 2);
    a.op(IntOp::Add, 6, 6, 11);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(ck);
    a.bind(ck_done);
    a.write_int(6);
    a.write_int(7);
    a.exit(0);
}

/// Host djpeg reference output.
pub fn reference_djpeg() -> Vec<u8> {
    let coeffs = djpeg_coeffs();
    let c = to64(&dct_matrix());
    let ct = to64(&transpose(&dct_matrix()));
    let mut img = vec![0u8; DIM * DIM];
    for blk in 0..BLOCKS {
        let mut x = [0i64; 64];
        for t in 0..64 {
            x[ZIGZAG[t] as usize] = coeffs[blk * 64 + t] as i64 * QTABLE[t] as i64;
        }
        let tmp = mat8(&ct, &x);
        let out = mat8(&tmp, &c);
        let (by, bx) = (blk / (DIM / 8), blk % (DIM / 8));
        for y in 0..8 {
            for xx in 0..8 {
                let v = (out[y * 8 + xx] + 128).clamp(0, 255) as u8;
                img[(by * 8 + y) * DIM + bx * 8 + xx] = v;
            }
        }
    }
    let mut weighted: u64 = 0;
    let mut plain: u64 = 0;
    for (i, &v) in img.iter().enumerate() {
        weighted += ((i as u64 & 15) + 1) * v as u64;
        plain += v as u64;
    }
    format!("{weighted}\n{plain}\n").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_matrix_is_orthonormal_in_fixed_point() {
        // C · Cᵀ ≈ FX²-scaled identity: mat8(C, Cᵀ) >> 12 ≈ FX on the
        // diagonal, ~0 elsewhere.
        let c = to64(&dct_matrix());
        let ct = to64(&transpose(&dct_matrix()));
        let prod = mat8(&c, &ct);
        for i in 0..8 {
            for j in 0..8 {
                let v = prod[i * 8 + j];
                if i == j {
                    assert!((v - FX).abs() < 80, "diag {v}");
                } else {
                    assert!(v.abs() < 80, "off-diag {v}");
                }
            }
        }
    }

    #[test]
    fn cjpeg_stream_is_compressive() {
        let s = cjpeg_stream(&data::image(SEED_C, DIM, DIM));
        assert!(s.len() > BLOCKS * 2, "markers present");
        assert!(s.len() < DIM * DIM * 3, "smaller than raw-ish");
    }

    #[test]
    fn rle_stream_roundtrip_header() {
        // Every block ends with 0xFF marker; count them.
        let s = cjpeg_stream(&data::image(SEED_C, DIM, DIM));
        let markers = s.iter().filter(|&&b| b == 0xFF).count();
        assert!(markers >= BLOCKS);
    }
}
