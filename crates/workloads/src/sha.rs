//! `sha` — SHA-1 over a 4 KiB message.
//!
//! MiBench's sha is dominated by 32-bit rotates, xors and adds. The message
//! is padded at build time; the kernel runs the full 80-round compression
//! for each 64-byte block, with the four round families written out
//! separately (as real SHA-1 code is), giving the kernel a realistic L1I
//! footprint.
//!
//! Output: the five 32-bit digest words.

use crate::data;
use difi_isa::asm::Asm;
use difi_isa::uop::{Cond, IntOp, Width};

const MSG_LEN: usize = 8192;
const SEED: u64 = 0x5A11_0003;

fn padded_message() -> Vec<u8> {
    let mut m = data::bytes(SEED, MSG_LEN);
    let bitlen = (MSG_LEN as u64) * 8;
    m.push(0x80);
    while m.len() % 64 != 56 {
        m.push(0);
    }
    m.extend_from_slice(&bitlen.to_be_bytes());
    m
}

/// Emits the kernel.
pub fn emit(a: &mut Asm) {
    let msg = padded_message();
    let nblocks = msg.len() / 64;
    let msg_addr = a.data_bytes(&msg);
    let w_addr = a.bss(80 * 4, 8);
    let h_addr = a.bss(5 * 4, 8);

    // Initialize H.
    a.li(11, h_addr as i64);
    for (i, h) in [
        0x67452301u32,
        0xEFCDAB89,
        0x98BADCFE,
        0x10325476,
        0xC3D2E1F0,
    ]
    .iter()
    .enumerate()
    {
        a.li(10, *h as i64);
        a.store(Width::B4, 10, 11, (i * 4) as i32);
    }

    // r3 = W, r4 = block base, r12 = end of message.
    a.li(3, w_addr as i64);
    a.li(4, msg_addr as i64);
    a.li(12, (msg_addr + (nblocks * 64) as u64) as i64);

    let block_loop = a.here_label();
    let blocks_done = a.label();
    a.br(Cond::GeU, 4, 12, blocks_done);

    // W[0..16]: big-endian words assembled byte-wise.
    a.li(5, 0); // t
    let wload = a.here_label();
    let wload_done = a.label();
    a.bri(Cond::GeS, 5, 16, wload_done);
    a.opi(IntOp::Shl, 10, 5, 2);
    a.op(IntOp::Add, 10, 4, 10); // &msg[base + 4t]
    a.load(Width::B1, false, 6, 10, 0);
    a.opi(IntOp::Shl, 6, 6, 24);
    a.load(Width::B1, false, 7, 10, 1);
    a.opi(IntOp::Shl, 7, 7, 16);
    a.op(IntOp::Or, 6, 6, 7);
    a.load(Width::B1, false, 7, 10, 2);
    a.opi(IntOp::Shl, 7, 7, 8);
    a.op(IntOp::Or, 6, 6, 7);
    a.load(Width::B1, false, 7, 10, 3);
    a.op(IntOp::Or, 6, 6, 7);
    a.opi(IntOp::Shl, 10, 5, 2);
    a.op(IntOp::Add, 10, 3, 10);
    a.store(Width::B4, 6, 10, 0);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(wload);
    a.bind(wload_done);

    // W[16..80]: rotl1(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16]).
    let wexp = a.here_label();
    let wexp_done = a.label();
    a.bri(Cond::GeS, 5, 80, wexp_done);
    a.opi(IntOp::Shl, 10, 5, 2);
    a.op(IntOp::Add, 10, 3, 10); // &W[t]
    a.load(Width::B4, false, 6, 10, -12);
    a.load(Width::B4, false, 7, 10, -32);
    a.op32(IntOp::Xor, 6, 6, 7);
    a.load(Width::B4, false, 7, 10, -56);
    a.op32(IntOp::Xor, 6, 6, 7);
    a.load(Width::B4, false, 7, 10, -64);
    a.op32(IntOp::Xor, 6, 6, 7);
    a.opi32(IntOp::Shl, 7, 6, 1);
    a.opi32(IntOp::Shr, 6, 6, 31);
    a.op32(IntOp::Or, 6, 6, 7);
    a.store(Width::B4, 6, 10, 0);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(wexp);
    a.bind(wexp_done);

    // a..e ← H, in r5..r9.
    a.li(11, h_addr as i64);
    a.load(Width::B4, false, 5, 11, 0);
    a.load(Width::B4, false, 6, 11, 4);
    a.load(Width::B4, false, 7, 11, 8);
    a.load(Width::B4, false, 8, 11, 12);
    a.load(Width::B4, false, 9, 11, 16);

    // Four round families of 20: f and k differ; bodies written separately.
    for family in 0..4u32 {
        let k = [0x5A827999u32, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6][family as usize];
        let t_begin = (family * 20) as i64;
        let t_end = t_begin + 20;
        a.li(10, t_begin);
        let round = a.here_label();
        let round_done = a.label();
        a.bri(Cond::GeS, 10, t_end as i32, round_done);
        // r2 = f(b, c, d)
        match family {
            0 => {
                // f = (b & c) | (~b & d)
                a.op32(IntOp::And, 2, 6, 7);
                a.li(1, -1);
                a.op32(IntOp::Xor, 1, 6, 1);
                a.op32(IntOp::And, 1, 1, 8);
                a.op32(IntOp::Or, 2, 2, 1);
            }
            1 | 3 => {
                // f = b ^ c ^ d
                a.op32(IntOp::Xor, 2, 6, 7);
                a.op32(IntOp::Xor, 2, 2, 8);
            }
            _ => {
                // f = (b & c) | (b & d) | (c & d)
                a.op32(IntOp::And, 2, 6, 7);
                a.op32(IntOp::And, 1, 6, 8);
                a.op32(IntOp::Or, 2, 2, 1);
                a.op32(IntOp::And, 1, 7, 8);
                a.op32(IntOp::Or, 2, 2, 1);
            }
        }
        // tmp = rotl5(a) + f + e + k + W[t]
        a.opi32(IntOp::Shl, 1, 5, 5);
        a.opi32(IntOp::Shr, 0, 5, 27);
        a.op32(IntOp::Or, 1, 1, 0);
        a.op32(IntOp::Add, 2, 2, 1);
        a.op32(IntOp::Add, 2, 2, 9);
        a.li(1, k as i64);
        a.op32(IntOp::Add, 2, 2, 1);
        a.opi(IntOp::Shl, 1, 10, 2);
        a.op(IntOp::Add, 1, 3, 1);
        a.load(Width::B4, false, 1, 1, 0);
        a.op32(IntOp::Add, 2, 2, 1);
        // e = d; d = c; c = rotl30(b); b = a; a = tmp.
        a.mov(9, 8);
        a.mov(8, 7);
        a.opi32(IntOp::Shl, 7, 6, 30);
        a.opi32(IntOp::Shr, 1, 6, 2);
        a.op32(IntOp::Or, 7, 7, 1);
        a.mov(6, 5);
        a.mov(5, 2);
        a.opi(IntOp::Add, 10, 10, 1);
        a.jmp(round);
        a.bind(round_done);
    }

    // H += a..e.
    a.li(11, h_addr as i64);
    for (i, reg) in [5u8, 6, 7, 8, 9].iter().enumerate() {
        a.load(Width::B4, false, 10, 11, (i * 4) as i32);
        a.op32(IntOp::Add, 10, 10, *reg);
        a.store(Width::B4, 10, 11, (i * 4) as i32);
    }

    a.opi(IntOp::Add, 4, 4, 64);
    a.jmp(block_loop);
    a.bind(blocks_done);

    a.li(11, h_addr as i64);
    for i in 0..5 {
        a.load(Width::B4, false, 4, 11, i * 4);
        a.write_int(4);
        a.li(11, h_addr as i64); // write_int clobbers nothing above r2, but r11 survives; reload for clarity on all ISAs
    }
    a.exit(0);
}

/// Host reference output.
pub fn reference() -> Vec<u8> {
    let msg = padded_message();
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for t in 0..16 {
            w[t] = u32::from_be_bytes([
                block[4 * t],
                block[4 * t + 1],
                block[4 * t + 2],
                block[4 * t + 3],
            ]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t / 20 {
                0 => ((b & c) | (!b & d), 0x5A827999),
                1 => (b ^ c ^ d, 0x6ED9EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6u32),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut out = Vec::new();
    for v in h {
        out.extend_from_slice(format!("{v}\n").as_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reference_digest_is_stable() {
        let a = super::reference();
        let b = super::reference();
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&c| c == b'\n').count(), 5);
    }
}
