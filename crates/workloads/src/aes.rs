//! `caes` — AES-128 ECB encryption of 2 KiB.
//!
//! MiBench's AES is dominated by table lookups (S-box) and byte-level
//! arithmetic (xtime in MixColumns). Round keys are expanded at build time
//! (key schedule is a one-off in the real benchmark too) and embedded as
//! data; the per-block work — AddRoundKey, 9 full rounds, final round — runs
//! in simulated code.
//!
//! Output: two checksums over the ciphertext, then the first ciphertext
//! word.

use crate::data;
use difi_isa::asm::Asm;
use difi_isa::uop::{Cond, IntOp, Width};

const BLOCKS: usize = 128; // 2 KiB
const SEED: u64 = 0xAE50_0005;
const KEY: [u8; 16] = [
    0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C,
];

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// ShiftRows source index per destination byte (column-major state layout:
/// state[4*col + row]).
const SHIFT_MAP: [u8; 16] = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (0x1B * (x >> 7))
}

/// Expands the 128-bit key into 11 round keys (176 bytes).
fn round_keys() -> Vec<u8> {
    let mut w: Vec<[u8; 4]> = KEY
        .chunks_exact(4)
        .map(|c| [c[0], c[1], c[2], c[3]])
        .collect();
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= rcon;
            rcon = xtime(rcon);
        }
        let prev = w[i - 4];
        w.push([
            prev[0] ^ t[0],
            prev[1] ^ t[1],
            prev[2] ^ t[2],
            prev[3] ^ t[3],
        ]);
    }
    w.into_iter().flatten().collect()
}

/// Host-side AES-128 block encryption (the reference).
fn encrypt_block(block: &mut [u8; 16], rk: &[u8]) {
    let add_rk = |s: &mut [u8; 16], r: usize| {
        for i in 0..16 {
            s[i] ^= rk[16 * r + i];
        }
    };
    let sub_shift = |s: &[u8; 16]| {
        let mut t = [0u8; 16];
        for i in 0..16 {
            t[i] = SBOX[s[SHIFT_MAP[i] as usize] as usize];
        }
        t
    };
    let mix = |s: &mut [u8; 16]| {
        for c in 0..4 {
            let a0 = s[4 * c];
            let a1 = s[4 * c + 1];
            let a2 = s[4 * c + 2];
            let a3 = s[4 * c + 3];
            s[4 * c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
            s[4 * c + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
            s[4 * c + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
            s[4 * c + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
        }
    };
    add_rk(block, 0);
    for r in 1..10 {
        *block = sub_shift(block);
        mix(block);
        add_rk(block, r);
    }
    *block = sub_shift(block);
    add_rk(block, 10);
}

/// Emits the kernel.
pub fn emit(a: &mut Asm) {
    let plain = data::bytes(SEED, BLOCKS * 16);
    let plain_addr = a.data_bytes(&plain);
    let sbox_addr = a.data_bytes(&SBOX);
    let shift_addr = a.data_bytes(&SHIFT_MAP);
    let rk_addr = a.data_bytes(&round_keys());
    let out_addr = a.bss((BLOCKS * 16) as u64, 8);
    let state = a.bss(16, 8);
    let tmp_state = a.bss(16, 8);
    let end_slot = a.bss(8, 8);

    // r3 = in ptr, r4 = out ptr; the end bound lives in memory because the
    // MixColumns helper needs every scratch register.
    a.li(3, plain_addr as i64);
    a.li(4, out_addr as i64);
    a.li(10, (plain_addr + (BLOCKS * 16) as u64) as i64);
    a.li(11, end_slot as i64);
    a.store(Width::B8, 10, 11, 0);

    let block_loop = a.here_label();
    let blocks_done = a.label();
    a.li(11, end_slot as i64);
    a.load(Width::B8, false, 10, 11, 0);
    a.br(Cond::GeU, 3, 10, blocks_done);

    // state = in ^ rk[0]
    a.li(5, state as i64);
    a.li(6, rk_addr as i64);
    a.li(7, 0);
    let ark0 = a.here_label();
    let ark0_done = a.label();
    a.bri(Cond::GeS, 7, 16, ark0_done);
    a.op(IntOp::Add, 10, 3, 7);
    a.load(Width::B1, false, 10, 10, 0);
    a.op(IntOp::Add, 11, 6, 7);
    a.load(Width::B1, false, 11, 11, 0);
    a.op(IntOp::Xor, 10, 10, 11);
    a.op(IntOp::Add, 11, 5, 7);
    a.store(Width::B1, 10, 11, 0);
    a.opi(IntOp::Add, 7, 7, 1);
    a.jmp(ark0);
    a.bind(ark0_done);

    // r8 = round (1..=9).
    a.li(8, 1);
    let round_loop = a.here_label();
    let rounds_done = a.label();
    a.bri(Cond::GtS, 8, 9, rounds_done);
    emit_sub_shift(a, state, tmp_state, sbox_addr, shift_addr);
    emit_mix_and_ark(a, tmp_state, state, rk_addr);
    a.opi(IntOp::Add, 8, 8, 1);
    a.jmp(round_loop);
    a.bind(rounds_done);

    // Final round: SubBytes+ShiftRows then AddRoundKey(10) into out.
    emit_sub_shift(a, state, tmp_state, sbox_addr, shift_addr);
    a.li(5, tmp_state as i64);
    a.li(6, (rk_addr + 160) as i64);
    a.li(7, 0);
    let fin = a.here_label();
    let fin_done = a.label();
    a.bri(Cond::GeS, 7, 16, fin_done);
    a.op(IntOp::Add, 10, 5, 7);
    a.load(Width::B1, false, 10, 10, 0);
    a.op(IntOp::Add, 11, 6, 7);
    a.load(Width::B1, false, 11, 11, 0);
    a.op(IntOp::Xor, 10, 10, 11);
    a.op(IntOp::Add, 11, 4, 7);
    a.store(Width::B1, 10, 11, 0);
    a.opi(IntOp::Add, 7, 7, 1);
    a.jmp(fin);
    a.bind(fin_done);

    a.opi(IntOp::Add, 3, 3, 16);
    a.opi(IntOp::Add, 4, 4, 16);
    a.jmp(block_loop);
    a.bind(blocks_done);

    // Checksums over the ciphertext.
    a.li(4, out_addr as i64);
    a.li(5, 0); // i
    a.li(6, 0); // weighted
    a.li(7, 0); // rolling xor-rotate
    let ck = a.here_label();
    let ck_done = a.label();
    a.bri(Cond::GeS, 5, (BLOCKS * 16) as i32, ck_done);
    a.op(IntOp::Add, 10, 4, 5);
    a.load(Width::B1, false, 11, 10, 0);
    a.opi(IntOp::And, 2, 5, 31);
    a.opi(IntOp::Add, 2, 2, 1);
    a.op(IntOp::Mul, 2, 2, 11);
    a.op(IntOp::Add, 6, 6, 2);
    a.opi(IntOp::Shl, 2, 7, 7);
    a.opi(IntOp::Shr, 7, 7, 57);
    a.op(IntOp::Or, 7, 7, 2);
    a.op(IntOp::Xor, 7, 7, 11);
    a.opi(IntOp::Add, 5, 5, 1);
    a.jmp(ck);
    a.bind(ck_done);
    a.write_int(6);
    a.write_int(7);
    a.load(Width::B4, false, 5, 4, 0);
    a.write_int(5);
    a.exit(0);
}

/// SubBytes + ShiftRows: `dst[i] = sbox[src[shift_map[i]]]`.
fn emit_sub_shift(a: &mut Asm, src: u64, dst: u64, sbox: u64, shift_map: u64) {
    a.li(5, src as i64);
    a.li(6, dst as i64);
    a.li(9, sbox as i64);
    a.li(2, shift_map as i64);
    a.li(7, 0);
    let lp = a.here_label();
    let done = a.label();
    a.bri(Cond::GeS, 7, 16, done);
    a.op(IntOp::Add, 10, 2, 7);
    a.load(Width::B1, false, 10, 10, 0); // shift_map[i]
    a.op(IntOp::Add, 10, 5, 10);
    a.load(Width::B1, false, 10, 10, 0); // src[…]
    a.op(IntOp::Add, 10, 9, 10);
    a.load(Width::B1, false, 10, 10, 0); // sbox[…]
    a.op(IntOp::Add, 11, 6, 7);
    a.store(Width::B1, 10, 11, 0);
    a.opi(IntOp::Add, 7, 7, 1);
    a.jmp(lp);
    a.bind(done);
}

/// MixColumns + AddRoundKey (round in r8): `dst = mix(src) ^ rk[r8]`.
fn emit_mix_and_ark(a: &mut Asm, src: u64, dst: u64, rk: u64) {
    // r5 = src col ptr, r6 = dst col ptr, r9 = rk col ptr.
    a.li(5, src as i64);
    a.li(6, dst as i64);
    a.opi(IntOp::Shl, 9, 8, 4); // r8 * 16
    a.li(10, rk as i64);
    a.op(IntOp::Add, 9, 9, 10);
    a.li(7, 0); // column
    let col = a.here_label();
    let col_done = a.label();
    a.bri(Cond::GeS, 7, 4, col_done);
    // Load a0..a3 into r10, r11, r12, r2.
    a.load(Width::B1, false, 10, 5, 0);
    a.load(Width::B1, false, 11, 5, 1);
    a.load(Width::B1, false, 12, 5, 2);
    a.load(Width::B1, false, 2, 5, 3);

    // Helper patterns; xt(x) = ((x<<1) ^ (0x1B * (x>>7))) & 0xFF into r1.
    let xt = |a: &mut Asm, src_reg: u8| {
        a.opi(IntOp::Shl, 1, src_reg, 1);
        a.opi(IntOp::Shr, 0, src_reg, 7);
        a.opi(IntOp::Mul, 0, 0, 0x1B);
        a.op(IntOp::Xor, 1, 1, 0);
        a.opi(IntOp::And, 1, 1, 0xFF);
    };

    // b0 = xt(a0) ^ xt(a1) ^ a1 ^ a2 ^ a3 ^ rk[0]
    xt(a, 10);
    a.push(1);
    xt(a, 11);
    a.op(IntOp::Xor, 1, 1, 11);
    a.pop(0);
    a.op(IntOp::Xor, 1, 1, 0);
    a.op(IntOp::Xor, 1, 1, 12);
    a.op(IntOp::Xor, 1, 1, 2);
    a.load(Width::B1, false, 0, 9, 0);
    a.op(IntOp::Xor, 1, 1, 0);
    a.store(Width::B1, 1, 6, 0);
    // b1 = a0 ^ xt(a1) ^ xt(a2) ^ a2 ^ a3 ^ rk[1]
    xt(a, 11);
    a.push(1);
    xt(a, 12);
    a.op(IntOp::Xor, 1, 1, 12);
    a.pop(0);
    a.op(IntOp::Xor, 1, 1, 0);
    a.op(IntOp::Xor, 1, 1, 10);
    a.op(IntOp::Xor, 1, 1, 2);
    a.load(Width::B1, false, 0, 9, 1);
    a.op(IntOp::Xor, 1, 1, 0);
    a.store(Width::B1, 1, 6, 1);
    // b2 = a0 ^ a1 ^ xt(a2) ^ xt(a3) ^ a3 ^ rk[2]
    xt(a, 12);
    a.push(1);
    xt(a, 2);
    a.op(IntOp::Xor, 1, 1, 2);
    a.pop(0);
    a.op(IntOp::Xor, 1, 1, 0);
    a.op(IntOp::Xor, 1, 1, 10);
    a.op(IntOp::Xor, 1, 1, 11);
    a.load(Width::B1, false, 0, 9, 2);
    a.op(IntOp::Xor, 1, 1, 0);
    a.store(Width::B1, 1, 6, 2);
    // b3 = xt(a0) ^ a0 ^ a1 ^ a2 ^ xt(a3) ^ rk[3]
    xt(a, 10);
    a.push(1);
    xt(a, 2);
    a.pop(0);
    a.op(IntOp::Xor, 1, 1, 0);
    a.op(IntOp::Xor, 1, 1, 10);
    a.op(IntOp::Xor, 1, 1, 11);
    a.op(IntOp::Xor, 1, 1, 12);
    a.load(Width::B1, false, 0, 9, 3);
    a.op(IntOp::Xor, 1, 1, 0);
    a.store(Width::B1, 1, 6, 3);

    a.opi(IntOp::Add, 5, 5, 4);
    a.opi(IntOp::Add, 6, 6, 4);
    a.opi(IntOp::Add, 9, 9, 4);
    a.opi(IntOp::Add, 7, 7, 1);
    a.jmp(col);
    a.bind(col_done);
}

/// Host reference output.
pub fn reference() -> Vec<u8> {
    let plain = data::bytes(SEED, BLOCKS * 16);
    let rk = round_keys();
    let mut cipher = Vec::with_capacity(plain.len());
    for chunk in plain.chunks_exact(16) {
        let mut b: [u8; 16] = chunk.try_into().expect("16-byte chunk");
        encrypt_block(&mut b, &rk);
        cipher.extend_from_slice(&b);
    }
    let mut weighted: u64 = 0;
    let mut roll: u64 = 0;
    for (i, &v) in cipher.iter().enumerate() {
        weighted = weighted.wrapping_add(((i as u64 & 31) + 1).wrapping_mul(v as u64));
        roll = roll.rotate_left(7) ^ v as u64;
    }
    let first = u32::from_le_bytes(cipher[0..4].try_into().expect("4 bytes"));
    format!("{weighted}\n{roll}\n{first}\n").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_vector() {
        // FIPS-197 Appendix B: key 2b7e…, plaintext 3243f6a8885a308d313198a2e0370734.
        let rk = round_keys();
        let mut block: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        encrypt_block(&mut block, &rk);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }

    #[test]
    fn xtime_matches_gf256() {
        assert_eq!(xtime(0x57), 0xAE);
        assert_eq!(xtime(0xAE), 0x47);
    }

    #[test]
    fn shift_map_is_permutation() {
        let mut seen = [false; 16];
        for &i in &SHIFT_MAP {
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
