//! # difi-mars
//!
//! **MarsSim** — the MARSS-flavoured out-of-order x86e simulator — and
//! **MaFIN**, the MARSS-based fault injector built on it.
//!
//! MarsSim reproduces the MARSS properties the paper's differential analysis
//! rests on (Table II column 1, plus the behaviours of Remarks 1, 3, 6, 8):
//!
//! * OoO pipeline, 64-entry ROB, 32-entry issue queue, **32-entry unified
//!   LSQ whose loads and stores both hold data**;
//! * 256 integer + 256 FP physical registers;
//! * **aggressive load issue** before older store addresses resolve, with
//!   alias replay;
//! * **QEMU-style hypervisor escape**: kernel services bypass the caches;
//!   committed stores keep main memory coherent (store-through);
//! * tournament predictor whose chooser is bound to the **branch address**;
//!   split 4-way BTBs (1K direct + 512 indirect); 16-entry RAS;
//! * next-line **prefetchers** on L1I and L1D (the paper's added
//!   components, Table IV "New");
//! * **assertion-rich** model code: undecodable bytes and impossible
//!   internal states stop the simulation with an assertion, wrong-path or
//!   not.
//!
//! ```
//! use difi_mars::MaFin;
//! use difi_core::{InjectorDispatcher, InjectionSpec, RunLimits};
//! use difi_isa::asm::Asm;
//! use difi_isa::program::Isa;
//!
//! # fn main() -> Result<(), difi_util::Error> {
//! let mut a = Asm::new(Isa::X86e);
//! a.li(4, 7);
//! a.write_int(4);
//! a.exit(0);
//! let prog = a.finish("seven")?;
//! let mafin = MaFin::new();
//! let golden = mafin.run(&prog, &InjectionSpec { id: 0, faults: vec![] },
//!                        &RunLimits::golden(1_000_000));
//! assert_eq!(golden.output, b"7\n");
//! # Ok(())
//! # }
//! ```

use difi_core::model::{InjectionSpec, RawRunResult, RunLimits};
use difi_core::substrate::{
    cold_run, recording_run, residency_run, traced_cold_run, traced_warm_run, warm_run,
};
use difi_core::{GoldenSnapshot, InjectorDispatcher};
use difi_isa::program::{Isa, Program};
use difi_obs::trace::FaultTrace;
use difi_uarch::cache::CacheConfig;
use difi_uarch::fault::{StructureDesc, StructureId};
use difi_uarch::pipeline::{BtbOrg, CoreConfig, CorePolicy, LsqOrg, OoOCore};
use difi_uarch::predictor::TournamentConfig;
use difi_uarch::residency::ResidencyLog;

pub use difi_core::substrate::{
    capture_snapshots, to_engine_faults, to_engine_limits, to_raw_result, to_run_status,
};

/// The MarsSim core configuration (Table II, MARSS/x86 column).
pub fn mars_config() -> CoreConfig {
    CoreConfig {
        int_prf: 256,
        fp_prf: 256,
        iq_entries: 32,
        rob_entries: 64,
        lsq: LsqOrg::Unified { entries: 32 },
        width: 4,
        fetch_bytes: 16,
        int_alus: 2,
        mul_div_units: 1,
        fp_units: 2,
        mem_ports: 4,
        ras_depth: 16,
        predictor: TournamentConfig::MARSS,
        btb: BtbOrg::MarssSplit,
        l1i: CacheConfig::L1,
        l1d: CacheConfig::L1,
        l2: CacheConfig::L2,
        policy: CorePolicy {
            aggressive_loads: true,
            hypervisor_kernel: true,
            store_through: true,
            decode_fault_asserts: true,
            payload_error_asserts: true,
            rich_asserts: true,
            prefetchers: true,
            model_cache_data: true,
        },
    }
}

/// MarsSim as *original* MARSS: no modeled cache data arrays (loads read
/// the QEMU-coherent main memory) and no added prefetchers. The baseline of
/// the EXP-OVH comparison — the paper reports the data-array extension cost
/// ≈40% of simulation throughput (§III.C).
pub fn perf_only_config() -> CoreConfig {
    let mut c = mars_config();
    c.policy.prefetchers = false;
    c.policy.model_cache_data = false;
    c
}

/// **MaFIN** — the MARSS-based fault injector dispatcher.
#[derive(Debug, Clone)]
pub struct MaFin {
    cfg: CoreConfig,
}

impl MaFin {
    /// A MaFIN over the paper's MarsSim configuration.
    pub fn new() -> MaFin {
        MaFin { cfg: mars_config() }
    }

    /// A MaFIN over a custom configuration (sizing studies).
    pub fn with_config(cfg: CoreConfig) -> MaFin {
        MaFin { cfg }
    }

    /// The underlying core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Boots a fresh MarsSim instance for one run (exposed for diagnostics
    /// and the runtime-statistics studies behind Remarks 1–11).
    pub fn boot(&self, program: &Program) -> OoOCore {
        OoOCore::new(self.cfg, program)
    }
}

impl Default for MaFin {
    fn default() -> Self {
        MaFin::new()
    }
}

impl InjectorDispatcher for MaFin {
    fn name(&self) -> &str {
        "MaFIN-x86"
    }

    fn isa(&self) -> Isa {
        Isa::X86e
    }

    fn structures(&self) -> Vec<StructureDesc> {
        OoOCore::structures(&self.cfg)
    }

    fn run(&self, program: &Program, spec: &InjectionSpec, limits: &RunLimits) -> RawRunResult {
        assert_eq!(program.isa, Isa::X86e, "MaFIN simulates x86e programs");
        cold_run(self.cfg, program, spec, limits)
    }

    fn golden_snapshots(
        &self,
        program: &Program,
        at_cycles: &[u64],
        limits: &RunLimits,
    ) -> Option<Vec<GoldenSnapshot>> {
        assert_eq!(program.isa, Isa::X86e, "MaFIN simulates x86e programs");
        Some(capture_snapshots(
            OoOCore::new(self.cfg, program),
            at_cycles,
            limits,
        ))
    }

    fn run_from(
        &self,
        snap: &GoldenSnapshot,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
    ) -> RawRunResult {
        // A foreign snapshot falls back to the always-correct cold path.
        warm_run(snap, spec, limits).unwrap_or_else(|| self.run(program, spec, limits))
    }

    fn golden_residency(
        &self,
        program: &Program,
        structures: &[StructureId],
        max_cycles: u64,
    ) -> Vec<ResidencyLog> {
        assert_eq!(program.isa, Isa::X86e, "MaFIN simulates x86e programs");
        residency_run(self.cfg, program, structures, max_cycles)
    }

    fn golden_run_recording(
        &self,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
    ) -> (RawRunResult, Option<std::sync::Arc<Vec<u64>>>) {
        assert_eq!(program.isa, Isa::X86e, "MaFIN simulates x86e programs");
        recording_run(self.cfg, program, spec, limits)
    }

    fn run_traced(
        &self,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
        golden_sig: Option<&std::sync::Arc<Vec<u64>>>,
    ) -> (RawRunResult, Option<FaultTrace>) {
        assert_eq!(program.isa, Isa::X86e, "MaFIN simulates x86e programs");
        traced_cold_run(self.cfg, program, spec, limits, golden_sig)
    }

    fn run_from_traced(
        &self,
        snap: &GoldenSnapshot,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
        golden_sig: Option<&std::sync::Arc<Vec<u64>>>,
    ) -> (RawRunResult, Option<FaultTrace>) {
        // A foreign snapshot falls back to the always-correct cold path.
        traced_warm_run(snap, spec, limits, golden_sig)
            .unwrap_or_else(|| self.run_traced(program, spec, limits, golden_sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difi_uarch::fault::StructureId;

    #[test]
    fn config_matches_table_ii() {
        let c = mars_config();
        assert_eq!(c.int_prf, 256);
        assert_eq!(c.fp_prf, 256);
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.lsq, LsqOrg::Unified { entries: 32 });
        assert_eq!(c.l1d.capacity(), 32 * 1024);
        assert_eq!(c.l2.capacity(), 1024 * 1024);
        assert!(c.policy.hypervisor_kernel);
        assert!(c.policy.aggressive_loads);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn structures_cover_table_iv() {
        let m = MaFin::new();
        let s = m.structures();
        let find = |id| s.iter().find(|d| d.id == id).copied();
        let lsq = find(StructureId::LsqData).unwrap();
        assert_eq!(lsq.entries, 32, "unified queue exposes 32 data entries");
        let rf = find(StructureId::IntRegFile).unwrap();
        assert_eq!(rf.total_bits(), 256 * 64);
        let l1d = find(StructureId::L1dData).unwrap();
        assert_eq!(l1d.total_bits(), 32 * 1024 * 8);
        let btb = find(StructureId::Btb).unwrap();
        assert_eq!(btb.entries, 1024 + 512, "1K direct + 512 indirect entries");
        assert!(find(StructureId::L1iData).is_some());
        assert!(find(StructureId::DtlbValid).is_some());
    }

    #[test]
    fn dispatcher_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<MaFin>();
    }
}
