//! A named-metric registry: counters, gauges and log₂ cycle histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`CycleHistogram`]) are cheap clones of
//! an `Arc` around atomics, so instrumented code updates them lock-free
//! from any worker thread; the registry's lock is taken only to *register*
//! a name or to take a [snapshot](MetricsRegistry::snapshot). When no
//! registry is attached nothing is allocated and no atomic is touched —
//! the disabled path is an untaken `Option` branch at each call site.

use difi_util::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v`, replacing the previous value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Stores the ratio `num / den` scaled to permille (rounded to the
    /// nearest integer), or 0 when `den` is zero. Ratios like a campaign's
    /// collapse factor are fractional, and the registry is integer-only —
    /// permille keeps three digits of precision without floats.
    pub fn set_ratio_permille(&self, num: u64, den: u64) {
        let v = match den {
            0 => 0,
            _ => num.saturating_mul(1000).saturating_add(den / 2) / den,
        };
        self.set(v);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket *i* ≥ 1 holds
/// values in `[2^(i-1), 2^i)`, so 65 buckets cover the full `u64` range.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucketed histogram of cycle (or any `u64`) samples.
///
/// Exact counts and sums are kept; the distribution itself is quantized to
/// powers of two, which is the right resolution for fault-effect latencies
/// spanning one cycle to hundreds of millions.
#[derive(Debug, Clone)]
pub struct CycleHistogram(Arc<HistogramCore>);

fn bucket_of(v: u64) -> usize {
    match v {
        0 => 0,
        _ => 64 - v.leading_zeros() as usize,
    }
}

/// Inclusive lower bound of bucket `i` (0, then powers of two).
fn bucket_floor(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Default for CycleHistogram {
    fn default() -> Self {
        CycleHistogram::new()
    }
}

impl CycleHistogram {
    /// An empty, free-standing histogram (not registered anywhere).
    pub fn new() -> CycleHistogram {
        CycleHistogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        match self.count() {
            0 => None,
            n => Some(self.sum() as f64 / n as f64),
        }
    }

    /// Non-empty buckets as `(inclusive_floor, count)` pairs in ascending
    /// floor order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let n = self.0.buckets[i].load(Ordering::Relaxed);
                (n > 0).then_some((bucket_floor(i), n))
            })
            .collect()
    }

    /// JSON form: `{"count":…,"sum":…,"buckets":[[floor,count],…]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::U64(self.count())),
            ("sum", Json::U64(self.sum())),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, n)| Json::Arr(vec![Json::U64(lo), Json::U64(n)]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(CycleHistogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The registry: a sorted name → metric map. Registration is idempotent —
/// asking for the same name again returns a handle to the same underlying
/// atomic, so independent subsystems can share a metric by name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// that is a naming bug at the instrumentation site, not a runtime
    /// condition.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || {
            Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Counter(c) => c,
            m => panic!("metric '{name}' already registered as a {}", m.kind()),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0))))) {
            Metric::Gauge(g) => g,
            m => panic!("metric '{name}' already registered as a {}", m.kind()),
        }
    }

    /// Registers (or retrieves) a cycle histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> CycleHistogram {
        match self.register(name, || Metric::Histogram(CycleHistogram::new())) {
            Metric::Histogram(h) => h,
            m => panic!("metric '{name}' already registered as a {}", m.kind()),
        }
    }

    /// Reads a counter or gauge value by name without registering it.
    pub fn value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().expect("metrics lock");
        match inner.get(name)? {
            Metric::Counter(c) => Some(c.get()),
            Metric::Gauge(g) => Some(g.get()),
            Metric::Histogram(_) => None,
        }
    }

    /// A deterministic JSON snapshot: three name-sorted sections,
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}`. Sorting comes for
    /// free from the `BTreeMap`, so identical campaigns serialize
    /// byte-identically.
    pub fn snapshot(&self) -> Json {
        let inner = self.inner.lock().expect("metrics lock");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), Json::U64(c.get()))),
                Metric::Gauge(g) => gauges.push((name.clone(), Json::U64(g.get()))),
                Metric::Histogram(h) => histograms.push((name.clone(), h.to_json())),
            }
        }
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("campaign.runs");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration shares the atomic.
        assert_eq!(reg.counter("campaign.runs").get(), 5);
        assert_eq!(reg.value("campaign.runs"), Some(5));

        let g = reg.gauge("phase.golden_ns");
        g.set(42);
        g.set(7);
        assert_eq!(reg.value("phase.golden_ns"), Some(7));
        assert_eq!(reg.value("missing"), None);
    }

    #[test]
    fn ratio_permille_rounds_and_handles_zero_denominator() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("campaign.collapse.ratio_permille");
        g.set_ratio_permille(9, 3);
        assert_eq!(g.get(), 3000);
        g.set_ratio_permille(1, 3);
        assert_eq!(g.get(), 333);
        g.set_ratio_permille(2, 3);
        assert_eq!(g.get(), 667, "rounds to nearest, not truncates");
        g.set_ratio_permille(5, 0);
        assert_eq!(g.get(), 0, "empty partition reads as 0, not a panic");
        g.set_ratio_permille(u64::MAX, 1000);
        assert_eq!(g.get(), u64::MAX / 1000, "saturates instead of overflowing");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 1, 2, 3, 4, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_000_011);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 2), (2, 2), (4, 1), (524_288, 1)]
        );
        let mean = h.mean().expect("non-empty");
        assert!((mean - 1_000_011.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_floor(64), 1u64 << 63);
    }

    #[test]
    fn snapshot_is_sorted_and_parseable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        reg.gauge("phase.x").set(9);
        reg.histogram("h").record(5);
        let snap = reg.snapshot();
        let text = snap.to_string();
        let back = difi_util::json::parse(&text).expect("snapshot reparses");
        assert_eq!(back, snap);
        let counters = snap.get("counters").expect("counters section");
        match counters {
            Json::Obj(pairs) => {
                let names: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(names, vec!["a.first", "b.second"]);
            }
            other => panic!("counters not an object: {other:?}"),
        }
        assert_eq!(
            snap.get("histograms")
                .and_then(|h| h.get("h"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }
}
