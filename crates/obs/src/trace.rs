//! The fault-lifecycle event model: one cycle-stamped event stream per
//! injection run.
//!
//! A fault's observable life has five moments, and each maps to one
//! [`TraceEventKind`]:
//!
//! 1. **Injected** — the mask was applied to the structure.
//! 2. **FirstConsumed** — a faulted bit was first read by the machine.
//! 3. **OverwrittenDead** — a faulted bit was overwritten before any read
//!    (a transient fault dying silently).
//! 4. **ArchDivergence** — the committed architectural state (PC and
//!    destination values of retiring instructions) first differed from the
//!    golden run.
//! 5. **Classified** — the campaign's final verdict for the run.
//!
//! Event streams are deterministic: identical masks on identical programs
//! produce identical streams regardless of execution strategy (cold,
//! checkpointed warm-start, or resume), which the trace-determinism
//! integration test enforces.

use difi_util::json::Json;
use difi_util::{Error, Result};

/// The lifecycle moment an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEventKind {
    /// The fault mask was applied to the target structure.
    Injected,
    /// A faulted bit was read for the first time.
    FirstConsumed,
    /// A faulted bit was overwritten before ever being read.
    OverwrittenDead,
    /// Committed architectural state first diverged from the golden run.
    ArchDivergence,
    /// The run's final outcome class was assigned.
    Classified,
}

impl TraceEventKind {
    /// All kinds, in lifecycle order.
    pub const ALL: [TraceEventKind; 5] = [
        TraceEventKind::Injected,
        TraceEventKind::FirstConsumed,
        TraceEventKind::OverwrittenDead,
        TraceEventKind::ArchDivergence,
        TraceEventKind::Classified,
    ];

    /// Stable serialization name.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Injected => "injected",
            TraceEventKind::FirstConsumed => "first_consumed",
            TraceEventKind::OverwrittenDead => "overwritten_dead",
            TraceEventKind::ArchDivergence => "arch_divergence",
            TraceEventKind::Classified => "classified",
        }
    }

    /// Parses a serialization name.
    pub fn from_name(name: &str) -> Option<TraceEventKind> {
        TraceEventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One cycle-stamped lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the moment occurred.
    pub cycle: u64,
    /// Which lifecycle moment this is.
    pub kind: TraceEventKind,
    /// Free-form context (faulted entry/bit, commit index, outcome class).
    pub detail: String,
}

impl TraceEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cycle", Json::U64(self.cycle)),
            ("kind", Json::Str(self.kind.name().to_string())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }

    fn from_json(j: &Json) -> Result<TraceEvent> {
        let kind_name = j.req("kind")?.as_str().unwrap_or_default().to_string();
        let kind = TraceEventKind::from_name(&kind_name)
            .ok_or_else(|| Error::Parse(format!("unknown trace event kind '{kind_name}'")))?;
        Ok(TraceEvent {
            cycle: j
                .req("cycle")?
                .as_u64()
                .ok_or_else(|| Error::Parse("trace event cycle not a u64".into()))?,
            kind,
            detail: j.req("detail")?.as_str().unwrap_or_default().to_string(),
        })
    }
}

/// The full event stream of one injection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTrace {
    /// Mask identifier (matches `InjectionSpec::id`).
    pub id: u64,
    /// Target structure name (e.g. `"l2_data"`).
    pub structure: String,
    /// Events in cycle order (construction order breaks ties).
    pub events: Vec<TraceEvent>,
}

impl FaultTrace {
    /// The first event of `kind`, if any.
    pub fn first(&self, kind: TraceEventKind) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// Cycles from injection to first consumption, when both occurred.
    pub fn consume_latency(&self) -> Option<u64> {
        let injected = self.first(TraceEventKind::Injected)?.cycle;
        let consumed = self.first(TraceEventKind::FirstConsumed)?.cycle;
        Some(consumed.saturating_sub(injected))
    }

    /// Cycles from injection to first architectural divergence, when both
    /// occurred.
    pub fn divergence_latency(&self) -> Option<u64> {
        let injected = self.first(TraceEventKind::Injected)?.cycle;
        let diverged = self.first(TraceEventKind::ArchDivergence)?.cycle;
        Some(diverged.saturating_sub(injected))
    }

    /// The outcome class name from the `Classified` event, if present.
    pub fn outcome(&self) -> Option<&str> {
        self.first(TraceEventKind::Classified)
            .map(|e| e.detail.as_str())
    }

    /// JSON form:
    /// `{"id":…,"structure":…,"events":[{"cycle":…,"kind":…,"detail":…},…]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::U64(self.id)),
            ("structure", Json::Str(self.structure.clone())),
            (
                "events",
                Json::Arr(self.events.iter().map(TraceEvent::to_json).collect()),
            ),
        ])
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when required fields are missing or
    /// malformed.
    pub fn from_json(j: &Json) -> Result<FaultTrace> {
        let events = j
            .req("events")?
            .as_arr()
            .ok_or_else(|| Error::Parse("trace events not an array".into()))?
            .iter()
            .map(TraceEvent::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(FaultTrace {
            id: j
                .req("id")?
                .as_u64()
                .ok_or_else(|| Error::Parse("trace id not a u64".into()))?,
            structure: j.req("structure")?.as_str().unwrap_or_default().to_string(),
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultTrace {
        FaultTrace {
            id: 17,
            structure: "l2_data".into(),
            events: vec![
                TraceEvent {
                    cycle: 100,
                    kind: TraceEventKind::Injected,
                    detail: "entry 3 bit 5".into(),
                },
                TraceEvent {
                    cycle: 140,
                    kind: TraceEventKind::FirstConsumed,
                    detail: "entry 3 bit 5".into(),
                },
                TraceEvent {
                    cycle: 900,
                    kind: TraceEventKind::ArchDivergence,
                    detail: "commit #12".into(),
                },
                TraceEvent {
                    cycle: 5000,
                    kind: TraceEventKind::Classified,
                    detail: "sdc".into(),
                },
            ],
        }
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in TraceEventKind::ALL {
            assert_eq!(TraceEventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(TraceEventKind::from_name("bogus"), None);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let t = sample();
        let text = t.to_json().to_string();
        let back = FaultTrace::from_json(&difi_util::json::parse(&text).expect("parses"))
            .expect("valid trace");
        assert_eq!(back, t);
    }

    #[test]
    fn latency_helpers() {
        let t = sample();
        assert_eq!(t.consume_latency(), Some(40));
        assert_eq!(t.divergence_latency(), Some(800));
        assert_eq!(t.outcome(), Some("sdc"));

        let dead = FaultTrace {
            id: 0,
            structure: "iq".into(),
            events: vec![
                TraceEvent {
                    cycle: 10,
                    kind: TraceEventKind::Injected,
                    detail: String::new(),
                },
                TraceEvent {
                    cycle: 12,
                    kind: TraceEventKind::OverwrittenDead,
                    detail: String::new(),
                },
            ],
        };
        assert_eq!(dead.consume_latency(), None);
        assert_eq!(dead.divergence_latency(), None);
        assert_eq!(dead.outcome(), None);
    }

    #[test]
    fn malformed_json_is_rejected() {
        let missing = difi_util::json::parse("{\"id\":1,\"structure\":\"x\"}").expect("parses");
        assert!(FaultTrace::from_json(&missing).is_err());
        let bad_kind = difi_util::json::parse(
            "{\"id\":1,\"structure\":\"x\",\"events\":[{\"cycle\":1,\"kind\":\"nope\",\"detail\":\"\"}]}",
        )
        .expect("parses");
        assert!(FaultTrace::from_json(&bad_kind).is_err());
    }
}
