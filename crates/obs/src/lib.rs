//! Observability layer for the injection campaigns: a metrics registry and
//! a cycle-stamped fault-lifecycle tracer.
//!
//! The paper's Remarks 1–11 explain outcome differences across structures
//! and setups, but a campaign that only records the final
//! Masked/SDC/DUE/Timeout/Crash label cannot show *why* a class dominates:
//! the fault's journey — injection, first consumption, death by overwrite,
//! first architectural divergence from the golden run — is invisible. This
//! crate provides the two telemetry primitives the rest of the workspace
//! instruments itself with:
//!
//! - [`metrics::MetricsRegistry`] — named counters, gauges and log₂ cycle
//!   histograms behind lock-free atomic handles. A campaign that does not
//!   attach a registry pays nothing; one that does pays one relaxed atomic
//!   op per update.
//! - [`trace::FaultTrace`] — the ordered, cycle-stamped event stream of one
//!   injection run, serializable through `difi_util::json` for JSONL trace
//!   files and post-hoc latency analysis.
//!
//! The crate depends only on `difi-util` (and the standard library), so the
//! simulators, dispatchers and campaign engine can all emit into it without
//! dependency cycles: `difi-uarch` exposes raw observation points,
//! `difi-core` assembles them into [`trace::FaultTrace`] values and updates
//! the registry.

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, CycleHistogram, Gauge, MetricsRegistry};
pub use trace::{FaultTrace, TraceEvent, TraceEventKind};
