//! Criterion benchmarks over the simulation stack.
//!
//! * `sim_throughput/*` — detailed-simulator and emulator throughput on the
//!   `fft` benchmark (the study's wall-clock currency).
//! * `early_stop/*` — EXP-OPT: campaign time with and without the paper's
//!   §III.B.2 early-stop optimizations (expected 30–70% per-run savings).
//! * `data_arrays/*` — EXP-OVH: MarsSim with the cache data-array extension
//!   vs. original-MARSS performance mode (paper: ≈40% overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use difi::isa::emu::Emulator;
use difi::prelude::*;
use difi::uarch::pipeline::engine::EngineLimits;
use difi::uarch::pipeline::OoOCore;

fn limits() -> EngineLimits {
    EngineLimits {
        max_cycles: 200_000_000,
        early_stop: false,
        deadlock_window: 200_000,
    }
}

fn sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    let bench = Bench::Fft;

    let p86 = build(bench, Isa::X86e).unwrap();
    let parm = build(bench, Isa::Arme).unwrap();

    g.bench_function("emulator_x86e", |b| {
        b.iter(|| Emulator::new(&p86).run(100_000_000))
    });
    g.bench_function("marssim_x86e", |b| {
        b.iter(|| OoOCore::new(mars_config(), &p86).run(&[], &limits()))
    });
    g.bench_function("gemsim_x86e", |b| {
        b.iter(|| OoOCore::new(gem_config(Isa::X86e), &p86).run(&[], &limits()))
    });
    g.bench_function("gemsim_arme", |b| {
        b.iter(|| OoOCore::new(gem_config(Isa::Arme), &parm).run(&[], &limits()))
    });
    g.finish();
}

fn early_stop(c: &mut Criterion) {
    let mut g = c.benchmark_group("early_stop");
    g.sample_size(10);
    let mafin = MaFin::new();
    let program = build(Bench::Fft, Isa::X86e).unwrap();
    let golden = golden_run(&mafin, &program, 100_000_000);
    let desc = difi::core::dispatch::structure_desc(&mafin, StructureId::L2Data).unwrap();
    let masks = MaskGenerator::new(7).transient(&desc, golden.cycles, 20);

    for (name, early) in [("disabled", false), ("enabled", true)] {
        let cfg = CampaignConfig {
            threads: 1,
            early_stop: early,
            golden_max_cycles: 100_000_000,
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                run_campaign(&mafin, &program, StructureId::L2Data, 7, &masks, &cfg)
            })
        });
    }
    g.finish();
}

fn data_arrays(c: &mut Criterion) {
    let mut g = c.benchmark_group("data_arrays");
    g.sample_size(10);
    let program = build(Bench::Fft, Isa::X86e).unwrap();
    g.bench_function("with_extension", |b| {
        b.iter(|| OoOCore::new(mars_config(), &program).run(&[], &limits()))
    });
    g.bench_function("perf_only", |b| {
        b.iter(|| OoOCore::new(difi::mars::perf_only_config(), &program).run(&[], &limits()))
    });
    g.finish();
}

criterion_group!(benches, sim_throughput, early_stop, data_arrays);
criterion_main!(benches);
