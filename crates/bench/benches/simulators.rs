//! Wall-clock benchmarks over the simulation stack (plain-`Instant` harness;
//! the workspace builds without external crates, so no criterion).
//!
//! * `sim_throughput/*` — detailed-simulator and emulator throughput on the
//!   `fft` benchmark (the study's wall-clock currency).
//! * `early_stop/*` — EXP-OPT: campaign time with and without the paper's
//!   §III.B.2 early-stop optimizations (expected 30–70% per-run savings).
//! * `warm_start/*` — checkpointed warm-start engine vs. cold-start on a
//!   40-mask L2 campaign (acceptance target ≥1.3× speedup).
//! * `journaling/*` — in-memory campaign vs. the same campaign with the
//!   per-run-flushed JSONL journal sink attached (acceptance target <5%
//!   overhead).
//! * `observability/*` — fault-lifecycle tracing plus a metrics registry vs.
//!   the plain campaign on the 40-mask L2 benchmark (acceptance target <5%
//!   overhead on, ~0% with the layer disabled).
//! * `collapse/*` — equivalence-collapsed campaign vs. cold campaign on the
//!   40-mask L2 benchmark and on a dense per-cycle sweep, with the static
//!   partition statistics (masks → classes, dispatches) per shape.
//! * `data_arrays/*` — EXP-OVH: MarsSim with the cache data-array extension
//!   vs. original-MARSS performance mode (paper: ≈40% overhead).
//!
//! Run with `cargo bench -p difi-bench` (harness = false). Passing group
//! names as arguments runs only those groups:
//! `cargo bench -p difi-bench -- observability`.

use difi::isa::emu::Emulator;
use difi::prelude::*;
use difi::uarch::pipeline::engine::EngineLimits;
use difi::uarch::pipeline::OoOCore;
use std::time::Instant;

const SAMPLES: u32 = 3;

fn limits() -> EngineLimits {
    EngineLimits {
        max_cycles: 200_000_000,
        early_stop: false,
        deadlock_window: 200_000,
    }
}

/// Times `f` over [`SAMPLES`] iterations and prints the best (minimum) time,
/// the conventional noise-resistant statistic for micro-benchmarks.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    f(); // warm-up
    let mut best = std::time::Duration::MAX;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    println!("{group}/{name:<24} {:>10.3} ms", best.as_secs_f64() * 1e3);
}

fn sim_throughput() {
    let bench_name = Bench::Fft;
    let p86 = build(bench_name, Isa::X86e).expect("fft builds for x86e");
    let parm = build(bench_name, Isa::Arme).expect("fft builds for arme");

    bench("sim_throughput", "emulator_x86e", || {
        Emulator::new(&p86).run(100_000_000);
    });
    bench("sim_throughput", "marssim_x86e", || {
        OoOCore::new(mars_config(), &p86).run(&[], &limits());
    });
    bench("sim_throughput", "gemsim_x86e", || {
        OoOCore::new(gem_config(Isa::X86e), &p86).run(&[], &limits());
    });
    bench("sim_throughput", "gemsim_arme", || {
        OoOCore::new(gem_config(Isa::Arme), &parm).run(&[], &limits());
    });
}

fn early_stop() {
    let mafin = MaFin::new();
    let program = build(Bench::Fft, Isa::X86e).expect("fft builds for x86e");
    let golden = golden_run(&mafin, &program, 100_000_000);
    let desc = difi::core::dispatch::structure_desc(&mafin, StructureId::L2Data)
        .expect("MaFIN models the L2 data array");
    let masks = MaskGenerator::new(7).transient(&desc, golden.cycles_measured(), 20);

    for (name, early) in [("disabled", false), ("enabled", true)] {
        let cfg = CampaignConfig {
            threads: 1,
            early_stop: early,
            golden_max_cycles: 100_000_000,
        };
        bench("early_stop", name, || {
            run_campaign(&mafin, &program, StructureId::L2Data, 7, &masks, &cfg);
        });
    }
}

fn warm_start() {
    // ISSUE 2 acceptance: a 40-mask L2 campaign served from golden-run
    // checkpoints must beat the cold-start campaign by ≥1.3×.
    let mafin = MaFin::new();
    let program = build(Bench::Fft, Isa::X86e).expect("fft builds for x86e");
    let golden = golden_run(&mafin, &program, 100_000_000);
    let desc = difi::core::dispatch::structure_desc(&mafin, StructureId::L2Data)
        .expect("MaFIN models the L2 data array");
    let masks = MaskGenerator::new(11).transient(&desc, golden.cycles_measured(), 40);
    let cfg = CampaignConfig {
        threads: 1,
        early_stop: true,
        golden_max_cycles: 100_000_000,
    };

    bench("warm_start", "cold_start", || {
        run_campaign(&mafin, &program, StructureId::L2Data, 11, &masks, &cfg);
    });
    bench("warm_start", "checkpointed_k8", || {
        run_campaign_checkpointed(&mafin, &program, StructureId::L2Data, 11, &masks, &cfg, 8);
    });
}

fn journaling() {
    // ISSUE 4 acceptance: journaling every run (one flushed JSONL line per
    // completion) must cost <5% over the in-memory campaign on the 40-mask
    // L2 benchmark.
    let mafin = MaFin::new();
    let program = build(Bench::Fft, Isa::X86e).expect("fft builds for x86e");
    let golden = golden_run(&mafin, &program, 100_000_000);
    let desc = difi::core::dispatch::structure_desc(&mafin, StructureId::L2Data)
        .expect("MaFIN models the L2 data array");
    let masks = MaskGenerator::new(11).transient(&desc, golden.cycles_measured(), 40);
    let cfg = CampaignConfig {
        threads: 1,
        early_stop: true,
        golden_max_cycles: 100_000_000,
    };
    let runner = CampaignRunner::new(&mafin, &program, StructureId::L2Data, 11, &cfg);
    let dir = std::env::temp_dir().join("difi_bench_journal");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("l2_fft.journal");

    bench("journaling", "in_memory", || {
        runner.run(&masks);
    });
    bench("journaling", "jsonl_journal", || {
        runner
            .run_journaled(&masks, &path, &[])
            .expect("journaled campaign");
    });
    std::fs::remove_file(&path).ok();
}

fn observability() {
    // ISSUE 5 acceptance on the 40-mask L2 benchmark: the tracing +
    // metrics layer must cost <5% when enabled, and its mere existence
    // (compiled in but switched off) must be free.
    let mafin = MaFin::new();
    let program = build(Bench::Fft, Isa::X86e).expect("fft builds for x86e");
    let golden = golden_run(&mafin, &program, 100_000_000);
    let desc = difi::core::dispatch::structure_desc(&mafin, StructureId::L2Data)
        .expect("MaFIN models the L2 data array");
    let masks = MaskGenerator::new(11).transient(&desc, golden.cycles_measured(), 40);
    let cfg = CampaignConfig {
        threads: 1,
        early_stop: true,
        golden_max_cycles: 100_000_000,
    };
    let plain = CampaignRunner::new(&mafin, &program, StructureId::L2Data, 11, &cfg);
    let traced = CampaignRunner::new(&mafin, &program, StructureId::L2Data, 11, &cfg)
        .with_tracing(true)
        .with_metrics(std::sync::Arc::new(MetricsRegistry::new()));
    let run_plain = || {
        plain.run(&masks);
    };
    let run_traced = || {
        let sink = MemoryTraceSink::new();
        traced.run_with_sinks(&masks, &[&sink]);
    };

    // The two variants are *interleaved* (unlike the other groups): the
    // overhead ratio is the figure of merit, and back-to-back pairs see
    // the same machine conditions, where sequential best-of-N would fold
    // load drift between the groups into the ratio.
    run_plain();
    run_traced();
    let (mut best_off, mut best_on) = (std::time::Duration::MAX, std::time::Duration::MAX);
    for _ in 0..SAMPLES + 2 {
        let t0 = Instant::now();
        run_plain();
        best_off = best_off.min(t0.elapsed());
        let t0 = Instant::now();
        run_traced();
        best_on = best_on.min(t0.elapsed());
    }
    for (name, best) in [("disabled", best_off), ("trace_and_metrics", best_on)] {
        println!(
            "observability/{name:<24} {:>10.3} ms",
            best.as_secs_f64() * 1e3
        );
    }
}

/// One mask per cycle inside real inter-event gaps of the residency trace —
/// the densest per-cycle sampling shape, where equivalence collapsing pays
/// the most (every cycle of a gap shares one class).
fn dense_sweep(profile: &AceProfile, desc: &StructureDesc) -> Vec<InjectionSpec> {
    let mut masks = Vec::new();
    let mut id = 0u64;
    let mut sites = 0u32;
    'entries: for entry in 0..desc.entries {
        for w in profile.log().events_for(entry).windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let bit = b.bit_lo;
            if b.cycle > a.cycle + 2 && b.covers(bit) {
                let lo = a.cycle + 1;
                for cycle in lo..=b.cycle.min(lo + 19) {
                    masks.push(InjectionSpec::single_transient(
                        id, desc.id, entry, bit, cycle,
                    ));
                    id += 1;
                }
                sites += 1;
                if sites >= 6 {
                    break 'entries;
                }
                break;
            }
        }
    }
    masks
}

fn collapse() {
    // ISSUE 6: equivalence-collapsed campaign vs. cold campaign on the
    // 40-mask L2 benchmark, plus a dense per-cycle sweep where collapsing
    // shows its full leverage. The printed ratio lines record the static
    // partition statistics behind each speedup.
    let mafin = MaFin::new();
    let program = build(Bench::Fft, Isa::X86e).expect("fft builds for x86e");
    let golden = golden_run(&mafin, &program, 100_000_000);
    let desc = difi::core::dispatch::structure_desc(&mafin, StructureId::L2Data)
        .expect("MaFIN models the L2 data array");
    let masks = MaskGenerator::new(11).transient(&desc, golden.cycles_measured(), 40);
    let cfg = CampaignConfig {
        threads: 1,
        early_stop: true,
        golden_max_cycles: 100_000_000,
    };
    let mut logs = mafin.golden_residency(
        &program,
        &[StructureId::L2Data, StructureId::IntRegFile],
        100_000_000,
    );
    let prf_profile =
        AceProfile::new(logs.pop().expect("int_prf traced")).expect("int_prf data plane");
    let profile = AceProfile::new(logs.pop().expect("L2 traced")).expect("L2 data plane");
    assert_eq!(prf_profile.structure(), StructureId::IntRegFile);
    assert_eq!(profile.structure(), StructureId::L2Data);

    let report = |name: &str, ms: &[InjectionSpec], p: &AceProfile| {
        let part = partition_equivalence(ms, p);
        println!(
            "collapse/{name:<24} {:>9.2}x  ({} masks -> {} classes, {} dispatched)",
            part.collapse_ratio(),
            part.mask_count(),
            part.class_count(),
            part.dispatch_count()
        );
    };
    bench("collapse", "cold_40", || {
        run_campaign(&mafin, &program, StructureId::L2Data, 11, &masks, &cfg);
    });
    bench("collapse", "collapsed_40", || {
        run_campaign_collapsed(
            &mafin,
            &program,
            StructureId::L2Data,
            11,
            &masks,
            &cfg,
            &profile,
        );
    });
    report("ratio_40", &masks, &profile);

    // The dense per-cycle sweep targets the register file, whose golden
    // trace has real inter-event gaps to sweep (FFT barely exercises L2).
    let prf_desc = difi::core::dispatch::structure_desc(&mafin, StructureId::IntRegFile)
        .expect("MaFIN models the register file");
    let dense = dense_sweep(&prf_profile, &prf_desc);
    if dense.is_empty() {
        println!("collapse/dense_sweep: no inter-event gaps found, skipped");
        return;
    }
    bench("collapse", "cold_dense", || {
        run_campaign(&mafin, &program, StructureId::IntRegFile, 11, &dense, &cfg);
    });
    bench("collapse", "collapsed_dense", || {
        run_campaign_collapsed(
            &mafin,
            &program,
            StructureId::IntRegFile,
            11,
            &dense,
            &cfg,
            &prf_profile,
        );
    });
    report("ratio_dense", &dense, &prf_profile);
}

fn data_arrays() {
    let program = build(Bench::Fft, Isa::X86e).expect("fft builds for x86e");
    bench("data_arrays", "with_extension", || {
        OoOCore::new(mars_config(), &program).run(&[], &limits());
    });
    bench("data_arrays", "perf_only", || {
        OoOCore::new(difi::mars::perf_only_config(), &program).run(&[], &limits());
    });
}

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let want = |group: &str| filter.is_empty() || filter.iter().any(|f| f == group);
    let groups: [(&str, fn()); 7] = [
        ("sim_throughput", sim_throughput),
        ("early_stop", early_stop),
        ("warm_start", warm_start),
        ("journaling", journaling),
        ("observability", observability),
        ("collapse", collapse),
        ("data_arrays", data_arrays),
    ];
    for (name, run) in groups {
        if want(name) {
            run();
        }
    }
}
