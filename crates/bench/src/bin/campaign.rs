//! Command-line injection campaign driver — the scriptable face of the
//! injector (the role the paper's campaign controller scripts played).
//!
//! ```text
//! campaign --injector MaFIN-x86 --bench sha --structure l1d_data \
//!          [--injections 200] [--seed 2015] [--out logs/run.jsonl] \
//!          [--model transient|intermittent|permanent] [--window 2000] \
//!          [--journal logs/run.journal | --resume logs/run.journal] \
//!          [--progress] [--checkpoints 8] [--collapse] [--no-early-stop] \
//!          [--fine] [--trace logs/traces.jsonl] \
//!          [--metrics-out logs/metrics.json] [--help]
//! ```
//!
//! Prints the six-class classification (and the fine breakdown with
//! `--fine`) and optionally persists the raw logs repository for later
//! re-parsing.
//!
//! `--journal` streams every completed run to an append-only JSONL journal;
//! a campaign killed mid-flight restarts with `--resume` on the same path
//! (same injector/bench/structure/seed/injections), re-running only the
//! missing masks and producing the identical log. `--progress` prints live
//! completion/ETA telemetry on stderr. `--checkpoints` enables the
//! warm-start engine with that many golden-run checkpoints.
//!
//! `--collapse` statically partitions the mask space into provably
//! equivalent classes against the golden run's residency trace and runs
//! one representative per class; every run's journal/log line carries its
//! class provenance (`"collapse"` key), so `--journal`/`--resume` and
//! later audits work unchanged. Composes with `--checkpoints` (warm-starts
//! the representatives). Falls back to the normal strategy with a warning
//! when the structure's residency trace is unavailable (control-plane
//! structures).
//!
//! `--trace` enables fault-lifecycle tracing: each run's event stream
//! (injected, first-consumed, overwritten-dead, divergence, classified)
//! streams to the given JSONL file and the fault-effect-latency table
//! prints after the classification. `--metrics-out` attaches a metrics
//! registry and writes its JSON snapshot (counters, phase gauges,
//! latency histograms) to the given file.

use difi::prelude::*;
use std::sync::Arc;

const USAGE: &str = "\
campaign — command-line fault-injection campaign driver

USAGE:
  campaign [OPTIONS]

OPTIONS:
  --injector NAME       MaFIN-x86 | GeFIN-x86 | GeFIN-ARM   [MaFIN-x86]
  --bench NAME          benchmark to run                     [sha]
  --structure NAME      target structure (l1d_data, …)       [l1d_data]
  --injections N        number of fault masks                [200]
  --seed N              campaign seed                        [2015]
  --model KIND          transient | intermittent | permanent [transient]
  --window N            intermittent window, cycles          [2000]
  --out PATH            save the raw logs repository (JSONL)
  --journal PATH        stream runs to an append-only journal
  --resume PATH         finish an interrupted journal (same parameters)
  --progress            live completion/ETA telemetry on stderr
  --checkpoints N       warm-start engine with N golden checkpoints
  --collapse            collapse the mask space into equivalence classes;
                        runs one representative per class and stamps every
                        journal/log line with its class provenance.
                        Composes with --checkpoints, --journal, --resume.
  --no-early-stop       disable the dead-entry early stop
  --fine                also print the fine-grained classification
  --trace PATH          stream fault-lifecycle traces (JSONL)
  --metrics-out PATH    write the metrics registry snapshot (JSON)
  -h, --help            print this help and exit
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if has("--help") || has("-h") {
        print!("{USAGE}");
        return;
    }

    let injector = get("--injector").unwrap_or_else(|| "MaFIN-x86".into());
    let bench = Bench::from_name(&get("--bench").unwrap_or_else(|| "sha".into()))
        .expect("unknown benchmark");
    let structure =
        StructureId::from_name(&get("--structure").unwrap_or_else(|| "l1d_data".into()))
            .expect("unknown structure");
    let injections: u64 = get("--injections").map_or(200, |s| s.parse().expect("number"));
    let seed: u64 = get("--seed").map_or(2015, |s| s.parse().expect("number"));
    let model = get("--model").unwrap_or_else(|| "transient".into());
    let window: u64 = get("--window").map_or(2000, |s| s.parse().expect("number"));

    let dispatcher: Box<dyn InjectorDispatcher + Send> = match injector.as_str() {
        "MaFIN-x86" => Box::new(MaFin::new()),
        "GeFIN-x86" => Box::new(GeFin::x86()),
        "GeFIN-ARM" => Box::new(GeFin::arm()),
        other => panic!("unknown injector {other} (MaFIN-x86 | GeFIN-x86 | GeFIN-ARM)"),
    };

    let program = build(bench, dispatcher.isa()).expect("benchmark assembles");
    let golden = golden_run(dispatcher.as_ref(), &program, 200_000_000);
    let desc = difi::core::dispatch::structure_desc(dispatcher.as_ref(), structure)
        .expect("structure not injectable on this configuration");

    println!(
        "campaign: {} / {} / {} — {} {} faults (seed {seed})",
        injector,
        bench.name(),
        structure.name(),
        injections,
        model
    );
    println!(
        "golden: {} cycles; statistically required at 99%/3%: {}",
        golden.cycles_measured(),
        MaskGenerator::required_samples(&desc, golden.cycles_measured(), 0.99, 0.03)
    );

    let mut gen = MaskGenerator::new(seed);
    let masks = match model.as_str() {
        "transient" => gen.transient(&desc, golden.cycles_measured(), injections),
        "intermittent" => gen.intermittent(&desc, golden.cycles_measured(), window, injections),
        "permanent" => gen.permanent(&desc, injections),
        other => panic!("unknown model {other}"),
    };

    let cfg = CampaignConfig {
        threads: 0,
        early_stop: !has("--no-early-stop"),
        golden_max_cycles: 200_000_000,
    };
    let checkpoints: usize = get("--checkpoints").map_or(0, |k| k.parse().expect("number"));
    // The collapse profile must outlive the runner that borrows it.
    let collapse_profile: Option<AceProfile> = has("--collapse")
        .then(|| {
            let mut logs =
                dispatcher.golden_residency(&program, &[structure], cfg.golden_max_cycles);
            match logs.pop().and_then(AceProfile::new) {
                Some(p) => Some(p),
                None => {
                    eprintln!(
                        "warning: no residency profile for {} (control-plane or untraced \
                         structure) — running without --collapse",
                        structure.name()
                    );
                    None
                }
            }
        })
        .flatten();
    let mut runner = CampaignRunner::new(dispatcher.as_ref(), &program, structure, seed, &cfg);
    match &collapse_profile {
        Some(profile) => {
            runner = runner.with_strategy(Strategy::Collapsed {
                profile,
                checkpoints,
            });
        }
        None if checkpoints > 0 => {
            runner = runner.with_strategy(Strategy::Checkpointed { checkpoints });
        }
        None => {}
    }

    let trace_path = get("--trace").map(std::path::PathBuf::from);
    let metrics_path = get("--metrics-out").map(std::path::PathBuf::from);
    let registry = metrics_path
        .is_some()
        .then(|| Arc::new(MetricsRegistry::new()));
    if let Some(reg) = &registry {
        runner = runner.with_metrics(Arc::clone(reg));
    }
    if trace_path.is_some() {
        runner = runner.with_tracing(true);
    }
    let trace_sink = trace_path.as_ref().map(|p| {
        if let Some(dir) = p.parent() {
            std::fs::create_dir_all(dir).expect("create trace dir");
        }
        TraceSink::create(p).expect("create trace file")
    });
    let mem_traces = trace_path.is_some().then(MemoryTraceSink::new);

    let progress = {
        let p = ProgressSink::every(if injections > 200 { 10 } else { 1 });
        match &registry {
            Some(reg) => p.with_metrics(Arc::clone(reg)),
            None => p,
        }
    };
    let mut sinks: Vec<&dyn RunSink> = Vec::new();
    if has("--progress") {
        sinks.push(&progress);
    }
    if let Some(sink) = &trace_sink {
        sinks.push(sink);
    }
    if let Some(sink) = &mem_traces {
        sinks.push(sink);
    }

    let t0 = std::time::Instant::now();
    let log = match (get("--journal"), get("--resume")) {
        (Some(_), Some(_)) => panic!("--journal and --resume are mutually exclusive"),
        (Some(path), None) => {
            let p = std::path::PathBuf::from(path);
            if let Some(dir) = p.parent() {
                std::fs::create_dir_all(dir).expect("create journal dir");
            }
            let log = runner
                .run_journaled(&masks, &p, &sinks)
                .expect("journaled campaign");
            println!("journal written to {}", p.display());
            log
        }
        (None, Some(path)) => {
            let p = std::path::PathBuf::from(path);
            let log = runner.resume(&masks, &p, &sinks).expect("resume campaign");
            println!("journal completed at {}", p.display());
            log
        }
        (None, None) => runner.run_with_sinks(&masks, &sinks),
    };
    let wall = t0.elapsed();

    // Surface trace-file I/O failures loudly: a campaign whose traces were
    // silently dropped would masquerade as a complete observability record.
    if let (Some(sink), Some(path)) = (&trace_sink, &trace_path) {
        sink.finish().expect("trace journal write failed");
        println!("traces written to {}", path.display());
    }

    if let Some(path) = get("--out") {
        let p = std::path::PathBuf::from(path);
        if let Some(dir) = p.parent() {
            std::fs::create_dir_all(dir).expect("create log dir");
        }
        log.save(&p).expect("save log");
        println!("raw logs written to {}", p.display());
    }

    let counts = classify_log(&log);
    println!("\nclassification ({} runs, {:?}):", counts.total(), wall);
    for class in Outcome::ALL {
        println!(
            "  {:<8} {:>6}  ({:>5.1}%)",
            class.name(),
            counts.get(class),
            100.0 * counts.fraction(class)
        );
    }
    let ci = counts.vulnerability_interval(0.99);
    println!(
        "vulnerability: {:.2}%  (99% CI [{:.2}%, {:.2}%])",
        100.0 * counts.vulnerability(),
        100.0 * ci.lo,
        100.0 * ci.hi
    );

    if let Some(profile) = &collapse_profile {
        // Re-derive the (deterministic) partition for the summary table.
        let part = partition_equivalence(&masks, profile);
        let mut rep = CollapseReport::new();
        rep.push(structure.name(), &part);
        println!("\n{}", rep.render());
        println!(
            "collapse: {} masks -> {} classes ({:.2}x), {} simulator dispatches",
            part.mask_count(),
            part.class_count(),
            part.collapse_ratio(),
            part.dispatch_count()
        );
    }

    if has("--fine") {
        let classifier = Classifier::from_golden(&log.golden);
        let mut fine: std::collections::BTreeMap<String, u64> = Default::default();
        for run in &log.runs {
            *fine
                .entry(format!("{:?}", classifier.classify_fine(&run.result)))
                .or_default() += 1;
        }
        println!("\nfine classification:");
        for (k, v) in fine {
            println!("  {k:<16} {v}");
        }
    }

    // Fault-effect latency breakdown from the collected event streams.
    let latency = mem_traces.map(|m| {
        let traces: Vec<FaultTrace> = m.into_traces().into_iter().map(|(_, t)| t).collect();
        LatencyReport::from_traces(&traces)
    });
    if let Some(rep) = &latency {
        if rep.rows.is_empty() {
            println!("\nno fault traces recorded (all masks fault-free?)");
        } else {
            println!("\n{}", rep.render());
        }
    }

    if let (Some(path), Some(reg)) = (&metrics_path, &registry) {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create metrics dir");
        }
        let mut sections = vec![("metrics".to_string(), reg.snapshot())];
        if let Some(rep) = &latency {
            sections.push(("latency".to_string(), rep.to_json()));
        }
        let doc = difi::util::json::Json::Obj(sections);
        std::fs::write(path, format!("{doc}\n")).expect("metrics file write failed");
        println!("metrics written to {}", path.display());
    }
}
