//! Prints fault-free cycle/instruction counts and wall time for every
//! (injector, benchmark) pair — the sizing data behind campaign planning
//! and the paper's Table II-adjacent runtime discussion.

use difi::prelude::*;

fn main() {
    for d in setups::all() {
        for b in Bench::ALL {
            let p = build(b, d.isa()).expect("benchmark assembles");
            let t = std::time::Instant::now();
            let g = golden_run(d.as_ref(), &p, 200_000_000);
            println!(
                "{:<10} {:<10} cycles={:<9} instr={:<9} wall={:?}",
                d.name(),
                b.name(),
                g.cycles_measured(),
                g.instructions.unwrap_or(0),
                t.elapsed()
            );
        }
    }
}
