//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures <command> [--injections N] [--seed S] [--benches a,b,…] [--out DIR]
//!
//! commands:
//!   fig2 fig3 fig4 fig5 fig6   one characterization figure
//!   figs                       all five figures (Figs. 2–6)
//!   table2 table3 table4       the configuration/fault-model/structure tables
//!   sampling                   §IV.A statistical sampling numbers
//!   remarks                    runtime statistics behind Remarks 1–11
//!   speedup                    §III.B.2 early-stop optimization (30–70%)
//!   overhead                   §III.C MARSS data-array extension cost (≈40%)
//!   all                        everything above
//! ```
//!
//! The paper's campaigns use 2000 injections per cell; `--injections`
//! defaults to a laptop-scale 100 (the printed Wilson intervals make the
//! wider error margins explicit).

use difi::prelude::*;
use difi::uarch::pipeline::engine::EngineLimits;
use difi::uarch::pipeline::OoOCore;
use std::time::Instant;

struct Opts {
    injections: u64,
    seed: u64,
    benches: Vec<Bench>,
    out: Option<std::path::PathBuf>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        injections: 100,
        seed: 2015,
        benches: Bench::ALL.to_vec(),
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--injections" => {
                o.injections = args[i + 1].parse().expect("--injections N");
                i += 2;
            }
            "--seed" => {
                o.seed = args[i + 1].parse().expect("--seed S");
                i += 2;
            }
            "--benches" => {
                o.benches = args[i + 1]
                    .split(',')
                    .map(|s| Bench::from_name(s).unwrap_or_else(|| panic!("unknown bench {s}")))
                    .collect();
                i += 2;
            }
            "--out" => {
                o.out = Some(args[i + 1].clone().into());
                i += 2;
            }
            other => panic!("unknown option {other}"),
        }
    }
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let opts = parse_opts(&args[1.min(args.len())..]);
    match cmd {
        "fig2" => figure(
            StructureId::IntRegFile,
            "Fig. 2 — integer physical register file",
            &opts,
        ),
        "fig3" => figure(
            StructureId::L1dData,
            "Fig. 3 — L1D cache (data arrays)",
            &opts,
        ),
        "fig4" => figure(
            StructureId::L1iData,
            "Fig. 4 — L1I cache (instruction arrays)",
            &opts,
        ),
        "fig5" => figure(
            StructureId::L2Data,
            "Fig. 5 — L2 cache (data arrays)",
            &opts,
        ),
        "fig6" => figure(
            StructureId::LsqData,
            "Fig. 6 — Load/Store Queue (data field)",
            &opts,
        ),
        "figs" => {
            for (s, title) in setups::figure_structures() {
                figure(s, title, &opts);
            }
        }
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "sampling" => sampling(),
        "remarks" => remarks(&opts),
        "speedup" => speedup(&opts),
        "overhead" => overhead(&opts),
        "all" => {
            table2();
            table3();
            table4();
            sampling();
            for (s, title) in setups::figure_structures() {
                figure(s, title, &opts);
            }
            remarks(&opts);
            speedup(&opts);
            overhead(&opts);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

/// Runs one characterization figure: `opts.injections` transient faults per
/// (benchmark, injector) cell into `structure`.
fn figure(structure: StructureId, title: &str, opts: &Opts) {
    let t0 = Instant::now();
    let mut rows = Vec::new();
    for bench in &opts.benches {
        let mut cells = Vec::new();
        for dispatcher in setups::all() {
            let program = build(*bench, dispatcher.isa()).expect("assembles");
            let golden = golden_run(dispatcher.as_ref(), &program, 200_000_000);
            let desc = difi::core::dispatch::structure_desc(dispatcher.as_ref(), structure)
                .expect("figure structures are injectable");
            let masks = MaskGenerator::new(opts.seed ^ (*bench as u64) << 8 ^ structure as u64)
                .transient(&desc, golden.cycles_measured(), opts.injections);
            let log = run_campaign(
                dispatcher.as_ref(),
                &program,
                structure,
                opts.seed,
                &masks,
                &CampaignConfig::default(),
            );
            if let Some(dir) = &opts.out {
                std::fs::create_dir_all(dir).expect("create out dir");
                let path = dir.join(format!(
                    "{}_{}_{}.jsonl",
                    structure.name(),
                    bench.name(),
                    dispatcher.name()
                ));
                log.save(&path).expect("save log");
            }
            cells.push((dispatcher.name().to_string(), classify_log(&log)));
        }
        rows.push(FigureRow {
            benchmark: bench.name().to_string(),
            cells,
        });
    }
    let fig = Figure {
        title: title.to_string(),
        rows,
    };
    println!("\n{}", fig.render());
    // The paper's average-case deltas.
    let avg = fig.averages();
    let vuln = |name: &str| {
        avg.iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| 100.0 * c.vulnerability())
            .unwrap_or(0.0)
    };
    let (m, gx, ga) = (vuln("MaFIN-x86"), vuln("GeFIN-x86"), vuln("GeFIN-ARM"));
    println!(
        "avg vulnerability: MaFIN-x86 {:.2}%  GeFIN-x86 {:.2}%  GeFIN-ARM {:.2}%",
        m, gx, ga
    );
    println!(
        "deltas: |MaFIN-x86 − GeFIN-x86| = {:.2} pp   |GeFIN-x86 − GeFIN-ARM| = {:.2} pp",
        (m - gx).abs(),
        (gx - ga).abs()
    );
    println!(
        "[{} injections/cell, elapsed {:?}]",
        opts.injections,
        t0.elapsed()
    );
}

fn table2() {
    println!("\nTABLE II — simulator configurations");
    type ConfigCell = Box<dyn Fn(&difi::uarch::CoreConfig) -> String>;
    let rows: Vec<(&str, ConfigCell)> = vec![
        ("int PRF", Box::new(|c| c.int_prf.to_string())),
        ("fp PRF", Box::new(|c| c.fp_prf.to_string())),
        ("issue queue", Box::new(|c| c.iq_entries.to_string())),
        ("ROB", Box::new(|c| c.rob_entries.to_string())),
        ("LSQ", Box::new(|c| format!("{:?}", c.lsq))),
        ("int ALUs", Box::new(|c| c.int_alus.to_string())),
        ("mul/div", Box::new(|c| c.mul_div_units.to_string())),
        ("FP units", Box::new(|c| c.fp_units.to_string())),
        ("mem ports", Box::new(|c| c.mem_ports.to_string())),
        (
            "L1 (each)",
            Box::new(|c| {
                format!(
                    "{} KB {}x{}",
                    c.l1d.capacity() / 1024,
                    c.l1d.sets,
                    c.l1d.ways
                )
            }),
        ),
        (
            "L2",
            Box::new(|c| format!("{} KB {}x{}", c.l2.capacity() / 1024, c.l2.sets, c.l2.ways)),
        ),
        ("BTB", Box::new(|c| format!("{:?}", c.btb))),
        ("RAS", Box::new(|c| c.ras_depth.to_string())),
        (
            "predictor chooser",
            Box::new(|c| format!("{:?}", c.predictor.chooser_index)),
        ),
    ];
    let configs = [
        ("MARSS/x86", mars_config()),
        ("Gem5/x86", gem_config(Isa::X86e)),
        ("Gem5/ARM", gem_config(Isa::Arme)),
    ];
    print!("{:<20}", "parameter");
    for (n, _) in &configs {
        print!("{n:<34}");
    }
    println!();
    for (name, get) in &rows {
        print!("{name:<20}");
        for (_, c) in &configs {
            print!("{:<34}", get(c));
        }
        println!();
    }
}

fn table3() {
    println!("\nTABLE III — fault models (all supported; see examples/fault_model_zoo.rs)");
    println!("  transient    bit flipped at an arbitrary (random or directed) cycle/instruction");
    println!("  intermittent bit stuck at 0/1 from a start cycle for an arbitrary window");
    println!("  permanent    bit stuck at 0/1 for the whole run");
    println!("  multiplicity multiple bits per entry, multiple entries, multiple structures");
}

fn table4() {
    println!("\nTABLE IV — injectable structures per injector");
    for dispatcher in setups::all() {
        println!("\n{}:", dispatcher.name());
        println!(
            "  {:<12} {:>9} {:>7} {:>12}",
            "structure", "entries", "bits", "total bits"
        );
        for d in dispatcher.structures() {
            println!(
                "  {:<12} {:>9} {:>7} {:>12}",
                d.id.name(),
                d.entries,
                d.bits,
                d.total_bits()
            );
        }
    }
}

fn sampling() {
    use difi::util::stats::{achieved_error_margin, sample_size};
    println!("\n§IV.A — statistical fault sampling (Leveugle et al. [20])");
    let pop = 32u64 * 1024 * 8 * 10_000_000; // representative population
    println!(
        "  99% confidence, 3% error margin → {} injections (paper: 1843)",
        sample_size(pop, 0.99, 0.03)
    );
    println!(
        "  99% confidence, 5% error margin → {} injections (paper: 663)",
        sample_size(pop, 0.99, 0.05)
    );
    println!(
        "  2000 injections → {:.2}% error margin (paper: 2.88%)",
        100.0 * achieved_error_margin(pop, 0.99, 2000)
    );
}

fn remarks(opts: &Opts) {
    println!("\nRuntime statistics behind Remarks 1–11 (fault-free runs)");
    println!(
        "{:<10} {:<10} {:>7} {:>11} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "injector",
        "bench",
        "ipc",
        "ld iss/com",
        "replay",
        "mispred%",
        "l1d rh%",
        "l1d wh%",
        "l1i repl",
        "hyp"
    );
    for dispatcher in setups::all() {
        for bench in &opts.benches {
            let program = build(*bench, dispatcher.isa()).expect("assembles");
            let mut core = boot(dispatcher.name(), &program);
            let run = core.run(
                &[],
                &EngineLimits {
                    max_cycles: 200_000_000,
                    early_stop: false,
                    deadlock_window: 200_000,
                },
            );
            let s = run.stats;
            println!(
                "{:<10} {:<10} {:>7.2} {:>11} {:>7} {:>8.2} {:>8.1} {:>8.1} {:>8} {:>8}",
                dispatcher.name(),
                bench.name(),
                s.ipc(),
                format!("{:.2}", s.load_issue_ratio()),
                s.load_replays,
                100.0 * s.mispredict_rate(),
                100.0 * s.l1d_read_hit_rate(),
                100.0 * s.l1d_write_hit_rate(),
                s.l1i.replacements,
                s.hypervisor_calls,
            );
        }
    }
}

fn boot(name: &str, program: &Program) -> OoOCore {
    match name {
        "MaFIN-x86" => MaFin::new().boot(program),
        "GeFIN-x86" => GeFin::x86().boot(program),
        _ => GeFin::arm().boot(program),
    }
}

fn speedup(opts: &Opts) {
    println!("\n§III.B.2 — early-stop optimization speedup (paper: 30–70% per run)");
    let mafin = MaFin::new();
    let bench = Bench::Sha;
    let program = build(bench, mafin.isa()).expect("assembles");
    let golden = golden_run(&mafin, &program, 200_000_000);
    for structure in [
        StructureId::IntRegFile,
        StructureId::L1dData,
        StructureId::L2Data,
    ] {
        let desc = difi::core::dispatch::structure_desc(&mafin, structure)
            .expect("figure structures are injectable");
        let masks = MaskGenerator::new(opts.seed).transient(
            &desc,
            golden.cycles_measured(),
            opts.injections,
        );
        let mut cfg = CampaignConfig {
            threads: 1,
            ..Default::default()
        };
        cfg.early_stop = false;
        let t0 = Instant::now();
        let slow = run_campaign(&mafin, &program, structure, opts.seed, &masks, &cfg);
        let t_slow = t0.elapsed();
        cfg.early_stop = true;
        let t0 = Instant::now();
        let fast = run_campaign(&mafin, &program, structure, opts.seed, &masks, &cfg);
        let t_fast = t0.elapsed();
        // Sum only measured runs: statically-pruned masks never executed and
        // carry no cycle count.
        let cyc =
            |log: &CampaignLog| -> u64 { log.runs.iter().filter_map(|r| r.result.cycles).sum() };
        let (cs, cf) = (cyc(&slow), cyc(&fast));
        println!(
            "  {:<12} simulated cycles {:>12} → {:>12}  ({:.0}% saved)   wall {:?} → {:?}",
            structure.name(),
            cs,
            cf,
            100.0 * (1.0 - cf as f64 / cs as f64),
            t_slow,
            t_fast
        );
        // Classifications must agree (early stop is sound).
        assert_eq!(
            classify_log(&slow).vulnerability(),
            classify_log(&fast).vulnerability(),
            "early stop must not change the verdicts"
        );
    }
}

fn overhead(_opts: &Opts) {
    println!("\n§III.C — MARSS data-array extension cost (paper: ≈40% throughput)");
    let full = mars_config();
    let perf = difi::mars::perf_only_config();
    for bench in [Bench::Sha, Bench::Cjpeg, Bench::Caes] {
        let program = build(bench, Isa::X86e).expect("assembles");
        let wall = |cfg| {
            let mut core = OoOCore::new(cfg, &program);
            let t0 = Instant::now();
            let run = core.run(
                &[],
                &EngineLimits {
                    max_cycles: 200_000_000,
                    early_stop: false,
                    deadlock_window: 200_000,
                },
            );
            assert!(matches!(run.exit, difi::uarch::SimExit::Exited(0)));
            t0.elapsed()
        };
        let t_perf = wall(perf);
        let t_full = wall(full);
        println!(
            "  {:<8} perf-only {:?} → with data arrays {:?}  (+{:.0}%)",
            bench.name(),
            t_perf,
            t_full,
            100.0 * (t_full.as_secs_f64() / t_perf.as_secs_f64() - 1.0)
        );
    }
}
