//! Benchmark harness (binaries in src/bin, plain-`Instant` benches in benches/).
