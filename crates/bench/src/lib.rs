//! Benchmark harness (binaries in src/bin, criterion benches in benches/).
