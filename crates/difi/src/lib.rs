//! # difi — differential fault injection on microarchitectural simulators
//!
//! The facade crate of the workspace reproducing *"Differential Fault
//! Injection on Microarchitectural Simulators"* (Kaliorakis, Tselonis,
//! Chatzidimitriou, Foutris, Gizopoulos — IISWC 2015).
//!
//! It re-exports the whole stack and provides the paper's three experimental
//! configurations ([`setups`]): **MaFIN-x86** (MARSS-flavoured MarsSim),
//! **GeFIN-x86** and **GeFIN-ARM** (gem5-flavoured GemSim).
//!
//! ## Quickstart
//!
//! ```
//! use difi::prelude::*;
//!
//! # fn main() -> Result<(), difi_util::Error> {
//! // Build a benchmark for the MaFIN setup, generate masks, run a tiny
//! // campaign, classify it.
//! let mafin = MaFin::new();
//! let program = build(Bench::Sha, mafin.isa())?;
//! let golden = golden_run(&mafin, &program, 50_000_000);
//!
//! let desc = difi_core::dispatch::structure_desc(&mafin, StructureId::IntRegFile).unwrap();
//! let masks = MaskGenerator::new(42).transient(&desc, golden.cycles_measured(), 5);
//! let log = run_campaign(&mafin, &program, StructureId::IntRegFile, 42, &masks,
//!                        &CampaignConfig::default());
//! let counts = classify_log(&log);
//! assert_eq!(counts.total(), 5);
//! # Ok(())
//! # }
//! ```

pub use difi_ace as ace;
pub use difi_core as core;
pub use difi_gem as gem;
pub use difi_isa as isa;
pub use difi_mars as mars;
pub use difi_obs as obs;
pub use difi_uarch as uarch;
pub use difi_util as util;
pub use difi_workloads as workloads;

/// The paper's three experimental setups.
pub mod setups {
    use difi_core::InjectorDispatcher;

    /// Boxed dispatchers for MaFIN-x86, GeFIN-x86, GeFIN-ARM — the three
    /// bars of every figure, in the paper's order.
    pub fn all() -> Vec<Box<dyn InjectorDispatcher + Send>> {
        vec![
            Box::new(difi_mars::MaFin::new()),
            Box::new(difi_gem::GeFin::x86()),
            Box::new(difi_gem::GeFin::arm()),
        ]
    }

    /// The five structures the paper characterizes (Figs. 2–6), in figure
    /// order.
    pub fn figure_structures() -> [(difi_uarch::StructureId, &'static str); 5] {
        use difi_uarch::StructureId as S;
        [
            (S::IntRegFile, "Fig. 2 — integer physical register file"),
            (S::L1dData, "Fig. 3 — L1D cache (data arrays)"),
            (S::L1iData, "Fig. 4 — L1I cache (instruction arrays)"),
            (S::L2Data, "Fig. 5 — L2 cache (data arrays)"),
            (S::LsqData, "Fig. 6 — Load/Store Queue (data field)"),
        ]
    }
}

/// One-stop imports for examples and tools.
pub mod prelude {
    pub use crate::setups;
    pub use difi_ace::{AceProfile, ArchRegAvf, Liveness, RegSet, SiteClass, StaticAvf};
    pub use difi_core::campaign::{
        golden_run, run_campaign, run_campaign_checkpointed, run_campaign_collapsed,
        run_campaign_pruned, CampaignConfig, CampaignRunner, CollapsedCampaign, PrunedCampaign,
        Strategy,
    };
    pub use difi_core::classify::{Classifier, FineOutcome, Outcome};
    pub use difi_core::dispatch::GoldenSnapshot;
    pub use difi_core::journal::{load_journal, CampaignHeader, JournalContents};
    pub use difi_core::logs::{CampaignLog, RunLog};
    pub use difi_core::masks::{
        partition_equivalence, partition_provably_masked, spec_provably_masked, MaskClass,
        MaskGenerator, MaskPartition,
    };
    pub use difi_core::model::{
        ClassProvenance, EarlyStop, FaultDuration, FaultKindSer, FaultRecord, InjectTime,
        InjectionSpec, ProofKind, RawRunResult, RunLimits, RunStatus,
    };
    pub use difi_core::report::{
        classify_log, classify_log_with, AvfComparison, AvfRow, ClassCounts, CollapseReport,
        CollapseRow, Figure, FigureRow, LatencyReport, LatencyRow,
    };
    pub use difi_core::sink::{
        JournalSink, MemorySink, MemoryTraceSink, MetricsSink, ProgressSink, RunSink, TraceSink,
    };
    pub use difi_core::InjectorDispatcher;
    pub use difi_gem::{gem_config, GeFin};
    pub use difi_isa::program::{Isa, Program};
    pub use difi_mars::{mars_config, MaFin};
    pub use difi_obs::metrics::{Counter, CycleHistogram, Gauge, MetricsRegistry};
    pub use difi_obs::trace::{FaultTrace, TraceEvent, TraceEventKind};
    pub use difi_uarch::fault::{StructureDesc, StructureId};
    pub use difi_uarch::residency::{Instrument, ResidencyLog};
    pub use difi_workloads::{build, reference_output, Bench};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn setups_are_the_papers_three() {
        let names: Vec<String> = setups::all().iter().map(|d| d.name().to_string()).collect();
        assert_eq!(names, ["MaFIN-x86", "GeFIN-x86", "GeFIN-ARM"]);
    }

    #[test]
    fn figure_structures_match_figs_2_to_6() {
        let s = setups::figure_structures();
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].0, StructureId::IntRegFile);
        assert_eq!(s[4].0, StructureId::LsqData);
    }
}
