//! # difi-gem
//!
//! **GemSim** — the gem5-flavoured out-of-order simulator for x86e *and*
//! arme — and **GeFIN**, the gem5-based fault injector built on it.
//!
//! GemSim reproduces the gem5 properties the paper's differential analysis
//! rests on (Table II columns 2–3, plus the behaviours of Remarks 1, 3, 6,
//! 8):
//!
//! * OoO pipeline, 40-entry ROB, 32-entry issue queue, **split 16/16
//!   load/store queues where only the store queue holds data**;
//! * 256 integer + 128 FP physical registers;
//! * **conservative load issue**: loads wait for all older store addresses;
//! * the whole system handled internally — kernel accesses travel **through
//!   the cache hierarchy**; strict write-back memory (a dirty line is the
//!   only copy);
//! * tournament predictor whose chooser (and global component) are indexed
//!   purely by the **global history**; one direct-mapped 2K-entry BTB;
//! * **compact checking**: undecodable bytes become ISA faults raised at
//!   commit (squashed on the wrong path) and internal anomalies surface as
//!   simulator crashes rather than assertions.
//!
//! Per-ISA functional units follow Table II: the x86 model is wide (6 int
//! ALUs, 4 FP), the ARM model narrow (2 int ALUs, 2 FP).
//!
//! ```
//! use difi_gem::GeFin;
//! use difi_core::{InjectorDispatcher, InjectionSpec, RunLimits};
//! use difi_isa::asm::Asm;
//! use difi_isa::program::Isa;
//!
//! # fn main() -> Result<(), difi_util::Error> {
//! let mut a = Asm::new(Isa::Arme);
//! a.li(4, 11);
//! a.write_int(4);
//! a.exit(0);
//! let prog = a.finish("eleven")?;
//! let gefin = GeFin::arm();
//! let golden = gefin.run(&prog, &InjectionSpec { id: 0, faults: vec![] },
//!                        &RunLimits::golden(1_000_000));
//! assert_eq!(golden.output, b"11\n");
//! # Ok(())
//! # }
//! ```

use difi_core::model::{InjectionSpec, RawRunResult, RunLimits};
use difi_core::substrate::{
    capture_snapshots, cold_run, recording_run, residency_run, traced_cold_run, traced_warm_run,
    warm_run,
};
use difi_core::{GoldenSnapshot, InjectorDispatcher};
use difi_isa::program::{Isa, Program};
use difi_obs::trace::FaultTrace;
use difi_uarch::cache::CacheConfig;
use difi_uarch::fault::{StructureDesc, StructureId};
use difi_uarch::pipeline::{BtbOrg, CoreConfig, CorePolicy, LsqOrg, OoOCore};
use difi_uarch::predictor::TournamentConfig;
use difi_uarch::residency::ResidencyLog;

/// The GemSim core configuration for one ISA (Table II, gem5 columns).
pub fn gem_config(isa: Isa) -> CoreConfig {
    let (int_alus, mul_div, fp_units) = match isa {
        // gem5/x86: 6 int ALUs, 2 complex int, 4 FP (+ SIMD, unmodeled).
        Isa::X86e => (6, 2, 4),
        // gem5/ARM: 2 int ALUs, 1 complex int, 2 FP & SIMD.
        Isa::Arme => (2, 1, 2),
    };
    CoreConfig {
        int_prf: 256,
        fp_prf: 128,
        iq_entries: 32,
        rob_entries: 40,
        lsq: LsqOrg::Split {
            loads: 16,
            stores: 16,
        },
        width: 4,
        fetch_bytes: 16,
        int_alus,
        mul_div_units: mul_div,
        fp_units,
        mem_ports: 2,
        ras_depth: 16,
        predictor: TournamentConfig::GEM5,
        btb: BtbOrg::Gem5Unified,
        l1i: CacheConfig::L1,
        l1d: CacheConfig::L1,
        l2: CacheConfig::L2,
        policy: CorePolicy {
            aggressive_loads: false,
            hypervisor_kernel: false,
            store_through: false,
            decode_fault_asserts: false,
            payload_error_asserts: false,
            rich_asserts: false,
            prefetchers: false,
            model_cache_data: true,
        },
    }
}

/// **GeFIN** — the gem5-based fault injector dispatcher for one ISA.
#[derive(Debug, Clone)]
pub struct GeFin {
    cfg: CoreConfig,
    isa: Isa,
    name: &'static str,
}

impl GeFin {
    /// GeFIN over the gem5/x86 configuration.
    pub fn x86() -> GeFin {
        GeFin {
            cfg: gem_config(Isa::X86e),
            isa: Isa::X86e,
            name: "GeFIN-x86",
        }
    }

    /// GeFIN over the gem5/ARM configuration.
    pub fn arm() -> GeFin {
        GeFin {
            cfg: gem_config(Isa::Arme),
            isa: Isa::Arme,
            name: "GeFIN-ARM",
        }
    }

    /// GeFIN over a custom configuration.
    pub fn with_config(isa: Isa, cfg: CoreConfig) -> GeFin {
        GeFin {
            cfg,
            isa,
            name: match isa {
                Isa::X86e => "GeFIN-x86",
                Isa::Arme => "GeFIN-ARM",
            },
        }
    }

    /// The underlying core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Boots a fresh GemSim instance for one run.
    pub fn boot(&self, program: &Program) -> OoOCore {
        OoOCore::new(self.cfg, program)
    }
}

impl InjectorDispatcher for GeFin {
    fn name(&self) -> &str {
        self.name
    }

    fn isa(&self) -> Isa {
        self.isa
    }

    fn structures(&self) -> Vec<StructureDesc> {
        OoOCore::structures(&self.cfg)
    }

    fn run(&self, program: &Program, spec: &InjectionSpec, limits: &RunLimits) -> RawRunResult {
        assert_eq!(program.isa, self.isa, "program ISA must match the model");
        cold_run(self.cfg, program, spec, limits)
    }

    fn golden_snapshots(
        &self,
        program: &Program,
        at_cycles: &[u64],
        limits: &RunLimits,
    ) -> Option<Vec<GoldenSnapshot>> {
        assert_eq!(program.isa, self.isa, "program ISA must match the model");
        Some(capture_snapshots(
            OoOCore::new(self.cfg, program),
            at_cycles,
            limits,
        ))
    }

    fn run_from(
        &self,
        snap: &GoldenSnapshot,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
    ) -> RawRunResult {
        // A foreign snapshot falls back to the always-correct cold path.
        warm_run(snap, spec, limits).unwrap_or_else(|| self.run(program, spec, limits))
    }

    fn golden_residency(
        &self,
        program: &Program,
        structures: &[StructureId],
        max_cycles: u64,
    ) -> Vec<ResidencyLog> {
        assert_eq!(program.isa, self.isa, "program ISA must match the model");
        residency_run(self.cfg, program, structures, max_cycles)
    }

    fn golden_run_recording(
        &self,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
    ) -> (RawRunResult, Option<std::sync::Arc<Vec<u64>>>) {
        assert_eq!(program.isa, self.isa, "program ISA must match the model");
        recording_run(self.cfg, program, spec, limits)
    }

    fn run_traced(
        &self,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
        golden_sig: Option<&std::sync::Arc<Vec<u64>>>,
    ) -> (RawRunResult, Option<FaultTrace>) {
        assert_eq!(program.isa, self.isa, "program ISA must match the model");
        traced_cold_run(self.cfg, program, spec, limits, golden_sig)
    }

    fn run_from_traced(
        &self,
        snap: &GoldenSnapshot,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
        golden_sig: Option<&std::sync::Arc<Vec<u64>>>,
    ) -> (RawRunResult, Option<FaultTrace>) {
        // A foreign snapshot falls back to the always-correct cold path.
        traced_warm_run(snap, spec, limits, golden_sig)
            .unwrap_or_else(|| self.run_traced(program, spec, limits, golden_sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difi_uarch::fault::StructureId;

    #[test]
    fn configs_match_table_ii() {
        let x = gem_config(Isa::X86e);
        assert_eq!(x.int_prf, 256);
        assert_eq!(x.fp_prf, 128);
        assert_eq!(x.rob_entries, 40);
        assert_eq!(
            x.lsq,
            LsqOrg::Split {
                loads: 16,
                stores: 16
            }
        );
        assert_eq!(x.int_alus, 6);
        let a = gem_config(Isa::Arme);
        assert_eq!(a.int_alus, 2);
        assert_eq!(a.fp_units, 2);
        assert!(!a.policy.aggressive_loads);
        assert!(!a.policy.hypervisor_kernel);
        assert!(x.validate().is_ok() && a.validate().is_ok());
    }

    #[test]
    fn lsq_data_plane_is_store_queue_only() {
        let g = GeFin::x86();
        let s = g.structures();
        let lsq = s.iter().find(|d| d.id == StructureId::LsqData).unwrap();
        assert_eq!(
            lsq.entries, 16,
            "only the 16-entry store queue holds data (Remark 1)"
        );
        let btb = s.iter().find(|d| d.id == StructureId::Btb).unwrap();
        assert_eq!(btb.entries, 2048, "direct-mapped 2K unified BTB");
        let fp = s.iter().find(|d| d.id == StructureId::FpRegFile).unwrap();
        assert_eq!(fp.entries, 128);
    }

    #[test]
    fn names_and_isas() {
        assert_eq!(GeFin::x86().name(), "GeFIN-x86");
        assert_eq!(GeFin::arm().name(), "GeFIN-ARM");
        assert_eq!(GeFin::arm().isa(), Isa::Arme);
    }
}
