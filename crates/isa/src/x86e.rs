//! The **x86e** instruction set: an x86-flavoured variable-length CISC
//! encoding.
//!
//! Design points mirroring x86 (and therefore MARSS's and gem5's x86
//! decoders) that matter to the fault-injection study:
//!
//! * **Variable length** (1–10 bytes): a single corrupted bit in the L1I
//!   cache can change an instruction's length and de-synchronise decoding of
//!   everything after it — a major source of the Crash/Assert outcomes the
//!   paper observes for instruction-cache faults.
//! * **Two-operand destructive ALU** plus **memory-operand forms** that the
//!   decoder cracks into load + ALU µop pairs, like a real x86 front-end.
//! * A **FLAGS register** written by `cmp`/`fcmp` and read by `jcc`.
//! * **Stack-based call/ret** (every call is also a store, every return a
//!   load), giving x86e more data-memory traffic than arme.
//! * Unaligned memory access is architecturally allowed.
//!
//! ## Encoding summary
//!
//! ```text
//! 0x01                nop
//! 0x02                ret                  (load t0,[sp]; sp+=8; jmp t0)
//! 0x03                syscall
//! 0x04 ii             hint imm8            (logged, otherwise a nop)
//! 0x05 mr             jmp  reg             (reg in high nibble)
//! 0x06 dddd           jmp  rel32
//! 0x07 dddd           call rel32           (t0=ret; [sp-8]=t0; sp-=8; jmp)
//! 0x10+op mr          alu64  rd, rb        rd = rd op rb
//! 0x20+op mr ii       alu64  rd, imm8
//! 0x30+op mr iiii     alu64  rd, imm32
//! 0x40+op mr          alu32  rd, rb
//! 0x50+op mr ii       alu32  rd, imm8
//! 0x60+op mr iiii     alu32  rd, imm32
//! 0x70+cc dd dd       jcc  rel16
//! 0x80+w mr ii        load  zx, disp8      rd, [base+disp]
//! 0x84+w mr ii        load  sx, disp8
//! 0x88+w mr iiii      load  zx, disp32
//! 0x8C+w mr iiii      load  sx, disp32
//! 0x90+w mr ii        store disp8          [base+disp], rs
//! 0x94+w mr iiii      store disp32
//! 0x98 mr i*8         movabs rd, imm64
//! 0xA0+op mr ii       alu64  rd, [base+disp8]   (op in add..xor)
//! 0xA8+op mr iiii     alu64  rd, [base+disp32]
//! 0xB0 mr             fcmp  fa, fb         (writes FLAGS)
//! 0xB1 mr ii          fload  fd, [base+disp8]
//! 0xB2 mr iiii        fload  fd, [base+disp32]
//! 0xB3 mr ii          fstore [base+disp8], fs
//! 0xB4 mr iiii        fstore [base+disp32], fs
//! 0xB5 mr             cvtif fd, ra
//! 0xB6 mr             cvtfi rd, fa
//! 0xB7 mr             movif fd, ra         (bitcast)
//! 0xB8 mr             movfi rd, fa         (bitcast)
//! 0xC0+f mr           fp arith  fd = fd op fb   (f: add,sub,mul,div)
//! 0xC4 mr             fneg fd, fb
//! 0xC5 mr             fabs fd, fb
//! 0xC6 mr             fsqrt fd, fb
//! 0xC7 mr             fmov fd, fb
//! ```
//!
//! `mr` is a mod-reg byte: high nibble = first register, low nibble = second.
//! All displacements/immediates are little-endian and sign-extended. Branch
//! displacements are relative to the *end* of the instruction. All other
//! opcode bytes are illegal.

use crate::uop::{BranchKind, Cond, Decoded, FpOp, IntOp, Reg, Uop, UopKind, Width};

/// Opcode of `nop`.
pub const OPC_NOP: u8 = 0x01;
/// Opcode of `ret`.
pub const OPC_RET: u8 = 0x02;
/// Opcode of `syscall`.
pub const OPC_SYSCALL: u8 = 0x03;
/// Opcode of `hint`.
pub const OPC_HINT: u8 = 0x04;
/// Opcode of the indirect jump.
pub const OPC_JMP_REG: u8 = 0x05;
/// Opcode of the direct jump.
pub const OPC_JMP: u8 = 0x06;
/// Opcode of the direct call.
pub const OPC_CALL: u8 = 0x07;

#[inline]
fn mr(hi: u8, lo: u8) -> u8 {
    debug_assert!(hi < 16 && lo < 16);
    hi << 4 | lo
}

// ---------------------------------------------------------------------------
// Encoding helpers (used by the `asm` backend and by tests).
// ---------------------------------------------------------------------------

/// Encodes `nop`.
pub fn encode_nop() -> Vec<u8> {
    vec![OPC_NOP]
}

/// Encodes `ret`.
pub fn encode_ret() -> Vec<u8> {
    vec![OPC_RET]
}

/// Encodes `syscall`.
pub fn encode_syscall() -> Vec<u8> {
    vec![OPC_SYSCALL]
}

/// Encodes `hint imm8` (the tolerated-opcode DUE source).
pub fn encode_hint(code: u8) -> Vec<u8> {
    vec![OPC_HINT, code]
}

/// Encodes a register-register ALU operation `rd = rd op rb`.
pub fn encode_alu_rr(op: IntOp, w32: bool, rd: u8, rb: u8) -> Vec<u8> {
    let base = if w32 { 0x40 } else { 0x10 };
    vec![base + op.index(), mr(rd, rb)]
}

/// Encodes a register-immediate ALU operation `rd = rd op imm`.
/// Chooses the imm8 form when the value fits.
pub fn encode_alu_ri(op: IntOp, w32: bool, rd: u8, imm: i32) -> Vec<u8> {
    if (-128..=127).contains(&imm) {
        let base = if w32 { 0x50 } else { 0x20 };
        vec![base + op.index(), mr(rd, 0), imm as i8 as u8]
    } else {
        let base = if w32 { 0x60 } else { 0x30 };
        let mut v = vec![base + op.index(), mr(rd, 0)];
        v.extend_from_slice(&imm.to_le_bytes());
        v
    }
}

/// Encodes `movabs rd, imm64`.
pub fn encode_movabs(rd: u8, imm: u64) -> Vec<u8> {
    let mut v = vec![0x98, mr(rd, 0)];
    v.extend_from_slice(&imm.to_le_bytes());
    v
}

/// Encodes a load `rd = [base + disp]`, picking the disp8 form when possible.
pub fn encode_load(w: Width, signed: bool, rd: u8, base: u8, disp: i32) -> Vec<u8> {
    if (-128..=127).contains(&disp) {
        let opc = if signed { 0x84 } else { 0x80 } + w.code();
        vec![opc, mr(rd, base), disp as i8 as u8]
    } else {
        let opc = if signed { 0x8C } else { 0x88 } + w.code();
        let mut v = vec![opc, mr(rd, base)];
        v.extend_from_slice(&disp.to_le_bytes());
        v
    }
}

/// Encodes a store `[base + disp] = rs`.
pub fn encode_store(w: Width, rs: u8, base: u8, disp: i32) -> Vec<u8> {
    if (-128..=127).contains(&disp) {
        vec![0x90 + w.code(), mr(rs, base), disp as i8 as u8]
    } else {
        let mut v = vec![0x94 + w.code(), mr(rs, base)];
        v.extend_from_slice(&disp.to_le_bytes());
        v
    }
}

/// Encodes a memory-operand ALU `rd = rd op [base + disp]` (64-bit;
/// `op` must be `Add`, `Sub`, `And`, `Or` or `Xor`).
///
/// # Panics
///
/// Panics if `op` is not one of the five foldable operations.
pub fn encode_alu_mem(op: IntOp, rd: u8, base: u8, disp: i32) -> Vec<u8> {
    assert!(
        op.index() <= 4,
        "only add/sub/and/or/xor fold a memory operand"
    );
    if (-128..=127).contains(&disp) {
        vec![0xA0 + op.index(), mr(rd, base), disp as i8 as u8]
    } else {
        let mut v = vec![0xA8 + op.index(), mr(rd, base)];
        v.extend_from_slice(&disp.to_le_bytes());
        v
    }
}

/// Encodes `jcc rel16`; `disp` is relative to the end of the instruction.
pub fn encode_jcc(cond: Cond, disp: i16) -> Vec<u8> {
    let mut v = vec![0x70 + cond.index()];
    v.extend_from_slice(&disp.to_le_bytes());
    v
}

/// Encodes `jmp rel32`.
pub fn encode_jmp(disp: i32) -> Vec<u8> {
    let mut v = vec![OPC_JMP];
    v.extend_from_slice(&disp.to_le_bytes());
    v
}

/// Encodes `call rel32`.
pub fn encode_call(disp: i32) -> Vec<u8> {
    let mut v = vec![OPC_CALL];
    v.extend_from_slice(&disp.to_le_bytes());
    v
}

/// Encodes the indirect `jmp reg`.
pub fn encode_jmp_reg(r: u8) -> Vec<u8> {
    vec![OPC_JMP_REG, mr(r, 0)]
}

/// Encodes `fcmp fa, fb` (writes FLAGS).
pub fn encode_fcmp(fa: u8, fb: u8) -> Vec<u8> {
    vec![0xB0, mr(fa, fb)]
}

/// Encodes `fload fd, [base + disp]`.
pub fn encode_fload(fd: u8, base: u8, disp: i32) -> Vec<u8> {
    if (-128..=127).contains(&disp) {
        vec![0xB1, mr(fd, base), disp as i8 as u8]
    } else {
        let mut v = vec![0xB2, mr(fd, base)];
        v.extend_from_slice(&disp.to_le_bytes());
        v
    }
}

/// Encodes `fstore [base + disp], fs`.
pub fn encode_fstore(fs: u8, base: u8, disp: i32) -> Vec<u8> {
    if (-128..=127).contains(&disp) {
        vec![0xB3, mr(fs, base), disp as i8 as u8]
    } else {
        let mut v = vec![0xB4, mr(fs, base)];
        v.extend_from_slice(&disp.to_le_bytes());
        v
    }
}

/// Encodes `cvtif fd, ra` (int → f64).
pub fn encode_cvtif(fd: u8, ra: u8) -> Vec<u8> {
    vec![0xB5, mr(fd, ra)]
}

/// Encodes `cvtfi rd, fa` (f64 → int, truncating).
pub fn encode_cvtfi(rd: u8, fa: u8) -> Vec<u8> {
    vec![0xB6, mr(rd, fa)]
}

/// Encodes `movif fd, ra` (bitcast).
pub fn encode_movif(fd: u8, ra: u8) -> Vec<u8> {
    vec![0xB7, mr(fd, ra)]
}

/// Encodes `movfi rd, fa` (bitcast).
pub fn encode_movfi(rd: u8, fa: u8) -> Vec<u8> {
    vec![0xB8, mr(rd, fa)]
}

/// Encodes a binary FP arithmetic op `fd = fd op fb`
/// (`Add`, `Sub`, `Mul`, `Div`).
///
/// # Panics
///
/// Panics for non-binary FP operations.
pub fn encode_fp_rr(op: FpOp, fd: u8, fb: u8) -> Vec<u8> {
    let idx = op.index();
    assert!(idx <= 3, "encode_fp_rr takes add/sub/mul/div");
    vec![0xC0 + idx, mr(fd, fb)]
}

/// Encodes a unary FP op `fd = op fb` (`Neg`, `Abs`, `Sqrt`, `Mov`).
///
/// # Panics
///
/// Panics for operations without a unary encoding.
pub fn encode_fp_unary(op: FpOp, fd: u8, fb: u8) -> Vec<u8> {
    let opc = match op {
        FpOp::Neg => 0xC4,
        FpOp::Abs => 0xC5,
        FpOp::Sqrt => 0xC6,
        FpOp::Mov => 0xC7,
        _ => panic!("not a unary fp op"),
    };
    vec![opc, mr(fd, fb)]
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

#[inline]
fn rd_hi(m: u8) -> Reg {
    Reg(m >> 4)
}

#[inline]
fn rg_lo(m: u8) -> Reg {
    Reg(m & 0xF)
}

#[inline]
fn fd_hi(m: u8) -> Option<Reg> {
    let i = m >> 4;
    (i < 8).then(|| Reg::fpr(i))
}

#[inline]
fn fg_lo(m: u8) -> Option<Reg> {
    let i = m & 0xF;
    (i < 8).then(|| Reg::fpr(i))
}

fn i8_at(b: &[u8], i: usize) -> Option<i64> {
    b.get(i).map(|&x| x as i8 as i64)
}

fn i16_at(b: &[u8], i: usize) -> Option<i64> {
    Some(i16::from_le_bytes([*b.get(i)?, *b.get(i + 1)?]) as i64)
}

fn i32_at(b: &[u8], i: usize) -> Option<i64> {
    Some(i32::from_le_bytes([*b.get(i)?, *b.get(i + 1)?, *b.get(i + 2)?, *b.get(i + 3)?]) as i64)
}

fn u64_at(b: &[u8], i: usize) -> Option<u64> {
    if b.len() < i + 8 {
        return None;
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[i..i + 8]);
    Some(u64::from_le_bytes(a))
}

/// Builds the µop sequence of an ALU instruction, handling `Mov` and
/// `CmpFlags` special destinations.
fn alu_uop(op: IntOp, width: Width, rd: Reg, src_reg: Option<Reg>, imm: i64) -> Uop {
    match op {
        IntOp::Mov => Uop::alu(op, width, rd, src_reg, None, imm),
        IntOp::CmpFlags => Uop::alu(op, width, Reg::FLAGS, Some(rd), src_reg, imm),
        _ => Uop::alu(op, width, rd, Some(rd), src_reg, imm),
    }
}

/// Decodes one x86e instruction at `pc` from `bytes` (byte 0 = byte at `pc`).
///
/// Returns [`Decoded::illegal`] for reserved encodings or truncated input.
pub fn decode(bytes: &[u8], pc: u64) -> Decoded {
    let Some(&opc) = bytes.first() else {
        return Decoded::illegal(1);
    };
    let one = |u: Uop, len: u8| Decoded {
        len,
        uops: vec![u],
        fault: None,
    };
    match opc {
        OPC_NOP => one(Uop::nop(), 1),
        OPC_RET => {
            // load t0, [sp]; sp += 8; jmp t0 (return-flavoured)
            let ld = Uop::load(Width::B8, false, Reg::T0, Reg::SP, 0);
            let add = Uop::alu(IntOp::Add, Width::B8, Reg::SP, Some(Reg::SP), None, 8);
            let mut j = Uop::nop();
            j.kind = UopKind::Branch;
            j.branch = BranchKind::Ret;
            j.ra = Some(Reg::T0);
            Decoded {
                len: 1,
                uops: vec![ld, add, j],
                fault: None,
            }
        }
        OPC_SYSCALL => {
            let mut u = Uop::nop();
            u.kind = UopKind::Syscall;
            one(u, 1)
        }
        OPC_HINT => {
            if bytes.len() < 2 {
                return Decoded::illegal(1);
            }
            let mut u = Uop::nop();
            u.kind = UopKind::Hint;
            u.imm = bytes[1] as i64;
            one(u, 2)
        }
        OPC_JMP_REG => {
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let mut u = Uop::nop();
            u.kind = UopKind::Branch;
            u.branch = BranchKind::JumpInd;
            u.ra = Some(rd_hi(m));
            one(u, 2)
        }
        OPC_JMP => {
            let Some(d) = i32_at(bytes, 1) else {
                return Decoded::illegal(1);
            };
            let mut u = Uop::nop();
            u.kind = UopKind::Branch;
            u.branch = BranchKind::Jump;
            u.target = pc.wrapping_add(5).wrapping_add(d as u64);
            one(u, 5)
        }
        OPC_CALL => {
            let Some(d) = i32_at(bytes, 1) else {
                return Decoded::illegal(1);
            };
            let ret_addr = pc.wrapping_add(5);
            let target = ret_addr.wrapping_add(d as u64);
            // t0 = ret_addr; [sp-8] = t0; sp -= 8; call target
            let mv = Uop::alu(IntOp::Mov, Width::B8, Reg::T0, None, None, ret_addr as i64);
            let st = Uop::store(Width::B8, Reg::T0, Reg::SP, -8);
            let sub = Uop::alu(IntOp::Sub, Width::B8, Reg::SP, Some(Reg::SP), None, 8);
            let mut j = Uop::nop();
            j.kind = UopKind::Branch;
            j.branch = BranchKind::Call;
            j.target = target;
            Decoded {
                len: 5,
                uops: vec![mv, st, sub, j],
                fault: None,
            }
        }
        // ALU register-register forms.
        0x10..=0x1E | 0x40..=0x4E => {
            let op = IntOp::from_index(opc & 0xF).expect("masked ALU opcode index is in table");
            let w = if opc & 0xF0 == 0x40 {
                Width::B4
            } else {
                Width::B8
            };
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let (rd, rb) = (rd_hi(m), rg_lo(m));
            one(alu_uop(op, w, rd, Some(rb), 0), 2)
        }
        // ALU register-imm8 forms.
        0x20..=0x2E | 0x50..=0x5E => {
            let op = IntOp::from_index(opc & 0xF).expect("masked ALU opcode index is in table");
            let w = if opc & 0xF0 == 0x50 {
                Width::B4
            } else {
                Width::B8
            };
            let (Some(&m), Some(imm)) = (bytes.get(1), i8_at(bytes, 2)) else {
                return Decoded::illegal(1);
            };
            one(alu_uop(op, w, rd_hi(m), None, imm), 3)
        }
        // ALU register-imm32 forms.
        0x30..=0x3E | 0x60..=0x6E => {
            let op = IntOp::from_index(opc & 0xF).expect("masked ALU opcode index is in table");
            let w = if opc & 0xF0 == 0x60 {
                Width::B4
            } else {
                Width::B8
            };
            let (Some(&m), Some(imm)) = (bytes.get(1), i32_at(bytes, 2)) else {
                return Decoded::illegal(1);
            };
            one(alu_uop(op, w, rd_hi(m), None, imm), 6)
        }
        // jcc rel16
        0x70..=0x79 => {
            let cond = Cond::from_index(opc & 0xF).expect("masked jcc opcode index is in table");
            let Some(d) = i16_at(bytes, 1) else {
                return Decoded::illegal(1);
            };
            let mut u = Uop::nop();
            u.kind = UopKind::Branch;
            u.branch = BranchKind::CondDirect;
            u.cond = cond;
            u.cond_on_flags = true;
            u.ra = Some(Reg::FLAGS);
            u.target = pc.wrapping_add(3).wrapping_add(d as u64);
            one(u, 3)
        }
        // Loads.
        0x80..=0x8F => {
            let signed = opc & 0x04 != 0;
            let wide_disp = opc & 0x08 != 0;
            let w = Width::from_code(opc & 3);
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let (disp, len) = if wide_disp {
                match i32_at(bytes, 2) {
                    Some(d) => (d, 6),
                    None => return Decoded::illegal(1),
                }
            } else {
                match i8_at(bytes, 2) {
                    Some(d) => (d, 3),
                    None => return Decoded::illegal(1),
                }
            };
            one(Uop::load(w, signed, rd_hi(m), rg_lo(m), disp), len)
        }
        // Stores.
        0x90..=0x97 => {
            let wide_disp = opc & 0x04 != 0;
            let w = Width::from_code(opc & 3);
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let (disp, len) = if wide_disp {
                match i32_at(bytes, 2) {
                    Some(d) => (d, 6),
                    None => return Decoded::illegal(1),
                }
            } else {
                match i8_at(bytes, 2) {
                    Some(d) => (d, 3),
                    None => return Decoded::illegal(1),
                }
            };
            one(Uop::store(w, rd_hi(m), rg_lo(m), disp), len)
        }
        // movabs
        0x98 => {
            let (Some(&m), Some(imm)) = (bytes.get(1), u64_at(bytes, 2)) else {
                return Decoded::illegal(1);
            };
            one(
                Uop::alu(IntOp::Mov, Width::B8, rd_hi(m), None, None, imm as i64),
                10,
            )
        }
        // Memory-operand ALU (cracked into load + op).
        0xA0..=0xA4 | 0xA8..=0xAC => {
            let op = IntOp::from_index(opc & 0x7).expect("masked ALU opcode index is in table");
            let wide_disp = opc & 0x08 != 0;
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let (disp, len) = if wide_disp {
                match i32_at(bytes, 2) {
                    Some(d) => (d, 6),
                    None => return Decoded::illegal(1),
                }
            } else {
                match i8_at(bytes, 2) {
                    Some(d) => (d, 3),
                    None => return Decoded::illegal(1),
                }
            };
            let rd = rd_hi(m);
            let ld = Uop::load(Width::B8, false, Reg::T0, rg_lo(m), disp);
            let op_uop = Uop::alu(op, Width::B8, rd, Some(rd), Some(Reg::T0), 0);
            Decoded {
                len,
                uops: vec![ld, op_uop],
                fault: None,
            }
        }
        // FP compare → FLAGS.
        0xB0 => {
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let (Some(fa), Some(fb)) = (fd_hi(m), fg_lo(m)) else {
                return Decoded::illegal(2);
            };
            let mut u = Uop::nop();
            u.kind = UopKind::Fp;
            u.fp = FpOp::CmpFlags;
            u.rd = Some(Reg::FLAGS);
            u.ra = Some(fa);
            u.rb = Some(fb);
            one(u, 2)
        }
        // FP load/store.
        0xB1..=0xB4 => {
            let is_store = opc >= 0xB3;
            let wide_disp = opc == 0xB2 || opc == 0xB4;
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let (disp, len) = if wide_disp {
                match i32_at(bytes, 2) {
                    Some(d) => (d, 6),
                    None => return Decoded::illegal(1),
                }
            } else {
                match i8_at(bytes, 2) {
                    Some(d) => (d, 3),
                    None => return Decoded::illegal(1),
                }
            };
            let Some(f) = fd_hi(m) else {
                return Decoded::illegal(len);
            };
            let base = rg_lo(m);
            let u = if is_store {
                Uop::store(Width::B8, f, base, disp)
            } else {
                Uop::load(Width::B8, false, f, base, disp)
            };
            one(u, len)
        }
        // Conversions and bitcasts.
        0xB5..=0xB8 => {
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let mut u = Uop::nop();
            u.kind = UopKind::Fp;
            match opc {
                0xB5 => {
                    let Some(fd) = fd_hi(m) else {
                        return Decoded::illegal(2);
                    };
                    u.fp = FpOp::FromInt;
                    u.rd = Some(fd);
                    u.ra = Some(rg_lo(m));
                }
                0xB6 => {
                    let Some(fa) = fg_lo(m) else {
                        return Decoded::illegal(2);
                    };
                    u.fp = FpOp::ToInt;
                    u.rd = Some(rd_hi(m));
                    u.ra = Some(fa);
                }
                0xB7 => {
                    let Some(fd) = fd_hi(m) else {
                        return Decoded::illegal(2);
                    };
                    u.fp = FpOp::FromBits;
                    u.rd = Some(fd);
                    u.ra = Some(rg_lo(m));
                }
                _ => {
                    let Some(fa) = fg_lo(m) else {
                        return Decoded::illegal(2);
                    };
                    u.fp = FpOp::ToBits;
                    u.rd = Some(rd_hi(m));
                    u.ra = Some(fa);
                }
            }
            one(u, 2)
        }
        // FP arithmetic, destructive binary.
        0xC0..=0xC3 => {
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let (Some(fd), Some(fb)) = (fd_hi(m), fg_lo(m)) else {
                return Decoded::illegal(2);
            };
            let mut u = Uop::nop();
            u.kind = UopKind::Fp;
            u.fp = FpOp::from_index(opc - 0xC0).expect("FP opcode range is in table");
            u.rd = Some(fd);
            u.ra = Some(fd);
            u.rb = Some(fb);
            one(u, 2)
        }
        // FP unary.
        0xC4..=0xC7 => {
            let Some(&m) = bytes.get(1) else {
                return Decoded::illegal(1);
            };
            let (Some(fd), Some(fb)) = (fd_hi(m), fg_lo(m)) else {
                return Decoded::illegal(2);
            };
            let mut u = Uop::nop();
            u.kind = UopKind::Fp;
            u.fp = match opc {
                0xC4 => FpOp::Neg,
                0xC5 => FpOp::Abs,
                0xC6 => FpOp::Sqrt,
                _ => FpOp::Mov,
            };
            u.rd = Some(fd);
            u.ra = Some(fb);
            one(u, 2)
        }
        _ => Decoded::illegal(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(bytes: &[u8]) -> Decoded {
        decode(bytes, 0x10_000)
    }

    #[test]
    fn nop_hint_syscall() {
        assert_eq!(dec(&encode_nop()).uops[0].kind, UopKind::Nop);
        let h = dec(&encode_hint(0x5A));
        assert_eq!(h.uops[0].kind, UopKind::Hint);
        assert_eq!(h.uops[0].imm, 0x5A);
        assert_eq!(dec(&encode_syscall()).uops[0].kind, UopKind::Syscall);
    }

    #[test]
    fn alu_rr_decodes_destructive() {
        let d = dec(&encode_alu_rr(IntOp::Sub, false, 3, 7));
        assert_eq!(d.len, 2);
        let u = &d.uops[0];
        assert_eq!(u.kind, UopKind::Alu);
        assert_eq!(u.alu, IntOp::Sub);
        assert_eq!(u.rd, Some(Reg::gpr(3)));
        assert_eq!(u.ra, Some(Reg::gpr(3)));
        assert_eq!(u.rb, Some(Reg::gpr(7)));
        assert_eq!(u.width, Width::B8);
    }

    #[test]
    fn alu32_has_b4_width() {
        let d = dec(&encode_alu_rr(IntOp::Add, true, 1, 2));
        assert_eq!(d.uops[0].width, Width::B4);
    }

    #[test]
    fn mov_rr_reads_only_source() {
        let d = dec(&encode_alu_rr(IntOp::Mov, false, 4, 9));
        let u = &d.uops[0];
        assert_eq!(u.alu, IntOp::Mov);
        assert_eq!(u.rd, Some(Reg::gpr(4)));
        assert_eq!(u.ra, Some(Reg::gpr(9)));
    }

    #[test]
    fn cmp_writes_flags() {
        let d = dec(&encode_alu_rr(IntOp::CmpFlags, false, 4, 9));
        let u = &d.uops[0];
        assert_eq!(u.rd, Some(Reg::FLAGS));
        assert_eq!(u.ra, Some(Reg::gpr(4)));
        assert_eq!(u.rb, Some(Reg::gpr(9)));
    }

    #[test]
    fn alu_imm_forms_roundtrip() {
        let d = dec(&encode_alu_ri(IntOp::Add, false, 2, 100));
        assert_eq!(d.len, 3);
        assert_eq!(d.uops[0].imm, 100);
        let d = dec(&encode_alu_ri(IntOp::Add, false, 2, -100000));
        assert_eq!(d.len, 6);
        assert_eq!(d.uops[0].imm, -100000);
        let d = dec(&encode_alu_ri(IntOp::Mov, true, 2, -1));
        assert_eq!(d.uops[0].ra, None);
        assert_eq!(d.uops[0].imm, -1);
    }

    #[test]
    fn movabs_roundtrip() {
        let d = dec(&encode_movabs(11, 0xDEAD_BEEF_CAFE_F00D));
        assert_eq!(d.len, 10);
        assert_eq!(d.uops[0].imm as u64, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(d.uops[0].rd, Some(Reg::gpr(11)));
    }

    #[test]
    fn load_store_roundtrip() {
        let d = dec(&encode_load(Width::B2, true, 5, 15, -4));
        assert_eq!(d.len, 3);
        let u = &d.uops[0];
        assert_eq!(u.kind, UopKind::Load);
        assert!(u.signed);
        assert_eq!(u.width, Width::B2);
        assert_eq!(u.ra, Some(Reg::SP));
        assert_eq!(u.imm, -4);

        let d = dec(&encode_store(Width::B4, 2, 3, 1000));
        assert_eq!(d.len, 6);
        let u = &d.uops[0];
        assert_eq!(u.kind, UopKind::Store);
        assert_eq!(u.rb, Some(Reg::gpr(2)));
        assert_eq!(u.imm, 1000);
    }

    #[test]
    fn alu_mem_cracks_into_two_uops() {
        let d = dec(&encode_alu_mem(IntOp::Xor, 6, 1, 24));
        assert_eq!(d.uops.len(), 2);
        assert_eq!(d.uops[0].kind, UopKind::Load);
        assert_eq!(d.uops[0].rd, Some(Reg::T0));
        assert_eq!(d.uops[1].alu, IntOp::Xor);
        assert_eq!(d.uops[1].rb, Some(Reg::T0));
    }

    #[test]
    fn call_cracks_into_stack_push_and_jump() {
        let d = decode(&encode_call(0x40), 0x10_000);
        assert_eq!(d.uops.len(), 4);
        assert_eq!(d.uops[1].kind, UopKind::Store);
        assert_eq!(d.uops[3].branch, BranchKind::Call);
        assert_eq!(d.uops[3].target, 0x10_000 + 5 + 0x40);
        // Return address constant is pc + 5.
        assert_eq!(d.uops[0].imm, 0x10_005);
    }

    #[test]
    fn ret_cracks_into_stack_pop_and_jump() {
        let d = dec(&encode_ret());
        assert_eq!(d.uops.len(), 3);
        assert_eq!(d.uops[0].kind, UopKind::Load);
        assert_eq!(d.uops[2].branch, BranchKind::Ret);
    }

    #[test]
    fn jcc_computes_absolute_target() {
        let d = decode(&encode_jcc(Cond::Ne, -6), 0x20_000);
        let u = &d.uops[0];
        assert_eq!(u.branch, BranchKind::CondDirect);
        assert!(u.cond_on_flags);
        assert_eq!(u.ra, Some(Reg::FLAGS));
        assert_eq!(u.target, 0x20_000 + 3 - 6);
    }

    #[test]
    fn jmp_negative_displacement() {
        let d = decode(&encode_jmp(-10), 0x10_100);
        assert_eq!(d.uops[0].target, 0x10_100 + 5 - 10);
    }

    #[test]
    fn fp_ops_roundtrip() {
        let d = dec(&encode_fp_rr(FpOp::Mul, 3, 5));
        let u = &d.uops[0];
        assert_eq!(u.fp, FpOp::Mul);
        assert_eq!(u.rd, Some(Reg::fpr(3)));
        assert_eq!(u.ra, Some(Reg::fpr(3)));
        assert_eq!(u.rb, Some(Reg::fpr(5)));

        let d = dec(&encode_fp_unary(FpOp::Sqrt, 2, 6));
        assert_eq!(d.uops[0].fp, FpOp::Sqrt);
        assert_eq!(d.uops[0].ra, Some(Reg::fpr(6)));

        let d = dec(&encode_fcmp(1, 2));
        assert_eq!(d.uops[0].rd, Some(Reg::FLAGS));

        let d = dec(&encode_fload(4, 15, 64));
        assert_eq!(d.uops[0].kind, UopKind::Load);
        assert_eq!(d.uops[0].rd, Some(Reg::fpr(4)));

        let d = dec(&encode_fstore(4, 15, 64));
        assert_eq!(d.uops[0].kind, UopKind::Store);
        assert_eq!(d.uops[0].rb, Some(Reg::fpr(4)));

        let d = dec(&encode_cvtif(1, 9));
        assert_eq!(d.uops[0].fp, FpOp::FromInt);
        let d = dec(&encode_cvtfi(9, 1));
        assert_eq!(d.uops[0].fp, FpOp::ToInt);
        assert_eq!(d.uops[0].rd, Some(Reg::gpr(9)));
    }

    #[test]
    fn reserved_opcodes_are_illegal() {
        for opc in [0x00u8, 0x08, 0x0F, 0x1F, 0x3F, 0x7A, 0xA5, 0xC8, 0xFF] {
            let d = dec(&[opc, 0, 0, 0, 0, 0]);
            assert!(d.fault.is_some(), "opcode {opc:#x} should be illegal");
            assert!(d.uops.is_empty());
        }
    }

    #[test]
    fn truncated_input_is_illegal_not_panic() {
        // Each opcode with its stream cut short must decode to a fault.
        for opc in 0u8..=255 {
            let d = decode(&[opc], 0x10_000);
            // Single-byte instructions decode fine; everything else faults.
            if ![OPC_NOP, OPC_RET, OPC_SYSCALL].contains(&opc) {
                assert!(d.fault.is_some() || d.len == 1, "opcode {opc:#x}");
            }
        }
    }

    #[test]
    fn fp_register_out_of_range_is_illegal() {
        // modrm high nibble 9 (> f7) on an FP op.
        let d = dec(&[0xC0, 0x9A]);
        assert!(d.fault.is_some());
    }
}
