//! Program images, the simulated memory map, and the loader.
//!
//! Both simulators boot the same flat-memory "machine": a nano-kernel region,
//! a read-only code region, a data region, and a downward-growing stack. The
//! map is deliberately simple — the paper's faults are injected into
//! *microarchitectural* storage, and the memory map only needs to give those
//! faults realistic consequences (code corruption, wild stores, kernel-state
//! corruption).

use difi_util::{Error, Result};

/// The two instruction sets of the differential study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Isa {
    /// x86-like CISC: variable-length, two-operand, FLAGS, stack calls.
    X86e,
    /// ARM-like RISC: fixed 4-byte, three-operand, link-register calls.
    Arme,
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Isa::X86e => write!(f, "x86e"),
            Isa::Arme => write!(f, "arme"),
        }
    }
}

/// The simulated physical memory map (identical for both ISAs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    /// Total bytes of simulated memory.
    pub size: u64,
    /// Start of the nano-kernel state region.
    pub kernel_base: u64,
    /// Size of the nano-kernel state region.
    pub kernel_size: u64,
    /// Base address of the (read-only) code region.
    pub code_base: u64,
    /// Maximum code bytes.
    pub code_size: u64,
    /// Base address of the data region (initialized data, then bss/heap).
    pub data_base: u64,
    /// Initial stack pointer (stack grows down from here).
    pub stack_top: u64,
}

impl MemoryMap {
    /// The canonical 16 MiB map used throughout the study.
    pub const DEFAULT: MemoryMap = MemoryMap {
        size: 16 * 1024 * 1024,
        kernel_base: 0x0000_1000,
        kernel_size: 0x1000,
        code_base: 0x0001_0000,
        code_size: 0x000F_0000,
        data_base: 0x0010_0000,
        stack_top: 0x00F0_0000,
    };

    /// True if `addr..addr+len` lies inside mapped memory.
    #[inline]
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr.checked_add(len).is_some_and(|end| end <= self.size)
    }

    /// True if the range overlaps the read-only code region.
    #[inline]
    pub fn in_code(&self, addr: u64, len: u64) -> bool {
        let end = addr.saturating_add(len);
        addr < self.code_base + self.code_size && end > self.code_base
    }

    /// True if the range overlaps the nano-kernel state region.
    #[inline]
    pub fn in_kernel(&self, addr: u64, len: u64) -> bool {
        let end = addr.saturating_add(len);
        addr < self.kernel_base + self.kernel_size && end > self.kernel_base
    }
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap::DEFAULT
    }
}

/// A loadable program image for one ISA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Which ISA the code section encodes.
    pub isa: Isa,
    /// Machine code, loaded at `map.code_base`.
    pub code: Vec<u8>,
    /// Initialized data, loaded at `map.data_base`.
    pub data: Vec<u8>,
    /// Entry point (absolute address).
    pub entry: u64,
    /// The memory map the image was linked against.
    pub map: MemoryMap,
    /// Human-readable name (benchmark name), for logs and reports.
    pub name: String,
}

impl Program {
    /// Validates the image against its memory map.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Program`] when a section exceeds its region or the
    /// entry point lies outside the code section.
    pub fn validate(&self) -> Result<()> {
        let m = &self.map;
        if self.code.len() as u64 > m.code_size {
            return Err(Error::Program(format!(
                "code section {} bytes exceeds region of {} bytes",
                self.code.len(),
                m.code_size
            )));
        }
        if m.data_base + self.data.len() as u64 > m.stack_top {
            return Err(Error::Program("data section collides with stack".into()));
        }
        let code_end = m.code_base + self.code.len() as u64;
        if self.entry < m.code_base || self.entry >= code_end {
            return Err(Error::Program(format!(
                "entry {:#x} outside code [{:#x}, {:#x})",
                self.entry, m.code_base, code_end
            )));
        }
        Ok(())
    }

    /// Builds the initial flat memory for a run: zeroed memory with code and
    /// data sections copied in. (Kernel state is initialized separately by
    /// [`crate::kernel::install`].)
    pub fn initial_memory(&self) -> Vec<u8> {
        let mut mem = vec![0u8; self.map.size as usize];
        let cb = self.map.code_base as usize;
        mem[cb..cb + self.code.len()].copy_from_slice(&self.code);
        let db = self.map.data_base as usize;
        mem[db..db + self.data.len()].copy_from_slice(&self.data);
        mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> Program {
        Program {
            isa: Isa::X86e,
            code: vec![0x01, 0x01, 0x01],
            data: vec![1, 2, 3, 4],
            entry: MemoryMap::DEFAULT.code_base,
            map: MemoryMap::DEFAULT,
            name: "tiny".into(),
        }
    }

    #[test]
    fn default_map_is_internally_consistent() {
        let m = MemoryMap::DEFAULT;
        assert!(m.kernel_base + m.kernel_size <= m.code_base);
        assert!(m.code_base + m.code_size <= m.data_base);
        assert!(m.data_base < m.stack_top);
        assert!(m.stack_top < m.size);
    }

    #[test]
    fn region_predicates() {
        let m = MemoryMap::DEFAULT;
        assert!(m.contains(0, 16));
        assert!(!m.contains(m.size - 4, 8));
        assert!(!m.contains(u64::MAX - 2, 8));
        assert!(m.in_code(m.code_base, 4));
        assert!(m.in_code(m.code_base + m.code_size - 1, 4));
        assert!(!m.in_code(m.data_base, 4));
        assert!(m.in_kernel(m.kernel_base + 8, 8));
        assert!(!m.in_kernel(0, 8));
    }

    #[test]
    fn validate_accepts_tiny_program() {
        assert!(tiny_program().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let mut p = tiny_program();
        p.entry = 0;
        assert!(p.validate().is_err());
        p.entry = p.map.code_base + 100; // past end of 3-byte code
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_oversized_code() {
        let mut p = tiny_program();
        p.code = vec![0; (p.map.code_size + 1) as usize];
        assert!(p.validate().is_err());
    }

    #[test]
    fn initial_memory_places_sections() {
        let p = tiny_program();
        let mem = p.initial_memory();
        assert_eq!(mem.len() as u64, p.map.size);
        let cb = p.map.code_base as usize;
        assert_eq!(&mem[cb..cb + 3], &[0x01, 0x01, 0x01]);
        let db = p.map.data_base as usize;
        assert_eq!(&mem[db..db + 4], &[1, 2, 3, 4]);
    }
}
