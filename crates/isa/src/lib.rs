//! # difi-isa
//!
//! Instruction-set infrastructure for the `difi` differential fault-injection
//! workspace. The paper compares the x86 ISA (on MARSS and gem5) against the
//! ARM ISA (on gem5); this crate provides the two from-scratch ISAs that play
//! those roles, sharing one micro-op IR:
//!
//! * **x86e** ([`x86e`]) — variable-length (1–10 byte) CISC-style encoding,
//!   two-operand destructive ALU, memory-operand ALU forms (cracked into
//!   µops), a FLAGS register written by compares and read by conditional
//!   branches, stack-based `call`/`ret`, unaligned accesses allowed.
//! * **arme** ([`arme`]) — fixed 4-byte RISC encoding, three-operand ALU,
//!   strict load/store architecture, fused compare-and-branch, link-register
//!   calls, alignment-checked memory accesses.
//!
//! These deliberately contrast along the axes the paper's differential
//! analysis cares about: instruction footprint in the L1I cache, µop cracking,
//! register pressure and spill traffic, call/return memory behaviour, and the
//! ways corrupted instruction bytes manifest (de-synchronised variable-length
//! decode vs. single-word corruption).
//!
//! The crate also provides:
//!
//! * [`uop`] — the shared micro-op IR both simulators execute.
//! * [`asm`] — a three-address [`asm::Asm`] builder with a backend per
//!   ISA, used by `difi-workloads` to compile each benchmark once for both
//!   architectures.
//! * [`program`] — program images, the memory map, and the loader.
//! * [`emu`] — a functional (architectural) emulator used to produce golden
//!   outputs and to validate the decoders against the pipelines.
//! * [`kernel`] — the nano-kernel ABI: syscalls, the simulated kernel state
//!   region, and the exception-handling policy that produces the paper's DUE
//!   and system-crash outcome classes.

pub mod arme;
pub mod asm;
pub mod emu;
pub mod kernel;
pub mod program;
pub mod uop;
pub mod x86e;

pub use program::{Isa, MemoryMap, Program};
pub use uop::{Cond, Decoded, Fault, FpOp, IntOp, Reg, Uop, UopKind, Width};

/// Decodes one instruction of `isa` starting at `bytes[0]` (which is the byte
/// at address `pc`). `bytes` should contain [`MAX_INST_LEN`] bytes where
/// available, or all remaining bytes of the code region.
///
/// Decoding never fails: undecodable input yields a [`Decoded`] whose
/// `fault` is set and whose µops are empty. How that fault is *surfaced*
/// (immediate assertion vs. deferred ISA exception) is a simulator policy —
/// the exact divergence the paper's Remark 8 documents.
pub fn decode(isa: Isa, bytes: &[u8], pc: u64) -> Decoded {
    match isa {
        Isa::X86e => x86e::decode(bytes, pc),
        Isa::Arme => arme::decode(bytes, pc),
    }
}

/// Upper bound on the encoded length of one instruction in either ISA.
pub const MAX_INST_LEN: usize = 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_dispatches_per_isa() {
        let x = x86e::decode(&[x86e::OPC_NOP, 0, 0, 0], 0x1000);
        assert_eq!(x.len, 1);
        assert!(x.fault.is_none());
        let a = arme::decode(&arme::encode_nop().to_le_bytes(), 0x1000);
        assert_eq!(a.len, 4);
        assert!(a.fault.is_none());
    }
}
