//! The **arme** instruction set: an ARM-flavoured fixed-width RISC encoding.
//!
//! Design points mirroring AArch64 (gem5's best-supported ISA alongside x86)
//! that matter to the fault-injection study:
//!
//! * **Fixed 4-byte instructions**: a corrupted bit damages exactly one
//!   instruction and can never de-synchronise the decode stream — the
//!   opposite failure mode from x86e.
//! * **Three-operand ALU** and a strict **load/store architecture**: more
//!   (but denser-behaving) instructions for the same work, a larger L1I
//!   footprint per kernel, different register lifetime patterns.
//! * **Fused compare-and-branch** (no FLAGS register dependency chains).
//! * **Link-register calls** (`bl` writes `r14`; no implicit stack traffic).
//! * **Alignment-checked** memory accesses; misaligned accesses trap to the
//!   nano-kernel which fixes them up and logs an exception (a DUE source).
//!
//! ## Encoding summary (op6 = bits \[31:26\], little-endian words)
//!
//! ```text
//! op6 0x00  illegal (the all-zero word traps, as on real hardware)
//! op6 0x01  nop
//! op6 0x02  alu  rd,ra,rb      rd[25:21] ra[20:16] rb[15:11] func[10:7] w[6]
//! op6 0x03  alui rd,ra,imm11   rd[25:21] ra[20:16] func[15:12] w[11] imm11[10:0]
//! op6 0x04  movz rd,imm16,sh   rd[25:21] sh[17:16] imm16[15:0]
//! op6 0x05  movk rd,imm16,sh   (keep other bits)
//! op6 0x06  load rd,[ra+imm9]  rd ra w[11:10] sx[9] imm9[8:0]
//! op6 0x07  store [ra+imm10],rd  rd ra w[11:10] imm10[9:0]
//! op6 0x08  bcond ra,rb,off12  cond[25:22] ra[21:17] rb[16:12] off12[11:0]
//! op6 0x09  b   off26
//! op6 0x0A  bl  off26          (writes r14)
//! op6 0x0B  br  ra             ra[20:16]
//! op6 0x0C  syscall
//! op6 0x0D  fpalu fd,fa,fb     fd[25:21] fa[20:16] fb[15:11] func[10:7]
//! op6 0x0E  fload fd,[ra+imm11]
//! op6 0x0F  fstore [ra+imm11],fd
//! op6 0x10..0x3F  illegal
//! ```
//!
//! Branch offsets are in *words*, relative to the instruction after the
//! branch. Register fields are 5 bits wide but only values 0–15 name
//! architectural registers (0–7 for FP); anything else is an illegal
//! encoding — one more way a flipped bit surfaces as an ISA fault.

use crate::uop::{BranchKind, Cond, Decoded, FpOp, IntOp, Reg, Uop, UopKind, Width};

/// Sign-extends the low `bits` bits of `v`.
#[inline]
fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v as u64) << shift) as i64 >> shift
}

#[inline]
fn field(w: u32, hi: u32, lo: u32) -> u32 {
    (w >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn gpr5(v: u32) -> Option<Reg> {
    (v < 16).then_some(Reg(v as u8))
}

fn fpr5(v: u32) -> Option<Reg> {
    (v < 8).then(|| Reg::fpr(v as u8))
}

// ---------------------------------------------------------------------------
// Encoding helpers.
// ---------------------------------------------------------------------------

/// Encodes `nop`.
pub fn encode_nop() -> u32 {
    0x01 << 26
}

/// Encodes `syscall`.
pub fn encode_syscall() -> u32 {
    0x0C << 26
}

/// Encodes a three-operand ALU op `rd = ra op rb`.
pub fn encode_alu_rrr(op: IntOp, w32: bool, rd: u8, ra: u8, rb: u8) -> u32 {
    debug_assert!(op != IntOp::CmpFlags, "arme has no FLAGS");
    (0x02 << 26)
        | (rd as u32) << 21
        | (ra as u32) << 16
        | (rb as u32) << 11
        | (op.index() as u32) << 7
        | (w32 as u32) << 6
}

/// Encodes an immediate ALU op `rd = ra op imm11` (signed immediate).
///
/// # Panics
///
/// Panics if `imm` does not fit in 11 signed bits.
pub fn encode_alu_rri(op: IntOp, w32: bool, rd: u8, ra: u8, imm: i32) -> u32 {
    assert!((-1024..=1023).contains(&imm), "imm11 out of range: {imm}");
    debug_assert!(op != IntOp::CmpFlags);
    (0x03 << 26)
        | (rd as u32) << 21
        | (ra as u32) << 16
        | (op.index() as u32) << 12
        | (w32 as u32) << 11
        | (imm as u32 & 0x7FF)
}

/// Encodes `movz rd, imm16 << (16*sh)`.
pub fn encode_movz(rd: u8, imm16: u16, sh: u8) -> u32 {
    debug_assert!(sh < 4);
    (0x04 << 26) | (rd as u32) << 21 | (sh as u32) << 16 | imm16 as u32
}

/// Encodes `movk rd, imm16 << (16*sh)` (keeps other bits).
pub fn encode_movk(rd: u8, imm16: u16, sh: u8) -> u32 {
    debug_assert!(sh < 4);
    (0x05 << 26) | (rd as u32) << 21 | (sh as u32) << 16 | imm16 as u32
}

/// Encodes a load `rd = [ra + imm9]`.
///
/// # Panics
///
/// Panics if `imm` does not fit in 9 signed bits.
pub fn encode_load(w: Width, signed: bool, rd: u8, base: u8, imm: i32) -> u32 {
    assert!((-256..=255).contains(&imm), "imm9 out of range: {imm}");
    (0x06 << 26)
        | (rd as u32) << 21
        | (base as u32) << 16
        | (w.code() as u32) << 10
        | (signed as u32) << 9
        | (imm as u32 & 0x1FF)
}

/// Encodes a store `[ra + imm10] = rs`.
///
/// # Panics
///
/// Panics if `imm` does not fit in 10 signed bits.
pub fn encode_store(w: Width, rs: u8, base: u8, imm: i32) -> u32 {
    assert!((-512..=511).contains(&imm), "imm10 out of range: {imm}");
    (0x07 << 26)
        | (rs as u32) << 21
        | (base as u32) << 16
        | (w.code() as u32) << 10
        | (imm as u32 & 0x3FF)
}

/// Encodes a fused compare-and-branch `bcond ra, rb, off12` (offset in words
/// from the next instruction).
///
/// # Panics
///
/// Panics if `off_words` does not fit in 12 signed bits.
pub fn encode_bcond(c: Cond, ra: u8, rb: u8, off_words: i32) -> u32 {
    assert!((-2048..=2047).contains(&off_words), "off12 out of range");
    (0x08 << 26)
        | (c.index() as u32) << 22
        | (ra as u32) << 17
        | (rb as u32) << 12
        | (off_words as u32 & 0xFFF)
}

/// Encodes `b off26` (words).
pub fn encode_b(off_words: i32) -> u32 {
    assert!((-(1 << 25)..(1 << 25)).contains(&off_words));
    (0x09 << 26) | (off_words as u32 & 0x3FF_FFFF)
}

/// Encodes `bl off26` (writes the link register `r14`).
pub fn encode_bl(off_words: i32) -> u32 {
    assert!((-(1 << 25)..(1 << 25)).contains(&off_words));
    (0x0A << 26) | (off_words as u32 & 0x3FF_FFFF)
}

/// Encodes the indirect `br ra`.
pub fn encode_br(ra: u8) -> u32 {
    (0x0B << 26) | (ra as u32) << 16
}

/// Encodes a three-operand FP op `fd = fa op fb`.
pub fn encode_fpalu(op: FpOp, fd: u8, fa: u8, fb: u8) -> u32 {
    (0x0D << 26)
        | (fd as u32) << 21
        | (fa as u32) << 16
        | (fb as u32) << 11
        | (op.index() as u32) << 7
}

/// Encodes `fload fd, [ra + imm11]`.
pub fn encode_fload(fd: u8, base: u8, imm: i32) -> u32 {
    assert!((-1024..=1023).contains(&imm));
    (0x0E << 26) | (fd as u32) << 21 | (base as u32) << 16 | (imm as u32 & 0x7FF)
}

/// Encodes `fstore [ra + imm11], fs`.
pub fn encode_fstore(fs: u8, base: u8, imm: i32) -> u32 {
    assert!((-1024..=1023).contains(&imm));
    (0x0F << 26) | (fs as u32) << 21 | (base as u32) << 16 | (imm as u32 & 0x7FF)
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// Decodes one arme instruction at `pc` (bytes little-endian, `bytes[0]` is
/// the byte at `pc`). Returns [`Decoded::illegal`] for reserved encodings,
/// out-of-range register fields, or truncated input; the consumed length is
/// always 4 so the fixed-width stream stays in sync.
pub fn decode(bytes: &[u8], pc: u64) -> Decoded {
    if bytes.len() < 4 {
        return Decoded::illegal(4);
    }
    let w = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let op6 = w >> 26;
    let one = |u: Uop| Decoded {
        len: 4,
        uops: vec![u],
        fault: None,
    };
    let illegal = || Decoded::illegal(4);
    match op6 {
        0x01 => one(Uop::nop()),
        0x02 => {
            let func = field(w, 10, 7) as u8;
            let Some(op) = IntOp::from_index(func) else {
                return illegal();
            };
            if op == IntOp::CmpFlags {
                return illegal();
            }
            let (Some(rd), Some(ra), Some(rb)) = (
                gpr5(field(w, 25, 21)),
                gpr5(field(w, 20, 16)),
                gpr5(field(w, 15, 11)),
            ) else {
                return illegal();
            };
            let width = if w >> 6 & 1 != 0 {
                Width::B4
            } else {
                Width::B8
            };
            // Mov uses only ra.
            let (ra, rb) = if op == IntOp::Mov {
                (Some(ra), None)
            } else {
                (Some(ra), Some(rb))
            };
            one(Uop::alu(op, width, rd, ra, rb, 0))
        }
        0x03 => {
            let func = field(w, 15, 12) as u8;
            let Some(op) = IntOp::from_index(func) else {
                return illegal();
            };
            if op == IntOp::CmpFlags {
                return illegal();
            }
            let (Some(rd), Some(ra)) = (gpr5(field(w, 25, 21)), gpr5(field(w, 20, 16))) else {
                return illegal();
            };
            let width = if w >> 11 & 1 != 0 {
                Width::B4
            } else {
                Width::B8
            };
            let imm = sext(field(w, 10, 0), 11);
            let ra = if op == IntOp::Mov { None } else { Some(ra) };
            // Immediate-form Mov ignores ra and loads the immediate.
            one(Uop::alu(op, width, rd, ra, None, imm))
        }
        0x04 | 0x05 => {
            let Some(rd) = gpr5(field(w, 25, 21)) else {
                return illegal();
            };
            let sh = field(w, 17, 16) * 16;
            let imm = (field(w, 15, 0) as u64) << sh;
            if op6 == 0x04 {
                one(Uop::alu(IntOp::Mov, Width::B8, rd, None, None, imm as i64))
            } else {
                // movk: rd = (rd & !mask) | imm — expressed as and + or µops.
                let mask = !((0xFFFFu64) << sh);
                let and = Uop::alu(IntOp::And, Width::B8, rd, Some(rd), None, mask as i64);
                let or = Uop::alu(IntOp::Or, Width::B8, rd, Some(rd), None, imm as i64);
                Decoded {
                    len: 4,
                    uops: vec![and, or],
                    fault: None,
                }
            }
        }
        0x06 => {
            let (Some(rd), Some(ra)) = (gpr5(field(w, 25, 21)), gpr5(field(w, 20, 16))) else {
                return illegal();
            };
            let width = Width::from_code(field(w, 11, 10) as u8);
            let signed = w >> 9 & 1 != 0;
            let imm = sext(field(w, 8, 0), 9);
            one(Uop::load(width, signed, rd, ra, imm))
        }
        0x07 => {
            let (Some(rs), Some(ra)) = (gpr5(field(w, 25, 21)), gpr5(field(w, 20, 16))) else {
                return illegal();
            };
            let width = Width::from_code(field(w, 11, 10) as u8);
            let imm = sext(field(w, 9, 0), 10);
            one(Uop::store(width, rs, ra, imm))
        }
        0x08 => {
            let Some(cond) = Cond::from_index(field(w, 25, 22) as u8) else {
                return illegal();
            };
            let Some(ra) = gpr5(field(w, 21, 17)) else {
                return illegal();
            };
            // rb field 31 names the zero register (AArch64 XZR style);
            // it decodes to `None` and compares against the constant 0.
            let rb_field = field(w, 16, 12);
            let rb = if rb_field == 31 {
                None
            } else {
                match gpr5(rb_field) {
                    Some(r) => Some(r),
                    None => return illegal(),
                }
            };
            let off = sext(field(w, 11, 0), 12) * 4;
            let mut u = Uop::nop();
            u.kind = UopKind::Branch;
            u.branch = BranchKind::CondDirect;
            u.cond = cond;
            u.cond_on_flags = false;
            u.ra = Some(ra);
            u.rb = rb;
            u.target = pc.wrapping_add(4).wrapping_add(off as u64);
            one(u)
        }
        0x09 | 0x0A => {
            let off = sext(w & 0x3FF_FFFF, 26) * 4;
            let target = pc.wrapping_add(4).wrapping_add(off as u64);
            let mut u = Uop::nop();
            u.kind = UopKind::Branch;
            u.target = target;
            if op6 == 0x09 {
                u.branch = BranchKind::Jump;
                one(u)
            } else {
                u.branch = BranchKind::Call;
                u.rd = Some(Reg::LR);
                u.imm = pc.wrapping_add(4) as i64; // link value
                one(u)
            }
        }
        0x0B => {
            let Some(ra) = gpr5(field(w, 20, 16)) else {
                return illegal();
            };
            let mut u = Uop::nop();
            u.kind = UopKind::Branch;
            // Returning through the link register is Ret-flavoured so the
            // return-address stack predicts it; other registers are plain
            // indirect jumps.
            u.branch = if ra == Reg::LR {
                BranchKind::Ret
            } else {
                BranchKind::JumpInd
            };
            u.ra = Some(ra);
            one(u)
        }
        0x0C => {
            let mut u = Uop::nop();
            u.kind = UopKind::Syscall;
            one(u)
        }
        0x0D => {
            let func = field(w, 10, 7) as u8;
            let Some(op) = FpOp::from_index(func) else {
                return illegal();
            };
            let mut u = Uop::nop();
            u.kind = UopKind::Fp;
            u.fp = op;
            match op {
                FpOp::FromInt | FpOp::FromBits => {
                    let (Some(fd), Some(ra)) = (fpr5(field(w, 25, 21)), gpr5(field(w, 20, 16)))
                    else {
                        return illegal();
                    };
                    u.rd = Some(fd);
                    u.ra = Some(ra);
                }
                FpOp::ToInt | FpOp::ToBits => {
                    let (Some(rd), Some(fa)) = (gpr5(field(w, 25, 21)), fpr5(field(w, 20, 16)))
                    else {
                        return illegal();
                    };
                    u.rd = Some(rd);
                    u.ra = Some(fa);
                }
                FpOp::CmpFlags => {
                    // arme has no FLAGS register; FP comparisons produce a
                    // 0/1 integer result instead.
                    let (Some(rd), Some(fa), Some(fb)) = (
                        gpr5(field(w, 25, 21)),
                        fpr5(field(w, 20, 16)),
                        fpr5(field(w, 15, 11)),
                    ) else {
                        return illegal();
                    };
                    u.rd = Some(rd);
                    u.ra = Some(fa);
                    u.rb = Some(fb);
                    // imm selects the predicate: 0 = lt, 1 = le, 2 = eq.
                    u.imm = field(w, 6, 5) as i64;
                }
                FpOp::Neg | FpOp::Abs | FpOp::Sqrt | FpOp::Mov => {
                    let (Some(fd), Some(fa)) = (fpr5(field(w, 25, 21)), fpr5(field(w, 20, 16)))
                    else {
                        return illegal();
                    };
                    u.rd = Some(fd);
                    u.ra = Some(fa);
                }
                _ => {
                    let (Some(fd), Some(fa), Some(fb)) = (
                        fpr5(field(w, 25, 21)),
                        fpr5(field(w, 20, 16)),
                        fpr5(field(w, 15, 11)),
                    ) else {
                        return illegal();
                    };
                    u.rd = Some(fd);
                    u.ra = Some(fa);
                    u.rb = Some(fb);
                }
            }
            one(u)
        }
        0x0E => {
            let (Some(fd), Some(ra)) = (fpr5(field(w, 25, 21)), gpr5(field(w, 20, 16))) else {
                return illegal();
            };
            let imm = sext(field(w, 10, 0), 11);
            one(Uop::load(Width::B8, false, fd, ra, imm))
        }
        0x0F => {
            let (Some(fs), Some(ra)) = (fpr5(field(w, 25, 21)), gpr5(field(w, 20, 16))) else {
                return illegal();
            };
            let imm = sext(field(w, 10, 0), 11);
            one(Uop::store(Width::B8, fs, ra, imm))
        }
        _ => illegal(),
    }
}

/// Encodes an FP compare producing a 0/1 integer (`pred`: 0 = lt, 1 = le,
/// 2 = eq).
pub fn encode_fcmp_int(pred: u8, rd: u8, fa: u8, fb: u8) -> u32 {
    debug_assert!(pred < 3);
    (0x0D << 26)
        | (rd as u32) << 21
        | (fa as u32) << 16
        | (fb as u32) << 11
        | (FpOp::CmpFlags.index() as u32) << 7
        | (pred as u32) << 5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(w: u32) -> Decoded {
        decode(&w.to_le_bytes(), 0x10_000)
    }

    #[test]
    fn zero_word_is_illegal() {
        let d = dec(0);
        assert!(d.fault.is_some());
        assert_eq!(d.len, 4);
    }

    #[test]
    fn alu_rrr_three_operand() {
        let d = dec(encode_alu_rrr(IntOp::Sub, false, 3, 7, 9));
        let u = &d.uops[0];
        assert_eq!(u.alu, IntOp::Sub);
        assert_eq!(u.rd, Some(Reg::gpr(3)));
        assert_eq!(u.ra, Some(Reg::gpr(7)));
        assert_eq!(u.rb, Some(Reg::gpr(9)));
        assert_eq!(u.width, Width::B8);
    }

    #[test]
    fn alu_rrr_32bit_width() {
        let d = dec(encode_alu_rrr(IntOp::Add, true, 1, 2, 3));
        assert_eq!(d.uops[0].width, Width::B4);
    }

    #[test]
    fn alu_imm_signed_range() {
        let d = dec(encode_alu_rri(IntOp::Add, false, 2, 5, -1000));
        assert_eq!(d.uops[0].imm, -1000);
        assert_eq!(d.uops[0].ra, Some(Reg::gpr(5)));
        let d = dec(encode_alu_rri(IntOp::Mov, false, 2, 0, 1023));
        assert_eq!(d.uops[0].imm, 1023);
        assert_eq!(d.uops[0].ra, None);
    }

    #[test]
    fn movz_movk_build_constants() {
        let d = dec(encode_movz(4, 0xBEEF, 1));
        assert_eq!(d.uops[0].imm as u64, 0xBEEF_0000);
        let d = dec(encode_movk(4, 0xF00D, 0));
        assert_eq!(d.uops.len(), 2);
        assert_eq!(d.uops[0].alu, IntOp::And);
        assert_eq!(d.uops[0].imm as u64, !0xFFFFu64);
        assert_eq!(d.uops[1].alu, IntOp::Or);
        assert_eq!(d.uops[1].imm as u64, 0xF00D);
    }

    #[test]
    fn load_store_roundtrip() {
        let d = dec(encode_load(Width::B2, true, 5, 15, -200));
        let u = &d.uops[0];
        assert_eq!(u.kind, UopKind::Load);
        assert!(u.signed);
        assert_eq!(u.width, Width::B2);
        assert_eq!(u.imm, -200);
        let d = dec(encode_store(Width::B8, 2, 3, 500));
        let u = &d.uops[0];
        assert_eq!(u.kind, UopKind::Store);
        assert_eq!(u.rb, Some(Reg::gpr(2)));
        assert_eq!(u.imm, 500);
    }

    #[test]
    fn bcond_compares_registers() {
        let d = decode(&encode_bcond(Cond::LtS, 1, 2, -3).to_le_bytes(), 0x20_000);
        let u = &d.uops[0];
        assert_eq!(u.branch, BranchKind::CondDirect);
        assert!(!u.cond_on_flags);
        assert_eq!(u.ra, Some(Reg::gpr(1)));
        assert_eq!(u.rb, Some(Reg::gpr(2)));
        assert_eq!(u.target, 0x20_000 + 4 - 12);
    }

    #[test]
    fn bl_writes_link_register() {
        let d = decode(&encode_bl(16).to_le_bytes(), 0x10_000);
        let u = &d.uops[0];
        assert_eq!(u.branch, BranchKind::Call);
        assert_eq!(u.rd, Some(Reg::LR));
        assert_eq!(u.imm, 0x10_004);
        assert_eq!(u.target, 0x10_000 + 4 + 64);
    }

    #[test]
    fn br_through_lr_is_return() {
        let d = dec(encode_br(14));
        assert_eq!(d.uops[0].branch, BranchKind::Ret);
        let d = dec(encode_br(5));
        assert_eq!(d.uops[0].branch, BranchKind::JumpInd);
    }

    #[test]
    fn fp_three_operand() {
        let d = dec(encode_fpalu(FpOp::Mul, 3, 1, 2));
        let u = &d.uops[0];
        assert_eq!(u.fp, FpOp::Mul);
        assert_eq!(u.rd, Some(Reg::fpr(3)));
        assert_eq!(u.ra, Some(Reg::fpr(1)));
        assert_eq!(u.rb, Some(Reg::fpr(2)));
    }

    #[test]
    fn fp_compare_writes_int_register() {
        let d = dec(encode_fcmp_int(0, 9, 1, 2));
        let u = &d.uops[0];
        assert_eq!(u.fp, FpOp::CmpFlags);
        assert_eq!(u.rd, Some(Reg::gpr(9)));
        assert_eq!(u.imm, 0);
    }

    #[test]
    fn fp_load_store() {
        let d = dec(encode_fload(4, 15, 80));
        assert_eq!(d.uops[0].rd, Some(Reg::fpr(4)));
        assert_eq!(d.uops[0].width, Width::B8);
        let d = dec(encode_fstore(4, 15, -80));
        assert_eq!(d.uops[0].rb, Some(Reg::fpr(4)));
        assert_eq!(d.uops[0].imm, -80);
    }

    #[test]
    fn out_of_range_register_fields_fault() {
        // rb field = 20 (invalid GPR) in an ALU op.
        let w = (0x02u32 << 26) | 3 << 21 | 7 << 16 | 20 << 11;
        assert!(dec(w).fault.is_some());
        // fd field = 9 (invalid FPR) in an FP op.
        let w = (0x0Du32 << 26) | 9 << 21 | 1 << 16 | 2 << 11;
        assert!(dec(w).fault.is_some());
    }

    #[test]
    fn reserved_op6_values_fault() {
        for op6 in [0x00u32, 0x10, 0x1F, 0x2A, 0x3F] {
            let w = op6 << 26 | 0x1234;
            assert!(dec(w).fault.is_some(), "op6 {op6:#x}");
        }
    }

    #[test]
    fn truncated_input_faults() {
        let d = decode(&[0x12, 0x34], 0x10_000);
        assert!(d.fault.is_some());
    }

    #[test]
    fn every_word_decodes_without_panic() {
        // Fuzz a deterministic sweep of words; decode must never panic.
        let mut w: u32 = 0x9E3779B9;
        for _ in 0..200_000 {
            w = w.wrapping_mul(0x01000193).wrapping_add(0x9E3779B9);
            let _ = dec(w);
        }
    }
}
