//! The nano-kernel: system-call and exception services with *simulated*
//! kernel state.
//!
//! The paper runs its benchmarks on a full-system simulator booting Linux;
//! faults can therefore corrupt kernel state and produce **system crashes**
//! (kernel panics), and handled exceptions produce **DUE** outcomes. This
//! module substitutes a nano-kernel whose *logic* runs on the host but whose
//! *state* lives in simulated memory — a magic word, a syscall dispatch
//! table, and console bookkeeping — so that injected faults reaching that
//! state cause kernel panics exactly as in the paper's taxonomy.
//!
//! Crucially, the kernel reads and writes its state through the
//! [`KernelMem`] trait. MarsSim implements it with *direct main-memory
//! accesses* (MARSS delegates system work to the QEMU hypervisor, whose
//! accesses do not travel through the modeled caches — the masking effect of
//! the paper's Remark 3), while GemSim implements it with *through-cache
//! accesses* (gem5 handles the whole system internally).

use crate::program::MemoryMap;
use crate::uop::Fault;

/// Magic word at the base of the kernel region; checked on every kernel
/// entry. A corrupted magic is an unrecoverable kernel panic.
pub const MAGIC: u64 = 0x6469_6669_6B72_6E6C; // "difikrnl"

/// Number of syscall dispatch-table entries.
pub const DISPATCH_ENTRIES: u64 = 8;

/// Offset of the dispatch table within the kernel region.
pub const DISPATCH_OFF: u64 = 0x08;
/// Offset of the handled-exception counter.
pub const EXC_COUNT_OFF: u64 = 0x48;
/// Offset of the console byte counter.
pub const CONSOLE_COUNT_OFF: u64 = 0x50;
/// Offset of the console checksum.
pub const CONSOLE_SUM_OFF: u64 = 0x58;

/// Syscall numbers (in `r0` at the `syscall` instruction).
pub mod sys {
    /// Terminate the process; exit code in `r1`.
    pub const EXIT: u64 = 0;
    /// Write `r2` bytes starting at address `r1` to the console.
    pub const WRITE: u64 = 1;
    /// Write the value of `r1` as decimal text plus a newline.
    pub const WRITE_INT: u64 = 2;
}

/// The expected dispatch-table entry for syscall `i` — a keyed value so that
/// any bit corruption is detected on the next kernel entry.
pub fn expected_dispatch(i: u64) -> u64 {
    MAGIC.rotate_left((i as u32 % 8) * 8) ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(i + 1)
}

/// Memory access path the kernel uses — the simulator decides whether these
/// travel through the cache hierarchy (GemSim) or go straight to main memory
/// (MarsSim's hypervisor model).
pub trait KernelMem {
    /// Reads a 64-bit little-endian word.
    fn read_u64(&mut self, addr: u64) -> Result<u64, Fault>;
    /// Writes a 64-bit little-endian word.
    fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), Fault>;
    /// Reads `buf.len()` bytes.
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Fault>;
}

/// What the kernel decided after a service request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelOutcome {
    /// Resume the process; any console output produced is attached.
    Continue(Vec<u8>),
    /// The process requested termination with this exit code.
    Exit(u64),
    /// The kernel's own state was corrupt or its accesses faulted:
    /// unrecoverable system crash (the paper's *kernel panic*).
    Panic(&'static str),
    /// The process did something unrecoverable (e.g. handed the kernel a
    /// wild pointer): process crash.
    Kill(Fault),
}

/// Installs the kernel state into a fresh memory image. Must be called once
/// before simulation starts (both the functional emulator and the pipelines
/// do this through [`crate::program::Program::initial_memory`] + `install`).
pub fn install(mem: &mut [u8], map: &MemoryMap) {
    let base = map.kernel_base as usize;
    mem[base..base + 8].copy_from_slice(&MAGIC.to_le_bytes());
    for i in 0..DISPATCH_ENTRIES {
        let off = base + (DISPATCH_OFF + i * 8) as usize;
        mem[off..off + 8].copy_from_slice(&expected_dispatch(i).to_le_bytes());
    }
    for off in [EXC_COUNT_OFF, CONSOLE_COUNT_OFF, CONSOLE_SUM_OFF] {
        let o = base + off as usize;
        mem[o..o + 8].copy_from_slice(&0u64.to_le_bytes());
    }
}

/// Checks the kernel magic word; every kernel entry starts here.
fn check_magic<M: KernelMem + ?Sized>(mem: &mut M, map: &MemoryMap) -> Result<(), KernelOutcome> {
    match mem.read_u64(map.kernel_base) {
        Ok(v) if v == MAGIC => Ok(()),
        Ok(_) => Err(KernelOutcome::Panic("kernel magic corrupted")),
        Err(_) => Err(KernelOutcome::Panic("kernel state unreachable")),
    }
}

/// Handles a `syscall` instruction. `r0`/`r1`/`r2` are the architectural
/// argument registers at the time of the call.
///
/// Unknown syscall numbers are *handled*: the kernel logs an exception (the
/// ENOSYS analogue) and resumes the process — one of the paths by which a
/// fault becomes a DUE instead of a crash.
pub fn handle_syscall<M: KernelMem + ?Sized>(
    mem: &mut M,
    map: &MemoryMap,
    r0: u64,
    r1: u64,
    r2: u64,
) -> KernelOutcome {
    if let Err(panic) = check_magic(mem, map) {
        return panic;
    }
    let idx = r0 % DISPATCH_ENTRIES;
    let slot = map.kernel_base + DISPATCH_OFF + idx * 8;
    match mem.read_u64(slot) {
        Ok(v) if v == expected_dispatch(idx) => {}
        Ok(_) => return KernelOutcome::Panic("syscall dispatch table corrupted"),
        Err(_) => return KernelOutcome::Panic("kernel state unreachable"),
    }
    match r0 {
        sys::EXIT => KernelOutcome::Exit(r1),
        sys::WRITE => {
            // Cap pathological lengths so corrupted sizes do not stall the
            // simulation; anything above the cap is a wild request.
            if r2 > 1 << 20 {
                return KernelOutcome::Kill(Fault::OutOfBounds(r1));
            }
            if !map.contains(r1, r2) {
                return KernelOutcome::Kill(Fault::OutOfBounds(r1));
            }
            let mut buf = vec![0u8; r2 as usize];
            if mem.read_bytes(r1, &mut buf).is_err() {
                return KernelOutcome::Kill(Fault::OutOfBounds(r1));
            }
            if let Err(p) = note_console(mem, map, &buf) {
                return p;
            }
            KernelOutcome::Continue(buf)
        }
        sys::WRITE_INT => {
            let mut text = r1.to_string().into_bytes();
            text.push(b'\n');
            if let Err(p) = note_console(mem, map, &text) {
                return p;
            }
            KernelOutcome::Continue(text)
        }
        _ => {
            // ENOSYS analogue: log and resume.
            match log_exception(mem, map) {
                Ok(()) => KernelOutcome::Continue(Vec::new()),
                Err(p) => p,
            }
        }
    }
}

/// Updates the console bookkeeping (byte counter + rolling checksum) held in
/// simulated kernel memory.
fn note_console<M: KernelMem + ?Sized>(
    mem: &mut M,
    map: &MemoryMap,
    bytes: &[u8],
) -> Result<(), KernelOutcome> {
    let cnt_addr = map.kernel_base + CONSOLE_COUNT_OFF;
    let sum_addr = map.kernel_base + CONSOLE_SUM_OFF;
    let cnt = mem
        .read_u64(cnt_addr)
        .map_err(|_| KernelOutcome::Panic("kernel state unreachable"))?;
    let mut sum = mem
        .read_u64(sum_addr)
        .map_err(|_| KernelOutcome::Panic("kernel state unreachable"))?;
    for &b in bytes {
        sum = sum.rotate_left(7) ^ b as u64;
    }
    mem.write_u64(cnt_addr, cnt.wrapping_add(bytes.len() as u64))
        .map_err(|_| KernelOutcome::Panic("kernel state unreachable"))?;
    mem.write_u64(sum_addr, sum)
        .map_err(|_| KernelOutcome::Panic("kernel state unreachable"))?;
    Ok(())
}

/// Logs a handled ISA exception (alignment fixup, tolerated hint opcode,
/// unknown syscall). Returns a panic outcome if the kernel state itself is
/// broken. Every successful call increments the exception counter that the
/// fault classifier later compares against the golden run (the DUE signal).
pub fn log_exception<M: KernelMem + ?Sized>(
    mem: &mut M,
    map: &MemoryMap,
) -> Result<(), KernelOutcome> {
    check_magic(mem, map)?;
    let addr = map.kernel_base + EXC_COUNT_OFF;
    let v = mem
        .read_u64(addr)
        .map_err(|_| KernelOutcome::Panic("kernel state unreachable"))?;
    mem.write_u64(addr, v.wrapping_add(1))
        .map_err(|_| KernelOutcome::Panic("kernel state unreachable"))?;
    Ok(())
}

/// Reads the handled-exception counter (used by run-status reporting).
pub fn exception_count<M: KernelMem + ?Sized>(mem: &mut M, map: &MemoryMap) -> u64 {
    mem.read_u64(map.kernel_base + EXC_COUNT_OFF).unwrap_or(0)
}

/// A trivial [`KernelMem`] over a flat byte buffer — the functional
/// emulator's access path (and MarsSim's hypervisor path wraps the same
/// logic around its main-memory array).
#[derive(Debug)]
pub struct FlatMem<'a> {
    /// The underlying memory buffer.
    pub mem: &'a mut [u8],
}

impl KernelMem for FlatMem<'_> {
    fn read_u64(&mut self, addr: u64) -> Result<u64, Fault> {
        let a = addr as usize;
        if a + 8 > self.mem.len() {
            return Err(Fault::OutOfBounds(addr));
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.mem[a..a + 8]);
        Ok(u64::from_le_bytes(b))
    }

    fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), Fault> {
        let a = addr as usize;
        if a + 8 > self.mem.len() {
            return Err(Fault::OutOfBounds(addr));
        }
        self.mem[a..a + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Fault> {
        let a = addr as usize;
        if a + buf.len() > self.mem.len() {
            return Err(Fault::OutOfBounds(addr));
        }
        buf.copy_from_slice(&self.mem[a..a + buf.len()]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (Vec<u8>, MemoryMap) {
        let map = MemoryMap::DEFAULT;
        let mut mem = vec![0u8; map.size as usize];
        install(&mut mem, &map);
        (mem, map)
    }

    #[test]
    fn install_writes_magic_and_dispatch() {
        let (mut mem, map) = fresh();
        let mut m = FlatMem { mem: &mut mem };
        assert_eq!(m.read_u64(map.kernel_base).unwrap(), MAGIC);
        for i in 0..DISPATCH_ENTRIES {
            assert_eq!(
                m.read_u64(map.kernel_base + DISPATCH_OFF + i * 8).unwrap(),
                expected_dispatch(i)
            );
        }
    }

    #[test]
    fn exit_syscall() {
        let (mut mem, map) = fresh();
        let mut m = FlatMem { mem: &mut mem };
        assert_eq!(
            handle_syscall(&mut m, &map, sys::EXIT, 42, 0),
            KernelOutcome::Exit(42)
        );
    }

    #[test]
    fn write_syscall_produces_output_and_bookkeeping() {
        let (mut mem, map) = fresh();
        let ptr = map.data_base;
        mem[ptr as usize..ptr as usize + 5].copy_from_slice(b"hello");
        let mut m = FlatMem { mem: &mut mem };
        let out = handle_syscall(&mut m, &map, sys::WRITE, ptr, 5);
        assert_eq!(out, KernelOutcome::Continue(b"hello".to_vec()));
        assert_eq!(m.read_u64(map.kernel_base + CONSOLE_COUNT_OFF).unwrap(), 5);
        assert_ne!(m.read_u64(map.kernel_base + CONSOLE_SUM_OFF).unwrap(), 0);
    }

    #[test]
    fn write_int_formats_decimal() {
        let (mut mem, map) = fresh();
        let mut m = FlatMem { mem: &mut mem };
        let out = handle_syscall(&mut m, &map, sys::WRITE_INT, 12345, 0);
        assert_eq!(out, KernelOutcome::Continue(b"12345\n".to_vec()));
    }

    #[test]
    fn corrupted_magic_panics_kernel() {
        let (mut mem, map) = fresh();
        mem[map.kernel_base as usize] ^= 0x10;
        let mut m = FlatMem { mem: &mut mem };
        assert!(matches!(
            handle_syscall(&mut m, &map, sys::WRITE_INT, 1, 0),
            KernelOutcome::Panic(_)
        ));
    }

    #[test]
    fn corrupted_dispatch_panics_kernel() {
        let (mut mem, map) = fresh();
        let slot = (map.kernel_base + DISPATCH_OFF + 2 * 8) as usize;
        mem[slot] ^= 0x01;
        let mut m = FlatMem { mem: &mut mem };
        // Syscall 2 consults dispatch slot 2.
        assert!(matches!(
            handle_syscall(&mut m, &map, sys::WRITE_INT, 1, 0),
            KernelOutcome::Panic(_)
        ));
        // Slot 0 is untouched; exit still works.
        assert_eq!(
            handle_syscall(&mut m, &map, sys::EXIT, 0, 0),
            KernelOutcome::Exit(0)
        );
    }

    #[test]
    fn wild_write_pointer_kills_process() {
        let (mut mem, map) = fresh();
        let mut m = FlatMem { mem: &mut mem };
        assert!(matches!(
            handle_syscall(&mut m, &map, sys::WRITE, u64::MAX - 10, 100),
            KernelOutcome::Kill(Fault::OutOfBounds(_))
        ));
        assert!(matches!(
            handle_syscall(&mut m, &map, sys::WRITE, map.data_base, u64::MAX),
            KernelOutcome::Kill(Fault::OutOfBounds(_))
        ));
    }

    #[test]
    fn unknown_syscall_is_logged_not_fatal() {
        let (mut mem, map) = fresh();
        let mut m = FlatMem { mem: &mut mem };
        assert_eq!(
            handle_syscall(&mut m, &map, 999, 0, 0),
            KernelOutcome::Continue(Vec::new())
        );
        assert_eq!(exception_count(&mut m, &map), 1);
    }

    #[test]
    fn log_exception_counts_up() {
        let (mut mem, map) = fresh();
        let mut m = FlatMem { mem: &mut mem };
        for i in 1..=3 {
            log_exception(&mut m, &map).unwrap();
            assert_eq!(exception_count(&mut m, &map), i);
        }
    }

    #[test]
    fn dispatch_values_are_distinct() {
        let mut vals: Vec<u64> = (0..DISPATCH_ENTRIES).map(expected_dispatch).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), DISPATCH_ENTRIES as usize);
    }
}
