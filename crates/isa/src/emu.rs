//! Functional (architectural) emulator.
//!
//! Executes a [`Program`] at architecture level — no pipeline, no caches —
//! and produces the *golden* output, instruction counts, and exception
//! counts that fault-injection runs are classified against. It shares the
//! decoders and the nano-kernel with the detailed simulators, so any
//! divergence between a fault-free pipeline run and the emulator is a
//! simulator bug, which the integration tests exploit.

use crate::kernel::{self, FlatMem, KernelOutcome};
use crate::program::{Isa, MemoryMap, Program};
use crate::uop::{
    compare_flags, fp_compare_flags, BranchKind, Fault, FpOp, IntOp, Reg, Uop, UopKind, Width,
};

/// Why an emulation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuExit {
    /// Program called `exit` with this code.
    Exited(u64),
    /// An unrecoverable ISA fault terminated the process.
    Fault(Fault),
    /// The nano-kernel panicked (corrupted kernel state).
    KernelPanic(&'static str),
    /// The instruction budget was exhausted.
    InstrLimit,
}

/// The result of a completed emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmuResult {
    /// How the run ended.
    pub exit: EmuExit,
    /// Console output.
    pub output: Vec<u8>,
    /// Architectural instructions executed.
    pub instructions: u64,
    /// µops executed.
    pub uops: u64,
    /// Handled (logged) ISA exceptions — the golden DUE baseline.
    pub exceptions: u64,
    /// Dynamic counts per µop kind, for workload characterization.
    pub mix: InstructionMix,
}

/// Dynamic instruction-mix counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstructionMix {
    /// Integer ALU µops.
    pub alu: u64,
    /// Load µops.
    pub loads: u64,
    /// Store µops.
    pub stores: u64,
    /// Branch µops.
    pub branches: u64,
    /// Taken branches.
    pub taken: u64,
    /// FP µops.
    pub fp: u64,
    /// Syscalls.
    pub syscalls: u64,
}

/// The architectural emulator.
#[derive(Debug, Clone)]
pub struct Emulator {
    mem: Vec<u8>,
    map: MemoryMap,
    isa: Isa,
    pc: u64,
    iregs: [u64; Reg::NUM_INT],
    fregs: [u64; Reg::NUM_FP],
    output: Vec<u8>,
    instructions: u64,
    uops: u64,
    mix: InstructionMix,
}

impl Emulator {
    /// Boots the program: memory image loaded, kernel installed, registers
    /// cleared, SP at the stack top.
    pub fn new(program: &Program) -> Emulator {
        let mut mem = program.initial_memory();
        kernel::install(&mut mem, &program.map);
        let mut iregs = [0u64; Reg::NUM_INT];
        iregs[Reg::SP.class_index()] = program.map.stack_top;
        Emulator {
            mem,
            map: program.map,
            isa: program.isa,
            pc: program.entry,
            iregs,
            fregs: [0; Reg::NUM_FP],
            output: Vec::new(),
            instructions: 0,
            uops: 0,
            mix: InstructionMix::default(),
        }
    }

    /// Runs to completion or until `max_instructions`.
    pub fn run(mut self, max_instructions: u64) -> EmuResult {
        let exit = loop {
            if self.instructions >= max_instructions {
                break EmuExit::InstrLimit;
            }
            match self.step() {
                Ok(None) => {}
                Ok(Some(exit)) => break exit,
                Err(fault) => break EmuExit::Fault(fault),
            }
        };
        let exceptions = {
            let mut fm = FlatMem { mem: &mut self.mem };
            kernel::exception_count(&mut fm, &self.map)
        };
        EmuResult {
            exit,
            output: self.output,
            instructions: self.instructions,
            uops: self.uops,
            exceptions,
            mix: self.mix,
        }
    }

    #[inline]
    fn reg(&self, r: Reg) -> u64 {
        if r.is_fp() {
            self.fregs[r.class_index()]
        } else {
            self.iregs[r.class_index()]
        }
    }

    #[inline]
    fn set_reg(&mut self, r: Reg, v: u64) {
        if r.is_fp() {
            self.fregs[r.class_index()] = v;
        } else {
            self.iregs[r.class_index()] = v;
        }
    }

    fn fetch_window(&self) -> Result<&[u8], Fault> {
        let code_end = self.map.code_base + self.map.code_size;
        if self.pc < self.map.code_base || self.pc >= code_end {
            return Err(Fault::OutOfBounds(self.pc));
        }
        let start = self.pc as usize;
        let end = (self.pc + crate::MAX_INST_LEN as u64).min(code_end) as usize;
        Ok(&self.mem[start..end])
    }

    /// Executes one architectural instruction. Returns `Ok(Some(exit))` on
    /// termination, `Ok(None)` to continue.
    pub fn step(&mut self) -> Result<Option<EmuExit>, Fault> {
        let window = self.fetch_window()?;
        let d = crate::decode(self.isa, window, self.pc);
        if let Some(f) = d.fault {
            return Err(f);
        }
        self.instructions += 1;
        let next_pc = self.pc + d.len as u64;
        let mut new_pc = next_pc;
        for u in &d.uops {
            self.uops += 1;
            match self.exec_uop(u)? {
                UopEffect::None => {}
                UopEffect::Branch(t) => {
                    new_pc = t;
                    break;
                }
                UopEffect::Exit(e) => return Ok(Some(e)),
            }
        }
        self.pc = new_pc;
        Ok(None)
    }

    fn exec_uop(&mut self, u: &Uop) -> Result<UopEffect, Fault> {
        match u.kind {
            UopKind::Nop => Ok(UopEffect::None),
            UopKind::Alu => {
                self.mix.alu += 1;
                let a = u.ra.map(|r| self.reg(r)).unwrap_or(u.imm as u64);
                let b = u.rb.map(|r| self.reg(r)).unwrap_or(u.imm as u64);
                let v = eval_int_op(u.alu, u.width, a, b)?;
                self.set_reg(u.rd.expect("alu writes a register"), v);
                Ok(UopEffect::None)
            }
            UopKind::Load => {
                self.mix.loads += 1;
                let addr = self
                    .reg(u.ra.expect("load has base"))
                    .wrapping_add(u.imm as u64);
                let v = self.mem_read(addr, u.width, u.signed)?;
                self.set_reg(u.rd.expect("load writes a register"), v);
                Ok(UopEffect::None)
            }
            UopKind::Store => {
                self.mix.stores += 1;
                let addr = self
                    .reg(u.ra.expect("store has base"))
                    .wrapping_add(u.imm as u64);
                let v = self.reg(u.rb.expect("store has data"));
                self.mem_write(addr, u.width, v)?;
                Ok(UopEffect::None)
            }
            UopKind::Branch => {
                self.mix.branches += 1;
                let taken_target = match u.branch {
                    BranchKind::CondDirect => {
                        let taken = if u.cond_on_flags {
                            u.cond.eval_flags(self.reg(Reg::FLAGS))
                        } else {
                            let a = self.reg(u.ra.expect("cond branch has ra"));
                            let b = u.rb.map(|r| self.reg(r)).unwrap_or(0);
                            u.cond.eval_regs(a, b)
                        };
                        if taken {
                            Some(u.target)
                        } else {
                            None
                        }
                    }
                    BranchKind::Jump => Some(u.target),
                    BranchKind::Call => {
                        if let Some(rd) = u.rd {
                            // arme: write the link register.
                            self.set_reg(rd, u.imm as u64);
                        }
                        Some(u.target)
                    }
                    BranchKind::Ret | BranchKind::JumpInd => {
                        Some(self.reg(u.ra.expect("indirect branch has ra")))
                    }
                };
                match taken_target {
                    Some(t) => {
                        self.mix.taken += 1;
                        Ok(UopEffect::Branch(t))
                    }
                    None => Ok(UopEffect::None),
                }
            }
            UopKind::Fp => {
                self.mix.fp += 1;
                let a = u.ra.map(|r| self.reg(r)).unwrap_or(0);
                let b = u.rb.map(|r| self.reg(r)).unwrap_or(0);
                // The arme FP compare writes a 0/1 predicate to an integer
                // register; the x86e form writes FLAGS bits.
                let v = if u.fp == FpOp::CmpFlags && u.rd != Some(Reg::FLAGS) {
                    eval_fp_predicate(u.imm, a, b)
                } else {
                    eval_fp_op(u.fp, a, b, u.imm)
                };
                self.set_reg(u.rd.expect("fp op writes a register"), v);
                Ok(UopEffect::None)
            }
            UopKind::Syscall => {
                self.mix.syscalls += 1;
                let (r0, r1, r2) = (self.iregs[0], self.iregs[1], self.iregs[2]);
                let map = self.map;
                let mut fm = FlatMem { mem: &mut self.mem };
                match kernel::handle_syscall(&mut fm, &map, r0, r1, r2) {
                    KernelOutcome::Continue(out) => {
                        self.output.extend_from_slice(&out);
                        Ok(UopEffect::None)
                    }
                    KernelOutcome::Exit(code) => Ok(UopEffect::Exit(EmuExit::Exited(code))),
                    KernelOutcome::Panic(msg) => Ok(UopEffect::Exit(EmuExit::KernelPanic(msg))),
                    KernelOutcome::Kill(f) => Err(f),
                }
            }
            UopKind::Hint => {
                let map = self.map;
                let mut fm = FlatMem { mem: &mut self.mem };
                match kernel::log_exception(&mut fm, &map) {
                    Ok(()) => Ok(UopEffect::None),
                    Err(KernelOutcome::Panic(m)) => Ok(UopEffect::Exit(EmuExit::KernelPanic(m))),
                    Err(_) => Ok(UopEffect::None),
                }
            }
        }
    }

    fn mem_read(&mut self, addr: u64, w: Width, signed: bool) -> Result<u64, Fault> {
        let len = w.bytes();
        if !self.map.contains(addr, len) {
            return Err(Fault::OutOfBounds(addr));
        }
        if self.isa == Isa::Arme && !addr.is_multiple_of(len) {
            // Alignment trap: the nano-kernel fixes it up and logs it.
            self.note_alignment()?;
        }
        let a = addr as usize;
        let raw = match w {
            Width::B1 => self.mem[a] as u64,
            Width::B2 => u16::from_le_bytes(
                self.mem[a..a + 2]
                    .try_into()
                    .expect("bounds-checked 2-byte slice"),
            ) as u64,
            Width::B4 => u32::from_le_bytes(
                self.mem[a..a + 4]
                    .try_into()
                    .expect("bounds-checked 4-byte slice"),
            ) as u64,
            Width::B8 => u64::from_le_bytes(
                self.mem[a..a + 8]
                    .try_into()
                    .expect("bounds-checked 8-byte slice"),
            ),
        };
        Ok(extend(raw, w, signed))
    }

    fn mem_write(&mut self, addr: u64, w: Width, v: u64) -> Result<(), Fault> {
        let len = w.bytes();
        if !self.map.contains(addr, len) {
            return Err(Fault::OutOfBounds(addr));
        }
        if self.map.in_code(addr, len) {
            return Err(Fault::CodeWrite(addr));
        }
        if self.isa == Isa::Arme && !addr.is_multiple_of(len) {
            self.note_alignment()?;
        }
        let a = addr as usize;
        match w {
            Width::B1 => self.mem[a] = v as u8,
            Width::B2 => self.mem[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes()),
            Width::B4 => self.mem[a..a + 4].copy_from_slice(&(v as u32).to_le_bytes()),
            Width::B8 => self.mem[a..a + 8].copy_from_slice(&v.to_le_bytes()),
        }
        Ok(())
    }

    fn note_alignment(&mut self) -> Result<(), Fault> {
        let map = self.map;
        let mut fm = FlatMem { mem: &mut self.mem };
        // A kernel panic during the fixup surfaces as an unrecoverable
        // fault; the detailed simulators report it as a system crash.
        kernel::log_exception(&mut fm, &map).map_err(|_| Fault::OutOfBounds(map.kernel_base))
    }
}

enum UopEffect {
    None,
    Branch(u64),
    Exit(EmuExit),
}

/// Zero- or sign-extends a raw loaded value of width `w`.
#[inline]
pub fn extend(raw: u64, w: Width, signed: bool) -> u64 {
    if !signed {
        return raw;
    }
    match w {
        Width::B1 => raw as u8 as i8 as i64 as u64,
        Width::B2 => raw as u16 as i16 as i64 as u64,
        Width::B4 => raw as u32 as i32 as i64 as u64,
        Width::B8 => raw,
    }
}

/// Evaluates an integer ALU operation at the given width.
///
/// # Errors
///
/// Returns [`Fault::DivideByZero`] for division/remainder by zero.
pub fn eval_int_op(op: IntOp, w: Width, a: u64, b: u64) -> Result<u64, Fault> {
    let wide = w != Width::B4;
    let (a32, b32) = (a as u32, b as u32);
    let v = match op {
        IntOp::Add => {
            if wide {
                a.wrapping_add(b)
            } else {
                a32.wrapping_add(b32) as u64
            }
        }
        IntOp::Sub => {
            if wide {
                a.wrapping_sub(b)
            } else {
                a32.wrapping_sub(b32) as u64
            }
        }
        IntOp::And => {
            if wide {
                a & b
            } else {
                (a32 & b32) as u64
            }
        }
        IntOp::Or => {
            if wide {
                a | b
            } else {
                (a32 | b32) as u64
            }
        }
        IntOp::Xor => {
            if wide {
                a ^ b
            } else {
                (a32 ^ b32) as u64
            }
        }
        IntOp::Shl => {
            if wide {
                a << (b & 63)
            } else {
                (a32 << (b32 & 31)) as u64
            }
        }
        IntOp::Shr => {
            if wide {
                a >> (b & 63)
            } else {
                (a32 >> (b32 & 31)) as u64
            }
        }
        IntOp::Sar => {
            if wide {
                ((a as i64) >> (b & 63)) as u64
            } else {
                ((a32 as i32) >> (b32 & 31)) as u32 as u64
            }
        }
        IntOp::Mul => {
            if wide {
                a.wrapping_mul(b)
            } else {
                a32.wrapping_mul(b32) as u64
            }
        }
        IntOp::DivS => {
            if (wide && b == 0) || (!wide && b32 == 0) {
                return Err(Fault::DivideByZero);
            }
            if wide {
                (a as i64).wrapping_div(b as i64) as u64
            } else {
                (a32 as i32).wrapping_div(b32 as i32) as u32 as u64
            }
        }
        IntOp::DivU => {
            if (wide && b == 0) || (!wide && b32 == 0) {
                return Err(Fault::DivideByZero);
            }
            if wide {
                a / b
            } else {
                (a32 / b32) as u64
            }
        }
        IntOp::RemS => {
            if (wide && b == 0) || (!wide && b32 == 0) {
                return Err(Fault::DivideByZero);
            }
            if wide {
                (a as i64).wrapping_rem(b as i64) as u64
            } else {
                (a32 as i32).wrapping_rem(b32 as i32) as u32 as u64
            }
        }
        IntOp::RemU => {
            if (wide && b == 0) || (!wide && b32 == 0) {
                return Err(Fault::DivideByZero);
            }
            if wide {
                a % b
            } else {
                (a32 % b32) as u64
            }
        }
        IntOp::Mov => {
            if wide {
                a
            } else {
                a32 as u64
            }
        }
        IntOp::CmpFlags => compare_flags(a, b, w),
    };
    Ok(v)
}

/// Evaluates an FP operation on raw register bits, returning raw result bits.
pub fn eval_fp_op(op: FpOp, a_bits: u64, b_bits: u64, imm: i64) -> u64 {
    let a = f64::from_bits(a_bits);
    let b = f64::from_bits(b_bits);
    match op {
        FpOp::Add => (a + b).to_bits(),
        FpOp::Sub => (a - b).to_bits(),
        FpOp::Mul => (a * b).to_bits(),
        FpOp::Div => (a / b).to_bits(),
        FpOp::Neg => (-a).to_bits(),
        FpOp::Abs => a.abs().to_bits(),
        FpOp::Sqrt => a.sqrt().to_bits(),
        // The x86e FLAGS form; callers use `eval_fp_predicate` for arme's
        // 0/1 predicate form (distinguished by the destination register).
        FpOp::CmpFlags => {
            let _ = imm;
            fp_compare_flags(a, b)
        }
        FpOp::FromInt => ((a_bits as i64) as f64).to_bits(),
        FpOp::ToInt => {
            // Truncation with saturation at the i64 range (like cvttsd2si
            // returning the indefinite value, simplified to saturate).
            let t = a.trunc();
            let v = if t.is_nan() {
                0
            } else if t >= i64::MAX as f64 {
                i64::MAX
            } else if t <= i64::MIN as f64 {
                i64::MIN
            } else {
                t as i64
            };
            v as u64
        }
        FpOp::Mov => a_bits,
        FpOp::FromBits => a_bits,
        FpOp::ToBits => a_bits,
    }
}

/// Evaluates the arme FP predicate form (0 = lt, 1 = le, 2 = eq) to 0/1.
pub fn eval_fp_predicate(pred: i64, a_bits: u64, b_bits: u64) -> u64 {
    let a = f64::from_bits(a_bits);
    let b = f64::from_bits(b_bits);
    let r = match pred {
        0 => a < b,
        1 => a <= b,
        _ => a == b,
    };
    r as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{Asm, FCond};
    use crate::uop::Cond;

    fn run(p: &Program) -> EmuResult {
        Emulator::new(p).run(1_000_000)
    }

    fn both_isas(build: impl Fn(&mut Asm)) -> (EmuResult, EmuResult) {
        let mut out = Vec::new();
        for isa in [Isa::X86e, Isa::Arme] {
            let mut a = Asm::new(isa);
            build(&mut a);
            let p = a.finish("t").unwrap();
            out.push(run(&p));
        }
        let b = out.pop().unwrap();
        let a = out.pop().unwrap();
        (a, b)
    }

    #[test]
    fn arithmetic_loop_matches_across_isas() {
        // sum of 1..=100 = 5050
        let (x, a) = both_isas(|a| {
            a.li(4, 0); // sum
            a.li(5, 1); // i
            let top = a.here_label();
            a.op(IntOp::Add, 4, 4, 5);
            a.opi(IntOp::Add, 5, 5, 1);
            a.bri(Cond::LeS, 5, 100, top);
            a.write_int(4);
            a.exit(0);
        });
        assert_eq!(x.exit, EmuExit::Exited(0));
        assert_eq!(a.exit, EmuExit::Exited(0));
        assert_eq!(x.output, b"5050\n");
        assert_eq!(a.output, b"5050\n");
        // The CISC encoding runs fewer-or-equal architectural instructions
        // but the RISC one should not be wildly different.
        assert!(x.instructions > 100 && a.instructions > 100);
    }

    #[test]
    fn memory_roundtrip_all_widths() {
        let (x, a) = both_isas(|a| {
            let buf = a.bss(64, 8);
            a.li(4, buf as i64);
            a.li(5, -2i64);
            a.store(Width::B1, 5, 4, 0);
            a.store(Width::B2, 5, 4, 8);
            a.store(Width::B4, 5, 4, 16);
            a.store(Width::B8, 5, 4, 24);
            a.load(Width::B1, true, 6, 4, 0); // -2
            a.load(Width::B2, false, 7, 4, 8); // 0xFFFE
            a.op(IntOp::Add, 6, 6, 7);
            a.write_int(6);
            a.exit(0);
        });
        // -2 + 0xFFFE = 65532
        assert_eq!(x.output, b"65532\n");
        assert_eq!(a.output, b"65532\n");
    }

    #[test]
    fn call_ret_and_stack() {
        let (x, a) = both_isas(|a| {
            let func = a.label();
            let done = a.label();
            a.li(0, 21);
            a.call(func);
            a.write_int(0);
            a.exit(0);
            a.jmp(done); // unreachable
            a.bind(func);
            a.op(IntOp::Add, 0, 0, 0); // r0 *= 2
            a.ret();
            a.bind(done);
        });
        assert_eq!(x.output, b"42\n");
        assert_eq!(a.output, b"42\n");
    }

    #[test]
    fn nested_calls_preserve_return_path() {
        let (x, a) = both_isas(|a| {
            let f1 = a.label();
            let f2 = a.label();
            a.li(0, 1);
            a.call(f1);
            a.write_int(0);
            a.exit(0);
            a.bind(f1);
            a.save_lr();
            a.opi(IntOp::Add, 0, 0, 10);
            a.call(f2);
            a.opi(IntOp::Add, 0, 0, 100);
            a.restore_lr();
            a.ret();
            a.bind(f2);
            a.opi(IntOp::Add, 0, 0, 1000);
            a.ret();
        });
        assert_eq!(x.output, b"1111\n");
        assert_eq!(a.output, b"1111\n");
    }

    #[test]
    fn fp_pipeline_f64() {
        let (x, a) = both_isas(|a| {
            a.fli(0, 1.5);
            a.fli(1, 2.25);
            a.falu(FpOp::Mul, 2, 0, 1); // 3.375
            a.fli(3, 0.375);
            a.falu(FpOp::Sub, 2, 2, 3); // 3.0
            a.funary(FpOp::Sqrt, 2, 2); // sqrt(3)
            a.falu(FpOp::Mul, 2, 2, 2); // ~3.0
            a.cvt_fi(4, 2);
            a.write_int(4);
            let skip = a.label();
            a.fbr(FCond::Gt, 2, 3, skip); // 3.0 > 0.375 → taken
            a.li(5, 999);
            a.write_int(5);
            a.bind(skip);
            a.exit(0);
        });
        // sqrt(3)^2 rounds to 2.999…, truncation gives 2 (or 3 — identical
        // on both ISAs since both use f64). Accept what the emulator says
        // but demand cross-ISA equality and that the branch was taken.
        assert_eq!(x.output, a.output);
        assert!(!x.output.is_empty());
        assert!(!String::from_utf8_lossy(&x.output).contains("999"));
    }

    #[test]
    fn write_buf_syscall() {
        let (x, a) = both_isas(|a| {
            let msg = a.data_bytes(b"differential");
            a.li(4, msg as i64);
            a.li(5, 12);
            a.write_buf(4, 5);
            a.exit(0);
        });
        assert_eq!(x.output, b"differential");
        assert_eq!(a.output, b"differential");
    }

    #[test]
    fn misaligned_load_is_fixed_up_and_logged_on_arme() {
        let mut a = Asm::new(Isa::Arme);
        let buf = a.data_u64s(&[0x0807_0605_0403_0201]);
        a.li(4, buf as i64);
        a.load(Width::B4, false, 5, 4, 1); // misaligned by 1
        a.write_int(5);
        a.exit(0);
        let r = run(&a.finish("t").unwrap());
        assert_eq!(r.exit, EmuExit::Exited(0));
        assert_eq!(r.exceptions, 1, "alignment fixup must be logged");
        assert_eq!(r.output, format!("{}\n", 0x0504_0302u32).into_bytes());
    }

    #[test]
    fn misaligned_load_is_silent_on_x86e() {
        let mut a = Asm::new(Isa::X86e);
        let buf = a.data_u64s(&[0x0807_0605_0403_0201]);
        a.li(4, buf as i64);
        a.load(Width::B4, false, 5, 4, 1);
        a.write_int(5);
        a.exit(0);
        let r = run(&a.finish("t").unwrap());
        assert_eq!(r.exceptions, 0);
        assert_eq!(r.output, format!("{}\n", 0x0504_0302u32).into_bytes());
    }

    #[test]
    fn hint_logs_exception_on_x86e() {
        let mut a = Asm::new(Isa::X86e);
        a.hint(7);
        a.exit(0);
        let r = run(&a.finish("t").unwrap());
        assert_eq!(r.exit, EmuExit::Exited(0));
        assert_eq!(r.exceptions, 1);
    }

    #[test]
    fn divide_by_zero_faults() {
        let (x, a) = both_isas(|a| {
            a.li(4, 10);
            a.li(5, 0);
            a.op(IntOp::DivS, 6, 4, 5);
            a.exit(0);
        });
        assert_eq!(x.exit, EmuExit::Fault(Fault::DivideByZero));
        assert_eq!(a.exit, EmuExit::Fault(Fault::DivideByZero));
    }

    #[test]
    fn wild_store_faults() {
        let (x, a) = both_isas(|a| {
            a.li(4, 0x7FFF_FFFF_0000i64);
            a.store(Width::B8, 4, 4, 0);
            a.exit(0);
        });
        assert!(matches!(x.exit, EmuExit::Fault(Fault::OutOfBounds(_))));
        assert!(matches!(a.exit, EmuExit::Fault(Fault::OutOfBounds(_))));
    }

    #[test]
    fn store_to_code_region_faults() {
        let (x, a) = both_isas(|a| {
            a.li(4, MemoryMap::DEFAULT.code_base as i64);
            a.li(5, 0);
            a.store(Width::B8, 5, 4, 0);
            a.exit(0);
        });
        assert!(matches!(x.exit, EmuExit::Fault(Fault::CodeWrite(_))));
        assert!(matches!(a.exit, EmuExit::Fault(Fault::CodeWrite(_))));
    }

    #[test]
    fn runaway_program_hits_instruction_limit() {
        let mut a = Asm::new(Isa::Arme);
        let top = a.here_label();
        a.jmp(top);
        let r = Emulator::new(&a.finish("t").unwrap()).run(10_000);
        assert_eq!(r.exit, EmuExit::InstrLimit);
        assert_eq!(r.instructions, 10_000);
    }

    #[test]
    fn instruction_mix_is_counted() {
        let (x, _) = both_isas(|a| {
            let buf = a.bss(8, 8);
            a.li(4, buf as i64);
            a.li(5, 3);
            a.store(Width::B8, 5, 4, 0);
            a.load(Width::B8, false, 6, 4, 0);
            let l = a.label();
            a.bri(Cond::Eq, 6, 3, l);
            a.bind(l);
            a.exit(0);
        });
        assert!(x.mix.loads >= 1);
        assert!(x.mix.stores >= 1);
        assert!(x.mix.branches >= 1 && x.mix.taken >= 1);
        assert_eq!(x.mix.syscalls, 1);
    }

    #[test]
    fn op32_wraps_at_32_bits() {
        let (x, a) = both_isas(|a| {
            a.li(4, 0xFFFF_FFFFu32 as i64);
            a.li(5, 1);
            a.op32(IntOp::Add, 6, 4, 5);
            a.write_int(6);
            a.exit(0);
        });
        assert_eq!(x.output, b"0\n");
        assert_eq!(a.output, b"0\n");
    }
}
