//! The micro-op IR shared by both simulated microarchitectures.
//!
//! Each ISA's decoder *cracks* architectural instructions into one or more
//! µops. The µop is the unit the out-of-order machinery renames, issues,
//! executes and commits — matching how MARSS and gem5 internally model x86.

/// An architectural register name in the unified namespace.
///
/// * `0..=15` — general-purpose integer registers `r0..r15`
///   (`r15` is the stack pointer by convention; `r14` the link register on
///   arme).
/// * `16`, `17` — integer cracking temporaries (decoder-visible only; the
///   x86e decoder uses them when splitting memory-operand instructions).
/// * `18` — the x86e FLAGS register.
/// * `128..=135` — floating-point registers `f0..f7`.
/// * `136` — floating-point cracking temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of integer architectural registers (r0..r15, two temps, FLAGS).
    pub const NUM_INT: usize = 19;
    /// Number of floating-point architectural registers (f0..f7 plus temp).
    pub const NUM_FP: usize = 9;
    /// The stack pointer.
    pub const SP: Reg = Reg(15);
    /// The link register (arme call convention).
    pub const LR: Reg = Reg(14);
    /// First integer cracking temporary.
    pub const T0: Reg = Reg(16);
    /// Second integer cracking temporary.
    pub const T1: Reg = Reg(17);
    /// The x86e FLAGS register.
    pub const FLAGS: Reg = Reg(18);

    /// Constructs a general-purpose integer register.
    ///
    /// # Panics
    ///
    /// Panics if `i > 15`.
    pub fn gpr(i: u8) -> Reg {
        assert!(i <= 15, "gpr index out of range");
        Reg(i)
    }

    /// Constructs a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `i > 7`.
    pub fn fpr(i: u8) -> Reg {
        assert!(i <= 7, "fpr index out of range");
        Reg(128 + i)
    }

    /// True if this is a floating-point register.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.0 >= 128
    }

    /// Index within its class (int: `0..19`, fp: `0..9`).
    #[inline]
    pub fn class_index(self) -> usize {
        if self.is_fp() {
            (self.0 - 128) as usize
        } else {
            self.0 as usize
        }
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            15 => write!(f, "sp"),
            18 => write!(f, "flags"),
            16 => write!(f, "t0"),
            17 => write!(f, "t1"),
            136 => write!(f, "ft"),
            n if n >= 128 => write!(f, "f{}", n - 128),
            n => write!(f, "r{n}"),
        }
    }
}

/// Access/operation width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes (32-bit ALU ops zero-extend their result).
    B4,
    /// 8 bytes (the default ALU width).
    B8,
}

impl Width {
    /// The width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// Decodes a two-bit width code (0→1, 1→2, 2→4, 3→8).
    pub fn from_code(c: u8) -> Width {
        match c & 3 {
            0 => Width::B1,
            1 => Width::B2,
            2 => Width::B4,
            _ => Width::B8,
        }
    }

    /// The two-bit width code.
    pub fn code(self) -> u8 {
        match self {
            Width::B1 => 0,
            Width::B2 => 1,
            Width::B4 => 2,
            Width::B8 => 3,
        }
    }
}

/// Integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// `rd = a + b`
    Add,
    /// `rd = a - b`
    Sub,
    /// `rd = a & b`
    And,
    /// `rd = a | b`
    Or,
    /// `rd = a ^ b`
    Xor,
    /// `rd = a << (b & width-1)`
    Shl,
    /// logical right shift
    Shr,
    /// arithmetic right shift
    Sar,
    /// low half of `a * b`
    Mul,
    /// signed division (`Fault::DivideByZero` when `b == 0`)
    DivS,
    /// unsigned division
    DivU,
    /// signed remainder
    RemS,
    /// unsigned remainder
    RemU,
    /// `rd = a` (or the immediate); `b` ignored
    Mov,
    /// compare `a` with `b` and produce a FLAGS value (x86e `cmp`)
    CmpFlags,
}

impl IntOp {
    /// Number of encodable ALU operations (`Mov` and `CmpFlags` included).
    pub const COUNT: u8 = 15;

    /// Decodes the 4-bit op index used by both ISA encodings.
    pub fn from_index(i: u8) -> Option<IntOp> {
        use IntOp::*;
        Some(match i {
            0 => Add,
            1 => Sub,
            2 => And,
            3 => Or,
            4 => Xor,
            5 => Shl,
            6 => Shr,
            7 => Sar,
            8 => Mul,
            9 => DivS,
            10 => DivU,
            11 => RemS,
            12 => RemU,
            13 => Mov,
            14 => CmpFlags,
            _ => return None,
        })
    }

    /// The 4-bit op index.
    pub fn index(self) -> u8 {
        use IntOp::*;
        match self {
            Add => 0,
            Sub => 1,
            And => 2,
            Or => 3,
            Xor => 4,
            Shl => 5,
            Shr => 6,
            Sar => 7,
            Mul => 8,
            DivS => 9,
            DivU => 10,
            RemS => 11,
            RemU => 12,
            Mov => 13,
            CmpFlags => 14,
        }
    }

    /// True for operations where operand order does not matter.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            IntOp::Add | IntOp::And | IntOp::Or | IntOp::Xor | IntOp::Mul
        )
    }

    /// True for the division family (multi-cycle functional unit, can fault).
    pub fn is_div(self) -> bool {
        matches!(self, IntOp::DivS | IntOp::DivU | IntOp::RemS | IntOp::RemU)
    }
}

/// Floating-point operation (all on `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// `fd = a + b`
    Add,
    /// `fd = a - b`
    Sub,
    /// `fd = a * b`
    Mul,
    /// `fd = a / b`
    Div,
    /// `fd = -a`
    Neg,
    /// `fd = |a|`
    Abs,
    /// `fd = sqrt(a)`
    Sqrt,
    /// compare `a` with `b`, producing an x86e-style FLAGS value
    /// (ZF = equal, CF = less-than); destination is the FLAGS register
    CmpFlags,
    /// `fd = (f64) (i64) a` — integer source register
    FromInt,
    /// `rd = (i64) a` (round toward zero) — integer destination register
    ToInt,
    /// `fd = a`
    Mov,
    /// bitcast an integer register into an FP register
    FromBits,
    /// bitcast an FP register into an integer register
    ToBits,
}

impl FpOp {
    /// Number of encodable FP operations.
    pub const COUNT: u8 = 13;

    /// Decodes the 4-bit FP op index.
    pub fn from_index(i: u8) -> Option<FpOp> {
        use FpOp::*;
        Some(match i {
            0 => Add,
            1 => Sub,
            2 => Mul,
            3 => Div,
            4 => Neg,
            5 => Abs,
            6 => Sqrt,
            7 => CmpFlags,
            8 => FromInt,
            9 => ToInt,
            10 => Mov,
            11 => FromBits,
            12 => ToBits,
            _ => return None,
        })
    }

    /// The 4-bit FP op index.
    pub fn index(self) -> u8 {
        use FpOp::*;
        match self {
            Add => 0,
            Sub => 1,
            Mul => 2,
            Div => 3,
            Neg => 4,
            Abs => 5,
            Sqrt => 6,
            CmpFlags => 7,
            FromInt => 8,
            ToInt => 9,
            Mov => 10,
            FromBits => 11,
            ToBits => 12,
        }
    }
}

/// Branch condition codes, shared by both ISAs.
///
/// On arme they compare two register sources directly; on x86e they test a
/// FLAGS value produced by an earlier `cmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// equal
    Eq,
    /// not equal
    Ne,
    /// signed less-than
    LtS,
    /// signed greater-or-equal
    GeS,
    /// signed less-or-equal
    LeS,
    /// signed greater-than
    GtS,
    /// unsigned less-than (x86e: below / FP less)
    LtU,
    /// unsigned greater-or-equal
    GeU,
    /// unsigned less-or-equal
    LeU,
    /// unsigned greater-than
    GtU,
}

/// FLAGS register bit layout (x86e).
pub mod flags {
    /// Zero flag.
    pub const ZF: u64 = 1 << 0;
    /// Sign flag.
    pub const SF: u64 = 1 << 1;
    /// Carry flag (unsigned borrow / FP less-than).
    pub const CF: u64 = 1 << 2;
    /// Overflow flag.
    pub const OF: u64 = 1 << 3;
}

impl Cond {
    /// Number of condition codes.
    pub const COUNT: u8 = 10;

    /// Decodes the 4-bit condition index.
    pub fn from_index(i: u8) -> Option<Cond> {
        use Cond::*;
        Some(match i {
            0 => Eq,
            1 => Ne,
            2 => LtS,
            3 => GeS,
            4 => LeS,
            5 => GtS,
            6 => LtU,
            7 => GeU,
            8 => LeU,
            9 => GtU,
            _ => return None,
        })
    }

    /// The 4-bit condition index.
    pub fn index(self) -> u8 {
        use Cond::*;
        match self {
            Eq => 0,
            Ne => 1,
            LtS => 2,
            GeS => 3,
            LeS => 4,
            GtS => 5,
            LtU => 6,
            GeU => 7,
            LeU => 8,
            GtU => 9,
        }
    }

    /// Evaluates the condition on two register values (arme semantics).
    pub fn eval_regs(self, a: u64, b: u64) -> bool {
        use Cond::*;
        match self {
            Eq => a == b,
            Ne => a != b,
            LtS => (a as i64) < (b as i64),
            GeS => (a as i64) >= (b as i64),
            LeS => (a as i64) <= (b as i64),
            GtS => (a as i64) > (b as i64),
            LtU => a < b,
            GeU => a >= b,
            LeU => a <= b,
            GtU => a > b,
        }
    }

    /// Evaluates the condition on a FLAGS value (x86e semantics).
    pub fn eval_flags(self, fl: u64) -> bool {
        use flags::*;
        let zf = fl & ZF != 0;
        let sf = fl & SF != 0;
        let cf = fl & CF != 0;
        let of = fl & OF != 0;
        use Cond::*;
        match self {
            Eq => zf,
            Ne => !zf,
            LtS => sf != of,
            GeS => sf == of,
            LeS => zf || sf != of,
            GtS => !zf && sf == of,
            LtU => cf,
            GeU => !cf,
            LeU => cf || zf,
            GtU => !cf && !zf,
        }
    }
}

/// Computes the FLAGS value for `cmp a, b` at the given width.
pub fn compare_flags(a: u64, b: u64, width: Width) -> u64 {
    let (a, b, sign_bit) = match width {
        Width::B4 => (a & 0xFFFF_FFFF, b & 0xFFFF_FFFF, 31),
        _ => (a, b, 63),
    };
    let diff = a.wrapping_sub(b);
    let diff = if width == Width::B4 {
        diff & 0xFFFF_FFFF
    } else {
        diff
    };
    let mut fl = 0;
    if diff == 0 {
        fl |= flags::ZF;
    }
    if diff >> sign_bit & 1 != 0 {
        fl |= flags::SF;
    }
    if a < b {
        fl |= flags::CF;
    }
    // Signed overflow of a - b.
    let of = ((a ^ b) & (a ^ diff)) >> sign_bit & 1 != 0;
    if of {
        fl |= flags::OF;
    }
    fl
}

/// Computes the FLAGS value for an FP compare (ucomisd-style:
/// ZF = equal, CF = less; unordered sets both).
pub fn fp_compare_flags(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        flags::ZF | flags::CF
    } else if a == b {
        flags::ZF
    } else if a < b {
        flags::CF
    } else {
        0
    }
}

/// Control-flow class of a µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch; `target` is the taken destination.
    CondDirect,
    /// Unconditional direct jump.
    Jump,
    /// Unconditional indirect jump through `ra`.
    JumpInd,
    /// Direct call (the arme form also writes the link register).
    Call,
    /// Return (indirect jump flavoured for the return address stack).
    Ret,
}

/// The kind of work a µop performs — used for functional-unit routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Integer ALU operation [`IntOp`].
    Alu,
    /// Memory load into `rd` from `[ra + imm]`.
    Load,
    /// Memory store of `rb` to `[ra + imm]`.
    Store,
    /// Control flow ([`BranchKind`] in `branch`).
    Branch,
    /// Floating-point operation [`FpOp`].
    Fp,
    /// System call into the nano-kernel.
    Syscall,
    /// Tolerated hint opcode: raises a logged (non-fatal) ISA exception.
    Hint,
    /// No operation.
    Nop,
}

/// ISA-level faults an instruction can raise.
///
/// These are the raw events the paper's classification maps onto outcome
/// classes: `Illegal`/`OutOfBounds`/`DivideByZero` terminate the process
/// (Crash), `Alignment` and `Hint` exceptions are handled and logged by the
/// nano-kernel (DUE when the run still completes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Undecodable or reserved instruction encoding.
    Illegal,
    /// Memory access outside the mapped address space.
    OutOfBounds(u64),
    /// Misaligned access on an alignment-checked ISA (arme).
    Alignment(u64),
    /// Integer division by zero.
    DivideByZero,
    /// Store to the read-only code region.
    CodeWrite(u64),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Illegal => write!(f, "illegal instruction"),
            Fault::OutOfBounds(a) => write!(f, "out-of-bounds access at {a:#x}"),
            Fault::Alignment(a) => write!(f, "misaligned access at {a:#x}"),
            Fault::DivideByZero => write!(f, "integer divide by zero"),
            Fault::CodeWrite(a) => write!(f, "store into code region at {a:#x}"),
        }
    }
}

/// One micro-operation.
///
/// A flat struct (rather than a deep enum) because the out-of-order pipelines
/// store µops in issue-queue payloads as packed bit-fields, and a fixed shape
/// keeps that codec — itself a fault-injection target — simple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uop {
    /// Functional class.
    pub kind: UopKind,
    /// Integer ALU operation (meaningful for `Alu`).
    pub alu: IntOp,
    /// FP operation (meaningful for `Fp`).
    pub fp: FpOp,
    /// Operation / access width.
    pub width: Width,
    /// Sign-extend loaded value (loads only).
    pub signed: bool,
    /// Destination register.
    pub rd: Option<Reg>,
    /// First source register.
    pub ra: Option<Reg>,
    /// Second source register (store data lives here).
    pub rb: Option<Reg>,
    /// Immediate operand / address displacement.
    pub imm: i64,
    /// Branch condition (CondDirect only).
    pub cond: Cond,
    /// `true` when the condition tests FLAGS (x86e) rather than `ra`/`rb`.
    pub cond_on_flags: bool,
    /// Branch class (meaningful for `Branch`).
    pub branch: BranchKind,
    /// Absolute taken-target for direct control flow.
    pub target: u64,
}

impl Uop {
    /// A NOP µop — the base for builders below.
    pub fn nop() -> Uop {
        Uop {
            kind: UopKind::Nop,
            alu: IntOp::Add,
            fp: FpOp::Add,
            width: Width::B8,
            signed: false,
            rd: None,
            ra: None,
            rb: None,
            imm: 0,
            cond: Cond::Eq,
            cond_on_flags: false,
            branch: BranchKind::Jump,
            target: 0,
        }
    }

    /// Builds an integer ALU µop `rd = ra op rb`.
    pub fn alu(
        op: IntOp,
        width: Width,
        rd: Reg,
        ra: Option<Reg>,
        rb: Option<Reg>,
        imm: i64,
    ) -> Uop {
        Uop {
            kind: UopKind::Alu,
            alu: op,
            width,
            rd: Some(rd),
            ra,
            rb,
            imm,
            ..Uop::nop()
        }
    }

    /// Builds a load µop `rd = [ra + imm]`.
    pub fn load(width: Width, signed: bool, rd: Reg, base: Reg, disp: i64) -> Uop {
        Uop {
            kind: UopKind::Load,
            width,
            signed,
            rd: Some(rd),
            ra: Some(base),
            imm: disp,
            ..Uop::nop()
        }
    }

    /// Builds a store µop `[ra + imm] = rb`.
    pub fn store(width: Width, data: Reg, base: Reg, disp: i64) -> Uop {
        Uop {
            kind: UopKind::Store,
            width,
            rb: Some(data),
            ra: Some(base),
            imm: disp,
            ..Uop::nop()
        }
    }

    /// True if the µop writes an integer register.
    pub fn writes_int(&self) -> bool {
        matches!(self.rd, Some(r) if !r.is_fp())
    }

    /// True if the µop writes a floating-point register.
    pub fn writes_fp(&self) -> bool {
        matches!(self.rd, Some(r) if r.is_fp())
    }

    /// True for control-flow µops.
    pub fn is_branch(&self) -> bool {
        self.kind == UopKind::Branch
    }

    /// True for memory µops.
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, UopKind::Load | UopKind::Store)
    }
}

/// Maximum µops one architectural instruction cracks into.
pub const MAX_UOPS: usize = 4;

/// A decoded architectural instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Decoded {
    /// Encoded length in bytes.
    pub len: u8,
    /// The cracked micro-ops (empty when `fault` is set).
    pub uops: Vec<Uop>,
    /// Decode-time fault (illegal/reserved encoding).
    pub fault: Option<Fault>,
}

impl Decoded {
    /// A faulted decode of the given consumed length.
    pub fn illegal(len: u8) -> Decoded {
        Decoded {
            len,
            uops: Vec::new(),
            fault: Some(Fault::Illegal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_namespace_roundtrip() {
        assert!(!Reg::gpr(5).is_fp());
        assert!(Reg::fpr(3).is_fp());
        assert_eq!(Reg::fpr(3).class_index(), 3);
        assert_eq!(Reg::FLAGS.class_index(), 18);
        assert_eq!(Reg::SP, Reg(15));
        assert_eq!(format!("{}", Reg::gpr(7)), "r7");
        assert_eq!(format!("{}", Reg::fpr(2)), "f2");
        assert_eq!(format!("{}", Reg::SP), "sp");
    }

    #[test]
    #[should_panic(expected = "gpr index")]
    fn gpr_constructor_validates() {
        Reg::gpr(16);
    }

    #[test]
    fn intop_index_roundtrip() {
        for i in 0..IntOp::COUNT {
            let op = IntOp::from_index(i).unwrap();
            assert_eq!(op.index(), i);
        }
        assert!(IntOp::from_index(IntOp::COUNT).is_none());
    }

    #[test]
    fn fpop_index_roundtrip() {
        for i in 0..FpOp::COUNT {
            let op = FpOp::from_index(i).unwrap();
            assert_eq!(op.index(), i);
        }
        assert!(FpOp::from_index(FpOp::COUNT).is_none());
    }

    #[test]
    fn cond_index_roundtrip() {
        for i in 0..Cond::COUNT {
            let c = Cond::from_index(i).unwrap();
            assert_eq!(c.index(), i);
        }
        assert!(Cond::from_index(Cond::COUNT).is_none());
    }

    #[test]
    fn cond_reg_semantics() {
        assert!(Cond::LtS.eval_regs((-1i64) as u64, 0));
        assert!(!Cond::LtU.eval_regs((-1i64) as u64, 0));
        assert!(Cond::GtU.eval_regs(u64::MAX, 0));
        assert!(Cond::Eq.eval_regs(7, 7));
        assert!(Cond::LeS.eval_regs(7, 7));
        assert!(!Cond::GtS.eval_regs(7, 7));
    }

    #[test]
    fn flags_semantics_match_reg_semantics() {
        // For every condition and a grid of values, evaluating through the
        // FLAGS produced by compare_flags must agree with direct evaluation.
        let vals: [u64; 7] = [
            0,
            1,
            5,
            u64::MAX,
            (i64::MIN) as u64,
            (i64::MAX) as u64,
            0x8000_0000,
        ];
        for &a in &vals {
            for &b in &vals {
                let fl = compare_flags(a, b, Width::B8);
                for i in 0..Cond::COUNT {
                    let c = Cond::from_index(i).unwrap();
                    assert_eq!(
                        c.eval_flags(fl),
                        c.eval_regs(a, b),
                        "cond {c:?} a={a:#x} b={b:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn flags_semantics_32bit() {
        let a = 0xFFFF_FFFFu64; // -1 as i32, but large positive as i64
        let b = 0u64;
        let fl = compare_flags(a, b, Width::B4);
        assert!(Cond::LtS.eval_flags(fl), "32-bit -1 < 0 signed");
        assert!(Cond::GtU.eval_flags(fl), "32-bit 0xffffffff > 0 unsigned");
    }

    #[test]
    fn fp_compare_flag_values() {
        assert!(Cond::LtU.eval_flags(fp_compare_flags(1.0, 2.0)));
        assert!(Cond::Eq.eval_flags(fp_compare_flags(2.0, 2.0)));
        assert!(Cond::GtU.eval_flags(fp_compare_flags(3.0, 2.0)));
        // Unordered compares as "below or equal" but never strictly greater.
        let un = fp_compare_flags(f64::NAN, 2.0);
        assert!(!Cond::GtU.eval_flags(un));
    }

    #[test]
    fn uop_builders_set_expected_fields() {
        let l = Uop::load(Width::B4, true, Reg::gpr(2), Reg::SP, -8);
        assert_eq!(l.kind, UopKind::Load);
        assert!(l.signed && l.is_mem() && l.writes_int());
        let s = Uop::store(Width::B8, Reg::gpr(1), Reg::gpr(3), 16);
        assert_eq!(s.rb, Some(Reg::gpr(1)));
        assert!(!s.writes_int());
        let a = Uop::alu(
            IntOp::Add,
            Width::B8,
            Reg::gpr(0),
            Some(Reg::gpr(1)),
            Some(Reg::gpr(2)),
            0,
        );
        assert!(a.writes_int() && !a.writes_fp() && !a.is_branch());
    }
}
