//! Three-address macro-assembler targeting both ISAs.
//!
//! The workloads of the study are written once against this builder and
//! compiled to **x86e** and **arme**, the way the paper compiles MiBench for
//! x86 and ARM. The backend lowers each three-address operation into the
//! target's idiom:
//!
//! * x86e lowers `rd = ra op rb` into destructive two-operand sequences
//!   (using `r13` as an assembler scratch when needed), immediate compares
//!   into `cmp` + `jcc` FLAGS pairs, and large constants into `movabs`.
//! * arme emits three-operand instructions directly, builds constants from
//!   `movz`/`movk` pieces, and lowers out-of-range memory offsets through
//!   the scratch register.
//!
//! ## Register convention
//!
//! * `r0..=r3` — arguments / return value (`r0`).
//! * `r4..=r12` — general scratch for the workload.
//! * `r13` — **reserved** assembler scratch (both ISAs).
//! * `r14` — link register (arme `call`); reserved.
//! * `r15` — stack pointer.
//! * `f0..=f6` — floating-point scratch; `f7` is the x86e assembler scratch.
//!
//! The entry point is the first emitted instruction; programs terminate via
//! [`Asm::exit`].

use crate::arme;
use crate::program::{Isa, MemoryMap, Program};
use crate::uop::{Cond, IntOp, Width};
use crate::x86e;
use difi_util::{Error, Result};

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Floating-point branch predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FCond {
    /// branch if `fa < fb`
    Lt,
    /// branch if `fa <= fb`
    Le,
    /// branch if `fa == fb`
    Eq,
    /// branch if `fa != fb`
    Ne,
    /// branch if `fa >= fb`
    Ge,
    /// branch if `fa > fb`
    Gt,
}

/// The assembler scratch register (reserved; see module docs).
pub const SCRATCH: u8 = 13;
/// The x86e floating-point assembler scratch.
pub const FSCRATCH: u8 = 7;
/// The stack pointer register number.
pub const SP: u8 = 15;

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    /// x86e `jcc rel16` — displacement at `at + 1`.
    X86Jcc,
    /// x86e `jmp`/`call rel32` — displacement at `at + 1`.
    X86Rel32,
    /// arme `bcond` — 12-bit word offset in the instruction at `at`.
    ArmBcond,
    /// arme `b`/`bl` — 26-bit word offset.
    ArmB26,
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    at: usize,
    len: usize,
    kind: FixupKind,
    label: Label,
}

/// The two-ISA macro-assembler. See the [module docs](self) for the
/// programming model.
///
/// # Example
///
/// ```
/// use difi_isa::asm::Asm;
/// use difi_isa::program::Isa;
/// use difi_isa::uop::IntOp;
///
/// # fn main() -> Result<(), difi_util::Error> {
/// let mut a = Asm::new(Isa::Arme);
/// a.li(0, 2); // r0 = syscall WRITE_INT
/// a.li(1, 7);
/// a.op(IntOp::Add, 1, 1, 1); // r1 = 14
/// a.exit(0);
/// let prog = a.finish("doubler")?;
/// assert_eq!(prog.isa, Isa::Arme);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Asm {
    isa: Isa,
    map: MemoryMap,
    code: Vec<u8>,
    data: Vec<u8>,
    labels: Vec<Option<u64>>,
    fixups: Vec<Fixup>,
}

impl Asm {
    /// Creates an assembler for `isa` using the default memory map.
    pub fn new(isa: Isa) -> Asm {
        Asm {
            isa,
            map: MemoryMap::DEFAULT,
            code: Vec::new(),
            data: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// The target ISA.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Current code offset (bytes from the code base).
    pub fn here(&self) -> u64 {
        self.code.len() as u64
    }

    fn emit(&mut self, bytes: &[u8]) {
        self.code.extend_from_slice(bytes);
    }

    fn emit_w(&mut self, w: u32) {
        self.code.extend_from_slice(&w.to_le_bytes());
    }

    fn check_gpr(r: u8) {
        assert!(
            r <= 12 || r == SP,
            "register r{r} is reserved (workloads may use r0..r12 and sp)"
        );
    }

    fn check_fpr(f: u8) {
        assert!(f <= 6, "f{f} is reserved (workloads may use f0..f6)");
    }

    // -- labels ------------------------------------------------------------

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `l` to the current code position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.here());
    }

    /// Creates a label bound to the current position.
    pub fn here_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    // -- data section ------------------------------------------------------

    fn data_align(&mut self, align: usize) {
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Appends raw bytes to the data section; returns their absolute address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.map.data_base + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends 8-aligned `u64` words; returns their absolute address.
    pub fn data_u64s(&mut self, words: &[u64]) -> u64 {
        self.data_align(8);
        let addr = self.map.data_base + self.data.len() as u64;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Appends 4-aligned `u32` words; returns their absolute address.
    pub fn data_u32s(&mut self, words: &[u32]) -> u64 {
        self.data_align(4);
        let addr = self.map.data_base + self.data.len() as u64;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Appends 8-aligned `f64` constants; returns their absolute address.
    pub fn data_f64s(&mut self, vals: &[f64]) -> u64 {
        self.data_align(8);
        let addr = self.map.data_base + self.data.len() as u64;
        for v in vals {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Reserves `size` zeroed bytes with the given alignment; returns their
    /// absolute address.
    pub fn bss(&mut self, size: u64, align: usize) -> u64 {
        self.data_align(align);
        let addr = self.map.data_base + self.data.len() as u64;
        self.data.resize(self.data.len() + size as usize, 0);
        addr
    }

    // -- moves and constants ------------------------------------------------

    /// `rd = imm` (any 64-bit constant).
    pub fn li(&mut self, rd: u8, imm: i64) {
        Self::check_gpr(rd);
        self.li_any(rd, imm);
    }

    fn li_any(&mut self, rd: u8, imm: i64) {
        match self.isa {
            Isa::X86e => {
                if i32::try_from(imm).is_ok() {
                    let b = x86e::encode_alu_ri(IntOp::Mov, false, rd, imm as i32);
                    self.emit(&b);
                } else {
                    let b = x86e::encode_movabs(rd, imm as u64);
                    self.emit(&b);
                }
            }
            Isa::Arme => {
                if (-1024..=1023).contains(&imm) {
                    self.emit_w(arme::encode_alu_rri(IntOp::Mov, false, rd, 0, imm as i32));
                } else {
                    let v = imm as u64;
                    self.emit_w(arme::encode_movz(rd, v as u16, 0));
                    for sh in 1..4u8 {
                        let piece = (v >> (16 * sh)) as u16;
                        if piece != 0 {
                            self.emit_w(arme::encode_movk(rd, piece, sh));
                        }
                    }
                }
            }
        }
    }

    /// `rd = ra`.
    pub fn mov(&mut self, rd: u8, ra: u8) {
        Self::check_gpr(rd);
        Self::check_gpr(ra);
        if rd == ra {
            return;
        }
        self.mov_any(rd, ra);
    }

    fn mov_any(&mut self, rd: u8, ra: u8) {
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_alu_rr(IntOp::Mov, false, rd, ra);
                self.emit(&b);
            }
            Isa::Arme => self.emit_w(arme::encode_alu_rrr(IntOp::Mov, false, rd, ra, 0)),
        }
    }

    // -- integer ALU ---------------------------------------------------------

    /// `rd = ra op rb` (64-bit).
    pub fn op(&mut self, op: IntOp, rd: u8, ra: u8, rb: u8) {
        self.op_w(op, false, rd, ra, rb);
    }

    /// `rd = ra op rb` (32-bit, result zero-extended).
    pub fn op32(&mut self, op: IntOp, rd: u8, ra: u8, rb: u8) {
        self.op_w(op, true, rd, ra, rb);
    }

    fn op_w(&mut self, op: IntOp, w32: bool, rd: u8, ra: u8, rb: u8) {
        assert!(op != IntOp::Mov && op != IntOp::CmpFlags, "use mov/br");
        Self::check_gpr(rd);
        Self::check_gpr(ra);
        Self::check_gpr(rb);
        match self.isa {
            Isa::Arme => self.emit_w(arme::encode_alu_rrr(op, w32, rd, ra, rb)),
            Isa::X86e => {
                if rd == ra {
                    let b = x86e::encode_alu_rr(op, w32, rd, rb);
                    self.emit(&b);
                } else if rd == rb {
                    if op.commutative() {
                        let b = x86e::encode_alu_rr(op, w32, rd, ra);
                        self.emit(&b);
                    } else {
                        // rd aliases the second operand of a non-commutative
                        // op: go through the scratch register.
                        self.mov_any(SCRATCH, ra);
                        let b = x86e::encode_alu_rr(op, w32, SCRATCH, rb);
                        self.emit(&b);
                        self.mov_any(rd, SCRATCH);
                    }
                } else {
                    self.mov_any(rd, ra);
                    let b = x86e::encode_alu_rr(op, w32, rd, rb);
                    self.emit(&b);
                }
            }
        }
    }

    /// `rd = ra op imm` (64-bit).
    pub fn opi(&mut self, op: IntOp, rd: u8, ra: u8, imm: i32) {
        self.opi_w(op, false, rd, ra, imm);
    }

    /// `rd = ra op imm` (32-bit).
    pub fn opi32(&mut self, op: IntOp, rd: u8, ra: u8, imm: i32) {
        self.opi_w(op, true, rd, ra, imm);
    }

    fn opi_w(&mut self, op: IntOp, w32: bool, rd: u8, ra: u8, imm: i32) {
        assert!(op != IntOp::Mov && op != IntOp::CmpFlags, "use li/br");
        Self::check_gpr(rd);
        Self::check_gpr(ra);
        match self.isa {
            Isa::Arme => {
                if (-1024..=1023).contains(&imm) {
                    self.emit_w(arme::encode_alu_rri(op, w32, rd, ra, imm));
                } else {
                    self.li_any(SCRATCH, imm as i64);
                    self.emit_w(arme::encode_alu_rrr(op, w32, rd, ra, SCRATCH));
                }
            }
            Isa::X86e => {
                if rd != ra {
                    self.mov_any(rd, ra);
                }
                let b = x86e::encode_alu_ri(op, w32, rd, imm);
                self.emit(&b);
            }
        }
    }

    /// Folds a 64-bit memory operand: `rd = rd op [base + off]`
    /// (`Add`/`Sub`/`And`/`Or`/`Xor`). On x86e this emits the CISC
    /// memory-operand instruction that the decoder cracks into µops; on arme
    /// it is a load + op pair through the scratch register.
    pub fn op_mem(&mut self, op: IntOp, rd: u8, base: u8, off: i32) {
        assert!(op.index() <= 4, "op_mem supports add/sub/and/or/xor");
        Self::check_gpr(rd);
        Self::check_gpr(base);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_alu_mem(op, rd, base, off);
                self.emit(&b);
            }
            Isa::Arme => {
                self.load_any(Width::B8, false, SCRATCH, base, off);
                self.emit_w(arme::encode_alu_rrr(op, false, rd, rd, SCRATCH));
            }
        }
    }

    // -- memory ---------------------------------------------------------------

    /// `rd = [base + off]`, zero- or sign-extended.
    pub fn load(&mut self, w: Width, signed: bool, rd: u8, base: u8, off: i32) {
        Self::check_gpr(rd);
        Self::check_gpr(base);
        self.load_any(w, signed, rd, base, off);
    }

    fn load_any(&mut self, w: Width, signed: bool, rd: u8, base: u8, off: i32) {
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_load(w, signed, rd, base, off);
                self.emit(&b);
            }
            Isa::Arme => {
                if (-256..=255).contains(&off) {
                    self.emit_w(arme::encode_load(w, signed, rd, base, off));
                } else {
                    self.li_any(SCRATCH, off as i64);
                    self.emit_w(arme::encode_alu_rrr(
                        IntOp::Add,
                        false,
                        SCRATCH,
                        base,
                        SCRATCH,
                    ));
                    self.emit_w(arme::encode_load(w, signed, rd, SCRATCH, 0));
                }
            }
        }
    }

    /// `[base + off] = rs`.
    pub fn store(&mut self, w: Width, rs: u8, base: u8, off: i32) {
        Self::check_gpr(rs);
        Self::check_gpr(base);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_store(w, rs, base, off);
                self.emit(&b);
            }
            Isa::Arme => {
                if (-512..=511).contains(&off) {
                    self.emit_w(arme::encode_store(w, rs, base, off));
                } else {
                    self.li_any(SCRATCH, off as i64);
                    self.emit_w(arme::encode_alu_rrr(
                        IntOp::Add,
                        false,
                        SCRATCH,
                        base,
                        SCRATCH,
                    ));
                    self.emit_w(arme::encode_store(w, rs, SCRATCH, 0));
                }
            }
        }
    }

    /// Pushes `r` onto the stack.
    pub fn push(&mut self, r: u8) {
        Self::check_gpr(r);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_store(Width::B8, r, SP, -8);
                self.emit(&b);
                let b = x86e::encode_alu_ri(IntOp::Sub, false, SP, 8);
                self.emit(&b);
            }
            Isa::Arme => {
                self.emit_w(arme::encode_store(Width::B8, r, SP, -8));
                self.emit_w(arme::encode_alu_rri(IntOp::Sub, false, SP, SP, 8));
            }
        }
    }

    /// Pops the top of stack into `r`.
    pub fn pop(&mut self, r: u8) {
        Self::check_gpr(r);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_alu_ri(IntOp::Add, false, SP, 8);
                self.emit(&b);
                let b = x86e::encode_load(Width::B8, false, r, SP, -8);
                self.emit(&b);
            }
            Isa::Arme => {
                self.emit_w(arme::encode_alu_rri(IntOp::Add, false, SP, SP, 8));
                self.emit_w(arme::encode_load(Width::B8, false, r, SP, -8));
            }
        }
    }

    /// Adjusts the stack pointer by `delta` bytes (negative allocates).
    pub fn add_sp(&mut self, delta: i32) {
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_alu_ri(IntOp::Add, false, SP, delta);
                self.emit(&b);
            }
            Isa::Arme => {
                if (-1024..=1023).contains(&delta) {
                    self.emit_w(arme::encode_alu_rri(IntOp::Add, false, SP, SP, delta));
                } else {
                    self.li_any(SCRATCH, delta as i64);
                    self.emit_w(arme::encode_alu_rrr(IntOp::Add, false, SP, SP, SCRATCH));
                }
            }
        }
    }

    // -- control flow ----------------------------------------------------------

    /// Conditional branch: `if ra cond rb goto target`.
    pub fn br(&mut self, c: Cond, ra: u8, rb: u8, target: Label) {
        Self::check_gpr(ra);
        Self::check_gpr(rb);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_alu_rr(IntOp::CmpFlags, false, ra, rb);
                self.emit(&b);
                self.emit_jcc(c, target);
            }
            Isa::Arme => self.emit_bcond(c, ra, rb, target),
        }
    }

    /// Conditional branch against an immediate: `if ra cond imm goto target`.
    pub fn bri(&mut self, c: Cond, ra: u8, imm: i32, target: Label) {
        Self::check_gpr(ra);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_alu_ri(IntOp::CmpFlags, false, ra, imm);
                self.emit(&b);
                self.emit_jcc(c, target);
            }
            Isa::Arme => {
                if imm == 0 {
                    // rb field 31 is the zero register in bcond position.
                    self.emit_bcond_raw(c, ra, 31, target);
                } else {
                    self.li_any(SCRATCH, imm as i64);
                    self.emit_bcond(c, ra, SCRATCH, target);
                }
            }
        }
    }

    fn emit_jcc(&mut self, c: Cond, target: Label) {
        let at = self.code.len();
        let b = x86e::encode_jcc(c, 0);
        self.emit(&b);
        self.fixups.push(Fixup {
            at,
            len: 3,
            kind: FixupKind::X86Jcc,
            label: target,
        });
    }

    fn emit_bcond(&mut self, c: Cond, ra: u8, rb: u8, target: Label) {
        self.emit_bcond_raw(c, ra, rb, target);
    }

    fn emit_bcond_raw(&mut self, c: Cond, ra: u8, rb: u8, target: Label) {
        let at = self.code.len();
        // Encode with a placeholder offset; register fields are final.
        let w = (0x08u32 << 26) | (c.index() as u32) << 22 | (ra as u32) << 17 | (rb as u32) << 12;
        self.emit_w(w);
        self.fixups.push(Fixup {
            at,
            len: 4,
            kind: FixupKind::ArmBcond,
            label: target,
        });
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) {
        let at = self.code.len();
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_jmp(0);
                self.emit(&b);
                self.fixups.push(Fixup {
                    at,
                    len: 5,
                    kind: FixupKind::X86Rel32,
                    label: target,
                });
            }
            Isa::Arme => {
                self.emit_w(arme::encode_b(0));
                self.fixups.push(Fixup {
                    at,
                    len: 4,
                    kind: FixupKind::ArmB26,
                    label: target,
                });
            }
        }
    }

    /// Calls the subroutine at `target` (stack push on x86e, link register on
    /// arme).
    pub fn call(&mut self, target: Label) {
        let at = self.code.len();
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_call(0);
                self.emit(&b);
                self.fixups.push(Fixup {
                    at,
                    len: 5,
                    kind: FixupKind::X86Rel32,
                    label: target,
                });
            }
            Isa::Arme => {
                self.emit_w(arme::encode_bl(0));
                self.fixups.push(Fixup {
                    at,
                    len: 4,
                    kind: FixupKind::ArmB26,
                    label: target,
                });
            }
        }
    }

    /// Returns from a subroutine.
    ///
    /// arme leaf functions return through `r14`; non-leaf functions must save
    /// and restore it themselves ([`Asm::save_lr`] / [`Asm::restore_lr`]).
    pub fn ret(&mut self) {
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_ret();
                self.emit(&b);
            }
            Isa::Arme => self.emit_w(arme::encode_br(14)),
        }
    }

    /// Saves the return address at function entry (arme pushes `r14`; x86e's
    /// `call` already pushed it, so this is a no-op).
    pub fn save_lr(&mut self) {
        if self.isa == Isa::Arme {
            self.emit_w(arme::encode_store(Width::B8, 14, SP, -8));
            self.emit_w(arme::encode_alu_rri(IntOp::Sub, false, SP, SP, 8));
        }
    }

    /// Restores the return address before [`Asm::ret`] (arme pops `r14`).
    pub fn restore_lr(&mut self) {
        if self.isa == Isa::Arme {
            self.emit_w(arme::encode_alu_rri(IntOp::Add, false, SP, SP, 8));
            self.emit_w(arme::encode_load(Width::B8, false, 14, SP, -8));
        }
    }

    /// Emits a `nop`.
    pub fn nop(&mut self) {
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_nop();
                self.emit(&b);
            }
            Isa::Arme => self.emit_w(arme::encode_nop()),
        }
    }

    /// Emits the tolerated hint opcode (x86e) or a `nop` (arme) — the
    /// deliberate DUE-producing instruction.
    pub fn hint(&mut self, code: u8) {
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_hint(code);
                self.emit(&b);
            }
            Isa::Arme => self.emit_w(arme::encode_nop()),
        }
    }

    /// Emits a raw `syscall` (arguments already in `r0..r2`).
    pub fn syscall(&mut self) {
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_syscall();
                self.emit(&b);
            }
            Isa::Arme => self.emit_w(arme::encode_syscall()),
        }
    }

    /// Terminates the program with `code`.
    pub fn exit(&mut self, code: i64) {
        self.li(1, code);
        self.li(0, crate::kernel::sys::EXIT as i64);
        self.syscall();
    }

    /// Writes `len` bytes at the address in `ptr_reg` to the console.
    pub fn write_buf(&mut self, ptr_reg: u8, len_reg: u8) {
        self.mov(1, ptr_reg);
        self.mov(2, len_reg);
        self.li(0, crate::kernel::sys::WRITE as i64);
        self.syscall();
    }

    /// Writes the integer in `val_reg` as a decimal line to the console.
    pub fn write_int(&mut self, val_reg: u8) {
        self.mov(1, val_reg);
        self.li(0, crate::kernel::sys::WRITE_INT as i64);
        self.syscall();
    }

    // -- floating point ---------------------------------------------------------

    /// `fd = fa op fb` for binary FP operations.
    pub fn falu(&mut self, op: crate::uop::FpOp, fd: u8, fa: u8, fb: u8) {
        use crate::uop::FpOp;
        assert!(
            matches!(op, FpOp::Add | FpOp::Sub | FpOp::Mul | FpOp::Div),
            "falu takes binary fp ops"
        );
        Self::check_fpr(fd);
        Self::check_fpr(fa);
        Self::check_fpr(fb);
        match self.isa {
            Isa::Arme => self.emit_w(arme::encode_fpalu(op, fd, fa, fb)),
            Isa::X86e => {
                if fd == fa {
                    let b = x86e::encode_fp_rr(op, fd, fb);
                    self.emit(&b);
                } else if fd == fb {
                    if matches!(op, FpOp::Add | FpOp::Mul) {
                        let b = x86e::encode_fp_rr(op, fd, fa);
                        self.emit(&b);
                    } else {
                        let b = x86e::encode_fp_unary(FpOp::Mov, FSCRATCH, fa);
                        self.emit(&b);
                        let b = x86e::encode_fp_rr(op, FSCRATCH, fb);
                        self.emit(&b);
                        let b = x86e::encode_fp_unary(FpOp::Mov, fd, FSCRATCH);
                        self.emit(&b);
                    }
                } else {
                    let b = x86e::encode_fp_unary(FpOp::Mov, fd, fa);
                    self.emit(&b);
                    let b = x86e::encode_fp_rr(op, fd, fb);
                    self.emit(&b);
                }
            }
        }
    }

    /// `fd = op fa` for unary FP operations (`Neg`, `Abs`, `Sqrt`, `Mov`).
    pub fn funary(&mut self, op: crate::uop::FpOp, fd: u8, fa: u8) {
        use crate::uop::FpOp;
        assert!(matches!(op, FpOp::Neg | FpOp::Abs | FpOp::Sqrt | FpOp::Mov));
        Self::check_fpr(fd);
        Self::check_fpr(fa);
        match self.isa {
            Isa::Arme => self.emit_w(arme::encode_fpalu(op, fd, fa, 0)),
            Isa::X86e => {
                let b = x86e::encode_fp_unary(op, fd, fa);
                self.emit(&b);
            }
        }
    }

    /// `fd = [base + off]` (f64).
    pub fn fload(&mut self, fd: u8, base: u8, off: i32) {
        Self::check_fpr(fd);
        Self::check_gpr(base);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_fload(fd, base, off);
                self.emit(&b);
            }
            Isa::Arme => {
                if (-1024..=1023).contains(&off) {
                    self.emit_w(arme::encode_fload(fd, base, off));
                } else {
                    self.li_any(SCRATCH, off as i64);
                    self.emit_w(arme::encode_alu_rrr(
                        IntOp::Add,
                        false,
                        SCRATCH,
                        base,
                        SCRATCH,
                    ));
                    self.emit_w(arme::encode_fload(fd, SCRATCH, 0));
                }
            }
        }
    }

    /// `[base + off] = fs` (f64).
    pub fn fstore(&mut self, fs: u8, base: u8, off: i32) {
        Self::check_fpr(fs);
        Self::check_gpr(base);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_fstore(fs, base, off);
                self.emit(&b);
            }
            Isa::Arme => {
                if (-1024..=1023).contains(&off) {
                    self.emit_w(arme::encode_fstore(fs, base, off));
                } else {
                    self.li_any(SCRATCH, off as i64);
                    self.emit_w(arme::encode_alu_rrr(
                        IntOp::Add,
                        false,
                        SCRATCH,
                        base,
                        SCRATCH,
                    ));
                    self.emit_w(arme::encode_fstore(fs, SCRATCH, 0));
                }
            }
        }
    }

    /// `fd = (f64) ra` (signed integer to double).
    pub fn cvt_if(&mut self, fd: u8, ra: u8) {
        Self::check_fpr(fd);
        Self::check_gpr(ra);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_cvtif(fd, ra);
                self.emit(&b);
            }
            Isa::Arme => self.emit_w(arme::encode_fpalu(crate::uop::FpOp::FromInt, fd, ra, 0)),
        }
    }

    /// `rd = (i64) fa` (truncating double to integer).
    pub fn cvt_fi(&mut self, rd: u8, fa: u8) {
        Self::check_gpr(rd);
        Self::check_fpr(fa);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_cvtfi(rd, fa);
                self.emit(&b);
            }
            Isa::Arme => self.emit_w(arme::encode_fpalu(crate::uop::FpOp::ToInt, rd, fa, 0)),
        }
    }

    /// `rd = bits(fa)` (bitcast f64 → u64), used to hash FP results into
    /// integer output.
    pub fn fbits(&mut self, rd: u8, fa: u8) {
        Self::check_gpr(rd);
        Self::check_fpr(fa);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_movfi(rd, fa);
                self.emit(&b);
            }
            Isa::Arme => self.emit_w(arme::encode_fpalu(crate::uop::FpOp::ToBits, rd, fa, 0)),
        }
    }

    /// Loads an immediate f64 constant into `fd` (via the integer path).
    pub fn fli(&mut self, fd: u8, v: f64) {
        Self::check_fpr(fd);
        self.li_any(SCRATCH, v.to_bits() as i64);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_movif(fd, SCRATCH);
                self.emit(&b);
            }
            Isa::Arme => self.emit_w(arme::encode_fpalu(
                crate::uop::FpOp::FromBits,
                fd,
                SCRATCH,
                0,
            )),
        }
    }

    /// FP conditional branch: `if fa cond fb goto target`.
    pub fn fbr(&mut self, c: FCond, fa: u8, fb: u8, target: Label) {
        Self::check_fpr(fa);
        Self::check_fpr(fb);
        match self.isa {
            Isa::X86e => {
                let b = x86e::encode_fcmp(fa, fb);
                self.emit(&b);
                let cc = match c {
                    FCond::Lt => Cond::LtU,
                    FCond::Le => Cond::LeU,
                    FCond::Eq => Cond::Eq,
                    FCond::Ne => Cond::Ne,
                    FCond::Ge => Cond::GeU,
                    FCond::Gt => Cond::GtU,
                };
                self.emit_jcc(cc, target);
            }
            Isa::Arme => {
                // Produce 0/1 in the scratch, branch on it. Negated
                // predicates invert the branch sense.
                let (pred, branch_if_one) = match c {
                    FCond::Lt => (0u8, true),
                    FCond::Ge => (0, false),
                    FCond::Le => (1, true),
                    FCond::Gt => (1, false),
                    FCond::Eq => (2, true),
                    FCond::Ne => (2, false),
                };
                self.emit_w(arme::encode_fcmp_int(pred, SCRATCH, fa, fb));
                let cc = if branch_if_one { Cond::Ne } else { Cond::Eq };
                self.emit_bcond_raw(cc, SCRATCH, 31, target);
            }
        }
    }

    // -- finalization -------------------------------------------------------------

    /// Resolves all fixups and produces the program image.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Program`] for unbound labels, out-of-range branch
    /// displacements, or oversized sections.
    pub fn finish(self, name: &str) -> Result<Program> {
        let Asm {
            isa,
            map,
            mut code,
            data,
            labels,
            fixups,
        } = self;
        for f in &fixups {
            let Some(target) = labels[f.label.0] else {
                return Err(Error::Program(format!("unbound label in {name}")));
            };
            let end = (f.at + f.len) as i64;
            let disp = target as i64 - end;
            match f.kind {
                FixupKind::X86Jcc => {
                    let d = i16::try_from(disp).map_err(|_| {
                        Error::Program(format!("jcc displacement {disp} out of range in {name}"))
                    })?;
                    code[f.at + 1..f.at + 3].copy_from_slice(&d.to_le_bytes());
                }
                FixupKind::X86Rel32 => {
                    let d = i32::try_from(disp).map_err(|_| {
                        Error::Program(format!("rel32 displacement out of range in {name}"))
                    })?;
                    code[f.at + 1..f.at + 5].copy_from_slice(&d.to_le_bytes());
                }
                FixupKind::ArmBcond => {
                    let words = disp / 4;
                    if !(-2048..=2047).contains(&words) || disp % 4 != 0 {
                        return Err(Error::Program(format!(
                            "bcond displacement {disp} out of range in {name}"
                        )));
                    }
                    let mut w = u32::from_le_bytes(
                        code[f.at..f.at + 4]
                            .try_into()
                            .expect("fixup slice is 4 bytes"),
                    );
                    w |= (words as u32) & 0xFFF;
                    code[f.at..f.at + 4].copy_from_slice(&w.to_le_bytes());
                }
                FixupKind::ArmB26 => {
                    let words = disp / 4;
                    if !(-(1i64 << 25)..(1i64 << 25)).contains(&words) || disp % 4 != 0 {
                        return Err(Error::Program(format!(
                            "b/bl displacement out of range in {name}"
                        )));
                    }
                    let mut w = u32::from_le_bytes(
                        code[f.at..f.at + 4]
                            .try_into()
                            .expect("fixup slice is 4 bytes"),
                    );
                    w |= (words as u32) & 0x3FF_FFFF;
                    code[f.at..f.at + 4].copy_from_slice(&w.to_le_bytes());
                }
            }
        }
        let prog = Program {
            isa,
            entry: map.code_base,
            code,
            data,
            map,
            name: name.to_string(),
        };
        prog.validate()?;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn finish_rejects_unbound_label() {
        let mut a = Asm::new(Isa::X86e);
        let l = a.label();
        a.jmp(l);
        assert!(a.finish("t").is_err());
    }

    #[test]
    fn forward_and_backward_labels_resolve_x86() {
        let mut a = Asm::new(Isa::X86e);
        let fwd = a.label();
        let back = a.here_label();
        a.nop();
        a.jmp(fwd);
        a.jmp(back);
        a.bind(fwd);
        a.exit(0);
        let p = a.finish("t").unwrap();
        // Decode the two jumps and verify their absolute targets.
        let base = p.map.code_base;
        // nop at +0 (1B); jmp fwd at +1 (5B); jmp back at +6 (5B); fwd at +11.
        let d = decode(Isa::X86e, &p.code[1..], base + 1);
        assert_eq!(d.uops[0].target, base + 11);
        let d = decode(Isa::X86e, &p.code[6..], base + 6);
        assert_eq!(d.uops[0].target, base);
    }

    #[test]
    fn forward_and_backward_labels_resolve_arm() {
        let mut a = Asm::new(Isa::Arme);
        let fwd = a.label();
        let back = a.here_label();
        a.nop();
        a.jmp(fwd);
        a.jmp(back);
        a.bind(fwd);
        a.exit(0);
        let p = a.finish("t").unwrap();
        let base = p.map.code_base;
        let d = decode(Isa::Arme, &p.code[4..], base + 4);
        assert_eq!(d.uops[0].target, base + 12);
        let d = decode(Isa::Arme, &p.code[8..], base + 8);
        assert_eq!(d.uops[0].target, base);
    }

    #[test]
    fn x86_three_address_lowering_uses_scratch_when_needed() {
        // rd == rb on a non-commutative op requires the scratch path.
        let mut a = Asm::new(Isa::X86e);
        a.op(IntOp::Sub, 2, 1, 2); // r2 = r1 - r2
        let p = a.finish("t").unwrap();
        // mov r13,r1 (2B); sub r13,r2 (2B); mov r2,r13 (2B).
        assert_eq!(p.code.len(), 6);
    }

    #[test]
    fn arm_three_address_is_single_instruction() {
        let mut a = Asm::new(Isa::Arme);
        a.op(IntOp::Sub, 2, 1, 2);
        let p = a.finish("t").unwrap();
        assert_eq!(p.code.len(), 4);
    }

    #[test]
    fn data_section_addresses_are_stable_and_aligned() {
        let mut a = Asm::new(Isa::Arme);
        let s = a.data_bytes(b"abc");
        let w = a.data_u64s(&[1, 2, 3]);
        assert_eq!(s, MemoryMap::DEFAULT.data_base);
        assert_eq!(w % 8, 0);
        assert!(w >= s + 3);
        let b = a.bss(100, 16);
        assert_eq!(b % 16, 0);
        a.exit(0);
        let p = a.finish("t").unwrap();
        assert_eq!(&p.data[0..3], b"abc");
        let off = (w - MemoryMap::DEFAULT.data_base) as usize;
        assert_eq!(p.data[off], 1);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn scratch_register_is_rejected() {
        let mut a = Asm::new(Isa::X86e);
        a.li(SCRATCH, 1);
    }

    #[test]
    fn li_big_constant_both_isas() {
        for isa in [Isa::X86e, Isa::Arme] {
            let mut a = Asm::new(isa);
            a.li(4, 0x1234_5678_9ABC_DEF0u64 as i64);
            a.exit(0);
            let p = a.finish("t").unwrap();
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn large_offsets_lower_on_arme() {
        let mut a = Asm::new(Isa::Arme);
        a.load(Width::B8, false, 2, 3, 100_000);
        a.store(Width::B4, 2, 3, -100_000);
        a.exit(0);
        assert!(a.finish("t").is_ok());
    }
}
