//! Randomized property tests over the ISA layer: encoder/decoder
//! round-trips, decoder totality (never panics, any input), and cross-ISA
//! architectural equivalence of randomly generated straight-line programs.
//!
//! Each test drives a fixed-seed xoshiro256\*\* stream over a few hundred
//! cases, so the suite is deterministic yet explores the same input space a
//! property-testing framework would (the workspace builds without external
//! crates).

use difi_isa::asm::Asm;
use difi_isa::emu::{EmuExit, Emulator};
use difi_isa::program::Isa;
use difi_isa::uop::{Cond, IntOp, UopKind, Width};
use difi_isa::{arme, decode, x86e};
use difi_util::rng::Xoshiro256;

fn gpr(r: &mut Xoshiro256) -> u8 {
    r.gen_range(0, 16) as u8
}

fn intop(r: &mut Xoshiro256) -> IntOp {
    IntOp::from_index(r.gen_range(0, u64::from(IntOp::COUNT)) as u8).expect("in range")
}

fn width(r: &mut Xoshiro256) -> Width {
    Width::from_code(r.gen_range(0, 4) as u8)
}

#[test]
fn x86e_alu_rr_roundtrip() {
    let mut r = Xoshiro256::seed_from(0xA1);
    for _ in 0..500 {
        let (op, w32, rd, rb) = (intop(&mut r), r.gen_bool(0.5), gpr(&mut r), gpr(&mut r));
        let bytes = x86e::encode_alu_rr(op, w32, rd, rb);
        let d = decode(Isa::X86e, &bytes, 0x10_000);
        assert!(d.fault.is_none());
        assert_eq!(d.len as usize, bytes.len());
        let u = &d.uops[0];
        assert_eq!(u.alu, op);
        assert_eq!(u.width, if w32 { Width::B4 } else { Width::B8 });
    }
}

#[test]
fn x86e_load_store_roundtrip() {
    let mut r = Xoshiro256::seed_from(0xA2);
    for _ in 0..500 {
        let w = width(&mut r);
        let signed = r.gen_bool(0.5);
        let (rd, base) = (gpr(&mut r), gpr(&mut r));
        let disp = r.gen_range(0, 200_000) as i32 - 100_000;

        let bytes = x86e::encode_load(w, signed, rd, base, disp);
        let d = decode(Isa::X86e, &bytes, 0);
        assert!(d.fault.is_none());
        let u = &d.uops[0];
        assert_eq!(u.kind, UopKind::Load);
        assert_eq!(u.imm, i64::from(disp));
        assert_eq!(u.signed, signed);
        assert_eq!(u.width, w);

        let bytes = x86e::encode_store(w, rd, base, disp);
        let d = decode(Isa::X86e, &bytes, 0);
        assert!(d.fault.is_none());
        assert_eq!(d.uops[0].kind, UopKind::Store);
        assert_eq!(d.uops[0].imm, i64::from(disp));
    }
}

#[test]
fn x86e_decoder_total() {
    // Any byte soup decodes to something or a fault — never panics, and the
    // consumed length always moves the stream forward.
    let mut r = Xoshiro256::seed_from(0xA3);
    for _ in 0..2000 {
        let len = r.gen_range(1, 16) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| r.gen_range(0, 256) as u8).collect();
        let d = decode(Isa::X86e, &bytes, 0x12_345);
        assert!(d.len >= 1);
    }
}

#[test]
fn arme_decoder_total() {
    let mut r = Xoshiro256::seed_from(0xA4);
    for _ in 0..2000 {
        let word = r.next_u64() as u32;
        let d = decode(Isa::Arme, &word.to_le_bytes(), 0x10_000);
        assert_eq!(d.len, 4);
    }
}

#[test]
fn arme_alu_roundtrip() {
    let mut r = Xoshiro256::seed_from(0xA5);
    for _ in 0..500 {
        let op = intop(&mut r);
        if op == IntOp::CmpFlags {
            continue; // arme has no FLAGS
        }
        let (w32, rd, ra, rb) = (r.gen_bool(0.5), gpr(&mut r), gpr(&mut r), gpr(&mut r));
        let w = arme::encode_alu_rrr(op, w32, rd, ra, rb);
        let d = decode(Isa::Arme, &w.to_le_bytes(), 0);
        assert!(d.fault.is_none());
        assert_eq!(d.uops[0].alu, op);
    }
}

#[test]
fn arme_mem_roundtrip() {
    let mut r = Xoshiro256::seed_from(0xA6);
    for _ in 0..500 {
        let w = width(&mut r);
        let signed = r.gen_bool(0.5);
        let (rd, base) = (gpr(&mut r), gpr(&mut r));
        let imm = r.gen_range(0, 512) as i32 - 256;
        let word = arme::encode_load(w, signed, rd, base, imm);
        let d = decode(Isa::Arme, &word.to_le_bytes(), 0);
        assert!(d.fault.is_none());
        assert_eq!(d.uops[0].imm, i64::from(imm));
        assert_eq!(d.uops[0].width, w);
    }
}

/// Random straight-line ALU programs produce identical architectural results
/// on both ISAs (the cross-compilation contract the whole differential study
/// rests on).
#[test]
fn cross_isa_alu_equivalence() {
    let mut r = Xoshiro256::seed_from(0xA7);
    for _ in 0..60 {
        let n = r.gen_range(1, 40) as usize;
        let seeds: Vec<(u8, u8, i32)> = (0..n)
            .map(|_| {
                (
                    r.gen_range(0, 8) as u8,
                    r.gen_range(0, 13) as u8,
                    r.gen_range(0, 1000) as i32 - 500,
                )
            })
            .collect();
        let build = |isa: Isa| {
            let mut a = Asm::new(isa);
            // Deterministic initial values in r4..r11.
            for reg in 4u8..12 {
                a.li(reg, i64::from(reg) * 1_234_567 + 89);
            }
            for &(rsel, opsel, imm) in &seeds {
                let rd = 4 + (rsel % 8);
                let ra = 4 + ((rsel / 2) % 8);
                let rb = 4 + ((rsel / 3) % 8);
                let op = IntOp::from_index(opsel).expect("<13");
                match op {
                    IntOp::DivS | IntOp::DivU | IntOp::RemS | IntOp::RemU => {
                        // Guard divisors away from zero.
                        let d = if imm % 7 == 0 {
                            3
                        } else {
                            imm.unsigned_abs() as i32 % 1000 + 1
                        };
                        a.opi(op, rd, ra, d);
                    }
                    _ => a.op(op, rd, ra, rb),
                }
            }
            let mut acc = 4u8;
            for reg in 5u8..12 {
                a.op(IntOp::Xor, acc, acc, reg);
                acc = 4;
            }
            a.write_int(4);
            a.exit(0);
            a.finish("prop").expect("assembles")
        };
        let x = Emulator::new(&build(Isa::X86e)).run(1_000_000);
        let m = Emulator::new(&build(Isa::Arme)).run(1_000_000);
        assert_eq!(x.exit, EmuExit::Exited(0));
        assert_eq!(m.exit, EmuExit::Exited(0));
        assert_eq!(x.output, m.output);
    }
}

/// Branches with random conditions take identical paths on both ISAs
/// (FLAGS-based vs register-compare evaluation agree).
#[test]
fn cross_isa_branch_equivalence() {
    let mut r = Xoshiro256::seed_from(0xA8);
    for _ in 0..300 {
        let a_val = r.next_u64() as i32;
        let b_val = if r.gen_bool(0.2) {
            a_val
        } else {
            r.next_u64() as i32
        };
        let cond_i = r.gen_range(0, u64::from(Cond::COUNT)) as u8;
        let cond = Cond::from_index(cond_i).expect("in range");
        let build = |isa: Isa| {
            let mut a = Asm::new(isa);
            a.li(4, i64::from(a_val));
            a.li(5, i64::from(b_val));
            let taken = a.label();
            a.br(cond, 4, 5, taken);
            a.li(6, 0);
            let out = a.label();
            a.jmp(out);
            a.bind(taken);
            a.li(6, 1);
            a.bind(out);
            a.write_int(6);
            a.exit(0);
            a.finish("br").expect("assembles")
        };
        let x = Emulator::new(&build(Isa::X86e)).run(100_000);
        let m = Emulator::new(&build(Isa::Arme)).run(100_000);
        assert_eq!(&x.output, &m.output);
        // And both agree with the host evaluation.
        let expect = cond.eval_regs(a_val as i64 as u64, b_val as i64 as u64);
        assert_eq!(x.output, format!("{}\n", u8::from(expect)).into_bytes());
    }
}
