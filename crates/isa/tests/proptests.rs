//! Property-based tests over the ISA layer: encoder/decoder round-trips,
//! decoder totality (never panics, any input), and cross-ISA architectural
//! equivalence of randomly generated straight-line programs.

use difi_isa::asm::Asm;
use difi_isa::emu::{EmuExit, Emulator};
use difi_isa::program::Isa;
use difi_isa::uop::{Cond, IntOp, UopKind, Width};
use difi_isa::{arme, decode, x86e};
use proptest::prelude::*;

fn arb_gpr() -> impl Strategy<Value = u8> {
    0u8..16
}

fn arb_intop() -> impl Strategy<Value = IntOp> {
    (0u8..IntOp::COUNT).prop_map(|i| IntOp::from_index(i).expect("in range"))
}

fn arb_width() -> impl Strategy<Value = Width> {
    (0u8..4).prop_map(Width::from_code)
}

proptest! {
    #[test]
    fn x86e_alu_rr_roundtrip(op in arb_intop(), w32 in any::<bool>(), rd in arb_gpr(), rb in arb_gpr()) {
        let bytes = x86e::encode_alu_rr(op, w32, rd, rb);
        let d = decode(Isa::X86e, &bytes, 0x10_000);
        prop_assert!(d.fault.is_none());
        prop_assert_eq!(d.len as usize, bytes.len());
        let u = &d.uops[0];
        prop_assert_eq!(u.alu, op);
        prop_assert_eq!(u.width, if w32 { Width::B4 } else { Width::B8 });
    }

    #[test]
    fn x86e_load_store_roundtrip(w in arb_width(), signed in any::<bool>(),
                                 rd in arb_gpr(), base in arb_gpr(), disp in -100_000i32..100_000) {
        let bytes = x86e::encode_load(w, signed, rd, base, disp);
        let d = decode(Isa::X86e, &bytes, 0);
        prop_assert!(d.fault.is_none());
        let u = &d.uops[0];
        prop_assert_eq!(u.kind, UopKind::Load);
        prop_assert_eq!(u.imm, disp as i64);
        prop_assert_eq!(u.signed, signed);
        prop_assert_eq!(u.width, w);

        let bytes = x86e::encode_store(w, rd, base, disp);
        let d = decode(Isa::X86e, &bytes, 0);
        prop_assert!(d.fault.is_none());
        prop_assert_eq!(d.uops[0].kind, UopKind::Store);
        prop_assert_eq!(d.uops[0].imm, disp as i64);
    }

    #[test]
    fn x86e_decoder_total(bytes in proptest::collection::vec(any::<u8>(), 1..16)) {
        // Any byte soup decodes to something or a fault — never panics, and
        // the consumed length always moves the stream forward.
        let d = decode(Isa::X86e, &bytes, 0x12_345);
        prop_assert!(d.len >= 1);
    }

    #[test]
    fn arme_decoder_total(word in any::<u32>()) {
        let d = decode(Isa::Arme, &word.to_le_bytes(), 0x10_000);
        prop_assert_eq!(d.len, 4);
    }

    #[test]
    fn arme_alu_roundtrip(op in arb_intop(), w32 in any::<bool>(),
                          rd in arb_gpr(), ra in arb_gpr(), rb in arb_gpr()) {
        prop_assume!(op != IntOp::CmpFlags); // arme has no FLAGS
        let w = arme::encode_alu_rrr(op, w32, rd, ra, rb);
        let d = decode(Isa::Arme, &w.to_le_bytes(), 0);
        prop_assert!(d.fault.is_none());
        prop_assert_eq!(d.uops[0].alu, op);
    }

    #[test]
    fn arme_mem_roundtrip(w in arb_width(), signed in any::<bool>(),
                          rd in arb_gpr(), base in arb_gpr(), imm in -256i32..256) {
        let word = arme::encode_load(w, signed, rd, base, imm);
        let d = decode(Isa::Arme, &word.to_le_bytes(), 0);
        prop_assert!(d.fault.is_none());
        prop_assert_eq!(d.uops[0].imm, imm as i64);
        prop_assert_eq!(d.uops[0].width, w);
    }

    /// Random straight-line ALU programs produce identical architectural
    /// results on both ISAs (the cross-compilation contract the whole
    /// differential study rests on).
    #[test]
    fn cross_isa_alu_equivalence(seeds in proptest::collection::vec((0u8..8, 0u8..13, -500i32..500), 1..40)) {
        let build = |isa: Isa| {
            let mut a = Asm::new(isa);
            // Deterministic initial values in r4..r11.
            for r in 4u8..12 {
                a.li(r, (r as i64) * 1_234_567 + 89);
            }
            for &(rsel, opsel, imm) in &seeds {
                let rd = 4 + (rsel % 8);
                let ra = 4 + ((rsel / 2) % 8);
                let rb = 4 + ((rsel / 3) % 8);
                let op = IntOp::from_index(opsel).expect("<13");
                match op {
                    IntOp::DivS | IntOp::DivU | IntOp::RemS | IntOp::RemU => {
                        // Guard divisors away from zero.
                        let d = if imm % 7 == 0 { 3 } else { imm.unsigned_abs() as i32 % 1000 + 1 };
                        a.opi(op, rd, ra, d);
                    }
                    _ => a.op(op, rd, ra, rb),
                }
            }
            let mut acc = 4u8;
            for r in 5u8..12 {
                a.op(IntOp::Xor, acc, acc, r);
                acc = 4;
            }
            a.write_int(4);
            a.exit(0);
            a.finish("prop").expect("assembles")
        };
        let x = Emulator::new(&build(Isa::X86e)).run(1_000_000);
        let m = Emulator::new(&build(Isa::Arme)).run(1_000_000);
        prop_assert_eq!(x.exit, EmuExit::Exited(0));
        prop_assert_eq!(m.exit, EmuExit::Exited(0));
        prop_assert_eq!(x.output, m.output);
    }

    /// Branches with random conditions take identical paths on both ISAs
    /// (FLAGS-based vs register-compare evaluation agree).
    #[test]
    fn cross_isa_branch_equivalence(a_val in any::<i32>(), b_val in any::<i32>(), cond_i in 0u8..Cond::COUNT) {
        let cond = Cond::from_index(cond_i).expect("in range");
        let build = |isa: Isa| {
            let mut a = Asm::new(isa);
            a.li(4, a_val as i64);
            a.li(5, b_val as i64);
            let taken = a.label();
            a.br(cond, 4, 5, taken);
            a.li(6, 0);
            let out = a.label();
            a.jmp(out);
            a.bind(taken);
            a.li(6, 1);
            a.bind(out);
            a.write_int(6);
            a.exit(0);
            a.finish("br").expect("assembles")
        };
        let x = Emulator::new(&build(Isa::X86e)).run(100_000);
        let m = Emulator::new(&build(Isa::Arme)).run(100_000);
        prop_assert_eq!(&x.output, &m.output);
        // And both agree with the host evaluation.
        let expect = cond.eval_regs(a_val as i64 as u64, b_val as i64 as u64);
        prop_assert_eq!(x.output, format!("{}\n", expect as u8).into_bytes());
    }
}
