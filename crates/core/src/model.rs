//! Fault models (Table III), injection specifications, and raw run results.
//!
//! A *fault mask* in the paper carries: the target core, the
//! microarchitecture structure, the exact bit position, the injection time
//! (cycle or instruction), the fault type, and the population (single or
//! multiple). [`FaultRecord`] is one such fault; [`InjectionSpec`] is the
//! mask — a set of faults injected in one run, supporting every multiplicity
//! combination of §III.A (multiple bits of one entry, multiple entries,
//! multiple structures, and mixtures).

use difi_uarch::fault::{FaultKind, StructureId};
use serde::{Deserialize, Serialize};

/// When a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectTime {
    /// At a simulated cycle (the usual sampling dimension).
    Cycle(u64),
    /// When the Nth architectural instruction commits (directed studies).
    Instruction(u64),
}

/// How long a fault persists (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultDuration {
    /// Transient: a single bit flip at the injection time.
    Transient,
    /// Intermittent: stuck for `cycles` simulated cycles, then released.
    Intermittent {
        /// Length of the stuck window in cycles.
        cycles: u64,
    },
    /// Permanent: stuck for the rest of the run.
    Permanent,
}

/// One bit-level fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Target core (always 0 in the single-core study; kept for the
    /// multicore-capable mask format of the paper).
    pub core: u32,
    /// Target structure.
    #[serde(with = "structure_id_serde")]
    pub structure: StructureId,
    /// Entry (row) within the structure.
    pub entry: u64,
    /// Bit within the entry.
    pub bit: u32,
    /// Flip or stuck polarity. `Flip` is only meaningful with
    /// [`FaultDuration::Transient`]; stuck polarities pair with intermittent
    /// or permanent durations.
    pub kind: FaultKindSer,
    /// Injection time.
    pub at: InjectTime,
    /// Persistence.
    pub duration: FaultDuration,
}

/// Serializable mirror of [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKindSer {
    /// Transient bit flip.
    Flip,
    /// Stuck at zero.
    Stuck0,
    /// Stuck at one.
    Stuck1,
}

impl From<FaultKindSer> for FaultKind {
    fn from(k: FaultKindSer) -> FaultKind {
        match k {
            FaultKindSer::Flip => FaultKind::Flip,
            FaultKindSer::Stuck0 => FaultKind::Stuck0,
            FaultKindSer::Stuck1 => FaultKind::Stuck1,
        }
    }
}

mod structure_id_serde {
    use difi_uarch::fault::StructureId;
    use serde::{de::Error, Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(id: &StructureId, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(id.name())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<StructureId, D::Error> {
        let s = String::deserialize(d)?;
        StructureId::from_name(&s).ok_or_else(|| D::Error::custom(format!("unknown structure {s}")))
    }
}

/// A complete fault mask for one injection run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionSpec {
    /// Identifier within the campaign (mask repository index).
    pub id: u64,
    /// The faults to inject (single- or multi-fault).
    pub faults: Vec<FaultRecord>,
}

impl InjectionSpec {
    /// A single-fault transient mask — the model used throughout the paper's
    /// experimental section.
    pub fn single_transient(
        id: u64,
        structure: StructureId,
        entry: u64,
        bit: u32,
        cycle: u64,
    ) -> InjectionSpec {
        InjectionSpec {
            id,
            faults: vec![FaultRecord {
                core: 0,
                structure,
                entry,
                bit,
                kind: FaultKindSer::Flip,
                at: InjectTime::Cycle(cycle),
                duration: FaultDuration::Transient,
            }],
        }
    }
}

/// Execution limits for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunLimits {
    /// Hard cycle budget. The campaign sets this to 3× the fault-free cycle
    /// count, the paper's timeout threshold.
    pub max_cycles: u64,
    /// Enable the §III.B.2 early-stop optimizations.
    pub early_stop: bool,
    /// Cycles without a commit before the run is declared deadlocked
    /// (subsumed by the Timeout class).
    pub deadlock_window: u64,
}

impl RunLimits {
    /// Limits for a fault-free (golden) run: generous ceiling, no early
    /// stop.
    pub fn golden(max_cycles: u64) -> RunLimits {
        RunLimits {
            max_cycles,
            early_stop: false,
            deadlock_window: 200_000,
        }
    }

    /// The paper's campaign limits for a benchmark whose golden run took
    /// `golden_cycles`.
    pub fn campaign(golden_cycles: u64) -> RunLimits {
        RunLimits {
            max_cycles: golden_cycles.saturating_mul(3),
            early_stop: true,
            deadlock_window: 200_000,
        }
    }
}

/// Why a run ended — the raw, unclassified record written to the logs
/// repository.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// The workload ran to completion (exit code attached). Whether it is
    /// Masked / SDC / DUE is the parser's decision, not the simulator's.
    Completed {
        /// The workload's exit code.
        exit_code: u64,
    },
    /// Cycle budget exhausted or commit stalled — deadlock or livelock.
    Timeout,
    /// The simulated process died (illegal instruction, wild access, …).
    ProcessCrash(String),
    /// The simulated system died (nano-kernel panic).
    SystemCrash(String),
    /// A simulator assertion fired (MARSS-style rich checking).
    SimulatorAssert(String),
    /// The simulator itself reached an unhandled internal state.
    SimulatorCrash(String),
    /// The run was stopped early because the fault was proven masked.
    EarlyStopMasked(EarlyStop),
}

/// Which early-stop rule fired (§III.B.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EarlyStop {
    /// Rule (i): the fault landed in an invalid/unused entry.
    DeadEntry,
    /// Rule (ii): the faulty entry was overwritten before ever being read.
    OverwrittenBeforeRead,
}

/// Everything one injection run reports back to the campaign controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawRunResult {
    /// Terminal status.
    pub status: RunStatus,
    /// Bytes the workload wrote to the console.
    pub output: Vec<u8>,
    /// Handled (logged) ISA exceptions at end of run.
    pub exceptions: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Committed architectural instructions.
    pub instructions: u64,
    /// True if any injected fault was read after injection.
    pub fault_consumed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transient_builder() {
        let s = InjectionSpec::single_transient(7, StructureId::L1dData, 100, 5, 12345);
        assert_eq!(s.faults.len(), 1);
        let f = &s.faults[0];
        assert_eq!(f.structure, StructureId::L1dData);
        assert_eq!(f.at, InjectTime::Cycle(12345));
        assert_eq!(f.duration, FaultDuration::Transient);
    }

    #[test]
    fn spec_json_roundtrip() {
        let s = InjectionSpec::single_transient(1, StructureId::IntRegFile, 3, 63, 9);
        let j = serde_json::to_string(&s).unwrap();
        assert!(j.contains("int_prf"));
        let back: InjectionSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn run_limits_campaign_is_three_times_golden() {
        let l = RunLimits::campaign(1000);
        assert_eq!(l.max_cycles, 3000);
        assert!(l.early_stop);
    }

    #[test]
    fn raw_result_json_roundtrip() {
        let r = RawRunResult {
            status: RunStatus::SimulatorAssert("rob head invalid".into()),
            output: b"xyz".to_vec(),
            exceptions: 2,
            cycles: 500,
            instructions: 120,
            fault_consumed: true,
        };
        let j = serde_json::to_string(&r).unwrap();
        let back: RawRunResult = serde_json::from_str(&j).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn fault_kind_conversion() {
        assert_eq!(FaultKind::from(FaultKindSer::Flip), FaultKind::Flip);
        assert_eq!(FaultKind::from(FaultKindSer::Stuck0), FaultKind::Stuck0);
        assert_eq!(FaultKind::from(FaultKindSer::Stuck1), FaultKind::Stuck1);
    }
}
