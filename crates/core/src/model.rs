//! Fault models (Table III), injection specifications, and raw run results.
//!
//! A *fault mask* in the paper carries: the target core, the
//! microarchitecture structure, the exact bit position, the injection time
//! (cycle or instruction), the fault type, and the population (single or
//! multiple). [`FaultRecord`] is one such fault; [`InjectionSpec`] is the
//! mask — a set of faults injected in one run, supporting every multiplicity
//! combination of §III.A (multiple bits of one entry, multiple entries,
//! multiple structures, and mixtures).
//!
//! Everything here serializes to/from the line-oriented JSON of the logs
//! repository through `difi_util::json` — hand-rolled because the build
//! environment pins the workspace to the standard library.

use difi_uarch::fault::{FaultKind, StructureId};
use difi_util::json::Json;
use difi_util::{Error, Result};

/// When a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectTime {
    /// At a simulated cycle (the usual sampling dimension).
    Cycle(u64),
    /// When the Nth architectural instruction commits (directed studies).
    Instruction(u64),
}

impl InjectTime {
    fn to_json(self) -> Json {
        match self {
            InjectTime::Cycle(c) => Json::obj(vec![("Cycle", Json::U64(c))]),
            InjectTime::Instruction(n) => Json::obj(vec![("Instruction", Json::U64(n))]),
        }
    }

    fn from_json(j: &Json) -> Result<InjectTime> {
        if let Some(c) = j.get("Cycle").and_then(Json::as_u64) {
            Ok(InjectTime::Cycle(c))
        } else if let Some(n) = j.get("Instruction").and_then(Json::as_u64) {
            Ok(InjectTime::Instruction(n))
        } else {
            Err(Error::Parse(format!("bad inject time: {j}")))
        }
    }
}

/// How long a fault persists (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDuration {
    /// Transient: a single bit flip at the injection time.
    Transient,
    /// Intermittent: stuck for `cycles` simulated cycles, then released.
    Intermittent {
        /// Length of the stuck window in cycles.
        cycles: u64,
    },
    /// Permanent: stuck for the rest of the run.
    Permanent,
}

impl FaultDuration {
    fn to_json(self) -> Json {
        match self {
            FaultDuration::Transient => Json::Str("Transient".into()),
            FaultDuration::Intermittent { cycles } => Json::obj(vec![(
                "Intermittent",
                Json::obj(vec![("cycles", Json::U64(cycles))]),
            )]),
            FaultDuration::Permanent => Json::Str("Permanent".into()),
        }
    }

    fn from_json(j: &Json) -> Result<FaultDuration> {
        match j.as_str() {
            Some("Transient") => return Ok(FaultDuration::Transient),
            Some("Permanent") => return Ok(FaultDuration::Permanent),
            _ => {}
        }
        if let Some(cycles) = j
            .get("Intermittent")
            .and_then(|v| v.get("cycles"))
            .and_then(Json::as_u64)
        {
            return Ok(FaultDuration::Intermittent { cycles });
        }
        Err(Error::Parse(format!("bad fault duration: {j}")))
    }
}

/// One bit-level fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Target core (always 0 in the single-core study; kept for the
    /// multicore-capable mask format of the paper).
    pub core: u32,
    /// Target structure.
    pub structure: StructureId,
    /// Entry (row) within the structure.
    pub entry: u64,
    /// Bit within the entry.
    pub bit: u32,
    /// Flip or stuck polarity. `Flip` is only meaningful with
    /// [`FaultDuration::Transient`]; stuck polarities pair with intermittent
    /// or permanent durations.
    pub kind: FaultKindSer,
    /// Injection time.
    pub at: InjectTime,
    /// Persistence.
    pub duration: FaultDuration,
}

impl FaultRecord {
    /// JSON form used by the mask repository.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("core", Json::U64(u64::from(self.core))),
            ("structure", Json::Str(self.structure.name().into())),
            ("entry", Json::U64(self.entry)),
            ("bit", Json::U64(u64::from(self.bit))),
            ("kind", Json::Str(self.kind.name().into())),
            ("at", self.at.to_json()),
            ("duration", self.duration.to_json()),
        ])
    }

    /// Parses the repository JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when a field is missing or malformed.
    pub fn from_json(j: &Json) -> Result<FaultRecord> {
        let field_u64 = |key: &str| -> Result<u64> {
            j.req(key)?
                .as_u64()
                .ok_or_else(|| Error::Parse(format!("field '{key}' is not an integer")))
        };
        let structure_name = j
            .req("structure")?
            .as_str()
            .ok_or_else(|| Error::Parse("field 'structure' is not a string".into()))?;
        let structure = StructureId::from_name(structure_name)
            .ok_or_else(|| Error::Parse(format!("unknown structure {structure_name}")))?;
        let kind_name = j
            .req("kind")?
            .as_str()
            .ok_or_else(|| Error::Parse("field 'kind' is not a string".into()))?;
        Ok(FaultRecord {
            core: u32::try_from(field_u64("core")?)
                .map_err(|_| Error::Parse("field 'core' out of range".into()))?,
            structure,
            entry: field_u64("entry")?,
            bit: u32::try_from(field_u64("bit")?)
                .map_err(|_| Error::Parse("field 'bit' out of range".into()))?,
            kind: FaultKindSer::from_name(kind_name)?,
            at: InjectTime::from_json(j.req("at")?)?,
            duration: FaultDuration::from_json(j.req("duration")?)?,
        })
    }
}

/// Serializable mirror of [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKindSer {
    /// Transient bit flip.
    Flip,
    /// Stuck at zero.
    Stuck0,
    /// Stuck at one.
    Stuck1,
}

impl FaultKindSer {
    /// Stable name used in persisted masks.
    pub fn name(self) -> &'static str {
        match self {
            FaultKindSer::Flip => "Flip",
            FaultKindSer::Stuck0 => "Stuck0",
            FaultKindSer::Stuck1 => "Stuck1",
        }
    }

    /// Inverse of [`FaultKindSer::name`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for an unknown name.
    pub fn from_name(s: &str) -> Result<FaultKindSer> {
        match s {
            "Flip" => Ok(FaultKindSer::Flip),
            "Stuck0" => Ok(FaultKindSer::Stuck0),
            "Stuck1" => Ok(FaultKindSer::Stuck1),
            _ => Err(Error::Parse(format!("unknown fault kind {s}"))),
        }
    }
}

impl From<FaultKindSer> for FaultKind {
    fn from(k: FaultKindSer) -> FaultKind {
        match k {
            FaultKindSer::Flip => FaultKind::Flip,
            FaultKindSer::Stuck0 => FaultKind::Stuck0,
            FaultKindSer::Stuck1 => FaultKind::Stuck1,
        }
    }
}

/// A complete fault mask for one injection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionSpec {
    /// Identifier within the campaign (mask repository index).
    pub id: u64,
    /// The faults to inject (single- or multi-fault).
    pub faults: Vec<FaultRecord>,
}

impl InjectionSpec {
    /// A single-fault transient mask — the model used throughout the paper's
    /// experimental section.
    pub fn single_transient(
        id: u64,
        structure: StructureId,
        entry: u64,
        bit: u32,
        cycle: u64,
    ) -> InjectionSpec {
        InjectionSpec {
            id,
            faults: vec![FaultRecord {
                core: 0,
                structure,
                entry,
                bit,
                kind: FaultKindSer::Flip,
                at: InjectTime::Cycle(cycle),
                duration: FaultDuration::Transient,
            }],
        }
    }

    /// JSON form used by the mask repository.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::U64(self.id)),
            (
                "faults",
                Json::Arr(self.faults.iter().map(FaultRecord::to_json).collect()),
            ),
        ])
    }

    /// Parses the repository JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when a field is missing or malformed.
    pub fn from_json(j: &Json) -> Result<InjectionSpec> {
        let id = j
            .req("id")?
            .as_u64()
            .ok_or_else(|| Error::Parse("field 'id' is not an integer".into()))?;
        let faults = j
            .req("faults")?
            .as_arr()
            .ok_or_else(|| Error::Parse("field 'faults' is not an array".into()))?
            .iter()
            .map(FaultRecord::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(InjectionSpec { id, faults })
    }
}

/// Execution limits for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Hard cycle budget. The campaign sets this to 3× the fault-free cycle
    /// count, the paper's timeout threshold.
    pub max_cycles: u64,
    /// Enable the §III.B.2 early-stop optimizations.
    pub early_stop: bool,
    /// Cycles without a commit before the run is declared deadlocked
    /// (subsumed by the Timeout class).
    pub deadlock_window: u64,
}

impl RunLimits {
    /// Limits for a fault-free (golden) run: generous ceiling, no early
    /// stop.
    pub fn golden(max_cycles: u64) -> RunLimits {
        RunLimits {
            max_cycles,
            early_stop: false,
            deadlock_window: 200_000,
        }
    }

    /// The paper's campaign limits for a benchmark whose golden run took
    /// `golden_cycles`.
    pub fn campaign(golden_cycles: u64) -> RunLimits {
        RunLimits {
            max_cycles: golden_cycles.saturating_mul(3),
            early_stop: true,
            deadlock_window: 200_000,
        }
    }
}

/// Why a run ended — the raw, unclassified record written to the logs
/// repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The workload ran to completion (exit code attached). Whether it is
    /// Masked / SDC / DUE is the parser's decision, not the simulator's.
    Completed {
        /// The workload's exit code.
        exit_code: u64,
    },
    /// Cycle budget exhausted or commit stalled — deadlock or livelock.
    Timeout,
    /// The simulated process died (illegal instruction, wild access, …).
    ProcessCrash(String),
    /// The simulated system died (nano-kernel panic).
    SystemCrash(String),
    /// A simulator assertion fired (MARSS-style rich checking).
    SimulatorAssert(String),
    /// The simulator itself reached an unhandled internal state.
    SimulatorCrash(String),
    /// The run was stopped early because the fault was proven masked.
    EarlyStopMasked(EarlyStop),
}

impl RunStatus {
    /// JSON form used by the logs repository.
    pub fn to_json(&self) -> Json {
        match self {
            RunStatus::Completed { exit_code } => Json::obj(vec![(
                "Completed",
                Json::obj(vec![("exit_code", Json::U64(*exit_code))]),
            )]),
            RunStatus::Timeout => Json::Str("Timeout".into()),
            RunStatus::ProcessCrash(m) => Json::obj(vec![("ProcessCrash", Json::Str(m.clone()))]),
            RunStatus::SystemCrash(m) => Json::obj(vec![("SystemCrash", Json::Str(m.clone()))]),
            RunStatus::SimulatorAssert(m) => {
                Json::obj(vec![("SimulatorAssert", Json::Str(m.clone()))])
            }
            RunStatus::SimulatorCrash(m) => {
                Json::obj(vec![("SimulatorCrash", Json::Str(m.clone()))])
            }
            RunStatus::EarlyStopMasked(e) => {
                Json::obj(vec![("EarlyStopMasked", Json::Str(e.name().into()))])
            }
        }
    }

    /// Parses the logs-repository JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] on an unknown or malformed status.
    pub fn from_json(j: &Json) -> Result<RunStatus> {
        if j.as_str() == Some("Timeout") {
            return Ok(RunStatus::Timeout);
        }
        if let Some(c) = j.get("Completed") {
            let exit_code = c
                .req("exit_code")?
                .as_u64()
                .ok_or_else(|| Error::Parse("bad exit_code".into()))?;
            return Ok(RunStatus::Completed { exit_code });
        }
        let str_variant = |key: &str| j.get(key).and_then(Json::as_str).map(String::from);
        if let Some(m) = str_variant("ProcessCrash") {
            return Ok(RunStatus::ProcessCrash(m));
        }
        if let Some(m) = str_variant("SystemCrash") {
            return Ok(RunStatus::SystemCrash(m));
        }
        if let Some(m) = str_variant("SimulatorAssert") {
            return Ok(RunStatus::SimulatorAssert(m));
        }
        if let Some(m) = str_variant("SimulatorCrash") {
            return Ok(RunStatus::SimulatorCrash(m));
        }
        if let Some(name) = j.get("EarlyStopMasked").and_then(Json::as_str) {
            return Ok(RunStatus::EarlyStopMasked(EarlyStop::from_name(name)?));
        }
        Err(Error::Parse(format!("bad run status: {j}")))
    }
}

/// Which early-stop rule fired (§III.B.2), or whether the static pruner
/// classified the mask before dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EarlyStop {
    /// Rule (i): the fault landed in an invalid/unused entry.
    DeadEntry,
    /// Rule (ii): the faulty entry was overwritten before ever being read.
    OverwrittenBeforeRead,
    /// The static ACE analysis proved the fault site dead before dispatch;
    /// the run was never executed (`difi-ace` pruning).
    StaticallyPruned,
}

impl EarlyStop {
    /// Stable name used in persisted logs.
    pub fn name(self) -> &'static str {
        match self {
            EarlyStop::DeadEntry => "DeadEntry",
            EarlyStop::OverwrittenBeforeRead => "OverwrittenBeforeRead",
            EarlyStop::StaticallyPruned => "StaticallyPruned",
        }
    }

    /// Inverse of [`EarlyStop::name`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for an unknown name.
    pub fn from_name(s: &str) -> Result<EarlyStop> {
        match s {
            "DeadEntry" => Ok(EarlyStop::DeadEntry),
            "OverwrittenBeforeRead" => Ok(EarlyStop::OverwrittenBeforeRead),
            "StaticallyPruned" => Ok(EarlyStop::StaticallyPruned),
            _ => Err(Error::Parse(format!("unknown early-stop rule {s}"))),
        }
    }
}

/// The static argument backing one fault-equivalence class produced by
/// mask-space collapsing (`difi_ace::equivalence`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofKind {
    /// All members fall in a dead interval: the corruption is erased by a
    /// write before any read, or never accessed on a complete trace. The
    /// class is resolved statically, without dispatching any member.
    DeadInterval,
    /// All members latch until the same first read of the same bit; the
    /// class representative is simulated and its result replicated.
    LatchInterval,
    /// No static proof applies; the class holds exactly one mask, which is
    /// simulated normally.
    Singleton,
}

impl ProofKind {
    /// Stable name used in persisted journals and logs.
    pub fn name(self) -> &'static str {
        match self {
            ProofKind::DeadInterval => "DeadInterval",
            ProofKind::LatchInterval => "LatchInterval",
            ProofKind::Singleton => "Singleton",
        }
    }

    /// Inverse of [`ProofKind::name`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for an unknown name.
    pub fn from_name(s: &str) -> Result<ProofKind> {
        match s {
            "DeadInterval" => Ok(ProofKind::DeadInterval),
            "LatchInterval" => Ok(ProofKind::LatchInterval),
            "Singleton" => Ok(ProofKind::Singleton),
            _ => Err(Error::Parse(format!("unknown proof kind {s}"))),
        }
    }
}

/// Equivalence-class provenance attached to every run of a collapsed
/// campaign: which class the mask belongs to, which mask stood in for it,
/// and under what proof — enough to audit (and re-check) the collapse from
/// the journal alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassProvenance {
    /// Class index within the campaign's partition (dense, 0-based, in
    /// order of each class's first mask).
    pub class_id: u64,
    /// Mask id ([`InjectionSpec::id`]) of the class representative whose
    /// simulated result the members inherit. A mask is its own
    /// representative when it *is* the representative (or a singleton).
    pub representative: u64,
    /// The proof justifying the collapse.
    pub proof: ProofKind,
    /// Total masks in the class (including the representative).
    pub members: u64,
}

impl ClassProvenance {
    /// JSON form used by the logs repository and the campaign journal.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("class_id", Json::U64(self.class_id)),
            ("representative", Json::U64(self.representative)),
            ("proof", Json::Str(self.proof.name().into())),
            ("members", Json::U64(self.members)),
        ])
    }

    /// Parses the repository JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when a field is missing or malformed.
    pub fn from_json(j: &Json) -> Result<ClassProvenance> {
        let field_u64 = |key: &str| -> Result<u64> {
            j.req(key)?
                .as_u64()
                .ok_or_else(|| Error::Parse(format!("field '{key}' is not an integer")))
        };
        let proof_name = j
            .req("proof")?
            .as_str()
            .ok_or_else(|| Error::Parse("field 'proof' is not a string".into()))?;
        Ok(ClassProvenance {
            class_id: field_u64("class_id")?,
            representative: field_u64("representative")?,
            proof: ProofKind::from_name(proof_name)?,
            members: field_u64("members")?,
        })
    }
}

/// Everything one injection run reports back to the campaign controller.
///
/// The three measurement fields are `None` exactly when the run never
/// executed on a simulator — today only statically-pruned masks
/// ([`EarlyStop::StaticallyPruned`]). A run the simulator actually drove,
/// however briefly (including §III.B.2 early stops, whose partial cycle
/// counts are the early-stop savings metric), always measures all three.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRunResult {
    /// Terminal status.
    pub status: RunStatus,
    /// Bytes the workload wrote to the console.
    pub output: Vec<u8>,
    /// Handled (logged) ISA exceptions at end of run; `None` when the run
    /// never executed.
    pub exceptions: Option<u64>,
    /// Simulated cycles consumed; `None` when the run never executed.
    pub cycles: Option<u64>,
    /// Committed architectural instructions; `None` when the run never
    /// executed.
    pub instructions: Option<u64>,
    /// True if any injected fault was read after injection.
    pub fault_consumed: bool,
}

impl RawRunResult {
    /// A result for a run that was classified without ever executing
    /// (static pruning): no fabricated measurements.
    pub fn unexecuted(status: RunStatus) -> RawRunResult {
        RawRunResult {
            status,
            output: Vec::new(),
            exceptions: None,
            cycles: None,
            instructions: None,
            fault_consumed: false,
        }
    }

    /// True when the run actually executed and its measurements are real.
    pub fn is_measured(&self) -> bool {
        self.cycles.is_some()
    }

    /// The measured cycle count of a run that executed.
    ///
    /// # Panics
    ///
    /// Panics on an unexecuted (statically pruned) run — callers sizing
    /// timeouts or masks from a *golden* run can rely on this, since a
    /// golden run always executes.
    pub fn cycles_measured(&self) -> u64 {
        self.cycles
            .expect("run executed on a simulator and measured cycles")
    }

    /// JSON form used by the logs repository.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| v.map_or(Json::Null, Json::U64);
        Json::obj(vec![
            ("status", self.status.to_json()),
            (
                "output",
                Json::Arr(
                    self.output
                        .iter()
                        .map(|b| Json::U64(u64::from(*b)))
                        .collect(),
                ),
            ),
            ("exceptions", opt(self.exceptions)),
            ("cycles", opt(self.cycles)),
            ("instructions", opt(self.instructions)),
            ("fault_consumed", Json::Bool(self.fault_consumed)),
        ])
    }

    /// Parses the logs-repository JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when a field is missing or malformed.
    pub fn from_json(j: &Json) -> Result<RawRunResult> {
        let field_opt_u64 = |key: &str| -> Result<Option<u64>> {
            match j.req(key)? {
                Json::Null => Ok(None),
                v => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| Error::Parse(format!("field '{key}' is not an integer"))),
            }
        };
        let output = j
            .req("output")?
            .as_arr()
            .ok_or_else(|| Error::Parse("field 'output' is not an array".into()))?
            .iter()
            .map(|b| {
                b.as_u64()
                    .and_then(|v| u8::try_from(v).ok())
                    .ok_or_else(|| Error::Parse("bad output byte".into()))
            })
            .collect::<Result<Vec<u8>>>()?;
        let fault_consumed = j
            .req("fault_consumed")?
            .as_bool()
            .ok_or_else(|| Error::Parse("field 'fault_consumed' is not a bool".into()))?;
        Ok(RawRunResult {
            status: RunStatus::from_json(j.req("status")?)?,
            output,
            exceptions: field_opt_u64("exceptions")?,
            cycles: field_opt_u64("cycles")?,
            instructions: field_opt_u64("instructions")?,
            fault_consumed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transient_builder() {
        let s = InjectionSpec::single_transient(7, StructureId::L1dData, 100, 5, 12345);
        assert_eq!(s.faults.len(), 1);
        let f = &s.faults[0];
        assert_eq!(f.structure, StructureId::L1dData);
        assert_eq!(f.at, InjectTime::Cycle(12345));
        assert_eq!(f.duration, FaultDuration::Transient);
    }

    #[test]
    fn spec_json_roundtrip() {
        let s = InjectionSpec::single_transient(1, StructureId::IntRegFile, 3, 63, 9);
        let j = s.to_json().to_string();
        assert!(j.contains("int_prf"));
        let back = InjectionSpec::from_json(&difi_util::json::parse(&j).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn run_limits_campaign_is_three_times_golden() {
        let l = RunLimits::campaign(1000);
        assert_eq!(l.max_cycles, 3000);
        assert!(l.early_stop);
    }

    #[test]
    fn raw_result_json_roundtrip() {
        let r = RawRunResult {
            status: RunStatus::SimulatorAssert("rob head invalid".into()),
            output: b"xyz".to_vec(),
            exceptions: Some(2),
            cycles: Some(500),
            instructions: Some(120),
            fault_consumed: true,
        };
        let j = r.to_json().to_string();
        let back = RawRunResult::from_json(&difi_util::json::parse(&j).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unexecuted_result_json_roundtrip_keeps_measurements_absent() {
        let r = RawRunResult::unexecuted(RunStatus::EarlyStopMasked(EarlyStop::StaticallyPruned));
        assert!(!r.is_measured());
        let j = r.to_json().to_string();
        assert!(j.contains("\"cycles\":null"), "no fabricated zero: {j}");
        let back = RawRunResult::from_json(&difi_util::json::parse(&j).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.cycles, None);
    }

    #[test]
    fn early_stop_names_roundtrip() {
        for e in [
            EarlyStop::DeadEntry,
            EarlyStop::OverwrittenBeforeRead,
            EarlyStop::StaticallyPruned,
        ] {
            assert_eq!(EarlyStop::from_name(e.name()).unwrap(), e);
        }
        let r = RunStatus::EarlyStopMasked(EarlyStop::StaticallyPruned);
        let j = r.to_json().to_string();
        let back = RunStatus::from_json(&difi_util::json::parse(&j).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn proof_kind_names_roundtrip() {
        for p in [
            ProofKind::DeadInterval,
            ProofKind::LatchInterval,
            ProofKind::Singleton,
        ] {
            assert_eq!(ProofKind::from_name(p.name()).unwrap(), p);
        }
        assert!(ProofKind::from_name("Bogus").is_err());
    }

    #[test]
    fn class_provenance_json_roundtrip() {
        let p = ClassProvenance {
            class_id: 12,
            representative: 340,
            proof: ProofKind::LatchInterval,
            members: 17,
        };
        let j = p.to_json().to_string();
        let back = ClassProvenance::from_json(&difi_util::json::parse(&j).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn fault_kind_conversion() {
        assert_eq!(FaultKind::from(FaultKindSer::Flip), FaultKind::Flip);
        assert_eq!(FaultKind::from(FaultKindSer::Stuck0), FaultKind::Stuck0);
        assert_eq!(FaultKind::from(FaultKindSer::Stuck1), FaultKind::Stuck1);
    }
}
