//! # difi-core
//!
//! The paper's primary contribution: a differential microarchitecture-level
//! fault-injection framework in the MaFIN/GeFIN mold. Both injectors share
//! this infrastructure and differ only in the simulator behind the
//! [`dispatch::InjectorDispatcher`] trait (MarsSim for MaFIN, GemSim for
//! GeFIN).
//!
//! Mirroring Fig. 1 of the paper, a campaign flows through three modules:
//!
//! 1. **Fault mask generator** ([`masks`]) — produces the *masks repository*:
//!    randomized (or directed) fault masks for any structure, fault type
//!    (transient / intermittent / permanent), and multiplicity, sized by the
//!    statistical-sampling rules of [`difi_util::stats`].
//! 2. **Injection campaign controller** ([`campaign`]) — one
//!    [`campaign::CampaignRunner`] execution core drains the masks
//!    repository through an [`dispatch::InjectorDispatcher`] under a
//!    pluggable [`campaign::Strategy`] (cold / checkpointed warm-start /
//!    statically pruned), applying the paper's §III.B.2 early-stop
//!    optimizations in parallel worker threads. Completed runs stream to
//!    [`sink::RunSink`]s — in-memory collection, an append-only JSONL
//!    [`journal`] enabling crash-resume, and live progress telemetry — and
//!    land in the *logs repository* ([`logs`]).
//! 3. **Parser** ([`classify`]) — turns raw run logs into the six-class
//!    fault-effect taxonomy (Masked / SDC / DUE / Timeout / Crash / Assert),
//!    reconfigurable without re-running the campaign.
//!
//! [`report`] aggregates classified outcomes into the per-benchmark /
//! per-structure tables behind the paper's Figs. 2–6.

pub mod campaign;
pub mod classify;
pub mod dispatch;
pub mod journal;
pub mod logs;
pub mod masks;
pub mod model;
pub mod report;
pub mod sink;
pub mod substrate;

pub use campaign::{
    run_campaign, run_campaign_checkpointed, run_campaign_pruned, CampaignConfig, CampaignRunner,
    PrunedCampaign, Strategy,
};
pub use classify::{Classifier, Outcome};
pub use dispatch::{GoldenSnapshot, InjectorDispatcher};
pub use journal::{load_journal, CampaignHeader};
pub use logs::{CampaignLog, RunLog};
pub use model::{
    EarlyStop, FaultRecord, InjectTime, InjectionSpec, RawRunResult, RunLimits, RunStatus,
};
pub use report::{AvfComparison, AvfRow, LatencyReport};
pub use sink::{
    JournalSink, MemorySink, MemoryTraceSink, MetricsSink, ProgressSink, RunSink, TraceSink,
};
