//! The Fault Mask Generator and the masks repository.
//!
//! "In the first step, the *Fault Mask Generator* module produces the fault
//! masks that are used during the injection campaign. … The Fault Mask
//! Generator can produce (by user defined parameters) a random set of fault
//! masks for any type of fault (transient, intermittent, permanent) for the
//! entire simulation time of the benchmark." (§III.B)
//!
//! Masks are sampled uniformly over `(entry, bit, cycle)` — the statistical
//! fault-sampling population of Leveugle et al. — from a seeded
//! deterministic generator, so a campaign is reproducible from
//! `(seed, parameters)` alone.

use crate::model::{FaultDuration, FaultKindSer, FaultRecord, InjectTime, InjectionSpec};
use difi_ace::AceProfile;
use difi_uarch::fault::StructureDesc;
use difi_util::rng::Xoshiro256;
use difi_util::stats::sample_size;

/// The fault mask generator.
#[derive(Debug)]
pub struct MaskGenerator {
    rng: Xoshiro256,
    next_id: u64,
}

impl MaskGenerator {
    /// Creates a generator from a campaign seed.
    pub fn new(seed: u64) -> MaskGenerator {
        MaskGenerator {
            rng: Xoshiro256::seed_from(seed),
            next_id: 0,
        }
    }

    fn id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id - 1
    }

    fn random_site(&mut self, desc: &StructureDesc, cycles: u64) -> (u64, u32, u64) {
        let entry = self.rng.gen_range(0, desc.entries);
        let bit = self.rng.gen_range(0, desc.bits) as u32;
        let cycle = self.rng.gen_range(0, cycles.max(1));
        (entry, bit, cycle)
    }

    /// Generates `n` single-bit transient masks for one structure over a
    /// benchmark whose fault-free execution takes `cycles` — the campaign
    /// shape used for every figure of the paper.
    pub fn transient(&mut self, desc: &StructureDesc, cycles: u64, n: u64) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let (entry, bit, cycle) = self.random_site(desc, cycles);
                let id = self.id();
                InjectionSpec::single_transient(id, desc.id, entry, bit, cycle)
            })
            .collect()
    }

    /// Generates `n` single-bit intermittent masks (random polarity, random
    /// start, window of `window_cycles`).
    pub fn intermittent(
        &mut self,
        desc: &StructureDesc,
        cycles: u64,
        window_cycles: u64,
        n: u64,
    ) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let (entry, bit, cycle) = self.random_site(desc, cycles);
                let kind = if self.rng.gen_bool(0.5) {
                    FaultKindSer::Stuck0
                } else {
                    FaultKindSer::Stuck1
                };
                InjectionSpec {
                    id: self.id(),
                    faults: vec![FaultRecord {
                        core: 0,
                        structure: desc.id,
                        entry,
                        bit,
                        kind,
                        at: InjectTime::Cycle(cycle),
                        duration: FaultDuration::Intermittent {
                            cycles: window_cycles,
                        },
                    }],
                }
            })
            .collect()
    }

    /// Generates `n` single-bit permanent masks (present from cycle 0).
    pub fn permanent(&mut self, desc: &StructureDesc, n: u64) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let entry = self.rng.gen_range(0, desc.entries);
                let bit = self.rng.gen_range(0, desc.bits) as u32;
                let kind = if self.rng.gen_bool(0.5) {
                    FaultKindSer::Stuck0
                } else {
                    FaultKindSer::Stuck1
                };
                InjectionSpec {
                    id: self.id(),
                    faults: vec![FaultRecord {
                        core: 0,
                        structure: desc.id,
                        entry,
                        bit,
                        kind,
                        at: InjectTime::Cycle(0),
                        duration: FaultDuration::Permanent,
                    }],
                }
            })
            .collect()
    }

    /// Generates `n` multi-bit transient masks with `bits_per_fault` flips
    /// in the *same entry* (§III.A multiplicity case i).
    pub fn multi_bit_same_entry(
        &mut self,
        desc: &StructureDesc,
        cycles: u64,
        bits_per_fault: u32,
        n: u64,
    ) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let entry = self.rng.gen_range(0, desc.entries);
                let cycle = self.rng.gen_range(0, cycles.max(1));
                let mut bits: Vec<u32> = Vec::new();
                while (bits.len() as u32) < bits_per_fault.min(desc.bits as u32) {
                    let b = self.rng.gen_range(0, desc.bits) as u32;
                    if !bits.contains(&b) {
                        bits.push(b);
                    }
                }
                InjectionSpec {
                    id: self.id(),
                    faults: bits
                        .into_iter()
                        .map(|bit| FaultRecord {
                            core: 0,
                            structure: desc.id,
                            entry,
                            bit,
                            kind: FaultKindSer::Flip,
                            at: InjectTime::Cycle(cycle),
                            duration: FaultDuration::Transient,
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// Generates `n` transient masks with one flip in *each* of the given
    /// structures simultaneously (§III.A multiplicity case iii).
    pub fn multi_structure(
        &mut self,
        descs: &[StructureDesc],
        cycles: u64,
        n: u64,
    ) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let cycle = self.rng.gen_range(0, cycles.max(1));
                InjectionSpec {
                    id: self.id(),
                    faults: descs
                        .iter()
                        .map(|d| {
                            let entry = self.rng.gen_range(0, d.entries);
                            let bit = self.rng.gen_range(0, d.bits) as u32;
                            FaultRecord {
                                core: 0,
                                structure: d.id,
                                entry,
                                bit,
                                kind: FaultKindSer::Flip,
                                at: InjectTime::Cycle(cycle),
                                duration: FaultDuration::Transient,
                            }
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// The statistically required number of transient masks for this
    /// structure/benchmark pair (population = storage bits × cycles),
    /// per Leveugle et al. — §IV.A of the paper.
    pub fn required_samples(
        desc: &StructureDesc,
        cycles: u64,
        confidence: f64,
        error_margin: f64,
    ) -> u64 {
        let population = desc.total_bits().saturating_mul(cycles.max(1));
        sample_size(population, confidence, error_margin)
    }
}

/// True when every fault in `spec` is **provably masked** by the golden-run
/// ACE profile, so the run's outcome is known to be Masked without
/// dispatching it.
///
/// The proof only covers the exact shape the profile reasons about:
/// single-cycle transient flips, injected by cycle, into the profile's own
/// (data-plane) structure. Any other fault — stuck-at kinds, intermittent
/// or permanent durations, instruction-indexed injection, other structures
/// — disqualifies the whole spec, which must then be dispatched normally.
///
/// Multi-fault specs are prunable when each fault is individually proven:
/// by induction over cycles, a run whose every corrupt bit is overwritten
/// (or never accessed) before any read follows the golden access sequence
/// exactly, so the per-fault proofs compose.
pub fn spec_provably_masked(spec: &InjectionSpec, profile: &AceProfile) -> bool {
    !spec.faults.is_empty()
        && spec.faults.iter().all(|f| {
            f.kind == FaultKindSer::Flip
                && f.duration == FaultDuration::Transient
                && f.structure == profile.structure()
                && matches!(f.at, InjectTime::Cycle(c)
                    if profile.is_provably_masked(f.entry, f.bit, c))
        })
}

/// Splits a masks repository into (provably-masked, must-dispatch) index
/// sets. Pruned masks are returned, never dropped: the campaign controller
/// logs each as an [`EarlyStop::StaticallyPruned`](crate::model::EarlyStop)
/// run.
pub fn partition_provably_masked(
    masks: &[InjectionSpec],
    profile: &AceProfile,
) -> (Vec<usize>, Vec<usize>) {
    let mut pruned = Vec::new();
    let mut dispatch = Vec::new();
    for (i, m) in masks.iter().enumerate() {
        if spec_provably_masked(m, profile) {
            pruned.push(i);
        } else {
            dispatch.push(i);
        }
    }
    (pruned, dispatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use difi_uarch::fault::StructureId;

    fn desc() -> StructureDesc {
        StructureDesc {
            id: StructureId::IntRegFile,
            entries: 256,
            bits: 64,
        }
    }

    #[test]
    fn transient_masks_in_bounds_and_deterministic() {
        let mut g1 = MaskGenerator::new(42);
        let mut g2 = MaskGenerator::new(42);
        let a = g1.transient(&desc(), 10_000, 500);
        let b = g2.transient(&desc(), 10_000, 500);
        assert_eq!(a, b, "same seed → same masks repository");
        for m in &a {
            let f = &m.faults[0];
            assert!(f.entry < 256);
            assert!(f.bit < 64);
            assert!(matches!(f.at, InjectTime::Cycle(c) if c < 10_000));
            assert_eq!(f.duration, FaultDuration::Transient);
        }
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn generator_determinism_across_seed_sweep() {
        // Property (seeded sweep): for any seed, regenerating the masks
        // repository — across every mask family, in the same call order —
        // yields a byte-identical repository.
        for seed in 0..50u64 {
            let mut g1 = MaskGenerator::new(seed);
            let mut g2 = MaskGenerator::new(seed);
            let gen = |g: &mut MaskGenerator| {
                let mut all = g.transient(&desc(), 5_000, 20);
                all.extend(g.intermittent(&desc(), 5_000, 64, 10));
                all.extend(g.permanent(&desc(), 5));
                all.extend(g.multi_bit_same_entry(&desc(), 5_000, 2, 8));
                all
            };
            let a = gen(&mut g1);
            let b = gen(&mut g2);
            assert_eq!(a, b, "seed {seed}: repository must be reproducible");
            let mut ids: Vec<u64> = a.iter().map(|m| m.id).collect();
            let n = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), n, "seed {seed}: mask ids are unique");
        }
    }

    #[test]
    fn pruner_accepts_only_cycle_timed_transient_flips() {
        use difi_ace::AceProfile;
        use difi_uarch::residency::ResidencyTracker;

        // Empty, complete trace of the whole structure: every in-range
        // transient flip is provably masked (nothing is ever read).
        let t = ResidencyTracker::new();
        let profile = AceProfile::new(t.into_log(desc(), 1_000)).expect("data plane");
        let transient = InjectionSpec::single_transient(0, StructureId::IntRegFile, 3, 7, 50);
        assert!(spec_provably_masked(&transient, &profile));

        // Instruction-timed, stuck, or foreign-structure faults never prune.
        let mut by_instr = transient.clone();
        by_instr.faults[0].at = InjectTime::Instruction(5);
        assert!(!spec_provably_masked(&by_instr, &profile));
        let mut stuck = transient.clone();
        stuck.faults[0].kind = FaultKindSer::Stuck1;
        stuck.faults[0].duration = FaultDuration::Permanent;
        assert!(!spec_provably_masked(&stuck, &profile));
        let mut other = transient.clone();
        other.faults[0].structure = StructureId::L2Data;
        assert!(!spec_provably_masked(&other, &profile));
        let empty = InjectionSpec {
            id: 9,
            faults: vec![],
        };
        assert!(!spec_provably_masked(&empty, &profile));

        let masks = vec![transient, by_instr];
        let (pruned, dispatch) = partition_provably_masked(&masks, &profile);
        assert_eq!(pruned, vec![0]);
        assert_eq!(dispatch, vec![1]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MaskGenerator::new(1).transient(&desc(), 1000, 100);
        let b = MaskGenerator::new(2).transient(&desc(), 1000, 100);
        assert_ne!(a, b);
    }

    #[test]
    fn masks_cover_the_site_space() {
        let mut g = MaskGenerator::new(7);
        let ms = g.transient(&desc(), 1_000_000, 2000);
        let distinct_entries: std::collections::HashSet<u64> =
            ms.iter().map(|m| m.faults[0].entry).collect();
        assert!(distinct_entries.len() > 200, "entries well spread");
        let high_bits = ms.iter().filter(|m| m.faults[0].bit >= 32).count();
        assert!((600..1400).contains(&high_bits), "bits well spread");
    }

    #[test]
    fn intermittent_and_permanent_shapes() {
        let mut g = MaskGenerator::new(3);
        let i = g.intermittent(&desc(), 1000, 50, 10);
        for m in &i {
            assert!(matches!(
                m.faults[0].duration,
                FaultDuration::Intermittent { cycles: 50 }
            ));
            assert!(matches!(
                m.faults[0].kind,
                FaultKindSer::Stuck0 | FaultKindSer::Stuck1
            ));
        }
        let p = g.permanent(&desc(), 10);
        for m in &p {
            assert_eq!(m.faults[0].duration, FaultDuration::Permanent);
            assert_eq!(m.faults[0].at, InjectTime::Cycle(0));
        }
    }

    #[test]
    fn multi_bit_faults_share_entry_and_cycle() {
        let mut g = MaskGenerator::new(4);
        let ms = g.multi_bit_same_entry(&desc(), 1000, 3, 20);
        for m in &ms {
            assert_eq!(m.faults.len(), 3);
            let e = m.faults[0].entry;
            let c = m.faults[0].at;
            assert!(m.faults.iter().all(|f| f.entry == e && f.at == c));
            let mut bits: Vec<u32> = m.faults.iter().map(|f| f.bit).collect();
            bits.sort_unstable();
            bits.dedup();
            assert_eq!(bits.len(), 3, "bits are distinct");
        }
    }

    #[test]
    fn multi_structure_faults_hit_each_structure() {
        let d2 = StructureDesc {
            id: StructureId::L1dData,
            entries: 512,
            bits: 512,
        };
        let mut g = MaskGenerator::new(5);
        let ms = g.multi_structure(&[desc(), d2], 1000, 5);
        for m in &ms {
            assert_eq!(m.faults.len(), 2);
            assert_eq!(m.faults[0].structure, StructureId::IntRegFile);
            assert_eq!(m.faults[1].structure, StructureId::L1dData);
        }
    }

    #[test]
    fn required_samples_matches_paper() {
        // Any realistically large population → 1843 at 99%/3%.
        let n = MaskGenerator::required_samples(&desc(), 10_000_000, 0.99, 0.03);
        assert_eq!(n, 1843);
    }

    #[test]
    fn mask_ids_are_unique_across_batches() {
        let mut g = MaskGenerator::new(6);
        let a = g.transient(&desc(), 100, 10);
        let b = g.permanent(&desc(), 10);
        let mut ids: Vec<u64> = a.iter().chain(b.iter()).map(|m| m.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }
}
