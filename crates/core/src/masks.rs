//! The Fault Mask Generator and the masks repository.
//!
//! "In the first step, the *Fault Mask Generator* module produces the fault
//! masks that are used during the injection campaign. … The Fault Mask
//! Generator can produce (by user defined parameters) a random set of fault
//! masks for any type of fault (transient, intermittent, permanent) for the
//! entire simulation time of the benchmark." (§III.B)
//!
//! Masks are sampled uniformly over `(entry, bit, cycle)` — the statistical
//! fault-sampling population of Leveugle et al. — from a seeded
//! deterministic generator, so a campaign is reproducible from
//! `(seed, parameters)` alone.

use crate::model::{
    ClassProvenance, FaultDuration, FaultKindSer, FaultRecord, InjectTime, InjectionSpec, ProofKind,
};
use difi_ace::{AceProfile, SiteClass};
use difi_uarch::fault::StructureDesc;
use difi_util::rng::Xoshiro256;
use difi_util::stats::sample_size;
use std::collections::BTreeMap;

/// The fault mask generator.
#[derive(Debug)]
pub struct MaskGenerator {
    rng: Xoshiro256,
    next_id: u64,
}

impl MaskGenerator {
    /// Creates a generator from a campaign seed.
    pub fn new(seed: u64) -> MaskGenerator {
        MaskGenerator {
            rng: Xoshiro256::seed_from(seed),
            next_id: 0,
        }
    }

    fn id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id - 1
    }

    fn random_site(&mut self, desc: &StructureDesc, cycles: u64) -> (u64, u32, u64) {
        let entry = self.rng.gen_range(0, desc.entries);
        let bit = self.rng.gen_range(0, desc.bits) as u32;
        let cycle = self.rng.gen_range(0, cycles.max(1));
        (entry, bit, cycle)
    }

    /// Generates `n` single-bit transient masks for one structure over a
    /// benchmark whose fault-free execution takes `cycles` — the campaign
    /// shape used for every figure of the paper.
    pub fn transient(&mut self, desc: &StructureDesc, cycles: u64, n: u64) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let (entry, bit, cycle) = self.random_site(desc, cycles);
                let id = self.id();
                InjectionSpec::single_transient(id, desc.id, entry, bit, cycle)
            })
            .collect()
    }

    /// Generates `n` single-bit intermittent masks (random polarity, random
    /// start, window of `window_cycles`).
    pub fn intermittent(
        &mut self,
        desc: &StructureDesc,
        cycles: u64,
        window_cycles: u64,
        n: u64,
    ) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let (entry, bit, cycle) = self.random_site(desc, cycles);
                let kind = if self.rng.gen_bool(0.5) {
                    FaultKindSer::Stuck0
                } else {
                    FaultKindSer::Stuck1
                };
                InjectionSpec {
                    id: self.id(),
                    faults: vec![FaultRecord {
                        core: 0,
                        structure: desc.id,
                        entry,
                        bit,
                        kind,
                        at: InjectTime::Cycle(cycle),
                        duration: FaultDuration::Intermittent {
                            cycles: window_cycles,
                        },
                    }],
                }
            })
            .collect()
    }

    /// Generates `n` single-bit permanent masks (present from cycle 0).
    pub fn permanent(&mut self, desc: &StructureDesc, n: u64) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let entry = self.rng.gen_range(0, desc.entries);
                let bit = self.rng.gen_range(0, desc.bits) as u32;
                let kind = if self.rng.gen_bool(0.5) {
                    FaultKindSer::Stuck0
                } else {
                    FaultKindSer::Stuck1
                };
                InjectionSpec {
                    id: self.id(),
                    faults: vec![FaultRecord {
                        core: 0,
                        structure: desc.id,
                        entry,
                        bit,
                        kind,
                        at: InjectTime::Cycle(0),
                        duration: FaultDuration::Permanent,
                    }],
                }
            })
            .collect()
    }

    /// Generates `n` multi-bit transient masks with `bits_per_fault` flips
    /// in the *same entry* (§III.A multiplicity case i).
    pub fn multi_bit_same_entry(
        &mut self,
        desc: &StructureDesc,
        cycles: u64,
        bits_per_fault: u32,
        n: u64,
    ) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let entry = self.rng.gen_range(0, desc.entries);
                let cycle = self.rng.gen_range(0, cycles.max(1));
                let mut bits: Vec<u32> = Vec::new();
                while (bits.len() as u32) < bits_per_fault.min(desc.bits as u32) {
                    let b = self.rng.gen_range(0, desc.bits) as u32;
                    if !bits.contains(&b) {
                        bits.push(b);
                    }
                }
                InjectionSpec {
                    id: self.id(),
                    faults: bits
                        .into_iter()
                        .map(|bit| FaultRecord {
                            core: 0,
                            structure: desc.id,
                            entry,
                            bit,
                            kind: FaultKindSer::Flip,
                            at: InjectTime::Cycle(cycle),
                            duration: FaultDuration::Transient,
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// Generates `n` transient masks with one flip in *each* of the given
    /// structures simultaneously (§III.A multiplicity case iii).
    pub fn multi_structure(
        &mut self,
        descs: &[StructureDesc],
        cycles: u64,
        n: u64,
    ) -> Vec<InjectionSpec> {
        (0..n)
            .map(|_| {
                let cycle = self.rng.gen_range(0, cycles.max(1));
                InjectionSpec {
                    id: self.id(),
                    faults: descs
                        .iter()
                        .map(|d| {
                            let entry = self.rng.gen_range(0, d.entries);
                            let bit = self.rng.gen_range(0, d.bits) as u32;
                            FaultRecord {
                                core: 0,
                                structure: d.id,
                                entry,
                                bit,
                                kind: FaultKindSer::Flip,
                                at: InjectTime::Cycle(cycle),
                                duration: FaultDuration::Transient,
                            }
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// The statistically required number of transient masks for this
    /// structure/benchmark pair (population = storage bits × cycles),
    /// per Leveugle et al. — §IV.A of the paper.
    pub fn required_samples(
        desc: &StructureDesc,
        cycles: u64,
        confidence: f64,
        error_margin: f64,
    ) -> u64 {
        let population = desc.total_bits().saturating_mul(cycles.max(1));
        sample_size(population, confidence, error_margin)
    }
}

/// True when every fault in `spec` is **provably masked** by the golden-run
/// ACE profile, so the run's outcome is known to be Masked without
/// dispatching it.
///
/// The proof only covers the exact shape the profile reasons about:
/// single-cycle transient flips, injected by cycle, into the profile's own
/// (data-plane) structure. Any other fault — stuck-at kinds, intermittent
/// or permanent durations, instruction-indexed injection, other structures
/// — disqualifies the whole spec, which must then be dispatched normally.
///
/// Multi-fault specs are prunable when each fault is individually proven:
/// by induction over cycles, a run whose every corrupt bit is overwritten
/// (or never accessed) before any read follows the golden access sequence
/// exactly, so the per-fault proofs compose.
pub fn spec_provably_masked(spec: &InjectionSpec, profile: &AceProfile) -> bool {
    !spec.faults.is_empty()
        && spec.faults.iter().all(|f| {
            f.kind == FaultKindSer::Flip
                && f.duration == FaultDuration::Transient
                && f.structure == profile.structure()
                && matches!(f.at, InjectTime::Cycle(c)
                    if profile.is_provably_masked(f.entry, f.bit, c))
        })
}

/// Splits a masks repository into (provably-masked, must-dispatch) index
/// sets. Pruned masks are returned, never dropped: the campaign controller
/// logs each as an [`EarlyStop::StaticallyPruned`](crate::model::EarlyStop)
/// run.
pub fn partition_provably_masked(
    masks: &[InjectionSpec],
    profile: &AceProfile,
) -> (Vec<usize>, Vec<usize>) {
    let mut pruned = Vec::new();
    let mut dispatch = Vec::new();
    for (i, m) in masks.iter().enumerate() {
        if spec_provably_masked(m, profile) {
            pruned.push(i);
        } else {
            dispatch.push(i);
        }
    }
    (pruned, dispatch)
}

/// One fault-equivalence class over a masks repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskClass {
    /// Dense class index, assigned in order of each class's first mask.
    pub id: u64,
    /// The static argument that makes the members equivalent.
    pub proof: ProofKind,
    /// Mask indices into the repository, ascending. `members[0]` is the
    /// canonical representative.
    pub members: Vec<usize>,
}

impl MaskClass {
    /// Index of the mask that stands in for the class.
    pub fn representative(&self) -> usize {
        self.members[0]
    }
}

/// The full partition of a masks repository into equivalence classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskPartition {
    /// The classes, ordered by their first member's repository index.
    pub classes: Vec<MaskClass>,
}

impl MaskPartition {
    /// Total masks across all classes.
    pub fn mask_count(&self) -> usize {
        self.classes.iter().map(|c| c.members.len()).sum()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Classes backed by `proof`.
    pub fn classes_with(&self, proof: ProofKind) -> usize {
        self.classes.iter().filter(|c| c.proof == proof).count()
    }

    /// Simulator dispatches a collapsed campaign needs: one representative
    /// per non-dead class (dead classes resolve statically, like pruning).
    pub fn dispatch_count(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| c.proof != ProofKind::DeadInterval)
            .count()
    }

    /// Masks per class — the collapse factor (1.0 for an empty repository).
    pub fn collapse_ratio(&self) -> f64 {
        if self.classes.is_empty() {
            1.0
        } else {
            self.mask_count() as f64 / self.class_count() as f64
        }
    }

    /// Per-mask provenance records, indexed by repository position.
    /// `masks` must be the repository the partition was built from.
    pub fn provenance(&self, masks: &[InjectionSpec]) -> Vec<ClassProvenance> {
        let mut out = vec![
            ClassProvenance {
                class_id: 0,
                representative: 0,
                proof: ProofKind::Singleton,
                members: 0,
            };
            masks.len()
        ];
        for class in &self.classes {
            let prov = ClassProvenance {
                class_id: class.id,
                representative: masks[class.representative()].id,
                proof: class.proof,
                members: class.members.len() as u64,
            };
            for &i in &class.members {
                out[i] = prov;
            }
        }
        out
    }
}

/// Partitions a masks repository into provably-equivalent classes against
/// one structure's golden-run ACE profile.
///
/// Only the exact shape the profile reasons about is eligible for
/// non-trivial classes — a *single* cycle-timed transient flip into the
/// profile's own (data-plane) structure, mirroring
/// [`spec_provably_masked`]'s gate. For eligible masks,
/// [`SiteClass`] decides the class:
///
/// * `Dead` sites of one (entry, bit) sharing the same erasing event merge
///   into one [`ProofKind::DeadInterval`] class, resolved without dispatch;
/// * `Latched` sites of one (entry, bit) sharing the same first-read event
///   merge into one [`ProofKind::LatchInterval`] class — one member is
///   simulated, the rest inherit its result;
/// * `Unproven` sites become [`ProofKind::Singleton`] classes.
///
/// Ineligible masks become singletons too, with one exception: a
/// *multi-fault* spec that [`spec_provably_masked`] proves dead keeps its
/// PR 1 pruning as a one-member `DeadInterval` class, so collapsing never
/// dispatches more than pruning would.
///
/// Classes never span distinct (entry, bit) pairs or different specs'
/// fault shapes; every mask lands in exactly one class.
pub fn partition_equivalence(masks: &[InjectionSpec], profile: &AceProfile) -> MaskPartition {
    // Group key: (entry, bit, kind-tag, event-index). Tags: 0 = dead via a
    // covering write event, 1 = dead via "never accessed" (complete trace),
    // 2 = latched on a first read.
    let mut groups: BTreeMap<(u64, u32, u8, u64), Vec<usize>> = BTreeMap::new();
    // (first-member index, proof, members) for classes built outside the
    // grouping map (singletons and multi-fault dead specs).
    let mut solo: Vec<(usize, ProofKind)> = Vec::new();

    for (i, m) in masks.iter().enumerate() {
        let site = match m.faults.as_slice() {
            [f] if f.kind == FaultKindSer::Flip
                && f.duration == FaultDuration::Transient
                && f.structure == profile.structure() =>
            {
                match f.at {
                    InjectTime::Cycle(c) => Some((f.entry, f.bit, c)),
                    InjectTime::Instruction(_) => None,
                }
            }
            _ => None,
        };
        match site {
            Some((entry, bit, cycle)) => match profile.site_class(entry, bit, cycle) {
                SiteClass::Dead {
                    first_event: Some(k),
                } => groups.entry((entry, bit, 0, k as u64)).or_default().push(i),
                SiteClass::Dead { first_event: None } => {
                    groups.entry((entry, bit, 1, 0)).or_default().push(i);
                }
                SiteClass::Latched { first_event } => groups
                    .entry((entry, bit, 2, first_event as u64))
                    .or_default()
                    .push(i),
                SiteClass::Unproven => solo.push((i, ProofKind::Singleton)),
            },
            None if spec_provably_masked(m, profile) => {
                solo.push((i, ProofKind::DeadInterval));
            }
            None => solo.push((i, ProofKind::Singleton)),
        }
    }

    let mut classes: Vec<MaskClass> = Vec::new();
    for ((_, _, tag, _), members) in groups {
        let proof = match tag {
            0 | 1 => ProofKind::DeadInterval,
            _ => ProofKind::LatchInterval,
        };
        classes.push(MaskClass {
            id: 0,
            proof,
            members,
        });
    }
    for (i, proof) in solo {
        classes.push(MaskClass {
            id: 0,
            proof,
            members: vec![i],
        });
    }
    // Deterministic class ids: order classes by their first member's
    // repository position, then number densely.
    classes.sort_by_key(|c| c.members[0]);
    for (id, class) in classes.iter_mut().enumerate() {
        class.id = id as u64;
    }
    MaskPartition { classes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difi_uarch::fault::StructureId;

    fn desc() -> StructureDesc {
        StructureDesc {
            id: StructureId::IntRegFile,
            entries: 256,
            bits: 64,
        }
    }

    #[test]
    fn transient_masks_in_bounds_and_deterministic() {
        let mut g1 = MaskGenerator::new(42);
        let mut g2 = MaskGenerator::new(42);
        let a = g1.transient(&desc(), 10_000, 500);
        let b = g2.transient(&desc(), 10_000, 500);
        assert_eq!(a, b, "same seed → same masks repository");
        for m in &a {
            let f = &m.faults[0];
            assert!(f.entry < 256);
            assert!(f.bit < 64);
            assert!(matches!(f.at, InjectTime::Cycle(c) if c < 10_000));
            assert_eq!(f.duration, FaultDuration::Transient);
        }
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn generator_determinism_across_seed_sweep() {
        // Property (seeded sweep): for any seed, regenerating the masks
        // repository — across every mask family, in the same call order —
        // yields a byte-identical repository.
        for seed in 0..50u64 {
            let mut g1 = MaskGenerator::new(seed);
            let mut g2 = MaskGenerator::new(seed);
            let gen = |g: &mut MaskGenerator| {
                let mut all = g.transient(&desc(), 5_000, 20);
                all.extend(g.intermittent(&desc(), 5_000, 64, 10));
                all.extend(g.permanent(&desc(), 5));
                all.extend(g.multi_bit_same_entry(&desc(), 5_000, 2, 8));
                all
            };
            let a = gen(&mut g1);
            let b = gen(&mut g2);
            assert_eq!(a, b, "seed {seed}: repository must be reproducible");
            let mut ids: Vec<u64> = a.iter().map(|m| m.id).collect();
            let n = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), n, "seed {seed}: mask ids are unique");
        }
    }

    #[test]
    fn pruner_accepts_only_cycle_timed_transient_flips() {
        use difi_ace::AceProfile;
        use difi_uarch::residency::ResidencyTracker;

        // Empty, complete trace of the whole structure: every in-range
        // transient flip is provably masked (nothing is ever read).
        let t = ResidencyTracker::new();
        let profile = AceProfile::new(t.into_log(desc(), 1_000)).expect("data plane");
        let transient = InjectionSpec::single_transient(0, StructureId::IntRegFile, 3, 7, 50);
        assert!(spec_provably_masked(&transient, &profile));

        // Instruction-timed, stuck, or foreign-structure faults never prune.
        let mut by_instr = transient.clone();
        by_instr.faults[0].at = InjectTime::Instruction(5);
        assert!(!spec_provably_masked(&by_instr, &profile));
        let mut stuck = transient.clone();
        stuck.faults[0].kind = FaultKindSer::Stuck1;
        stuck.faults[0].duration = FaultDuration::Permanent;
        assert!(!spec_provably_masked(&stuck, &profile));
        let mut other = transient.clone();
        other.faults[0].structure = StructureId::L2Data;
        assert!(!spec_provably_masked(&other, &profile));
        let empty = InjectionSpec {
            id: 9,
            faults: vec![],
        };
        assert!(!spec_provably_masked(&empty, &profile));

        let masks = vec![transient, by_instr];
        let (pruned, dispatch) = partition_provably_masked(&masks, &profile);
        assert_eq!(pruned, vec![0]);
        assert_eq!(dispatch, vec![1]);
    }

    fn traced_profile() -> AceProfile {
        use difi_uarch::residency::ResidencyTracker;
        // Entry 3, bits 0..64: write@100, read@200, write@300, read@400.
        let mut t = ResidencyTracker::new();
        t.set_cycle(100);
        t.on_write(3, 0, 64);
        t.set_cycle(200);
        t.on_read(3, 0, 64);
        t.set_cycle(300);
        t.on_write(3, 0, 64);
        t.set_cycle(400);
        t.on_read(3, 0, 64);
        AceProfile::new(t.into_log(desc(), 1_000)).expect("data plane")
    }

    #[test]
    fn partition_merges_latch_intervals_and_dead_intervals() {
        let p = traced_profile();
        let mk =
            |id, cycle| InjectionSpec::single_transient(id, StructureId::IntRegFile, 3, 7, cycle);
        let masks = vec![
            mk(0, 150), // latches until read@200 (event 1)
            mk(1, 180), // same latch class
            mk(2, 50),  // dead: erased by write@100 (event 0)
            mk(3, 90),  // same dead class
            mk(4, 350), // latches until read@400 (event 3)
            mk(5, 500), // dead: never accessed again, complete trace
            mk(6, 250), // dead: erased by write@300 (event 2)
        ];
        let part = partition_equivalence(&masks, &p);
        assert_eq!(part.mask_count(), 7);
        assert_eq!(part.class_count(), 5);
        assert_eq!(part.classes_with(ProofKind::LatchInterval), 2);
        assert_eq!(part.classes_with(ProofKind::DeadInterval), 3);
        assert_eq!(part.dispatch_count(), 2);
        assert!(part.collapse_ratio() > 1.0);
        // Class ids follow first-member order; members ascend. The two dead
        // proofs with distinct erasing events (write@300 vs. never-accessed)
        // deliberately do NOT merge — each class keeps one checkable
        // argument.
        let by_members: Vec<(ProofKind, Vec<usize>)> = part
            .classes
            .iter()
            .map(|c| (c.proof, c.members.clone()))
            .collect();
        assert_eq!(
            by_members,
            vec![
                (ProofKind::LatchInterval, vec![0, 1]),
                (ProofKind::DeadInterval, vec![2, 3]),
                (ProofKind::LatchInterval, vec![4]),
                (ProofKind::DeadInterval, vec![5]),
                (ProofKind::DeadInterval, vec![6]),
            ]
        );
        assert_eq!(
            part.classes.iter().map(|c| c.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn partition_never_merges_across_bits_entries_or_shapes() {
        let p = traced_profile();
        let masks = vec![
            // Same interval, different bits: distinct latch classes.
            InjectionSpec::single_transient(0, StructureId::IntRegFile, 3, 7, 150),
            InjectionSpec::single_transient(1, StructureId::IntRegFile, 3, 8, 150),
            // Different entry (never touched, complete trace): dead class of
            // its own (entry, bit).
            InjectionSpec::single_transient(2, StructureId::IntRegFile, 0, 7, 150),
            // Ineligible shapes: singletons even at identical sites.
            {
                let mut m = InjectionSpec::single_transient(3, StructureId::IntRegFile, 3, 7, 150);
                m.faults[0].at = InjectTime::Instruction(5);
                m
            },
            InjectionSpec::single_transient(4, StructureId::L2Data, 3, 7, 150),
        ];
        let part = partition_equivalence(&masks, &p);
        assert_eq!(part.class_count(), 5, "nothing merges: {:?}", part.classes);
        assert_eq!(part.classes_with(ProofKind::Singleton), 2);
    }

    #[test]
    fn partition_dead_classes_agree_with_binary_pruner() {
        // Over a seeded random repository, the union of DeadInterval class
        // members must equal the PR 1 pruned set exactly.
        let p = traced_profile();
        let mut g = MaskGenerator::new(99);
        let masks = g.transient(&desc(), 1_000, 300);
        let part = partition_equivalence(&masks, &p);
        assert_eq!(part.mask_count(), masks.len());
        let mut dead: Vec<usize> = part
            .classes
            .iter()
            .filter(|c| c.proof == ProofKind::DeadInterval)
            .flat_map(|c| c.members.iter().copied())
            .collect();
        dead.sort_unstable();
        let (pruned, _) = partition_provably_masked(&masks, &p);
        assert_eq!(dead, pruned);
        // Every mask lands in exactly one class.
        let mut all: Vec<usize> = part
            .classes
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..masks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn provenance_maps_every_mask_to_its_class() {
        let p = traced_profile();
        let mk =
            |id, cycle| InjectionSpec::single_transient(id, StructureId::IntRegFile, 3, 7, cycle);
        let masks = vec![mk(10, 150), mk(11, 180), mk(12, 50)];
        let part = partition_equivalence(&masks, &p);
        let prov = part.provenance(&masks);
        assert_eq!(prov.len(), 3);
        assert_eq!(prov[0].class_id, prov[1].class_id);
        assert_eq!(prov[0].representative, 10, "representative is a mask id");
        assert_eq!(prov[1].representative, 10);
        assert_eq!(prov[0].proof, ProofKind::LatchInterval);
        assert_eq!(prov[0].members, 2);
        assert_eq!(prov[2].proof, ProofKind::DeadInterval);
        assert_eq!(prov[2].members, 1);
        assert_eq!(prov[2].representative, 12);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MaskGenerator::new(1).transient(&desc(), 1000, 100);
        let b = MaskGenerator::new(2).transient(&desc(), 1000, 100);
        assert_ne!(a, b);
    }

    #[test]
    fn masks_cover_the_site_space() {
        let mut g = MaskGenerator::new(7);
        let ms = g.transient(&desc(), 1_000_000, 2000);
        let distinct_entries: std::collections::HashSet<u64> =
            ms.iter().map(|m| m.faults[0].entry).collect();
        assert!(distinct_entries.len() > 200, "entries well spread");
        let high_bits = ms.iter().filter(|m| m.faults[0].bit >= 32).count();
        assert!((600..1400).contains(&high_bits), "bits well spread");
    }

    #[test]
    fn intermittent_and_permanent_shapes() {
        let mut g = MaskGenerator::new(3);
        let i = g.intermittent(&desc(), 1000, 50, 10);
        for m in &i {
            assert!(matches!(
                m.faults[0].duration,
                FaultDuration::Intermittent { cycles: 50 }
            ));
            assert!(matches!(
                m.faults[0].kind,
                FaultKindSer::Stuck0 | FaultKindSer::Stuck1
            ));
        }
        let p = g.permanent(&desc(), 10);
        for m in &p {
            assert_eq!(m.faults[0].duration, FaultDuration::Permanent);
            assert_eq!(m.faults[0].at, InjectTime::Cycle(0));
        }
    }

    #[test]
    fn multi_bit_faults_share_entry_and_cycle() {
        let mut g = MaskGenerator::new(4);
        let ms = g.multi_bit_same_entry(&desc(), 1000, 3, 20);
        for m in &ms {
            assert_eq!(m.faults.len(), 3);
            let e = m.faults[0].entry;
            let c = m.faults[0].at;
            assert!(m.faults.iter().all(|f| f.entry == e && f.at == c));
            let mut bits: Vec<u32> = m.faults.iter().map(|f| f.bit).collect();
            bits.sort_unstable();
            bits.dedup();
            assert_eq!(bits.len(), 3, "bits are distinct");
        }
    }

    #[test]
    fn multi_structure_faults_hit_each_structure() {
        let d2 = StructureDesc {
            id: StructureId::L1dData,
            entries: 512,
            bits: 512,
        };
        let mut g = MaskGenerator::new(5);
        let ms = g.multi_structure(&[desc(), d2], 1000, 5);
        for m in &ms {
            assert_eq!(m.faults.len(), 2);
            assert_eq!(m.faults[0].structure, StructureId::IntRegFile);
            assert_eq!(m.faults[1].structure, StructureId::L1dData);
        }
    }

    #[test]
    fn required_samples_matches_paper() {
        // Any realistically large population → 1843 at 99%/3%.
        let n = MaskGenerator::required_samples(&desc(), 10_000_000, 0.99, 0.03);
        assert_eq!(n, 1843);
    }

    #[test]
    fn mask_ids_are_unique_across_batches() {
        let mut g = MaskGenerator::new(6);
        let a = g.transient(&desc(), 100, 10);
        let b = g.permanent(&desc(), 10);
        let mut ids: Vec<u64> = a.iter().chain(b.iter()).map(|m| m.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }
}
