//! The logs repository: persistent storage of raw campaign results.
//!
//! "The last task of the Injection Campaign Controller is to store the
//! results of the injection in a *logs repository* which contains all log
//! files for further processing by the Parser." (§III.B) Keeping raw
//! results (not classifications) is what makes the parser reconfigurable
//! without re-running campaigns.

use crate::model::{ClassProvenance, InjectionSpec, RawRunResult};
use difi_util::json::{self, Json};
use difi_util::{Error, Result};
use std::io::{BufRead, Write};
use std::path::Path;

/// One injection run: the mask that was applied and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunLog {
    /// The fault mask.
    pub spec: InjectionSpec,
    /// The raw result.
    pub result: RawRunResult,
    /// Equivalence-class provenance, present on every run of a collapsed
    /// campaign (`None` under all other strategies). Serialized as an
    /// optional `"collapse"` key, so pre-collapse logs parse unchanged and
    /// non-collapsed logs stay byte-identical to earlier releases.
    pub provenance: Option<ClassProvenance>,
}

impl RunLog {
    /// Serializes the run to its JSON object form (one journal/log line).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("spec", self.spec.to_json()),
            ("result", self.result.to_json()),
        ];
        if let Some(p) = &self.provenance {
            fields.push(("collapse", p.to_json()));
        }
        Json::obj(fields)
    }

    /// Parses a run from its JSON object form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when a field is missing or malformed.
    pub fn from_json(j: &Json) -> Result<RunLog> {
        let provenance = match j.get("collapse") {
            None => None,
            Some(p) => Some(ClassProvenance::from_json(p)?),
        };
        Ok(RunLog {
            spec: InjectionSpec::from_json(j.req("spec")?)?,
            result: RawRunResult::from_json(j.req("result")?)?,
            provenance,
        })
    }
}

/// A complete campaign log for one (injector, benchmark, structure) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignLog {
    /// Injector name (`"MaFIN-x86"` …).
    pub injector: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Target structure name.
    pub structure: String,
    /// Campaign seed (for reproduction).
    pub seed: u64,
    /// The golden (fault-free) run.
    pub golden: RawRunResult,
    /// All injection runs.
    pub runs: Vec<RunLog>,
}

impl CampaignLog {
    /// Serializes to JSON-lines: a header line followed by one line per run
    /// (streaming-friendly for hundred-thousand-run campaigns).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on write failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        let header = Json::obj(vec![
            ("injector", Json::Str(self.injector.clone())),
            ("benchmark", Json::Str(self.benchmark.clone())),
            ("structure", Json::Str(self.structure.clone())),
            ("seed", Json::U64(self.seed)),
            ("golden", self.golden.to_json()),
        ]);
        writeln!(w, "{header}").map_err(Error::from)?;
        for run in &self.runs {
            writeln!(w, "{}", run.to_json()).map_err(Error::from)?;
        }
        Ok(())
    }

    /// Loads a campaign log saved by [`CampaignLog::save`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for malformed content, [`Error::Io`] on read
    /// failure.
    pub fn load(path: &Path) -> Result<CampaignLog> {
        let file = std::fs::File::open(path)?;
        let mut lines = std::io::BufReader::new(file).lines();
        let header_line = lines
            .next()
            .ok_or_else(|| Error::Parse("empty campaign log".into()))?
            .map_err(Error::from)?;
        let header =
            json::parse(&header_line).map_err(|e| Error::Parse(format!("bad header: {e}")))?;
        let golden = RawRunResult::from_json(header.req("golden")?)
            .map_err(|e| Error::Parse(format!("bad golden: {e}")))?;
        let get_str = |k: &str| -> Result<String> {
            header
                .req(k)?
                .as_str()
                .map(String::from)
                .ok_or_else(|| Error::Parse(format!("header field '{k}' is not a string")))
        };
        let seed = header
            .req("seed")?
            .as_u64()
            .ok_or_else(|| Error::Parse("header field 'seed' is not an integer".into()))?;
        let mut runs = Vec::new();
        for line in lines {
            let line = line.map_err(Error::from)?;
            if line.trim().is_empty() {
                continue;
            }
            let run = json::parse(&line)
                .and_then(|j| RunLog::from_json(&j))
                .map_err(|e| Error::Parse(format!("bad run line: {e}")))?;
            runs.push(run);
        }
        Ok(CampaignLog {
            injector: get_str("injector")?,
            benchmark: get_str("benchmark")?,
            structure: get_str("structure")?,
            seed,
            golden,
            runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RunStatus;
    use difi_uarch::fault::StructureId;

    fn sample_log() -> CampaignLog {
        let golden = RawRunResult {
            status: RunStatus::Completed { exit_code: 0 },
            output: b"ok\n".to_vec(),
            exceptions: Some(0),
            cycles: Some(5000),
            instructions: Some(2000),
            fault_consumed: false,
        };
        let runs = (0..5u64)
            .map(|i| RunLog {
                spec: InjectionSpec::single_transient(i, StructureId::L1dData, i, 3, 100 + i),
                result: RawRunResult {
                    status: if i % 2 == 0 {
                        RunStatus::Completed { exit_code: 0 }
                    } else {
                        RunStatus::SimulatorAssert(format!("assert {i}"))
                    },
                    output: b"ok\n".to_vec(),
                    exceptions: Some(0),
                    cycles: Some(5000 + i),
                    instructions: Some(2000),
                    fault_consumed: i % 2 == 1,
                },
                provenance: None,
            })
            .collect();
        CampaignLog {
            injector: "MaFIN-x86".into(),
            benchmark: "sha".into(),
            structure: "l1d_data".into(),
            seed: 77,
            golden,
            runs,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("difi_logs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.jsonl");
        let log = sample_log();
        log.save(&path).unwrap();
        let back = CampaignLog::load(&path).unwrap();
        assert_eq!(back, log);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_sweep_arbitrary_outputs_roundtrip_byte_exact() {
        // SDC classification is a byte-exact compare against
        // `RawRunResult.output`, so the logs repository must round-trip
        // *arbitrary* byte strings (not just tidy ASCII) and arbitrary
        // status messages without loss — and, since collapsed campaigns
        // attach equivalence-class provenance, arbitrary provenance records
        // too (absent on some rounds, like a mixed-strategy repository).
        use crate::model::{ClassProvenance, EarlyStop, ProofKind};
        use difi_util::rng::Xoshiro256;

        let mut rng = Xoshiro256::seed_from(0xB17E);
        let msg_pool: Vec<char> = ('\u{0}'..='\u{ff}')
            .chain(['"', '\\', '\u{2028}', '\u{1f4a9}'])
            .collect();
        let dir = std::env::temp_dir().join("difi_logs_sweep_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");

        for round in 0..30u64 {
            let mut output: Vec<u8> = (0..rng.gen_range(0, 64))
                .map(|_| rng.gen_range(0, 256) as u8)
                .collect();
            if round == 0 {
                // One run covering every byte value exactly once.
                output = (0u16..256).map(|b| b as u8).collect();
            }
            let msg: String = (0..rng.gen_range(0, 24))
                .map(|_| msg_pool[rng.gen_range(0, msg_pool.len() as u64) as usize])
                .collect();
            let status = match round % 5 {
                0 => RunStatus::Completed {
                    exit_code: rng.gen_range(0, 256),
                },
                1 => RunStatus::SimulatorAssert(msg),
                2 => RunStatus::ProcessCrash(msg),
                3 => RunStatus::SimulatorCrash(msg),
                _ => RunStatus::EarlyStopMasked(EarlyStop::DeadEntry),
            };
            let mut log = sample_log();
            log.runs[0].result = RawRunResult {
                status,
                output: output.clone(),
                exceptions: Some(rng.gen_range(0, 10)),
                cycles: Some(rng.gen_range(1, 1_000_000)),
                instructions: Some(rng.gen_range(1, 500_000)),
                fault_consumed: true,
            };
            log.golden.output = output.clone();
            log.runs[1].provenance = match round % 4 {
                0 => None,
                r => Some(ClassProvenance {
                    class_id: rng.gen_range(0, 1 << 32),
                    representative: rng.gen_range(0, 1 << 32),
                    proof: match r {
                        1 => ProofKind::DeadInterval,
                        2 => ProofKind::LatchInterval,
                        _ => ProofKind::Singleton,
                    },
                    members: rng.gen_range(1, 10_000),
                }),
            };

            log.save(&path).unwrap();
            let back = CampaignLog::load(&path).unwrap();
            assert_eq!(back, log, "round {round}: lossy round-trip");
            assert_eq!(
                back.runs[0].result.output, output,
                "round {round}: output bytes changed — would flip Masked↔SDC"
            );
            assert_eq!(
                back.runs[1].provenance, log.runs[1].provenance,
                "round {round}: provenance changed — collapse audit would lie"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_empty_file() {
        let dir = std::env::temp_dir().join("difi_logs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(CampaignLog::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("difi_logs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(CampaignLog::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_missing_seed() {
        let dir = std::env::temp_dir().join("difi_logs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("noseed.jsonl");
        // A header without a seed must be rejected, not silently defaulted.
        let mut log = sample_log();
        log.runs.clear();
        log.save(&path).unwrap();
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"seed\":77,", "");
        std::fs::write(&path, text).unwrap();
        let err = CampaignLog::load(&path).unwrap_err();
        assert!(err.to_string().contains("seed"));
        std::fs::remove_file(&path).ok();
    }
}
