//! The append-only campaign journal: crash-tolerant JSONL persistence of a
//! campaign in flight.
//!
//! A journal is one header line (campaign identity, the golden run, the
//! mask count) followed by one line per *completed* run, appended and
//! flushed as workers finish — a crash at run 1999 of 2000 loses at most
//! the line being written. [`load_journal`] reloads the valid prefix
//! (tolerating a torn tail via [`difi_util::jsonl`]);
//! [`CampaignRunner::resume`](crate::campaign::CampaignRunner::resume)
//! skips the reloaded runs and dispatches only the remainder.

use crate::logs::RunLog;
use crate::model::RawRunResult;
use difi_util::json::Json;
use difi_util::{jsonl, Error, Result};
use std::path::Path;

/// Campaign identity and context, written once at the head of a journal
/// and announced to every [`RunSink`](crate::sink::RunSink) at start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignHeader {
    /// Injector name (`"MaFIN-x86"` …).
    pub injector: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Target structure name.
    pub structure: String,
    /// Campaign seed.
    pub seed: u64,
    /// The golden (fault-free) run.
    pub golden: RawRunResult,
    /// Total masks in the campaign (resume completeness check).
    pub masks: u64,
}

impl CampaignHeader {
    /// JSON form of the journal header line.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("injector", Json::Str(self.injector.clone())),
            ("benchmark", Json::Str(self.benchmark.clone())),
            ("structure", Json::Str(self.structure.clone())),
            ("seed", Json::U64(self.seed)),
            ("masks", Json::U64(self.masks)),
            ("golden", self.golden.to_json()),
        ])
    }

    /// Parses the journal header line.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when a field is missing or malformed.
    pub fn from_json(j: &Json) -> Result<CampaignHeader> {
        let get_str = |k: &str| -> Result<String> {
            j.req(k)?
                .as_str()
                .map(String::from)
                .ok_or_else(|| Error::Parse(format!("header field '{k}' is not a string")))
        };
        let get_u64 = |k: &str| -> Result<u64> {
            j.req(k)?
                .as_u64()
                .ok_or_else(|| Error::Parse(format!("header field '{k}' is not an integer")))
        };
        Ok(CampaignHeader {
            injector: get_str("injector")?,
            benchmark: get_str("benchmark")?,
            structure: get_str("structure")?,
            seed: get_u64("seed")?,
            golden: RawRunResult::from_json(j.req("golden")?)
                .map_err(|e| Error::Parse(format!("bad golden: {e}")))?,
            masks: get_u64("masks")?,
        })
    }
}

/// Builds the journal line for one completed run: the [`RunLog`] fields
/// plus the run's index in the masks repository. Collapsed-campaign runs
/// carry their equivalence-class provenance as a `"collapse"` object, so a
/// journal is auditable (and resumable) without recomputing the partition.
pub fn run_line(index: usize, log: &RunLog) -> Json {
    let mut fields = vec![
        ("index", Json::U64(index as u64)),
        ("spec", log.spec.to_json()),
        ("result", log.result.to_json()),
    ];
    if let Some(p) = &log.provenance {
        fields.push(("collapse", p.to_json()));
    }
    Json::obj(fields)
}

/// Parses one journal run line back into `(index, RunLog)`.
///
/// # Errors
///
/// Returns [`Error::Parse`] when a field is missing or malformed.
pub fn parse_run_line(j: &Json) -> Result<(usize, RunLog)> {
    let index = j
        .req("index")?
        .as_u64()
        .ok_or_else(|| Error::Parse("journal field 'index' is not an integer".into()))?;
    let index = usize::try_from(index)
        .map_err(|_| Error::Parse("journal field 'index' out of range".into()))?;
    Ok((index, RunLog::from_json(j)?))
}

/// A reloaded journal: the valid prefix of a (possibly torn) journal file.
#[derive(Debug)]
pub struct JournalContents {
    /// The header, or `None` when the file is empty or its only content is
    /// a torn header line (resume then starts from scratch).
    pub header: Option<CampaignHeader>,
    /// Every completed run in the valid prefix, in append order.
    pub runs: Vec<(usize, RunLog)>,
    /// Byte length of the valid prefix; truncating the file to this length
    /// removes the torn tail so appends resume on a clean line boundary.
    pub valid_len: u64,
    /// Reason the tail line was dropped, if one was.
    pub dropped_tail: Option<String>,
}

/// Loads a campaign journal, tolerating a torn tail line (dropped with a
/// warning on stderr — the run it recorded is simply re-dispatched on
/// resume). Damage anywhere before the tail is a hard error: silent
/// mid-file data loss must never be papered over.
///
/// # Errors
///
/// Returns [`Error::Io`] on read failure and [`Error::Parse`] for mid-file
/// corruption.
pub fn load_journal(path: &Path) -> Result<JournalContents> {
    let loaded = jsonl::load_tolerant(path)?;
    let dropped_tail = loaded.dropped.as_ref().map(|d| {
        let reason = format!("journal line {}: {}", d.line_no, d.reason);
        eprintln!(
            "warning: dropping torn tail of {} ({reason}); its run will be re-dispatched",
            path.display()
        );
        reason
    });
    let mut lines = loaded.lines.into_iter();
    let header =
        match lines.next() {
            None => None,
            Some(h) => Some(CampaignHeader::from_json(&h).map_err(|e| {
                Error::Parse(format!("bad journal header in {}: {e}", path.display()))
            })?),
        };
    let runs = lines
        .map(|l| parse_run_line(&l))
        .collect::<Result<Vec<_>>>()
        .map_err(|e| Error::Parse(format!("bad journal run line in {}: {e}", path.display())))?;
    Ok(JournalContents {
        header,
        runs,
        valid_len: loaded.valid_len,
        dropped_tail,
    })
}

/// Truncates a journal to its valid prefix, removing a torn tail so that
/// subsequent appends start on a clean line boundary.
///
/// # Errors
///
/// Returns [`Error::Io`] when the file cannot be opened or truncated.
pub fn truncate_to_valid(path: &Path, valid_len: u64) -> Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(valid_len).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClassProvenance, EarlyStop, InjectionSpec, ProofKind, RunStatus};
    use crate::sink::{JournalSink, RunSink};
    use difi_uarch::fault::StructureId;
    use difi_util::rng::Xoshiro256;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("difi_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn header(n: u64) -> CampaignHeader {
        CampaignHeader {
            injector: "MaFIN-x86".into(),
            benchmark: "sha".into(),
            structure: "l2_data".into(),
            seed: 1979,
            golden: RawRunResult {
                status: RunStatus::Completed { exit_code: 0 },
                output: b"ok\n".to_vec(),
                exceptions: Some(0),
                cycles: Some(9000),
                instructions: Some(4000),
                fault_consumed: false,
            },
            masks: n,
        }
    }

    /// Seeded generator of hostile run logs: arbitrary output bytes and
    /// status strings, the payloads whose fidelity classification depends
    /// on.
    fn arbitrary_run(rng: &mut Xoshiro256, i: u64) -> RunLog {
        let msg_pool: Vec<char> = ('\u{0}'..='\u{ff}')
            .chain(['"', '\\', '\u{2028}', '\u{1f4a9}'])
            .collect();
        let output: Vec<u8> = (0..rng.gen_range(0, 48))
            .map(|_| rng.gen_range(0, 256) as u8)
            .collect();
        let msg: String = (0..rng.gen_range(0, 20))
            .map(|_| msg_pool[rng.gen_range(0, msg_pool.len() as u64) as usize])
            .collect();
        let status = match rng.gen_range(0, 6) {
            0 => RunStatus::Completed {
                exit_code: rng.gen_range(0, 256),
            },
            1 => RunStatus::SimulatorAssert(msg),
            2 => RunStatus::ProcessCrash(msg),
            3 => RunStatus::SimulatorCrash(msg),
            4 => RunStatus::Timeout,
            _ => RunStatus::EarlyStopMasked(EarlyStop::DeadEntry),
        };
        // Mix in equivalence-class provenance the way a collapsed campaign
        // would (and leave it off sometimes, like any other strategy).
        let provenance = match rng.gen_range(0, 4) {
            0 => None,
            r => Some(ClassProvenance {
                class_id: rng.gen_range(0, 1 << 20),
                representative: rng.gen_range(0, 1 << 20),
                proof: match r {
                    1 => ProofKind::DeadInterval,
                    2 => ProofKind::LatchInterval,
                    _ => ProofKind::Singleton,
                },
                members: rng.gen_range(1, 5_000),
            }),
        };
        RunLog {
            spec: InjectionSpec::single_transient(i, StructureId::L2Data, i, 3, 100 + i),
            result: RawRunResult {
                status,
                output,
                exceptions: Some(rng.gen_range(0, 8)),
                cycles: Some(rng.gen_range(1, 1_000_000)),
                instructions: Some(rng.gen_range(1, 500_000)),
                fault_consumed: true,
            },
            provenance,
        }
    }

    #[test]
    fn seeded_sweep_journal_roundtrips_arbitrary_runs() {
        let mut rng = Xoshiro256::seed_from(0x10a9);
        let path = temp_path("sweep.jsonl");
        for round in 0..25u64 {
            let n = rng.gen_range(1, 10);
            let hdr = header(n);
            let runs: Vec<RunLog> = (0..n).map(|i| arbitrary_run(&mut rng, i)).collect();

            let sink = JournalSink::create(&path).unwrap();
            sink.on_start(&hdr);
            // Completion order is arbitrary in a parallel campaign; journal
            // in reverse to prove order independence.
            for (i, run) in runs.iter().enumerate().rev() {
                sink.on_run(i, run);
            }
            sink.on_end();
            sink.finish().unwrap();

            let back = load_journal(&path).unwrap();
            assert_eq!(back.header.as_ref(), Some(&hdr), "round {round}");
            assert!(back.dropped_tail.is_none());
            assert_eq!(back.runs.len(), runs.len());
            for (k, (idx, log)) in back.runs.iter().enumerate() {
                assert_eq!(*idx, n as usize - 1 - k, "append order preserved");
                assert_eq!(log, &runs[*idx], "round {round}: lossy round-trip");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncatable() {
        let path = temp_path("torn.jsonl");
        let mut rng = Xoshiro256::seed_from(7);
        let hdr = header(4);
        let sink = JournalSink::create(&path).unwrap();
        sink.on_start(&hdr);
        for i in 0..4u64 {
            sink.on_run(i as usize, &arbitrary_run(&mut rng, i));
        }
        sink.finish().unwrap();

        // Tear the last line mid-way — the crash-mid-append signature.
        let full = std::fs::read(&path).unwrap();
        let last_start = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .unwrap()
            + 1;
        let cut = last_start + (full.len() - last_start) / 2;
        std::fs::write(&path, &full[..cut]).unwrap();

        let back = load_journal(&path).unwrap();
        assert_eq!(back.header, Some(hdr));
        assert_eq!(back.runs.len(), 3, "torn run dropped");
        assert!(back.dropped_tail.is_some(), "drop is reported");
        assert_eq!(back.valid_len as usize, last_start);

        // Truncating to the valid prefix makes the journal clean again.
        truncate_to_valid(&path, back.valid_len).unwrap();
        let clean = load_journal(&path).unwrap();
        assert!(clean.dropped_tail.is_none());
        assert_eq!(clean.runs.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_aborts_the_load() {
        let path = temp_path("corrupt.jsonl");
        let mut rng = Xoshiro256::seed_from(9);
        let sink = JournalSink::create(&path).unwrap();
        sink.on_start(&header(3));
        for i in 0..3u64 {
            sink.on_run(i as usize, &arbitrary_run(&mut rng, i));
        }
        sink.finish().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"index\":0", "\"index\":!", 1);
        assert_ne!(text, corrupted, "corruption applied");
        std::fs::write(&path, corrupted).unwrap();
        assert!(load_journal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_header_only_journals_load() {
        let path = temp_path("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        let back = load_journal(&path).unwrap();
        assert!(back.header.is_none());
        assert!(back.runs.is_empty());

        let sink = JournalSink::create(&path).unwrap();
        sink.on_start(&header(5));
        sink.finish().unwrap();
        let back = load_journal(&path).unwrap();
        assert_eq!(back.header, Some(header(5)));
        assert!(back.runs.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
