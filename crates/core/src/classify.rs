//! The Parser: classification of raw run logs into fault-effect classes.
//!
//! §III.A of the paper defines six classes — **Masked, SDC, DUE, Timeout,
//! Crash, Assert** — and stresses that the parser is "easily reconfigurable
//! … the input of Parser for an alternative classification is not changed
//! and is already stored into the log files repository (no new fault
//! injection campaign is required)". [`Classifier`] therefore works purely
//! on [`RawRunResult`]s:
//!
//! * the standard six-class view ([`Classifier::classify`]);
//! * the coarse Masked/Non-Masked view ([`Classifier::classify_coarse`]);
//! * the fine view splitting false/true DUE and the three crash
//!   subcategories ([`Classifier::classify_fine`]);
//! * the regrouping option the paper gives as an example — moving simulator
//!   crashes into the Assert class ([`Classifier::simulator_crash_as_assert`]).

use crate::model::{RawRunResult, RunStatus};

/// The paper's six fault-effect classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// No program-visible effect.
    Masked,
    /// Silent data corruption: output differs, no other indication.
    Sdc,
    /// Detected unrecoverable error: completed with error indications.
    Due,
    /// Deadlock or livelock.
    Timeout,
    /// Process, system, or simulator crash.
    Crash,
    /// Simulator assertion.
    Assert,
}

impl Outcome {
    /// All classes in report order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Masked,
        Outcome::Sdc,
        Outcome::Due,
        Outcome::Timeout,
        Outcome::Crash,
        Outcome::Assert,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Due => "due",
            Outcome::Timeout => "timeout",
            Outcome::Crash => "crash",
            Outcome::Assert => "assert",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fine-grained view (DUE split + crash subcategories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FineOutcome {
    /// No visible effect.
    Masked,
    /// Corrupted output, no indication.
    Sdc,
    /// Error indicated but output correct.
    FalseDue,
    /// Error indicated and output corrupted.
    TrueDue,
    /// Deadlock/livelock.
    Timeout,
    /// Simulated process terminated abnormally.
    ProcessCrash,
    /// Simulated system (kernel) died.
    SystemCrash,
    /// Simulator internal crash.
    SimulatorCrash,
    /// Simulator assertion.
    Assert,
}

/// The parser. Holds the golden (fault-free) reference for one
/// benchmark/injector pair plus the classification options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classifier {
    /// Fault-free console output.
    pub golden_output: Vec<u8>,
    /// Fault-free handled-exception count.
    pub golden_exceptions: u64,
    /// Fault-free exit code.
    pub golden_exit_code: u64,
    /// Regroup simulator crashes under Assert (the paper's example of a
    /// parser reconfiguration: "group together faulty behaviors attributed
    /// to simulator malfunctions").
    pub simulator_crash_as_assert: bool,
}

impl Classifier {
    /// Builds a classifier from a golden run.
    ///
    /// # Panics
    ///
    /// Panics if the golden run did not complete — the campaign cannot be
    /// classified against a broken reference.
    pub fn from_golden(golden: &RawRunResult) -> Classifier {
        let RunStatus::Completed { exit_code } = golden.status else {
            panic!("golden run must complete, got {:?}", golden.status);
        };
        Classifier {
            golden_output: golden.output.clone(),
            golden_exceptions: golden.exceptions.unwrap_or(0),
            golden_exit_code: exit_code,
            simulator_crash_as_assert: false,
        }
    }

    /// Enables the simulator-crash → Assert regrouping.
    pub fn simulator_crash_as_assert(mut self) -> Classifier {
        self.simulator_crash_as_assert = true;
        self
    }

    fn completed_matches(&self, r: &RawRunResult, exit_code: u64) -> bool {
        r.output == self.golden_output && exit_code == self.golden_exit_code
    }

    /// Six-class classification (the paper's Figs. 2–6 vocabulary).
    pub fn classify(&self, r: &RawRunResult) -> Outcome {
        match &r.status {
            RunStatus::EarlyStopMasked(_) => Outcome::Masked,
            RunStatus::Completed { exit_code } => {
                if r.exceptions.is_some_and(|e| e > self.golden_exceptions) {
                    Outcome::Due
                } else if self.completed_matches(r, *exit_code) {
                    Outcome::Masked
                } else {
                    Outcome::Sdc
                }
            }
            RunStatus::Timeout => Outcome::Timeout,
            RunStatus::ProcessCrash(_) | RunStatus::SystemCrash(_) => Outcome::Crash,
            RunStatus::SimulatorCrash(_) => {
                if self.simulator_crash_as_assert {
                    Outcome::Assert
                } else {
                    Outcome::Crash
                }
            }
            RunStatus::SimulatorAssert(_) => Outcome::Assert,
        }
    }

    /// Coarse Masked / Non-Masked classification.
    pub fn classify_coarse(&self, r: &RawRunResult) -> bool {
        self.classify(r) == Outcome::Masked
    }

    /// Fine classification (false/true DUE, crash subcategories).
    pub fn classify_fine(&self, r: &RawRunResult) -> FineOutcome {
        match &r.status {
            RunStatus::EarlyStopMasked(_) => FineOutcome::Masked,
            RunStatus::Completed { exit_code } => {
                let output_ok = self.completed_matches(r, *exit_code);
                if r.exceptions.is_some_and(|e| e > self.golden_exceptions) {
                    if output_ok {
                        FineOutcome::FalseDue
                    } else {
                        FineOutcome::TrueDue
                    }
                } else if output_ok {
                    FineOutcome::Masked
                } else {
                    FineOutcome::Sdc
                }
            }
            RunStatus::Timeout => FineOutcome::Timeout,
            RunStatus::ProcessCrash(_) => FineOutcome::ProcessCrash,
            RunStatus::SystemCrash(_) => FineOutcome::SystemCrash,
            RunStatus::SimulatorCrash(_) => FineOutcome::SimulatorCrash,
            RunStatus::SimulatorAssert(_) => FineOutcome::Assert,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EarlyStop;

    fn golden() -> RawRunResult {
        RawRunResult {
            status: RunStatus::Completed { exit_code: 0 },
            output: b"42\n".to_vec(),
            exceptions: Some(1),
            cycles: Some(1000),
            instructions: Some(500),
            fault_consumed: false,
        }
    }

    fn run(status: RunStatus, output: &[u8], exceptions: u64) -> RawRunResult {
        RawRunResult {
            status,
            output: output.to_vec(),
            exceptions: Some(exceptions),
            cycles: Some(900),
            instructions: Some(450),
            fault_consumed: true,
        }
    }

    #[test]
    fn identical_run_is_masked() {
        let c = Classifier::from_golden(&golden());
        let r = run(RunStatus::Completed { exit_code: 0 }, b"42\n", 1);
        assert_eq!(c.classify(&r), Outcome::Masked);
        assert!(c.classify_coarse(&r));
        assert_eq!(c.classify_fine(&r), FineOutcome::Masked);
    }

    #[test]
    fn corrupted_output_is_sdc() {
        let c = Classifier::from_golden(&golden());
        let r = run(RunStatus::Completed { exit_code: 0 }, b"43\n", 1);
        assert_eq!(c.classify(&r), Outcome::Sdc);
        assert_eq!(c.classify_fine(&r), FineOutcome::Sdc);
    }

    #[test]
    fn changed_exit_code_is_sdc() {
        let c = Classifier::from_golden(&golden());
        let r = run(RunStatus::Completed { exit_code: 7 }, b"42\n", 1);
        assert_eq!(c.classify(&r), Outcome::Sdc);
    }

    #[test]
    fn extra_exceptions_are_due_split_by_output() {
        let c = Classifier::from_golden(&golden());
        let fd = run(RunStatus::Completed { exit_code: 0 }, b"42\n", 2);
        assert_eq!(c.classify(&fd), Outcome::Due);
        assert_eq!(c.classify_fine(&fd), FineOutcome::FalseDue);
        let td = run(RunStatus::Completed { exit_code: 0 }, b"XX\n", 3);
        assert_eq!(c.classify(&td), Outcome::Due);
        assert_eq!(c.classify_fine(&td), FineOutcome::TrueDue);
    }

    #[test]
    fn early_stop_is_masked() {
        let c = Classifier::from_golden(&golden());
        let r = run(
            RunStatus::EarlyStopMasked(EarlyStop::OverwrittenBeforeRead),
            b"",
            0,
        );
        assert_eq!(c.classify(&r), Outcome::Masked);
    }

    #[test]
    fn crash_family_maps_to_crash() {
        let c = Classifier::from_golden(&golden());
        for s in [
            RunStatus::ProcessCrash("illegal instruction".into()),
            RunStatus::SystemCrash("kernel magic corrupted".into()),
            RunStatus::SimulatorCrash("scheduler wedged".into()),
        ] {
            assert_eq!(c.classify(&run(s, b"", 1)), Outcome::Crash);
        }
        assert_eq!(
            c.classify_fine(&run(RunStatus::SystemCrash("x".into()), b"", 1)),
            FineOutcome::SystemCrash
        );
    }

    #[test]
    fn simulator_crash_regroup_option() {
        let c = Classifier::from_golden(&golden()).simulator_crash_as_assert();
        let r = run(RunStatus::SimulatorCrash("x".into()), b"", 1);
        assert_eq!(c.classify(&r), Outcome::Assert);
        // Process crashes are unaffected by the regrouping.
        let p = run(RunStatus::ProcessCrash("x".into()), b"", 1);
        assert_eq!(c.classify(&p), Outcome::Crash);
    }

    #[test]
    fn assert_and_timeout() {
        let c = Classifier::from_golden(&golden());
        assert_eq!(
            c.classify(&run(RunStatus::SimulatorAssert("rob".into()), b"", 1)),
            Outcome::Assert
        );
        assert_eq!(
            c.classify(&run(RunStatus::Timeout, b"4", 1)),
            Outcome::Timeout
        );
    }

    #[test]
    #[should_panic(expected = "golden run must complete")]
    fn classifier_rejects_broken_golden() {
        let mut g = golden();
        g.status = RunStatus::Timeout;
        Classifier::from_golden(&g);
    }

    #[test]
    fn outcome_names_are_stable() {
        assert_eq!(Outcome::Sdc.to_string(), "sdc");
        assert_eq!(Outcome::ALL.len(), 6);
    }
}
