//! Report aggregation: from classified runs to the per-benchmark /
//! per-structure breakdowns behind the paper's Figs. 2–6, plus the
//! observability layer's fault-effect-latency breakdown
//! ([`LatencyReport`]).

use crate::classify::{Classifier, Outcome};
use crate::logs::CampaignLog;
use difi_obs::metrics::CycleHistogram;
use difi_obs::trace::FaultTrace;
use difi_util::json::Json;
use difi_util::stats::Proportion;
use std::collections::BTreeMap;

/// Counts per fault-effect class for one campaign cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Masked runs.
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Detected unrecoverable errors.
    pub due: u64,
    /// Timeouts (deadlock/livelock).
    pub timeout: u64,
    /// Crashes (process/system/simulator).
    pub crash: u64,
    /// Simulator assertions.
    pub assert_: u64,
}

impl ClassCounts {
    /// Total runs.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.due + self.timeout + self.crash + self.assert_
    }

    /// Count for one class.
    pub fn get(&self, o: Outcome) -> u64 {
        match o {
            Outcome::Masked => self.masked,
            Outcome::Sdc => self.sdc,
            Outcome::Due => self.due,
            Outcome::Timeout => self.timeout,
            Outcome::Crash => self.crash,
            Outcome::Assert => self.assert_,
        }
    }

    /// Adds one classified run.
    pub fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Due => self.due += 1,
            Outcome::Timeout => self.timeout += 1,
            Outcome::Crash => self.crash += 1,
            Outcome::Assert => self.assert_ += 1,
        }
    }

    /// Merges another cell into this one.
    pub fn merge(&mut self, other: &ClassCounts) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.due += other.due;
        self.timeout += other.timeout;
        self.crash += other.crash;
        self.assert_ += other.assert_;
    }

    /// The paper's *vulnerability*: "the sum of all non-masked behaviors",
    /// as a fraction of total runs.
    pub fn vulnerability(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (t - self.masked) as f64 / t as f64
        }
    }

    /// Fraction of runs in one class.
    pub fn fraction(&self, o: Outcome) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(o) as f64 / t as f64
        }
    }

    /// Wilson confidence interval for the vulnerability at `confidence`.
    ///
    /// # Panics
    ///
    /// Panics when the cell is empty.
    pub fn vulnerability_interval(&self, confidence: f64) -> Proportion {
        Proportion::wilson(self.total() - self.masked, self.total(), confidence)
    }
}

/// Classifies every run of a campaign log against its own golden run.
pub fn classify_log(log: &CampaignLog) -> ClassCounts {
    classify_log_with(log, &Classifier::from_golden(&log.golden))
}

/// Classifies a campaign log with an explicit (possibly reconfigured)
/// classifier.
pub fn classify_log_with(log: &CampaignLog, classifier: &Classifier) -> ClassCounts {
    let mut counts = ClassCounts::default();
    for run in &log.runs {
        counts.add(classifier.classify(&run.result));
    }
    counts
}

/// One row of a figure: a benchmark with its three per-injector cells
/// (MaFIN-x86, GeFIN-x86, GeFIN-ARM — the paper's three stacked bars).
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Per-injector class counts, in the paper's bar order.
    pub cells: Vec<(String, ClassCounts)>,
}

/// A full figure: one hardware structure across benchmarks and injectors.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title (e.g. "Fig. 3 — L1D cache (data arrays)").
    pub title: String,
    /// Per-benchmark rows.
    pub rows: Vec<FigureRow>,
}

impl Figure {
    /// The average row (the paper's rightmost "average" bars): per injector,
    /// the merge of all benchmark cells.
    pub fn averages(&self) -> Vec<(String, ClassCounts)> {
        let mut avg: Vec<(String, ClassCounts)> = Vec::new();
        for row in &self.rows {
            for (inj, counts) in &row.cells {
                match avg.iter_mut().find(|(n, _)| n == inj) {
                    Some((_, c)) => c.merge(counts),
                    None => avg.push((inj.clone(), *counts)),
                }
            }
        }
        avg
    }

    /// Renders the figure as an aligned text table (percent per class),
    /// ending with the average row — the textual equivalent of the paper's
    /// stacked-bar charts.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{}\n", self.title));
        s.push_str(&format!(
            "{:<10} {:<11} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}\n",
            "benchmark", "injector", "masked", "sdc", "due", "tmout", "crash", "assrt", "vuln%"
        ));
        let render_cells = |name: &str, cells: &[(String, ClassCounts)], s: &mut String| {
            for (inj, c) in cells {
                s.push_str(&format!(
                    "{:<10} {:<11} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>7.2}\n",
                    name,
                    inj,
                    100.0 * c.fraction(Outcome::Masked),
                    100.0 * c.fraction(Outcome::Sdc),
                    100.0 * c.fraction(Outcome::Due),
                    100.0 * c.fraction(Outcome::Timeout),
                    100.0 * c.fraction(Outcome::Crash),
                    100.0 * c.fraction(Outcome::Assert),
                    100.0 * c.vulnerability(),
                ));
            }
        };
        for row in &self.rows {
            render_cells(&row.benchmark, &row.cells, &mut s);
        }
        render_cells("AVERAGE", &self.averages(), &mut s);
        s
    }
}

/// One latency cell: a structure × outcome class with the latency
/// distributions of every trace that landed in it.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Target structure name (e.g. `"l2_data"`).
    pub structure: String,
    /// Outcome class name (`"masked"`, `"sdc"`, …, or `"unclassified"`).
    pub outcome: String,
    /// Traces aggregated into this cell.
    pub traces: u64,
    /// Injection → first-consumption latency distribution (cycles); only
    /// traces whose fault was actually read contribute.
    pub consume: CycleHistogram,
    /// Injection → first-architectural-divergence latency distribution
    /// (cycles); only traces that diverged from golden contribute.
    pub diverge: CycleHistogram,
}

/// Fault-effect latencies per structure × outcome class: how long an
/// injected fault lives before the machine consumes it, and how much longer
/// before the architectural state visibly diverges. The temporal companion
/// to the class-fraction figures — two campaigns with identical class
/// fractions can have very different latency profiles.
#[derive(Debug, Clone, Default)]
pub struct LatencyReport {
    /// Cells in (structure, outcome) order.
    pub rows: Vec<LatencyRow>,
}

impl LatencyReport {
    /// Aggregates an iterator of traces into per-cell distributions.
    /// Traces without a `Classified` event land in an `"unclassified"`
    /// cell rather than being dropped.
    pub fn from_traces<'a, I>(traces: I) -> LatencyReport
    where
        I: IntoIterator<Item = &'a FaultTrace>,
    {
        let mut cells: BTreeMap<(String, String), LatencyRow> = BTreeMap::new();
        for t in traces {
            let outcome = t.outcome().unwrap_or("unclassified").to_string();
            let row = cells
                .entry((t.structure.clone(), outcome.clone()))
                .or_insert_with(|| LatencyRow {
                    structure: t.structure.clone(),
                    outcome,
                    traces: 0,
                    consume: CycleHistogram::new(),
                    diverge: CycleHistogram::new(),
                });
            row.traces += 1;
            if let Some(lat) = t.consume_latency() {
                row.consume.record(lat);
            }
            if let Some(lat) = t.divergence_latency() {
                row.diverge.record(lat);
            }
        }
        LatencyReport {
            rows: cells.into_values().collect(),
        }
    }

    /// Renders the report as an aligned text table (mean latencies in
    /// cycles; `-` for cells where no trace reached that lifecycle stage).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Fault-effect latency (cycles from injection)\n");
        s.push_str(&format!(
            "{:<10} {:<12} {:>7} {:>9} {:>12} {:>9} {:>12}\n",
            "structure", "outcome", "traces", "consumed", "mean_cons", "diverged", "mean_div"
        ));
        let mean = |h: &CycleHistogram| match h.mean() {
            Some(m) => format!("{m:.1}"),
            None => "-".to_string(),
        };
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10} {:<12} {:>7} {:>9} {:>12} {:>9} {:>12}\n",
                r.structure,
                r.outcome,
                r.traces,
                r.consume.count(),
                mean(&r.consume),
                r.diverge.count(),
                mean(&r.diverge),
            ));
        }
        s
    }

    /// JSON form: `{"rows":[{"structure":…,"outcome":…,"traces":…,
    /// "consume":{hist},"diverge":{hist}},…]}` — the campaign bin's
    /// `--metrics-out` companion section.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "rows",
            Json::Arr(
                self.rows
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("structure", Json::Str(r.structure.clone())),
                            ("outcome", Json::Str(r.outcome.clone())),
                            ("traces", Json::U64(r.traces)),
                            ("consume", r.consume.to_json()),
                            ("diverge", r.diverge.to_json()),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

/// One row of the collapse summary: how one campaign cell's mask space
/// partitioned into equivalence classes.
#[derive(Debug, Clone)]
pub struct CollapseRow {
    /// Target structure name (e.g. `"l2_data"`).
    pub structure: String,
    /// Masks in the campaign.
    pub masks: u64,
    /// Equivalence classes they collapsed into.
    pub classes: u64,
    /// Classes proved dead (never-consumed faults — zero dispatches).
    pub dead: u64,
    /// Write-to-first-read latch-interval classes.
    pub latch: u64,
    /// Singleton classes (no proof sharper than "run it").
    pub singleton: u64,
    /// Simulator boots actually required (one per non-dead class).
    pub dispatched: u64,
}

impl CollapseRow {
    /// Builds a row from a partition.
    pub fn from_partition(structure: &str, p: &crate::masks::MaskPartition) -> CollapseRow {
        use crate::model::ProofKind;
        CollapseRow {
            structure: structure.to_string(),
            masks: p.mask_count() as u64,
            classes: p.class_count() as u64,
            dead: p.classes_with(ProofKind::DeadInterval) as u64,
            latch: p.classes_with(ProofKind::LatchInterval) as u64,
            singleton: p.classes_with(ProofKind::Singleton) as u64,
            dispatched: p.dispatch_count() as u64,
        }
    }

    /// Masks per class (the collapse factor); 1.0 for an empty cell.
    pub fn ratio(&self) -> f64 {
        if self.classes == 0 {
            1.0
        } else {
            self.masks as f64 / self.classes as f64
        }
    }
}

/// The collapse summary: per-structure partition statistics of a collapsed
/// campaign, answering "how much work did static equivalence save?" the way
/// [`LatencyReport`] answers "how long did faults live?".
#[derive(Debug, Clone, Default)]
pub struct CollapseReport {
    /// Rows in insertion order.
    pub rows: Vec<CollapseRow>,
}

impl CollapseReport {
    /// An empty report.
    pub fn new() -> CollapseReport {
        CollapseReport::default()
    }

    /// Adds one campaign cell's partition.
    pub fn push(&mut self, structure: &str, p: &crate::masks::MaskPartition) {
        self.rows.push(CollapseRow::from_partition(structure, p));
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Mask-space equivalence collapse\n");
        s.push_str(&format!(
            "{:<10} {:>7} {:>8} {:>6} {:>6} {:>6} {:>10} {:>7}\n",
            "structure", "masks", "classes", "dead", "latch", "singl", "dispatched", "ratio"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10} {:>7} {:>8} {:>6} {:>6} {:>6} {:>10} {:>6.2}x\n",
                r.structure,
                r.masks,
                r.classes,
                r.dead,
                r.latch,
                r.singleton,
                r.dispatched,
                r.ratio(),
            ));
        }
        s
    }

    /// JSON form: `{"rows":[{"structure":…,"masks":…,"classes":…,"dead":…,
    /// "latch":…,"singleton":…,"dispatched":…,"ratio_permille":…},…]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "rows",
            Json::Arr(
                self.rows
                    .iter()
                    .map(|r| {
                        let permille = r
                            .masks
                            .saturating_mul(1000)
                            .saturating_add(r.classes / 2)
                            .checked_div(r.classes)
                            .unwrap_or(1000);
                        Json::obj(vec![
                            ("structure", Json::Str(r.structure.clone())),
                            ("masks", Json::U64(r.masks)),
                            ("classes", Json::U64(r.classes)),
                            ("dead", Json::U64(r.dead)),
                            ("latch", Json::U64(r.latch)),
                            ("singleton", Json::U64(r.singleton)),
                            ("dispatched", Json::U64(r.dispatched)),
                            ("ratio_permille", Json::U64(permille)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

/// One cell of the static-vs-measured AVF comparison: a structure on a
/// benchmark under one injector backend.
#[derive(Debug, Clone)]
pub struct AvfRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Injector backend (`"MaFIN-x86"`, `"GeFIN-ARM"`, …).
    pub injector: String,
    /// Structure name (`"int_prf"`, `"l1d_data"`, …).
    pub structure: String,
    /// Static AVF from the golden-run residency trace (`difi-ace`).
    pub static_avf: f64,
    /// Measured non-Masked rate of the matching injection campaign.
    pub measured: f64,
    /// Injection runs behind the measured estimate.
    pub runs: u64,
    /// False when the residency trace was truncated, making `static_avf` a
    /// lower bound.
    pub exact: bool,
}

/// The differential study's third axis: static ACE-derived AVF against the
/// measured non-Masked rate, per structure × benchmark × backend.
///
/// Static AVF over-approximates measured vulnerability (ACE counts every
/// consumed bit; the machine masks many consumed corruptions downstream),
/// so `static ≥ measured` is the expected relation — rows violating it
/// localize modeling disagreements exactly like the paper's cross-simulator
/// comparison does.
#[derive(Debug, Clone, Default)]
pub struct AvfComparison {
    /// Comparison rows, in insertion order.
    pub rows: Vec<AvfRow>,
}

impl AvfComparison {
    /// An empty comparison.
    pub fn new() -> AvfComparison {
        AvfComparison::default()
    }

    /// Adds one cell, deriving the measured rate from campaign counts.
    pub fn push(
        &mut self,
        benchmark: &str,
        injector: &str,
        structure: &str,
        static_avf: f64,
        exact: bool,
        counts: &ClassCounts,
    ) {
        self.rows.push(AvfRow {
            benchmark: benchmark.to_string(),
            injector: injector.to_string(),
            structure: structure.to_string(),
            static_avf,
            measured: counts.vulnerability(),
            runs: counts.total(),
            exact,
        });
    }

    /// Renders the comparison as an aligned text table (percentages).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(
            "Static ACE/AVF vs. measured non-Masked rate
",
        );
        s.push_str(&format!(
            "{:<10} {:<11} {:<10} {:>9} {:>9} {:>6}
",
            "benchmark", "injector", "structure", "static%", "meas%", "runs"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10} {:<11} {:<10} {:>8.2}{} {:>9.2} {:>6}
",
                r.benchmark,
                r.injector,
                r.structure,
                100.0 * r.static_avf,
                if r.exact { " " } else { "+" },
                100.0 * r.measured,
                r.runs,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logs::RunLog;
    use crate::model::{InjectionSpec, RawRunResult, RunStatus};
    use difi_uarch::fault::StructureId;

    fn result(status: RunStatus, out: &[u8]) -> RawRunResult {
        RawRunResult {
            status,
            output: out.to_vec(),
            exceptions: Some(0),
            cycles: Some(10),
            instructions: Some(5),
            fault_consumed: true,
        }
    }

    fn log() -> CampaignLog {
        let golden = RawRunResult {
            status: RunStatus::Completed { exit_code: 0 },
            output: b"g".to_vec(),
            exceptions: Some(0),
            cycles: Some(10),
            instructions: Some(5),
            fault_consumed: false,
        };
        let statuses = vec![
            result(RunStatus::Completed { exit_code: 0 }, b"g"), // masked
            result(RunStatus::Completed { exit_code: 0 }, b"x"), // sdc
            result(RunStatus::Timeout, b""),
            result(RunStatus::SimulatorAssert("a".into()), b""),
            result(RunStatus::ProcessCrash("c".into()), b""),
            result(RunStatus::Completed { exit_code: 0 }, b"g"), // masked
        ];
        CampaignLog {
            injector: "MaFIN-x86".into(),
            benchmark: "qsort".into(),
            structure: "l1d_data".into(),
            seed: 0,
            golden,
            runs: statuses
                .into_iter()
                .enumerate()
                .map(|(i, result)| RunLog {
                    spec: InjectionSpec::single_transient(i as u64, StructureId::L1dData, 0, 0, 0),
                    result,
                    provenance: None,
                })
                .collect(),
        }
    }

    #[test]
    fn classify_log_counts_classes() {
        let c = classify_log(&log());
        assert_eq!(c.masked, 2);
        assert_eq!(c.sdc, 1);
        assert_eq!(c.timeout, 1);
        assert_eq!(c.assert_, 1);
        assert_eq!(c.crash, 1);
        assert_eq!(c.total(), 6);
        assert!((c.vulnerability() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn counts_merge_and_fraction() {
        let mut a = ClassCounts {
            masked: 8,
            sdc: 2,
            ..Default::default()
        };
        let b = ClassCounts {
            masked: 2,
            crash: 8,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert!((a.fraction(Outcome::Masked) - 0.5).abs() < 1e-12);
        assert!((a.vulnerability() - 0.5).abs() < 1e-12);
        let ci = a.vulnerability_interval(0.99);
        assert!(ci.lo < 0.5 && ci.hi > 0.5);
    }

    #[test]
    fn latency_report_groups_by_structure_and_outcome() {
        use difi_obs::trace::{TraceEvent, TraceEventKind};
        let mk = |structure: &str, outcome: Option<&str>, consumed: Option<u64>| {
            let mut events = vec![TraceEvent {
                cycle: 100,
                kind: TraceEventKind::Injected,
                detail: String::new(),
            }];
            if let Some(c) = consumed {
                events.push(TraceEvent {
                    cycle: 100 + c,
                    kind: TraceEventKind::FirstConsumed,
                    detail: String::new(),
                });
            }
            if let Some(o) = outcome {
                events.push(TraceEvent {
                    cycle: 500,
                    kind: TraceEventKind::Classified,
                    detail: o.into(),
                });
            }
            FaultTrace {
                id: 0,
                structure: structure.into(),
                events,
            }
        };
        let traces = vec![
            mk("iq", Some("sdc"), Some(8)),
            mk("iq", Some("sdc"), Some(16)),
            mk("iq", Some("masked"), None),
            mk("l2_data", None, Some(4)),
        ];
        let rep = LatencyReport::from_traces(&traces);
        assert_eq!(rep.rows.len(), 3);
        let sdc = rep
            .rows
            .iter()
            .find(|r| r.structure == "iq" && r.outcome == "sdc")
            .unwrap();
        assert_eq!(sdc.traces, 2);
        assert_eq!(sdc.consume.count(), 2);
        assert_eq!(sdc.consume.sum(), 24);
        let uncls = rep
            .rows
            .iter()
            .find(|r| r.outcome == "unclassified")
            .unwrap();
        assert_eq!(uncls.structure, "l2_data");
        assert_eq!(uncls.consume.count(), 1);
        let text = rep.render();
        assert!(text.contains("structure") && text.contains("sdc"));
        let j = rep.to_json();
        let back = difi_util::json::parse(&j.to_string()).expect("reparses");
        assert_eq!(back, j);
    }

    #[test]
    fn collapse_report_renders_and_serializes() {
        use crate::masks::{MaskClass, MaskPartition};
        use crate::model::ProofKind;
        let part = MaskPartition {
            classes: vec![
                MaskClass {
                    id: 0,
                    proof: ProofKind::LatchInterval,
                    members: vec![0, 1, 2],
                },
                MaskClass {
                    id: 1,
                    proof: ProofKind::DeadInterval,
                    members: vec![3, 4],
                },
                MaskClass {
                    id: 2,
                    proof: ProofKind::Singleton,
                    members: vec![5],
                },
            ],
        };
        let mut rep = CollapseReport::new();
        rep.push("l2_data", &part);
        assert_eq!(rep.rows.len(), 1);
        let r = &rep.rows[0];
        assert_eq!(
            (
                r.masks,
                r.classes,
                r.dead,
                r.latch,
                r.singleton,
                r.dispatched
            ),
            (6, 3, 1, 1, 1, 2)
        );
        assert!((r.ratio() - 2.0).abs() < 1e-12);
        let text = rep.render();
        assert!(text.contains("l2_data"));
        assert!(text.contains("2.00x"));
        let j = rep.to_json();
        let back = difi_util::json::parse(&j.to_string()).expect("reparses");
        assert_eq!(back, j);
        match j.get("rows") {
            Some(Json::Arr(rows)) => {
                assert_eq!(
                    rows[0].get("ratio_permille").and_then(Json::as_u64),
                    Some(2000)
                );
                assert_eq!(rows[0].get("dispatched").and_then(Json::as_u64), Some(2));
            }
            other => panic!("rows not an array: {other:?}"),
        }
        // Empty report degenerates cleanly.
        let empty = CollapseRow {
            structure: "iq".into(),
            masks: 0,
            classes: 0,
            dead: 0,
            latch: 0,
            singleton: 0,
            dispatched: 0,
        };
        assert!((empty.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure_average_merges_all_rows() {
        let cell = |m, s| ClassCounts {
            masked: m,
            sdc: s,
            ..Default::default()
        };
        let fig = Figure {
            title: "T".into(),
            rows: vec![
                FigureRow {
                    benchmark: "a".into(),
                    cells: vec![("M".into(), cell(9, 1)), ("G".into(), cell(8, 2))],
                },
                FigureRow {
                    benchmark: "b".into(),
                    cells: vec![("M".into(), cell(7, 3)), ("G".into(), cell(6, 4))],
                },
            ],
        };
        let avg = fig.averages();
        assert_eq!(avg.len(), 2);
        let m = &avg.iter().find(|(n, _)| n == "M").unwrap().1;
        assert_eq!(m.masked, 16);
        assert_eq!(m.sdc, 4);
        let rendered = fig.render();
        assert!(rendered.contains("AVERAGE"));
        assert!(rendered.contains("benchmark"));
    }
}
