//! Pluggable run sinks: where completed injection runs stream to.
//!
//! The paper's campaign layer buffered every result in memory and only
//! surfaced them when the whole campaign finished. The streaming engine
//! inverts that: the [`CampaignRunner`](crate::campaign::CampaignRunner)
//! pushes each [`RunLog`] to every attached [`RunSink`] the moment its
//! worker finishes it, so results persist incrementally ([`JournalSink`]),
//! report progress live ([`ProgressSink`]), and still collect in memory for
//! the final [`CampaignLog`](crate::logs::CampaignLog) ([`MemorySink`]).
//!
//! Sinks are called directly from worker threads; each synchronizes
//! internally (a single lock per sink — the per-run simulation dwarfs any
//! contention on it).

use crate::journal::{run_line, CampaignHeader};
use crate::logs::RunLog;
use difi_obs::metrics::MetricsRegistry;
use difi_obs::trace::FaultTrace;
use difi_util::json::Json;
use difi_util::{jsonl, Error, Result};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A consumer of completed injection runs.
///
/// Implementations must be `Sync`: [`RunSink::on_run`] is invoked from
/// several worker threads at once. Callbacks must not panic on ordinary
/// operational failure (e.g. a full disk) — they record the error and
/// surface it at the end (see [`JournalSink::finish`]) so one sink hiccup
/// cannot abort a 300,000-run campaign.
pub trait RunSink: Sync {
    /// Called once, after the golden run, before any injection runs.
    fn on_start(&self, header: &CampaignHeader) {
        let _ = header;
    }

    /// Called once per completed run, in completion (not mask) order.
    /// `index` is the run's position in the masks repository.
    fn on_run(&self, index: usize, log: &RunLog);

    /// Called once per completed run *when fault tracing is enabled* and
    /// the dispatcher produced an event stream, immediately after
    /// [`RunSink::on_run`] for the same index. The default ignores traces —
    /// existing sinks keep working untouched.
    fn on_trace(&self, index: usize, trace: &FaultTrace) {
        let _ = (index, trace);
    }

    /// Called once after the last run of the campaign.
    fn on_end(&self) {}
}

/// The in-memory collector: stores every run in its mask slot, yielding the
/// ordered run vector of the final campaign log. This is the sink behind
/// the classic `run_campaign*` entry points.
#[derive(Debug, Default)]
pub struct MemorySink {
    slots: Mutex<Vec<Option<RunLog>>>,
}

impl MemorySink {
    /// An empty collector; [`RunSink::on_start`] sizes it to the campaign.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Consumes the collector, returning runs in mask order.
    ///
    /// # Panics
    ///
    /// Panics if any mask slot never received a run — the campaign runner
    /// guarantees every index is delivered exactly once.
    pub fn into_runs(self) -> Vec<RunLog> {
        self.slots
            .into_inner()
            .expect("slots lock")
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("mask {i} never completed")))
            .collect()
    }
}

impl RunSink for MemorySink {
    fn on_start(&self, header: &CampaignHeader) {
        let mut slots = self.slots.lock().expect("slots lock");
        slots.resize(header.masks as usize, None);
    }

    fn on_run(&self, index: usize, log: &RunLog) {
        let mut slots = self.slots.lock().expect("slots lock");
        assert!(index < slots.len(), "run index {index} out of range");
        slots[index] = Some(log.clone());
    }
}

struct JournalOut {
    w: BufWriter<std::fs::File>,
    /// True until a header line has been written to (or found in) the file.
    fresh: bool,
    /// First I/O error, surfaced by [`JournalSink::finish`].
    error: Option<Error>,
}

/// The append-only JSONL journal sink: one flushed line per completed run,
/// enabling crash-resume
/// ([`CampaignRunner::resume`](crate::campaign::CampaignRunner::resume)).
pub struct JournalSink {
    out: Mutex<JournalOut>,
}

impl JournalSink {
    /// Creates (truncating) a fresh journal at `path`. The header line is
    /// written on [`RunSink::on_start`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the file cannot be created.
    pub fn create(path: &Path) -> Result<JournalSink> {
        let file = std::fs::File::create(path)?;
        Ok(JournalSink {
            out: Mutex::new(JournalOut {
                w: BufWriter::new(file),
                fresh: true,
                error: None,
            }),
        })
    }

    /// Opens an existing journal for appending (resume). If the file does
    /// not end on a line boundary, a newline is inserted first so the next
    /// record starts cleanly; an empty file behaves like [`Self::create`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the file cannot be opened.
    pub fn append_to(path: &Path) -> Result<JournalSink> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .open(path)?;
        let len = file.metadata()?.len();
        let mut needs_newline = false;
        if len > 0 {
            use std::io::Read;
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            needs_newline = last[0] != b'\n';
        }
        let mut w = BufWriter::new(file);
        if needs_newline {
            w.write_all(b"\n").map_err(Error::from)?;
        }
        Ok(JournalSink {
            out: Mutex::new(JournalOut {
                w,
                fresh: len == 0,
                error: None,
            }),
        })
    }

    /// Flushes and surfaces the first I/O error encountered by any
    /// callback. Call after the campaign completes; dropping the sink
    /// without calling this loses error reports, not data.
    ///
    /// # Errors
    ///
    /// Returns the first [`Error::Io`] hit while journaling.
    pub fn finish(&self) -> Result<()> {
        let mut out = self.out.lock().expect("journal lock");
        if let Err(e) = out.w.flush() {
            return Err(Error::from(e));
        }
        match out.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl RunSink for JournalSink {
    fn on_start(&self, header: &CampaignHeader) {
        let mut out = self.out.lock().expect("journal lock");
        if !out.fresh {
            return; // resuming: the header is already on disk
        }
        out.fresh = false;
        let r = jsonl::write_line(&mut out.w, &header.to_json())
            .and_then(|()| out.w.flush().map_err(Error::from));
        if let Err(e) = r {
            out.error.get_or_insert(e);
        }
    }

    fn on_run(&self, index: usize, log: &RunLog) {
        let mut out = self.out.lock().expect("journal lock");
        // One line per run, flushed immediately: a crash can tear at most
        // the line in flight, which the tolerant loader drops on resume.
        let r = jsonl::write_line(&mut out.w, &run_line(index, log))
            .and_then(|()| out.w.flush().map_err(Error::from));
        if let Err(e) = r {
            out.error.get_or_insert(e);
        }
    }

    fn on_end(&self) {
        let mut out = self.out.lock().expect("journal lock");
        if let Err(e) = out.w.flush() {
            out.error.get_or_insert(Error::from(e));
        }
    }
}

/// The fault-trace journal: one flushed JSONL line per traced run,
/// `{"index":…,"trace":{…}}`. Same error discipline as [`JournalSink`] —
/// callbacks latch the first I/O error and [`TraceSink::finish`] surfaces
/// it; nothing is silently dropped.
pub struct TraceSink {
    out: Mutex<JournalOut>,
}

impl TraceSink {
    /// Creates (truncating) a fresh trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the file cannot be created.
    pub fn create(path: &Path) -> Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink {
            out: Mutex::new(JournalOut {
                w: BufWriter::new(file),
                fresh: true,
                error: None,
            }),
        })
    }

    /// Flushes and surfaces the first I/O error encountered by any
    /// callback.
    ///
    /// # Errors
    ///
    /// Returns the first [`Error::Io`] hit while writing traces.
    pub fn finish(&self) -> Result<()> {
        let mut out = self.out.lock().expect("trace lock");
        if let Err(e) = out.w.flush() {
            return Err(Error::from(e));
        }
        match out.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl RunSink for TraceSink {
    fn on_run(&self, _index: usize, _log: &RunLog) {}

    fn on_trace(&self, index: usize, trace: &FaultTrace) {
        let mut out = self.out.lock().expect("trace lock");
        let line = Json::obj(vec![
            ("index", Json::U64(index as u64)),
            ("trace", trace.to_json()),
        ]);
        let r =
            jsonl::write_line(&mut out.w, &line).and_then(|()| out.w.flush().map_err(Error::from));
        if let Err(e) = r {
            out.error.get_or_insert(e);
        }
    }

    fn on_end(&self) {
        let mut out = self.out.lock().expect("trace lock");
        if let Err(e) = out.w.flush() {
            out.error.get_or_insert(Error::from(e));
        }
    }
}

/// The in-memory trace collector: gathers every [`FaultTrace`] for
/// post-campaign analysis (latency reports, determinism oracles).
#[derive(Debug, Default)]
pub struct MemoryTraceSink {
    traces: Mutex<Vec<(usize, FaultTrace)>>,
}

impl MemoryTraceSink {
    /// An empty collector.
    pub fn new() -> MemoryTraceSink {
        MemoryTraceSink::default()
    }

    /// Consumes the collector, returning `(index, trace)` pairs sorted by
    /// mask index. Unlike [`MemorySink`] there is no completeness guarantee:
    /// fault-free masks and preloaded (resumed) runs carry no trace.
    pub fn into_traces(self) -> Vec<(usize, FaultTrace)> {
        let mut traces = self.traces.into_inner().expect("traces lock");
        traces.sort_by_key(|(i, _)| *i);
        traces
    }
}

impl RunSink for MemoryTraceSink {
    fn on_run(&self, _index: usize, _log: &RunLog) {}

    fn on_trace(&self, index: usize, trace: &FaultTrace) {
        let mut traces = self.traces.lock().expect("traces lock");
        traces.push((index, trace.clone()));
    }
}

/// The metrics bridge: folds every completed run and trace into a
/// [`MetricsRegistry`] — run/status/cycle counters plus the per-structure ×
/// outcome fault-effect-latency histograms. The campaign runner attaches
/// one internally (before user sinks) whenever a registry is configured, so
/// sinks later in the chain (e.g. [`ProgressSink`]) read fresh values.
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
}

impl MetricsSink {
    /// A sink feeding `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> MetricsSink {
        MetricsSink { registry }
    }
}

impl RunSink for MetricsSink {
    fn on_run(&self, _index: usize, log: &RunLog) {
        let r = &self.registry;
        r.counter("campaign.runs").inc();
        r.counter(&format!(
            "campaign.status.{}",
            STATUS_TAGS[status_tag_index(log)]
        ))
        .inc();
        r.counter("campaign.sim_cycles")
            .add(log.result.cycles.unwrap_or(0));
        r.counter("campaign.sim_instructions")
            .add(log.result.instructions.unwrap_or(0));
    }

    fn on_trace(&self, _index: usize, trace: &FaultTrace) {
        let r = &self.registry;
        r.counter("campaign.traces").inc();
        let outcome = trace.outcome().unwrap_or("unclassified");
        if let Some(lat) = trace.consume_latency() {
            r.histogram(&format!("latency.consume.{}.{outcome}", trace.structure))
                .record(lat);
        }
        if let Some(lat) = trace.divergence_latency() {
            r.histogram(&format!("latency.diverge.{}.{outcome}", trace.structure))
                .record(lat);
        }
    }
}

struct ProgressState {
    total: usize,
    done: usize,
    started: Instant,
    /// Coarse status tallies, indexed by [`status_tag`] order.
    tallies: [u64; 7],
}

/// Live campaign telemetry on stderr: runs completed, mean per-run wall
/// time, coarse outcome tallies so far, and the ETA for the remainder.
///
/// With [`ProgressSink::with_metrics`] the sink additionally reads
/// campaign throughput (runs/s, simulated Mcycles/s) and per-phase wall
/// times straight from the shared [`MetricsRegistry`] — the same numbers
/// every other consumer sees — instead of deriving them from its own
/// ad-hoc arithmetic.
pub struct ProgressSink {
    every: usize,
    metrics: Option<Arc<MetricsRegistry>>,
    state: Mutex<ProgressState>,
}

const STATUS_TAGS: [&str; 7] = [
    "completed",
    "timeout",
    "process_crash",
    "system_crash",
    "sim_assert",
    "sim_crash",
    "early_masked",
];

fn status_tag_index(log: &RunLog) -> usize {
    use crate::model::RunStatus as S;
    match log.result.status {
        S::Completed { .. } => 0,
        S::Timeout => 1,
        S::ProcessCrash(_) => 2,
        S::SystemCrash(_) => 3,
        S::SimulatorAssert(_) => 4,
        S::SimulatorCrash(_) => 5,
        S::EarlyStopMasked(_) => 6,
    }
}

impl ProgressSink {
    /// A progress sink reporting after every completed run.
    pub fn new() -> ProgressSink {
        ProgressSink::every(1)
    }

    /// A progress sink reporting after every `n` completed runs (and always
    /// on the final one).
    pub fn every(n: usize) -> ProgressSink {
        ProgressSink {
            every: n.max(1),
            metrics: None,
            state: Mutex::new(ProgressState {
                total: 0,
                done: 0,
                started: Instant::now(),
                tallies: [0; 7],
            }),
        }
    }

    /// Reads throughput and phase timings from `registry` instead of
    /// locally derived arithmetic. The campaign runner feeds the same
    /// registry via its internal [`MetricsSink`] *before* delivering to
    /// user sinks, so the values read here are already up to date for the
    /// run being reported.
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> ProgressSink {
        self.metrics = Some(registry);
        self
    }
}

impl Default for ProgressSink {
    fn default() -> Self {
        ProgressSink::new()
    }
}

impl RunSink for ProgressSink {
    fn on_start(&self, header: &CampaignHeader) {
        let mut s = self.state.lock().expect("progress lock");
        s.total = header.masks as usize;
        s.started = Instant::now();
        // The runner stamps the golden phase gauge before on_start, so the
        // preamble can report how long the reference run took.
        let golden_phase = self
            .metrics
            .as_ref()
            .and_then(|m| m.value("phase.golden_ns"))
            .map(|ns| format!(", golden phase {:.2}s", ns as f64 / 1e9))
            .unwrap_or_default();
        eprintln!(
            "[campaign] {} / {} / {}: {} masks, golden {} cycles{}",
            header.injector,
            header.benchmark,
            header.structure,
            header.masks,
            header.golden.cycles_measured(),
            golden_phase
        );
    }

    fn on_run(&self, _index: usize, log: &RunLog) {
        let mut s = self.state.lock().expect("progress lock");
        s.done += 1;
        s.tallies[status_tag_index(log)] += 1;
        if !s.done.is_multiple_of(self.every) && s.done != s.total {
            return;
        }
        let elapsed = s.started.elapsed().as_secs_f64();
        let per_run = elapsed / s.done as f64;
        let remaining = s.total.saturating_sub(s.done);
        let tallies: Vec<String> = STATUS_TAGS
            .iter()
            .zip(s.tallies.iter())
            .filter(|(_, &n)| n > 0)
            .map(|(tag, n)| format!("{tag}:{n}"))
            .collect();
        // With a registry attached, throughput comes from the shared
        // counters (fed by the runner's MetricsSink ahead of this sink).
        let throughput = self
            .metrics
            .as_ref()
            .map(|m| {
                let runs = m.value("campaign.runs").unwrap_or(0);
                let cycles = m.value("campaign.sim_cycles").unwrap_or(0);
                format!(
                    " | {:.1} runs/s, {:.1} Mcyc/s",
                    runs as f64 / elapsed.max(1e-9),
                    cycles as f64 / 1e6 / elapsed.max(1e-9)
                )
            })
            .unwrap_or_default();
        eprintln!(
            "[campaign] {}/{} ({:.1}%) | {:.1} ms/run | eta {:.1}s{} | {}",
            s.done,
            s.total,
            100.0 * s.done as f64 / s.total.max(1) as f64,
            1e3 * per_run,
            per_run * remaining as f64,
            throughput,
            tallies.join(" ")
        );
    }

    fn on_end(&self) {
        let s = self.state.lock().expect("progress lock");
        // Phase timings are the runner's gauges, not local arithmetic; the
        // classify gauge is stamped after on_end, so it reads as pending.
        let phases = self
            .metrics
            .as_ref()
            .map(|m| {
                let read = |name: &str| m.value(name).unwrap_or(0) as f64 / 1e9;
                format!(
                    " (golden {:.2}s, snapshots {:.2}s, injection {:.2}s)",
                    read("phase.golden_ns"),
                    read("phase.snapshots_ns"),
                    read("phase.injection_ns")
                )
            })
            .unwrap_or_default();
        eprintln!(
            "[campaign] done: {} runs in {:.2}s{}",
            s.done,
            s.started.elapsed().as_secs_f64(),
            phases
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{InjectionSpec, RawRunResult, RunStatus};
    use difi_uarch::fault::StructureId;

    fn header(n: u64) -> CampaignHeader {
        CampaignHeader {
            injector: "Fake-x86".into(),
            benchmark: "fake".into(),
            structure: "int_prf".into(),
            seed: 1,
            golden: RawRunResult {
                status: RunStatus::Completed { exit_code: 0 },
                output: Vec::new(),
                exceptions: Some(0),
                cycles: Some(100),
                instructions: Some(50),
                fault_consumed: false,
            },
            masks: n,
        }
    }

    fn run(i: u64) -> RunLog {
        RunLog {
            spec: InjectionSpec::single_transient(i, StructureId::IntRegFile, 0, 0, i),
            result: RawRunResult {
                status: RunStatus::Completed { exit_code: i },
                output: vec![i as u8],
                exceptions: Some(0),
                cycles: Some(10 + i),
                instructions: Some(5),
                fault_consumed: true,
            },
            provenance: None,
        }
    }

    #[test]
    fn memory_sink_collects_in_mask_order() {
        let sink = MemorySink::new();
        sink.on_start(&header(4));
        // Deliver out of order, as a parallel campaign would.
        for i in [2usize, 0, 3, 1] {
            sink.on_run(i, &run(i as u64));
        }
        sink.on_end();
        let runs = sink.into_runs();
        assert_eq!(runs.len(), 4);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.spec.id, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "never completed")]
    fn memory_sink_panics_on_missing_slot() {
        let sink = MemorySink::new();
        sink.on_start(&header(2));
        sink.on_run(0, &run(0));
        let _ = sink.into_runs();
    }

    #[test]
    fn progress_sink_counts_without_panicking() {
        let sink = ProgressSink::every(2);
        sink.on_start(&header(3));
        for i in 0..3 {
            sink.on_run(i, &run(i as u64));
        }
        sink.on_end();
        let s = sink.state.lock().unwrap();
        assert_eq!(s.done, 3);
        assert_eq!(s.tallies[0], 3, "all runs completed");
    }

    fn trace(id: u64, outcome: &str) -> FaultTrace {
        use difi_obs::trace::{TraceEvent, TraceEventKind};
        FaultTrace {
            id,
            structure: "int_prf".into(),
            events: vec![
                TraceEvent {
                    cycle: 10,
                    kind: TraceEventKind::Injected,
                    detail: "int_prf entry 0 bit 0".into(),
                },
                TraceEvent {
                    cycle: 10 + id,
                    kind: TraceEventKind::FirstConsumed,
                    detail: "int_prf entry 0 bit 0".into(),
                },
                TraceEvent {
                    cycle: 100,
                    kind: TraceEventKind::Classified,
                    detail: outcome.into(),
                },
            ],
        }
    }

    #[test]
    fn trace_sink_writes_parseable_jsonl() {
        let dir = std::env::temp_dir().join("difi_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.jsonl");

        let sink = TraceSink::create(&path).unwrap();
        sink.on_start(&header(2));
        sink.on_run(0, &run(0));
        sink.on_trace(0, &trace(0, "sdc"));
        sink.on_trace(1, &trace(1, "masked"));
        sink.on_end();
        sink.finish().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one line per trace, none for plain runs");
        let j = difi_util::json::parse(lines[1]).expect("line parses");
        assert_eq!(j.get("index").and_then(Json::as_u64), Some(1));
        let back = FaultTrace::from_json(j.req("trace").unwrap()).unwrap();
        assert_eq!(back, trace(1, "masked"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_sink_surfaces_write_errors() {
        // A directory path cannot be created as a file: creation fails
        // loudly rather than silently producing a sink that drops traces.
        let dir = std::env::temp_dir().join("difi_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(TraceSink::create(&dir).is_err());
    }

    #[test]
    fn memory_trace_sink_sorts_by_index() {
        let sink = MemoryTraceSink::new();
        sink.on_trace(2, &trace(2, "sdc"));
        sink.on_trace(0, &trace(0, "masked"));
        let traces = sink.into_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].0, 0);
        assert_eq!(traces[1].0, 2);
    }

    #[test]
    fn metrics_sink_feeds_registry() {
        let reg = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&reg));
        sink.on_start(&header(3));
        for i in 0..3 {
            sink.on_run(i, &run(i as u64));
        }
        sink.on_trace(0, &trace(0, "sdc"));
        sink.on_trace(1, &trace(4, "sdc"));
        sink.on_end();

        assert_eq!(reg.value("campaign.runs"), Some(3));
        assert_eq!(reg.value("campaign.status.completed"), Some(3));
        assert_eq!(reg.value("campaign.sim_cycles"), Some(10 + 11 + 12));
        assert_eq!(reg.value("campaign.sim_instructions"), Some(15));
        assert_eq!(reg.value("campaign.traces"), Some(2));
        let h = reg.histogram("latency.consume.int_prf.sdc");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4, "latencies 0 and 4");
    }

    #[test]
    fn progress_sink_reads_registry_when_attached() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.gauge("phase.golden_ns").set(1_500_000_000);
        let metrics = MetricsSink::new(Arc::clone(&reg));
        let sink = ProgressSink::every(2).with_metrics(Arc::clone(&reg));
        sink.on_start(&header(3));
        for i in 0..3 {
            metrics.on_run(i, &run(i as u64));
            sink.on_run(i, &run(i as u64));
        }
        sink.on_end();
        let s = sink.state.lock().unwrap();
        assert_eq!(s.done, 3);
    }

    #[test]
    fn journal_sink_append_to_inserts_missing_newline() {
        let dir = std::env::temp_dir().join("difi_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nonl.jsonl");

        let sink = JournalSink::create(&path).unwrap();
        sink.on_start(&header(2));
        sink.on_run(0, &run(0));
        sink.finish().unwrap();

        // Simulate a tear that ate the trailing newline but left the record
        // whole, then truncate nothing and append the next run.
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.pop(), Some(b'\n'));
        std::fs::write(&path, &bytes).unwrap();

        let resumed = JournalSink::append_to(&path).unwrap();
        resumed.on_start(&header(2)); // must not write a second header
        resumed.on_run(1, &run(1));
        resumed.finish().unwrap();

        let back = crate::journal::load_journal(&path).unwrap();
        assert_eq!(back.header, Some(header(2)));
        assert_eq!(back.runs.len(), 2);
        assert_eq!(back.runs[0], (0, run(0)));
        assert_eq!(back.runs[1], (1, run(1)));
        std::fs::remove_file(&path).ok();
    }
}
