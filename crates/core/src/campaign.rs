//! The Injection Campaign Controller.
//!
//! "Provided the masks repository, the actual fault injection campaign can
//! begin. The *Injection Campaign Controller* reads the masks from the
//! repository and sends injection requests to the *Injector Dispatcher* …
//! The last task … is to store the results of the injection in a logs
//! repository." (§III.B, Fig. 1)
//!
//! The controller first performs the golden (fault-free) run — establishing
//! the reference output, exception count, and the cycle count that sizes the
//! paper's 3× timeout — then drains the masks repository across worker
//! threads (the paper used ~100 threads over ten workstations; here the
//! worker count adapts to the machine).
//!
//! Three controller variants share that skeleton:
//!
//! * [`run_campaign`] — every mask cold-starts a fresh simulator.
//! * [`run_campaign_pruned`] — masks the static ACE analysis proves masked
//!   are logged without dispatch.
//! * [`run_campaign_checkpointed`] — the **warm-start engine**: the golden
//!   run is paused at K interval checkpoints
//!   ([`InjectorDispatcher::golden_snapshots`]) and each injection restores
//!   the nearest checkpoint at or before its injection cycle, simulating
//!   only the remainder. Because the fault-free prefix is deterministic,
//!   the log is byte-identical to the cold-start path — which therefore
//!   stays available as a differential oracle.
//!
//! A panic escaping a dispatcher is confined to the run that raised it: the
//! run is logged as [`RunStatus::SimulatorCrash`] (the paper treats
//! simulator malfunction as a *class*, not a fatal error) and every other
//! result is kept.

use crate::dispatch::{GoldenSnapshot, InjectorDispatcher};
use crate::logs::{CampaignLog, RunLog};
use crate::masks::partition_provably_masked;
use crate::model::{EarlyStop, InjectTime, InjectionSpec, RawRunResult, RunLimits, RunStatus};
use difi_ace::AceProfile;
use difi_isa::program::Program;
use difi_uarch::fault::StructureId;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Campaign-level options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Worker threads (0 → one per available CPU).
    pub threads: usize,
    /// Enable the §III.B.2 early-stop optimizations.
    pub early_stop: bool,
    /// Cycle ceiling for the golden run.
    pub golden_max_cycles: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: 0,
            early_stop: true,
            golden_max_cycles: 200_000_000,
        }
    }
}

/// Runs the golden (fault-free) reference for `program` on `dispatcher`.
pub fn golden_run(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    max_cycles: u64,
) -> RawRunResult {
    let spec = InjectionSpec {
        id: u64::MAX,
        faults: Vec::new(),
    };
    dispatcher.run(program, &spec, &RunLimits::golden(max_cycles))
}

/// The campaign preamble shared by every controller variant: the golden
/// run, the paper's 3×-golden limits, and the resolved worker count.
fn campaign_setup(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    cfg: &CampaignConfig,
) -> (RawRunResult, RunLimits, usize) {
    let golden = golden_run(dispatcher, program, cfg.golden_max_cycles);
    assert!(
        matches!(golden.status, RunStatus::Completed { .. }),
        "golden run of {} on {} must complete, got {:?}",
        program.name,
        dispatcher.name(),
        golden.status
    );
    let mut limits = RunLimits::campaign(golden.cycles_measured());
    limits.early_stop = cfg.early_stop;
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    };
    (golden, limits, threads)
}

/// Invokes `runner` on one mask, converting a panic into a
/// [`RunStatus::SimulatorCrash`] result so one malfunctioning run cannot
/// abort the campaign and discard the completed results.
fn run_caught(
    runner: &(dyn Fn(&InjectionSpec) -> RawRunResult + Sync),
    spec: &InjectionSpec,
) -> RawRunResult {
    match catch_unwind(AssertUnwindSafe(|| runner(spec))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            RawRunResult::unexecuted(RunStatus::SimulatorCrash(format!("worker panic: {msg}")))
        }
    }
}

/// Drains `masks` through `runner`, sequentially when parallelism cannot
/// pay off (`threads <= 1` or fewer than two masks), otherwise across
/// `threads` work-stealing workers. Results stay aligned with their masks.
fn execute_masks(
    masks: &[InjectionSpec],
    runner: &(dyn Fn(&InjectionSpec) -> RawRunResult + Sync),
    threads: usize,
) -> Vec<RunLog> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    if threads <= 1 || masks.len() < 2 {
        return masks
            .iter()
            .map(|spec| RunLog {
                spec: spec.clone(),
                result: run_caught(runner, spec),
            })
            .collect();
    }

    // Work-stealing by atomic index: each worker claims the next unclaimed
    // mask; each slot is written exactly once, so the mutexes never contend.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RawRunResult>>> =
        (0..masks.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= masks.len() {
                    return;
                }
                let result = run_caught(runner, &masks[i]);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| RunLog {
            spec: masks[i].clone(),
            result: slot
                .into_inner()
                .expect("slot lock")
                .expect("every index completed"),
        })
        .collect()
}

/// Runs a full campaign: golden run, then every mask, in parallel.
///
/// # Panics
///
/// Panics if the golden run does not complete — an injector/benchmark pair
/// that cannot run fault-free cannot be studied.
pub fn run_campaign(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
) -> CampaignLog {
    let (golden, limits, threads) = campaign_setup(dispatcher, program, cfg);
    let runner = |spec: &InjectionSpec| dispatcher.run(program, spec, &limits);
    let runs = execute_masks(masks, &runner, threads);

    CampaignLog {
        injector: dispatcher.name().to_string(),
        benchmark: program.name.clone(),
        structure: structure.name().to_string(),
        seed,
        golden,
        runs,
    }
}

/// The latest golden cycle a warm start may resume from for `spec`: the
/// earliest cycle-scheduled fault. `None` forces a cold start — either the
/// mask is fault-free, or it carries an instruction-scheduled fault whose
/// firing cycle is unknown before simulation.
fn warm_start_cycle(spec: &InjectionSpec) -> Option<u64> {
    let mut earliest: Option<u64> = None;
    for f in &spec.faults {
        match f.at {
            InjectTime::Cycle(c) => earliest = Some(earliest.map_or(c, |m| m.min(c))),
            InjectTime::Instruction(_) => return None,
        }
    }
    earliest
}

/// Runs a campaign through the **checkpointed warm-start engine**.
///
/// One instrumented golden run is paused at `checkpoints` evenly spaced
/// cycles and snapshotted ([`InjectorDispatcher::golden_snapshots`]); the
/// snapshot set is then shared read-only across the worker threads, and
/// every mask restores the nearest checkpoint at or before its injection
/// cycle ([`InjectorDispatcher::run_from`]), simulating only the remainder.
/// Masks are dispatched sorted by injection cycle so neighbouring runs
/// restore the same checkpoint, then results are scattered back into mask
/// order — the log is indistinguishable from [`run_campaign`]'s.
///
/// Masks that cannot warm-start (instruction-scheduled faults, injection
/// before the first checkpoint) and dispatchers without snapshot support
/// fall back to the cold path, which is always equivalent: the fault-free
/// prefix is deterministic, so skipping it changes wall-clock only.
///
/// # Panics
///
/// Panics if the golden run does not complete (same contract as
/// [`run_campaign`]).
pub fn run_campaign_checkpointed(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
    checkpoints: usize,
) -> CampaignLog {
    let (golden, limits, threads) = campaign_setup(dispatcher, program, cfg);
    let golden_cycles = golden.cycles_measured();

    // K checkpoint cycles evenly spaced over the golden run's interior.
    let mut at_cycles: Vec<u64> = (1..=checkpoints as u64)
        .map(|k| golden_cycles * k / (checkpoints as u64 + 1))
        .filter(|&c| c > 0)
        .collect();
    at_cycles.dedup();

    let snaps: Vec<GoldenSnapshot> = if at_cycles.is_empty() {
        Vec::new()
    } else {
        dispatcher
            .golden_snapshots(program, &at_cycles, &limits)
            .unwrap_or_default()
    };

    // Serve runs in injection-cycle order for checkpoint locality, then
    // scatter results back into mask order.
    let mut order: Vec<usize> = (0..masks.len()).collect();
    order.sort_by_key(|&i| warm_start_cycle(&masks[i]).unwrap_or(u64::MAX));
    let sorted: Vec<InjectionSpec> = order.iter().map(|&i| masks[i].clone()).collect();

    let runner = |spec: &InjectionSpec| {
        let snap =
            warm_start_cycle(spec).and_then(|c| snaps.iter().take_while(|s| s.cycle <= c).last());
        match snap {
            Some(s) => dispatcher.run_from(s, program, spec, &limits),
            None => dispatcher.run(program, spec, &limits),
        }
    };
    let ran = execute_masks(&sorted, &runner, threads);

    let mut runs: Vec<Option<RunLog>> = (0..masks.len()).map(|_| None).collect();
    for (slot, log) in order.iter().zip(ran) {
        runs[*slot] = Some(log);
    }

    CampaignLog {
        injector: dispatcher.name().to_string(),
        benchmark: program.name.clone(),
        structure: structure.name().to_string(),
        seed,
        golden,
        runs: runs
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect(),
    }
}

/// A campaign run with static-ACE pre-dispatch pruning applied.
#[derive(Debug)]
pub struct PrunedCampaign {
    /// The complete log: every mask appears exactly once, pruned ones as
    /// [`EarlyStop::StaticallyPruned`] runs.
    pub log: CampaignLog,
    /// Spec ids classified Masked before dispatch (logged, not dropped).
    pub pruned_ids: Vec<u64>,
    /// Masks actually dispatched to the simulator (excluding the golden
    /// run).
    pub dispatched: usize,
}

/// Runs a campaign with ACE pruning: masks the golden-run residency
/// `profile` proves masked are logged as
/// [`EarlyStop::StaticallyPruned`] without booting a simulator; the rest
/// run normally. Verdict totals are identical to [`run_campaign`] — only
/// the dispatch count changes. Pruned runs carry *no* measurements
/// ([`RawRunResult::unexecuted`]): they never executed, so a fabricated
/// `cycles: 0` would poison cycle aggregates.
///
/// # Panics
///
/// Panics if the golden run does not complete (same contract as
/// [`run_campaign`]).
pub fn run_campaign_pruned(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
    profile: &AceProfile,
) -> PrunedCampaign {
    let (golden, limits, threads) = campaign_setup(dispatcher, program, cfg);

    let (pruned, dispatch) = partition_provably_masked(masks, profile);
    let to_run: Vec<InjectionSpec> = dispatch.iter().map(|&i| masks[i].clone()).collect();

    let runner = |spec: &InjectionSpec| dispatcher.run(program, spec, &limits);
    let ran = execute_masks(&to_run, &runner, threads);

    // Reassemble in original mask order so the log is indistinguishable in
    // shape from an unpruned campaign.
    let mut runs: Vec<Option<RunLog>> = (0..masks.len()).map(|_| None).collect();
    for (slot, log) in dispatch.iter().zip(ran) {
        runs[*slot] = Some(log);
    }
    for &i in &pruned {
        runs[i] = Some(RunLog {
            spec: masks[i].clone(),
            result: RawRunResult::unexecuted(RunStatus::EarlyStopMasked(
                EarlyStop::StaticallyPruned,
            )),
        });
    }

    PrunedCampaign {
        log: CampaignLog {
            injector: dispatcher.name().to_string(),
            benchmark: program.name.clone(),
            structure: structure.name().to_string(),
            seed,
            golden,
            runs: runs
                .into_iter()
                .map(|r| r.expect("every slot filled"))
                .collect(),
        },
        pruned_ids: pruned.iter().map(|&i| masks[i].id).collect(),
        dispatched: dispatch.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RawRunResult, RunStatus};
    use difi_isa::program::{Isa, MemoryMap};
    use difi_uarch::fault::StructureDesc;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic fake dispatcher for controller tests.
    struct FakeDispatcher {
        calls: AtomicU64,
    }

    impl FakeDispatcher {
        fn new() -> FakeDispatcher {
            FakeDispatcher {
                calls: AtomicU64::new(0),
            }
        }
    }

    impl InjectorDispatcher for FakeDispatcher {
        fn name(&self) -> &str {
            "Fake-x86"
        }

        fn isa(&self) -> Isa {
            Isa::X86e
        }

        fn structures(&self) -> Vec<StructureDesc> {
            vec![StructureDesc {
                id: StructureId::IntRegFile,
                entries: 8,
                bits: 64,
            }]
        }

        fn run(
            &self,
            _program: &Program,
            spec: &InjectionSpec,
            _limits: &RunLimits,
        ) -> RawRunResult {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let status = if spec.faults.is_empty() {
                RunStatus::Completed { exit_code: 0 }
            } else if spec.id.is_multiple_of(3) {
                RunStatus::SimulatorAssert("x".into())
            } else {
                RunStatus::Completed { exit_code: 0 }
            };
            RawRunResult {
                status,
                output: b"out".to_vec(),
                exceptions: Some(0),
                cycles: Some(100),
                instructions: Some(50),
                fault_consumed: !spec.faults.is_empty(),
            }
        }
    }

    /// Panics on every third faulty run — simulates a dispatcher bug.
    struct PanickingDispatcher {
        inner: FakeDispatcher,
    }

    impl InjectorDispatcher for PanickingDispatcher {
        fn name(&self) -> &str {
            "Panicky-x86"
        }

        fn isa(&self) -> Isa {
            Isa::X86e
        }

        fn structures(&self) -> Vec<StructureDesc> {
            self.inner.structures()
        }

        fn run(&self, program: &Program, spec: &InjectionSpec, limits: &RunLimits) -> RawRunResult {
            assert!(
                spec.faults.is_empty() || !spec.id.is_multiple_of(3),
                "internal model state corrupt (mask {})",
                spec.id
            );
            self.inner.run(program, spec, limits)
        }
    }

    fn program() -> Program {
        Program {
            isa: Isa::X86e,
            code: vec![0x01],
            data: vec![],
            entry: MemoryMap::DEFAULT.code_base,
            map: MemoryMap::DEFAULT,
            name: "fake".into(),
        }
    }

    fn masks(n: u64) -> Vec<InjectionSpec> {
        (0..n)
            .map(|i| InjectionSpec::single_transient(i, StructureId::IntRegFile, 0, 0, i))
            .collect()
    }

    #[test]
    fn campaign_runs_every_mask_in_order() {
        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            9,
            &masks(30),
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 30);
        assert_eq!(d.calls.load(Ordering::SeqCst), 31, "30 masks + golden");
        // Results stay aligned with their masks.
        for (i, run) in log.runs.iter().enumerate() {
            assert_eq!(run.spec.id, i as u64);
            let expect_assert = run.spec.id % 3 == 0;
            assert_eq!(
                matches!(run.result.status, RunStatus::SimulatorAssert(_)),
                expect_assert
            );
        }
        assert_eq!(log.injector, "Fake-x86");
        assert_eq!(log.structure, "int_prf");
        assert_eq!(log.seed, 9);
    }

    #[test]
    fn single_threaded_path_matches() {
        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            0,
            &masks(5),
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 5);
    }

    #[test]
    fn auto_parallelism_resolves_thread_count() {
        // threads == 0 must resolve to available parallelism and still run
        // every mask exactly once, aligned with its slot.
        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            3,
            &masks(17),
            &CampaignConfig {
                threads: 0,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 17);
        assert_eq!(d.calls.load(Ordering::SeqCst), 18, "17 masks + golden");
        for (i, run) in log.runs.iter().enumerate() {
            assert_eq!(run.spec.id, i as u64);
        }
    }

    #[test]
    fn short_mask_list_takes_sequential_fallback() {
        // masks.len() < 2 must run sequentially even with many threads.
        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            1,
            &masks(1),
            &CampaignConfig {
                threads: 8,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 1);
        assert_eq!(d.calls.load(Ordering::SeqCst), 2, "1 mask + golden");

        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            1,
            &masks(0),
            &CampaignConfig {
                threads: 8,
                ..Default::default()
            },
        );
        assert!(log.runs.is_empty());
        assert_eq!(d.calls.load(Ordering::SeqCst), 1, "golden only");
    }

    #[test]
    fn panicking_run_is_logged_as_crash_and_loses_nothing() {
        let d = PanickingDispatcher {
            inner: FakeDispatcher::new(),
        };
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            5,
            &masks(30),
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        );
        // Zero results lost: every mask has a slot, in order.
        assert_eq!(log.runs.len(), 30);
        for (i, run) in log.runs.iter().enumerate() {
            assert_eq!(run.spec.id, i as u64);
            if run.spec.id % 3 == 0 {
                // The panicking runs become SimulatorCrash records with the
                // panic message preserved and no fabricated measurements.
                match &run.result.status {
                    RunStatus::SimulatorCrash(m) => {
                        assert!(m.contains("worker panic"), "got {m}");
                        assert!(m.contains("internal model state corrupt"), "got {m}");
                    }
                    other => panic!("mask {i}: expected SimulatorCrash, got {other:?}"),
                }
                assert!(!run.result.is_measured());
            } else {
                assert!(matches!(
                    run.result.status,
                    RunStatus::Completed { exit_code: 0 }
                ));
            }
        }
    }

    #[test]
    fn panicking_run_is_caught_on_the_sequential_path_too() {
        let d = PanickingDispatcher {
            inner: FakeDispatcher::new(),
        };
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            5,
            &masks(4),
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 4);
        assert!(matches!(
            log.runs[0].result.status,
            RunStatus::SimulatorCrash(_)
        ));
        assert!(matches!(
            log.runs[1].result.status,
            RunStatus::Completed { .. }
        ));
    }

    #[test]
    fn checkpointed_campaign_without_snapshot_support_matches_cold() {
        // FakeDispatcher keeps the default golden_snapshots (None): the
        // checkpointed controller must fall back to cold starts and still
        // produce an identical log.
        let d = FakeDispatcher::new();
        let cfg = CampaignConfig {
            threads: 2,
            ..Default::default()
        };
        let cold = run_campaign(&d, &program(), StructureId::IntRegFile, 7, &masks(12), &cfg);
        let warm = run_campaign_checkpointed(
            &d,
            &program(),
            StructureId::IntRegFile,
            7,
            &masks(12),
            &cfg,
            4,
        );
        assert_eq!(cold, warm);
    }

    #[test]
    fn warm_start_cycle_picks_earliest_cycle_fault() {
        let spec = InjectionSpec::single_transient(0, StructureId::IntRegFile, 0, 0, 500);
        assert_eq!(warm_start_cycle(&spec), Some(500));

        let mut multi = InjectionSpec::single_transient(1, StructureId::IntRegFile, 0, 0, 900);
        multi
            .faults
            .extend(InjectionSpec::single_transient(1, StructureId::IntRegFile, 1, 1, 300).faults);
        assert_eq!(warm_start_cycle(&multi), Some(300));

        // Instruction-scheduled faults force a cold start.
        let mut inst = InjectionSpec::single_transient(2, StructureId::IntRegFile, 0, 0, 900);
        inst.faults[0].at = InjectTime::Instruction(10);
        assert_eq!(warm_start_cycle(&inst), None);

        // So does a fault-free mask.
        let empty = InjectionSpec {
            id: 3,
            faults: Vec::new(),
        };
        assert_eq!(warm_start_cycle(&empty), None);
    }

    #[test]
    fn golden_run_has_no_faults() {
        let d = FakeDispatcher::new();
        let g = golden_run(&d, &program(), 1000);
        assert!(matches!(g.status, RunStatus::Completed { .. }));
        assert!(!g.fault_consumed);
    }
}
