//! The Injection Campaign Controller.
//!
//! "Provided the masks repository, the actual fault injection campaign can
//! begin. The *Injection Campaign Controller* reads the masks from the
//! repository and sends injection requests to the *Injector Dispatcher* …
//! The last task … is to store the results of the injection in a logs
//! repository." (§III.B, Fig. 1)
//!
//! The controller first performs the golden (fault-free) run — establishing
//! the reference output, exception count, and the cycle count that sizes the
//! paper's 3× timeout — then drains the masks repository across worker
//! threads (the paper used ~100 threads over ten workstations; here the
//! worker count adapts to the machine).

use crate::dispatch::InjectorDispatcher;
use crate::logs::{CampaignLog, RunLog};
use crate::masks::partition_provably_masked;
use crate::model::{EarlyStop, InjectionSpec, RawRunResult, RunLimits, RunStatus};
use difi_ace::AceProfile;
use difi_isa::program::Program;
use difi_uarch::fault::StructureId;

/// Campaign-level options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Worker threads (0 → one per available CPU).
    pub threads: usize,
    /// Enable the §III.B.2 early-stop optimizations.
    pub early_stop: bool,
    /// Cycle ceiling for the golden run.
    pub golden_max_cycles: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: 0,
            early_stop: true,
            golden_max_cycles: 200_000_000,
        }
    }
}

/// Runs the golden (fault-free) reference for `program` on `dispatcher`.
pub fn golden_run(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    max_cycles: u64,
) -> RawRunResult {
    let spec = InjectionSpec {
        id: u64::MAX,
        faults: Vec::new(),
    };
    dispatcher.run(program, &spec, &RunLimits::golden(max_cycles))
}

/// Runs a full campaign: golden run, then every mask, in parallel.
///
/// # Panics
///
/// Panics if the golden run does not complete — an injector/benchmark pair
/// that cannot run fault-free cannot be studied.
pub fn run_campaign(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
) -> CampaignLog {
    let golden = golden_run(dispatcher, program, cfg.golden_max_cycles);
    assert!(
        matches!(golden.status, RunStatus::Completed { .. }),
        "golden run of {} on {} must complete, got {:?}",
        program.name,
        dispatcher.name(),
        golden.status
    );
    let mut limits = RunLimits::campaign(golden.cycles);
    limits.early_stop = cfg.early_stop;

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    };

    let results: Vec<RunLog> = if threads <= 1 || masks.len() < 2 {
        masks
            .iter()
            .map(|spec| RunLog {
                spec: spec.clone(),
                result: dispatcher.run(program, spec, &limits),
            })
            .collect()
    } else {
        parallel_runs(dispatcher, program, masks, &limits, threads)
    };

    CampaignLog {
        injector: dispatcher.name().to_string(),
        benchmark: program.name.clone(),
        structure: structure.name().to_string(),
        seed,
        golden,
        runs: results,
    }
}

/// A campaign run with static-ACE pre-dispatch pruning applied.
#[derive(Debug)]
pub struct PrunedCampaign {
    /// The complete log: every mask appears exactly once, pruned ones as
    /// [`EarlyStop::StaticallyPruned`] runs.
    pub log: CampaignLog,
    /// Spec ids classified Masked before dispatch (logged, not dropped).
    pub pruned_ids: Vec<u64>,
    /// Masks actually dispatched to the simulator (excluding the golden
    /// run).
    pub dispatched: usize,
}

/// Runs a campaign with ACE pruning: masks the golden-run residency
/// `profile` proves masked are logged as
/// [`EarlyStop::StaticallyPruned`] without booting a simulator; the rest
/// run normally. Verdict totals are identical to [`run_campaign`] — only
/// the dispatch count changes.
///
/// # Panics
///
/// Panics if the golden run does not complete (same contract as
/// [`run_campaign`]).
pub fn run_campaign_pruned(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
    profile: &AceProfile,
) -> PrunedCampaign {
    let golden = golden_run(dispatcher, program, cfg.golden_max_cycles);
    assert!(
        matches!(golden.status, RunStatus::Completed { .. }),
        "golden run of {} on {} must complete, got {:?}",
        program.name,
        dispatcher.name(),
        golden.status
    );
    let mut limits = RunLimits::campaign(golden.cycles);
    limits.early_stop = cfg.early_stop;

    let (pruned, dispatch) = partition_provably_masked(masks, profile);
    let to_run: Vec<InjectionSpec> = dispatch.iter().map(|&i| masks[i].clone()).collect();

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    };
    let ran: Vec<RunLog> = if threads <= 1 || to_run.len() < 2 {
        to_run
            .iter()
            .map(|spec| RunLog {
                spec: spec.clone(),
                result: dispatcher.run(program, spec, &limits),
            })
            .collect()
    } else {
        parallel_runs(dispatcher, program, &to_run, &limits, threads)
    };

    // Reassemble in original mask order so the log is indistinguishable in
    // shape from an unpruned campaign.
    let mut runs: Vec<Option<RunLog>> = (0..masks.len()).map(|_| None).collect();
    for (slot, log) in dispatch.iter().zip(ran) {
        runs[*slot] = Some(log);
    }
    for &i in &pruned {
        runs[i] = Some(RunLog {
            spec: masks[i].clone(),
            result: RawRunResult {
                status: RunStatus::EarlyStopMasked(EarlyStop::StaticallyPruned),
                output: Vec::new(),
                exceptions: 0,
                cycles: 0,
                instructions: 0,
                fault_consumed: false,
            },
        });
    }

    PrunedCampaign {
        log: CampaignLog {
            injector: dispatcher.name().to_string(),
            benchmark: program.name.clone(),
            structure: structure.name().to_string(),
            seed,
            golden,
            runs: runs
                .into_iter()
                .map(|r| r.expect("every slot filled"))
                .collect(),
        },
        pruned_ids: pruned.iter().map(|&i| masks[i].id).collect(),
        dispatched: dispatch.len(),
    }
}

fn parallel_runs(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    masks: &[InjectionSpec],
    limits: &RunLimits,
    threads: usize,
) -> Vec<RunLog> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    // Work-stealing by atomic index: each worker claims the next unclaimed
    // mask; each slot is written exactly once, so the mutexes never contend.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RawRunResult>>> =
        (0..masks.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= masks.len() {
                    return;
                }
                let result = dispatcher.run(program, &masks[i], limits);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| RunLog {
            spec: masks[i].clone(),
            result: slot
                .into_inner()
                .expect("slot lock")
                .expect("every index completed"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RawRunResult, RunStatus};
    use difi_isa::program::{Isa, MemoryMap};
    use difi_uarch::fault::StructureDesc;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic fake dispatcher for controller tests.
    struct FakeDispatcher {
        calls: AtomicU64,
    }

    impl InjectorDispatcher for FakeDispatcher {
        fn name(&self) -> &str {
            "Fake-x86"
        }

        fn isa(&self) -> Isa {
            Isa::X86e
        }

        fn structures(&self) -> Vec<StructureDesc> {
            vec![StructureDesc {
                id: StructureId::IntRegFile,
                entries: 8,
                bits: 64,
            }]
        }

        fn run(
            &self,
            _program: &Program,
            spec: &InjectionSpec,
            _limits: &RunLimits,
        ) -> RawRunResult {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let status = if spec.faults.is_empty() {
                RunStatus::Completed { exit_code: 0 }
            } else if spec.id.is_multiple_of(3) {
                RunStatus::SimulatorAssert("x".into())
            } else {
                RunStatus::Completed { exit_code: 0 }
            };
            RawRunResult {
                status,
                output: b"out".to_vec(),
                exceptions: 0,
                cycles: 100,
                instructions: 50,
                fault_consumed: !spec.faults.is_empty(),
            }
        }
    }

    fn program() -> Program {
        Program {
            isa: Isa::X86e,
            code: vec![0x01],
            data: vec![],
            entry: MemoryMap::DEFAULT.code_base,
            map: MemoryMap::DEFAULT,
            name: "fake".into(),
        }
    }

    fn masks(n: u64) -> Vec<InjectionSpec> {
        (0..n)
            .map(|i| InjectionSpec::single_transient(i, StructureId::IntRegFile, 0, 0, i))
            .collect()
    }

    #[test]
    fn campaign_runs_every_mask_in_order() {
        let d = FakeDispatcher {
            calls: AtomicU64::new(0),
        };
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            9,
            &masks(30),
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 30);
        assert_eq!(d.calls.load(Ordering::SeqCst), 31, "30 masks + golden");
        // Results stay aligned with their masks.
        for (i, run) in log.runs.iter().enumerate() {
            assert_eq!(run.spec.id, i as u64);
            let expect_assert = run.spec.id % 3 == 0;
            assert_eq!(
                matches!(run.result.status, RunStatus::SimulatorAssert(_)),
                expect_assert
            );
        }
        assert_eq!(log.injector, "Fake-x86");
        assert_eq!(log.structure, "int_prf");
        assert_eq!(log.seed, 9);
    }

    #[test]
    fn single_threaded_path_matches() {
        let d = FakeDispatcher {
            calls: AtomicU64::new(0),
        };
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            0,
            &masks(5),
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 5);
    }

    #[test]
    fn golden_run_has_no_faults() {
        let d = FakeDispatcher {
            calls: AtomicU64::new(0),
        };
        let g = golden_run(&d, &program(), 1000);
        assert!(matches!(g.status, RunStatus::Completed { .. }));
        assert!(!g.fault_consumed);
    }
}
