//! The Injection Campaign Controller.
//!
//! "Provided the masks repository, the actual fault injection campaign can
//! begin. The *Injection Campaign Controller* reads the masks from the
//! repository and sends injection requests to the *Injector Dispatcher* …
//! The last task … is to store the results of the injection in a logs
//! repository." (§III.B, Fig. 1)
//!
//! The controller first performs the golden (fault-free) run — establishing
//! the reference output, exception count, and the cycle count that sizes the
//! paper's 3× timeout — then drains the masks repository across worker
//! threads (the paper used ~100 threads over ten workstations; here the
//! worker count adapts to the machine).

use crate::dispatch::InjectorDispatcher;
use crate::logs::{CampaignLog, RunLog};
use crate::model::{InjectionSpec, RawRunResult, RunLimits, RunStatus};
use difi_isa::program::Program;
use difi_uarch::fault::StructureId;

/// Campaign-level options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Worker threads (0 → one per available CPU).
    pub threads: usize,
    /// Enable the §III.B.2 early-stop optimizations.
    pub early_stop: bool,
    /// Cycle ceiling for the golden run.
    pub golden_max_cycles: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: 0,
            early_stop: true,
            golden_max_cycles: 200_000_000,
        }
    }
}

/// Runs the golden (fault-free) reference for `program` on `dispatcher`.
pub fn golden_run(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    max_cycles: u64,
) -> RawRunResult {
    let spec = InjectionSpec {
        id: u64::MAX,
        faults: Vec::new(),
    };
    dispatcher.run(program, &spec, &RunLimits::golden(max_cycles))
}

/// Runs a full campaign: golden run, then every mask, in parallel.
///
/// # Panics
///
/// Panics if the golden run does not complete — an injector/benchmark pair
/// that cannot run fault-free cannot be studied.
pub fn run_campaign(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
) -> CampaignLog {
    let golden = golden_run(dispatcher, program, cfg.golden_max_cycles);
    assert!(
        matches!(golden.status, RunStatus::Completed { .. }),
        "golden run of {} on {} must complete, got {:?}",
        program.name,
        dispatcher.name(),
        golden.status
    );
    let mut limits = RunLimits::campaign(golden.cycles);
    limits.early_stop = cfg.early_stop;

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    };

    let results: Vec<RunLog> = if threads <= 1 || masks.len() < 2 {
        masks
            .iter()
            .map(|spec| RunLog {
                spec: spec.clone(),
                result: dispatcher.run(program, spec, &limits),
            })
            .collect()
    } else {
        parallel_runs(dispatcher, program, masks, &limits, threads)
    };

    CampaignLog {
        injector: dispatcher.name().to_string(),
        benchmark: program.name.clone(),
        structure: structure.name().to_string(),
        seed,
        golden,
        runs: results,
    }
}

fn parallel_runs(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    masks: &[InjectionSpec],
    limits: &RunLimits,
    threads: usize,
) -> Vec<RunLog> {
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<usize>();
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, RawRunResult)>();
    for i in 0..masks.len() {
        work_tx.send(i).expect("queue open");
    }
    drop(work_tx);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                while let Ok(i) = work_rx.recv() {
                    let result = dispatcher.run(program, &masks[i], limits);
                    if done_tx.send((i, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(done_tx);
        let mut slots: Vec<Option<RawRunResult>> = vec![None; masks.len()];
        while let Ok((i, r)) = done_rx.recv() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| RunLog {
                spec: masks[i].clone(),
                result: r.expect("every index completed"),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RawRunResult, RunStatus};
    use difi_isa::program::{Isa, MemoryMap};
    use difi_uarch::fault::StructureDesc;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic fake dispatcher for controller tests.
    struct FakeDispatcher {
        calls: AtomicU64,
    }

    impl InjectorDispatcher for FakeDispatcher {
        fn name(&self) -> &str {
            "Fake-x86"
        }

        fn isa(&self) -> Isa {
            Isa::X86e
        }

        fn structures(&self) -> Vec<StructureDesc> {
            vec![StructureDesc {
                id: StructureId::IntRegFile,
                entries: 8,
                bits: 64,
            }]
        }

        fn run(
            &self,
            _program: &Program,
            spec: &InjectionSpec,
            _limits: &RunLimits,
        ) -> RawRunResult {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let status = if spec.faults.is_empty() {
                RunStatus::Completed { exit_code: 0 }
            } else if spec.id % 3 == 0 {
                RunStatus::SimulatorAssert("x".into())
            } else {
                RunStatus::Completed { exit_code: 0 }
            };
            RawRunResult {
                status,
                output: b"out".to_vec(),
                exceptions: 0,
                cycles: 100,
                instructions: 50,
                fault_consumed: !spec.faults.is_empty(),
            }
        }
    }

    fn program() -> Program {
        Program {
            isa: Isa::X86e,
            code: vec![0x01],
            data: vec![],
            entry: MemoryMap::DEFAULT.code_base,
            map: MemoryMap::DEFAULT,
            name: "fake".into(),
        }
    }

    fn masks(n: u64) -> Vec<InjectionSpec> {
        (0..n)
            .map(|i| InjectionSpec::single_transient(i, StructureId::IntRegFile, 0, 0, i))
            .collect()
    }

    #[test]
    fn campaign_runs_every_mask_in_order() {
        let d = FakeDispatcher {
            calls: AtomicU64::new(0),
        };
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            9,
            &masks(30),
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 30);
        assert_eq!(d.calls.load(Ordering::SeqCst), 31, "30 masks + golden");
        // Results stay aligned with their masks.
        for (i, run) in log.runs.iter().enumerate() {
            assert_eq!(run.spec.id, i as u64);
            let expect_assert = run.spec.id % 3 == 0;
            assert_eq!(
                matches!(run.result.status, RunStatus::SimulatorAssert(_)),
                expect_assert
            );
        }
        assert_eq!(log.injector, "Fake-x86");
        assert_eq!(log.structure, "int_prf");
        assert_eq!(log.seed, 9);
    }

    #[test]
    fn single_threaded_path_matches() {
        let d = FakeDispatcher {
            calls: AtomicU64::new(0),
        };
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            0,
            &masks(5),
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 5);
    }

    #[test]
    fn golden_run_has_no_faults() {
        let d = FakeDispatcher {
            calls: AtomicU64::new(0),
        };
        let g = golden_run(&d, &program(), 1000);
        assert!(matches!(g.status, RunStatus::Completed { .. }));
        assert!(!g.fault_consumed);
    }
}
