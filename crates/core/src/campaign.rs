//! The Injection Campaign Controller.
//!
//! "Provided the masks repository, the actual fault injection campaign can
//! begin. The *Injection Campaign Controller* reads the masks from the
//! repository and sends injection requests to the *Injector Dispatcher* …
//! The last task … is to store the results of the injection in a logs
//! repository." (§III.B, Fig. 1)
//!
//! One execution core serves every campaign shape: [`CampaignRunner`] owns
//! the golden (fault-free) reference run, the paper's 3×-golden timeout,
//! the worker pool, and per-run panic isolation exactly once, and is
//! parameterized along two orthogonal axes:
//!
//! * **[`Strategy`]** — *how* each mask executes: [`Strategy::Cold`] boots
//!   a fresh simulator per run; [`Strategy::Checkpointed`] is the
//!   warm-start engine (golden-run snapshots shared across workers,
//!   byte-identical to cold by the PR-2 equivalence oracle);
//!   [`Strategy::Pruned`] logs statically-proven-masked runs without
//!   dispatch; [`Strategy::Collapsed`] partitions the mask space into
//!   provably-equivalent classes (`difi_ace::equivalence`), simulates one
//!   representative per class, and replicates its result to the members —
//!   every run stamped with auditable [`ClassProvenance`].
//! * **[`RunSink`]s** — *where* completed runs stream: workers push each
//!   [`RunLog`] to every sink the moment it finishes, so campaigns persist
//!   incrementally ([`crate::sink::JournalSink`]), report progress live
//!   ([`crate::sink::ProgressSink`]), and collect in memory
//!   ([`crate::sink::MemorySink`]) for the final [`CampaignLog`].
//!
//! Journaled campaigns are **restartable**: [`CampaignRunner::resume`]
//! reloads a journal (tolerating the torn tail line a crash leaves), skips
//! every completed mask, dispatches only the remainder, and returns a
//! [`CampaignLog`] byte-identical to an uninterrupted run.
//!
//! The classic entry points [`run_campaign`], [`run_campaign_checkpointed`]
//! and [`run_campaign_pruned`] remain as thin wrappers over the runner.
//!
//! A panic escaping a dispatcher is confined to the run that raised it: the
//! run is logged as [`RunStatus::SimulatorCrash`] (the paper treats
//! simulator malfunction as a *class*, not a fatal error) and every other
//! result is kept.

use crate::classify::Classifier;
use crate::dispatch::{GoldenSnapshot, InjectorDispatcher};
use crate::journal::{load_journal, truncate_to_valid, CampaignHeader};
use crate::logs::{CampaignLog, RunLog};
use crate::masks::{partition_equivalence, partition_provably_masked, MaskPartition};
use crate::model::{
    ClassProvenance, EarlyStop, InjectTime, InjectionSpec, ProofKind, RawRunResult, RunLimits,
    RunStatus,
};
use crate::sink::{JournalSink, MemorySink, MetricsSink, RunSink};
use difi_ace::AceProfile;
use difi_isa::program::Program;
use difi_obs::metrics::MetricsRegistry;
use difi_obs::trace::{FaultTrace, TraceEvent, TraceEventKind};
use difi_uarch::fault::StructureId;
use difi_util::{Error, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Campaign-level options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Worker threads (0 → one per available CPU).
    pub threads: usize,
    /// Enable the §III.B.2 early-stop optimizations.
    pub early_stop: bool,
    /// Cycle ceiling for the golden run.
    pub golden_max_cycles: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: 0,
            early_stop: true,
            golden_max_cycles: 200_000_000,
        }
    }
}

/// How the runner executes each dispatched mask.
#[derive(Debug, Clone, Copy)]
pub enum Strategy<'a> {
    /// Every mask cold-starts a fresh simulator.
    Cold,
    /// The warm-start engine: the golden run is paused at K interval
    /// checkpoints ([`InjectorDispatcher::golden_snapshots`]) and each
    /// injection restores the nearest checkpoint at or before its injection
    /// cycle, simulating only the remainder. Byte-identical to
    /// [`Strategy::Cold`] — the fault-free prefix is deterministic.
    Checkpointed {
        /// Number of evenly spaced golden-run checkpoints.
        checkpoints: usize,
    },
    /// Masks the static ACE analysis proves masked are logged as
    /// [`EarlyStop::StaticallyPruned`] without dispatch; the rest run cold.
    Pruned {
        /// Golden-run residency profile to prune against.
        profile: &'a AceProfile,
    },
    /// Fault-equivalence collapsing
    /// ([`partition_equivalence`]):
    /// dead classes resolve without dispatch (like [`Strategy::Pruned`]);
    /// each latch class dispatches only its representative, whose
    /// classification-relevant result fields replicate to the members;
    /// singletons run normally. Every run — representative, member, or dead
    /// — carries its [`ClassProvenance`] in the log and journal, so resume
    /// and audit work unchanged. Per-mask classifications are identical to
    /// a full campaign (the `tests/collapse_equivalence.rs` oracle).
    Collapsed {
        /// Golden-run residency profile to partition against.
        profile: &'a AceProfile,
        /// Golden-run checkpoints for warm-starting the dispatched
        /// representatives (0 = cold representatives), composing the
        /// collapse with the PR 2 warm-start engine.
        checkpoints: usize,
    },
}

/// Runs the golden (fault-free) reference for `program` on `dispatcher`.
pub fn golden_run(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    max_cycles: u64,
) -> RawRunResult {
    let spec = InjectionSpec {
        id: u64::MAX,
        faults: Vec::new(),
    };
    dispatcher.run(program, &spec, &RunLimits::golden(max_cycles))
}

/// The campaign preamble shared by every strategy: the golden run, the
/// paper's 3×-golden limits, and the resolved worker count. With
/// `record_signature` the golden run also records the per-commit
/// architectural signature the tracer's divergence detection compares
/// against — one run serves both purposes, so tracing never pays for a
/// second golden execution.
fn campaign_setup(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    cfg: &CampaignConfig,
    record_signature: bool,
) -> (RawRunResult, Option<Arc<Vec<u64>>>, RunLimits, usize) {
    let (golden, golden_sig) = if record_signature {
        let spec = InjectionSpec {
            id: u64::MAX,
            faults: Vec::new(),
        };
        dispatcher.golden_run_recording(program, &spec, &RunLimits::golden(cfg.golden_max_cycles))
    } else {
        (golden_run(dispatcher, program, cfg.golden_max_cycles), None)
    };
    assert!(
        matches!(golden.status, RunStatus::Completed { .. }),
        "golden run of {} on {} must complete, got {:?}",
        program.name,
        dispatcher.name(),
        golden.status
    );
    let mut limits = RunLimits::campaign(golden.cycles_measured());
    limits.early_stop = cfg.early_stop;
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    };
    (golden, golden_sig, limits, threads)
}

/// Invokes `runner` on one mask, converting a panic into a
/// [`RunStatus::SimulatorCrash`] result so one malfunctioning run cannot
/// abort the campaign and discard the completed results.
fn run_caught(
    runner: &(dyn Fn(&InjectionSpec) -> (RawRunResult, Option<FaultTrace>) + Sync),
    spec: &InjectionSpec,
) -> (RawRunResult, Option<FaultTrace>) {
    match catch_unwind(AssertUnwindSafe(|| runner(spec))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            (
                RawRunResult::unexecuted(RunStatus::SimulatorCrash(format!("worker panic: {msg}"))),
                None,
            )
        }
    }
}

/// The result a collapsed-class member inherits from its representative.
///
/// Classification inputs — status, output bytes, exception count, fault
/// consumption — are copied verbatim: the equivalence proof says the
/// member's own run would produce exactly these. Per-run measurements
/// (cycles, instructions) stay `None`: the member never executed, and
/// fabricated timings would poison cycle aggregates (the same rule
/// [`RawRunResult::unexecuted`] applies to pruned runs).
fn replicate_result(rep: &RawRunResult) -> RawRunResult {
    RawRunResult {
        status: rep.status.clone(),
        output: rep.output.clone(),
        exceptions: rep.exceptions,
        cycles: None,
        instructions: None,
        fault_consumed: rep.fault_consumed,
    }
}

/// The latest golden cycle a warm start may resume from for `spec`: the
/// earliest cycle-scheduled fault. `None` forces a cold start — either the
/// mask is fault-free, or it carries an instruction-scheduled fault whose
/// firing cycle is unknown before simulation.
fn warm_start_cycle(spec: &InjectionSpec) -> Option<u64> {
    let mut earliest: Option<u64> = None;
    for f in &spec.faults {
        match f.at {
            InjectTime::Cycle(c) => earliest = Some(earliest.map_or(c, |m| m.min(c))),
            InjectTime::Instruction(_) => return None,
        }
    }
    earliest
}

/// The unified campaign execution core.
///
/// Owns one campaign cell — `(dispatcher, program, structure, seed)` plus a
/// [`CampaignConfig`] — and executes any masks repository through any
/// [`Strategy`], streaming completed runs to any set of [`RunSink`]s. See
/// the module docs for the architecture; see
/// `tests/resume_equivalence.rs` for the crash-resume oracle.
pub struct CampaignRunner<'a> {
    dispatcher: &'a dyn InjectorDispatcher,
    program: &'a Program,
    structure: StructureId,
    seed: u64,
    cfg: CampaignConfig,
    strategy: Strategy<'a>,
    trace: bool,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<'a> CampaignRunner<'a> {
    /// A runner over one campaign cell, defaulting to [`Strategy::Cold`].
    pub fn new(
        dispatcher: &'a dyn InjectorDispatcher,
        program: &'a Program,
        structure: StructureId,
        seed: u64,
        cfg: &CampaignConfig,
    ) -> CampaignRunner<'a> {
        CampaignRunner {
            dispatcher,
            program,
            structure,
            seed,
            cfg: *cfg,
            strategy: Strategy::Cold,
            trace: false,
            metrics: None,
        }
    }

    /// Selects the execution strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy<'a>) -> CampaignRunner<'a> {
        self.strategy = strategy;
        self
    }

    /// Enables fault-lifecycle tracing: the golden run records the
    /// per-commit architectural signature, every dispatched run executes
    /// through the traced dispatcher paths, and each resulting
    /// [`FaultTrace`] — with the final [`TraceEventKind::Classified`] event
    /// appended — streams to every sink's [`RunSink::on_trace`]. Tracing is
    /// observation-only: run results are byte-identical to an untraced
    /// campaign.
    #[must_use]
    pub fn with_tracing(mut self, trace: bool) -> CampaignRunner<'a> {
        self.trace = trace;
        self
    }

    /// Attaches a metrics registry. The runner prepends an internal
    /// [`MetricsSink`] over `registry` ahead of user sinks (so later sinks
    /// read fresh counters), stamps the per-phase wall-clock gauges
    /// (`phase.golden_ns`, `phase.snapshots_ns`, `phase.injection_ns`,
    /// `phase.classify_ns`), and tallies final `campaign.class.*` counters.
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> CampaignRunner<'a> {
        self.metrics = Some(registry);
        self
    }

    /// Runs the full campaign in memory (no extra sinks).
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not complete — an injector/benchmark
    /// pair that cannot run fault-free cannot be studied.
    pub fn run(&self, masks: &[InjectionSpec]) -> CampaignLog {
        self.run_with_sinks(masks, &[])
    }

    /// Runs the full campaign, streaming each completed run to `sinks`.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not complete (see
    /// [`CampaignRunner::run`]).
    pub fn run_with_sinks(&self, masks: &[InjectionSpec], sinks: &[&dyn RunSink]) -> CampaignLog {
        self.execute(masks, Vec::new(), sinks)
    }

    /// Runs the full campaign with an append-only JSONL journal at `path`
    /// (plus any extra `sinks`). The journal makes the campaign
    /// crash-resumable via [`CampaignRunner::resume`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the journal cannot be created or written.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not complete (see
    /// [`CampaignRunner::run`]).
    pub fn run_journaled(
        &self,
        masks: &[InjectionSpec],
        path: &Path,
        sinks: &[&dyn RunSink],
    ) -> Result<CampaignLog> {
        let journal = JournalSink::create(path)?;
        let mut all: Vec<&dyn RunSink> = sinks.to_vec();
        all.push(&journal);
        let log = self.execute(masks, Vec::new(), &all);
        journal.finish()?;
        Ok(log)
    }

    /// Resumes an interrupted journaled campaign: reloads the journal at
    /// `path`, skips every mask it already records, dispatches only the
    /// remainder (appending to the same journal), and returns a
    /// [`CampaignLog`] **byte-identical** to an uninterrupted
    /// [`CampaignRunner::run_journaled`] of the same cell.
    ///
    /// A torn tail line (crash mid-append) is dropped with a warning and
    /// its run re-dispatched. An empty or headerless journal resumes from
    /// scratch. The journal header must match this runner's campaign cell
    /// and masks repository — resuming against the wrong masks is an error,
    /// not a silent divergence; the recomputed golden run must also match
    /// the journaled one (a differing simulator configuration would
    /// invalidate every reloaded result).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for mid-journal corruption or a journal
    /// that does not match this campaign, [`Error::Io`] on file failure.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not complete (see
    /// [`CampaignRunner::run`]).
    pub fn resume(
        &self,
        masks: &[InjectionSpec],
        path: &Path,
        sinks: &[&dyn RunSink],
    ) -> Result<CampaignLog> {
        let contents = load_journal(path)?;
        let preloaded = match &contents.header {
            None => {
                // Nothing usable (empty file or torn header): start over.
                truncate_to_valid(path, 0)?;
                Vec::new()
            }
            Some(h) => {
                self.check_header(h, masks)?;
                let mut preloaded: Vec<(usize, RunLog)> = Vec::with_capacity(contents.runs.len());
                for (i, log) in contents.runs {
                    if i >= masks.len() {
                        return Err(Error::Parse(format!(
                            "journal records run {i} but the campaign has {} masks",
                            masks.len()
                        )));
                    }
                    if log.spec != masks[i] {
                        return Err(Error::Parse(format!(
                            "journal run {i} was produced by a different mask (id {}) than \
                             the repository's (id {})",
                            log.spec.id, masks[i].id
                        )));
                    }
                    preloaded.push((i, log));
                }
                if contents.dropped_tail.is_some() {
                    truncate_to_valid(path, contents.valid_len)?;
                }
                preloaded
            }
        };
        let expected_golden = contents.header.map(|h| h.golden);

        let journal = JournalSink::append_to(path)?;
        let mut all: Vec<&dyn RunSink> = sinks.to_vec();
        all.push(&journal);
        let log = self.execute(masks, preloaded, &all);
        journal.finish()?;

        if let Some(g) = expected_golden {
            if g != log.golden {
                return Err(Error::Config(format!(
                    "journal golden run differs from the recomputed one for {}/{} — the \
                     simulator configuration changed between sessions, so the journaled \
                     results are not comparable",
                    log.injector, log.benchmark
                )));
            }
        }
        Ok(log)
    }

    /// Validates a reloaded journal header against this runner's cell.
    fn check_header(&self, h: &CampaignHeader, masks: &[InjectionSpec]) -> Result<()> {
        let expect = |field: &str, got: &str, want: &str| -> Result<()> {
            if got == want {
                Ok(())
            } else {
                Err(Error::Parse(format!(
                    "journal {field} is '{got}' but this campaign is '{want}'"
                )))
            }
        };
        expect("injector", &h.injector, self.dispatcher.name())?;
        expect("benchmark", &h.benchmark, &self.program.name)?;
        expect("structure", &h.structure, self.structure.name())?;
        if h.seed != self.seed {
            return Err(Error::Parse(format!(
                "journal seed is {} but this campaign uses {}",
                h.seed, self.seed
            )));
        }
        if h.masks != masks.len() as u64 {
            return Err(Error::Parse(format!(
                "journal has {} masks but the repository has {}",
                h.masks,
                masks.len()
            )));
        }
        Ok(())
    }

    /// The single execution core behind every entry point: golden setup,
    /// strategy preprocessing, the worker pool, and sink delivery.
    fn execute(
        &self,
        masks: &[InjectionSpec],
        preloaded: Vec<(usize, RunLog)>,
        sinks: &[&dyn RunSink],
    ) -> CampaignLog {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let phase = Instant::now();
        let (golden, golden_sig, limits, threads) =
            campaign_setup(self.dispatcher, self.program, &self.cfg, self.trace);
        if let Some(m) = &self.metrics {
            m.gauge("phase.golden_ns")
                .set(phase.elapsed().as_nanos() as u64);
        }
        let header = CampaignHeader {
            injector: self.dispatcher.name().to_string(),
            benchmark: self.program.name.clone(),
            structure: self.structure.name().to_string(),
            seed: self.seed,
            golden: golden.clone(),
            masks: masks.len() as u64,
        };

        // With a registry configured, an internal MetricsSink runs ahead of
        // every user sink so that sinks reading the registry (e.g. a
        // ProgressSink with metrics attached) always see the counters
        // already updated for the run being delivered.
        let metrics_sink = self
            .metrics
            .as_ref()
            .map(|m| MetricsSink::new(Arc::clone(m)));
        let mut all_sinks: Vec<&dyn RunSink> = Vec::with_capacity(sinks.len() + 1);
        if let Some(ms) = &metrics_sink {
            all_sinks.push(ms);
        }
        all_sinks.extend_from_slice(sinks);
        let sinks: &[&dyn RunSink] = &all_sinks;

        // The in-memory collector assembles the final ordered log; extra
        // sinks observe. Journal-preloaded runs feed the collector only —
        // they are already persisted and were already observed in the
        // session that produced them.
        let collector = MemorySink::new();
        collector.on_start(&header);
        for s in sinks {
            s.on_start(&header);
        }

        let collapsed = matches!(self.strategy, Strategy::Collapsed { .. });
        let mut done = vec![false; masks.len()];
        let mut prior: Vec<Option<RawRunResult>> = vec![None; masks.len()];
        for (i, log) in preloaded {
            if collapsed {
                // Collapsed resume may need a preloaded representative's
                // result to replicate to its not-yet-journaled members.
                prior[i] = Some(log.result.clone());
            }
            collector.on_run(i, &log);
            done[i] = true;
        }

        // Strategy preprocessing: statically pruned masks resolve without
        // dispatch (and stream to sinks like any completed run).
        if let Strategy::Pruned { profile } = self.strategy {
            let (pruned, _) = partition_provably_masked(masks, profile);
            for i in pruned {
                if done[i] {
                    continue;
                }
                let log = RunLog {
                    spec: masks[i].clone(),
                    result: RawRunResult::unexecuted(RunStatus::EarlyStopMasked(
                        EarlyStop::StaticallyPruned,
                    )),
                    provenance: None,
                };
                collector.on_run(i, &log);
                for s in sinks {
                    s.on_run(i, &log);
                }
                done[i] = true;
            }
        }

        // Strategy preprocessing: fault-equivalence collapsing. Dead
        // classes resolve statically like pruning; every run carries its
        // class provenance. A latch/singleton class with a journaled member
        // replicates from it without dispatch; the rest become
        // (representative, members-to-replicate) jobs, so the journal
        // always records a class's evidence before its dependents — a torn
        // tail can orphan at most the line being written.
        let partition: Option<MaskPartition> = match self.strategy {
            Strategy::Collapsed { profile, .. } => Some(partition_equivalence(masks, profile)),
            _ => None,
        };
        let provenance: Vec<Option<ClassProvenance>> = match &partition {
            Some(part) => part.provenance(masks).into_iter().map(Some).collect(),
            None => vec![None; masks.len()],
        };
        let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
        if let Some(part) = &partition {
            let mut dead_masks = 0u64;
            let mut replicated = 0u64;
            for class in &part.classes {
                match class.proof {
                    ProofKind::DeadInterval => {
                        for &i in &class.members {
                            if done[i] {
                                continue;
                            }
                            let log = RunLog {
                                spec: masks[i].clone(),
                                result: RawRunResult::unexecuted(RunStatus::EarlyStopMasked(
                                    EarlyStop::StaticallyPruned,
                                )),
                                provenance: provenance[i],
                            };
                            collector.on_run(i, &log);
                            for s in sinks {
                                s.on_run(i, &log);
                            }
                            done[i] = true;
                            dead_masks += 1;
                        }
                    }
                    ProofKind::LatchInterval | ProofKind::Singleton => {
                        let todo_members: Vec<usize> = class
                            .members
                            .iter()
                            .copied()
                            .filter(|&i| !done[i])
                            .collect();
                        if todo_members.is_empty() {
                            continue;
                        }
                        if let Some(&src) = class.members.iter().find(|&&i| done[i]) {
                            // The journal already holds this class's result
                            // (the representative, or a member replicated
                            // from it — either carries the same
                            // classification fields).
                            let src_result = prior[src].clone().expect("preloaded result recorded");
                            for &i in &todo_members {
                                let log = RunLog {
                                    spec: masks[i].clone(),
                                    result: replicate_result(&src_result),
                                    provenance: provenance[i],
                                };
                                collector.on_run(i, &log);
                                for s in sinks {
                                    s.on_run(i, &log);
                                }
                                done[i] = true;
                                replicated += 1;
                            }
                        } else {
                            jobs.push((todo_members[0], todo_members[1..].to_vec()));
                        }
                    }
                }
            }
            if let Some(m) = &self.metrics {
                m.counter("campaign.collapse.masks").add(masks.len() as u64);
                m.counter("campaign.collapse.classes")
                    .add(part.class_count() as u64);
                m.counter("campaign.collapse.classes.dead")
                    .add(part.classes_with(ProofKind::DeadInterval) as u64);
                m.counter("campaign.collapse.classes.latch")
                    .add(part.classes_with(ProofKind::LatchInterval) as u64);
                m.counter("campaign.collapse.classes.singleton")
                    .add(part.classes_with(ProofKind::Singleton) as u64);
                m.counter("campaign.collapse.dead_masks").add(dead_masks);
                m.counter("campaign.collapse.replicated")
                    .add(replicated + jobs.iter().map(|(_, ms)| ms.len() as u64).sum::<u64>());
                m.counter("campaign.collapse.dispatched")
                    .add(jobs.len() as u64);
                m.gauge("campaign.collapse.ratio_permille")
                    .set_ratio_permille(part.mask_count() as u64, part.class_count() as u64);
            }
        }

        // Strategy preprocessing: the warm-start engine captures K evenly
        // spaced checkpoints over the golden run's interior and serves runs
        // in injection-cycle order so neighbouring runs restore the same
        // checkpoint.
        let phase = Instant::now();
        let snap_checkpoints = match self.strategy {
            Strategy::Checkpointed { checkpoints } => checkpoints,
            Strategy::Collapsed { checkpoints, .. } => checkpoints,
            _ => 0,
        };
        let snaps: Vec<GoldenSnapshot> = if snap_checkpoints > 0 {
            let golden_cycles = golden.cycles_measured();
            let mut at_cycles: Vec<u64> = (1..=snap_checkpoints as u64)
                .map(|k| golden_cycles * k / (snap_checkpoints as u64 + 1))
                .filter(|&c| c > 0)
                .collect();
            at_cycles.dedup();
            if at_cycles.is_empty() {
                Vec::new()
            } else {
                self.dispatcher
                    .golden_snapshots(self.program, &at_cycles, &limits)
                    .unwrap_or_default()
            }
        } else {
            Vec::new()
        };
        if let Some(m) = &self.metrics {
            m.gauge("phase.snapshots_ns")
                .set(phase.elapsed().as_nanos() as u64);
        }

        // Dispatch units: (mask index, class members to replicate to).
        // Non-collapsed strategies dispatch every remaining mask on its own.
        if partition.is_none() {
            jobs = (0..masks.len())
                .filter(|&i| !done[i])
                .map(|i| (i, Vec::new()))
                .collect();
        }
        let sort_for_warm_start = match self.strategy {
            Strategy::Checkpointed { .. } => true,
            Strategy::Collapsed { checkpoints, .. } => checkpoints > 0,
            _ => false,
        };
        if sort_for_warm_start {
            jobs.sort_by_key(|&(i, _)| warm_start_cycle(&masks[i]).unwrap_or(u64::MAX));
        }
        let jobs = jobs;

        // One runner closure serves every strategy: with no snapshots
        // captured (cold / pruned / unsupported dispatcher) every mask
        // falls back to the always-correct cold path. With tracing on, the
        // traced dispatcher paths carry the event stream alongside the
        // (byte-identical) result.
        let dispatcher = self.dispatcher;
        let program = self.program;
        let trace_on = self.trace;
        let runner = move |spec: &InjectionSpec| -> (RawRunResult, Option<FaultTrace>) {
            let snap = warm_start_cycle(spec)
                .and_then(|c| snaps.iter().take_while(|s| s.cycle <= c).last());
            if trace_on {
                let sig = golden_sig.as_ref();
                match snap {
                    Some(s) => dispatcher.run_from_traced(s, program, spec, &limits, sig),
                    None => dispatcher.run_traced(program, spec, &limits, sig),
                }
            } else {
                match snap {
                    Some(s) => (dispatcher.run_from(s, program, spec, &limits), None),
                    None => (dispatcher.run(program, spec, &limits), None),
                }
            }
        };

        // Workers deliver each completed run straight to the sinks — no
        // per-slot buffering; the collector's single lock is the only
        // rendezvous, and the per-run simulation dwarfs it. Each trace gets
        // the run's final verdict appended as the Classified event before
        // delivery, closing the fault lifecycle.
        let classifier = self.trace.then(|| Classifier::from_golden(&golden));
        let deliver = |i: usize, log: &RunLog, trace: Option<FaultTrace>| {
            collector.on_run(i, log);
            for s in sinks {
                s.on_run(i, log);
            }
            if let Some(mut t) = trace {
                if let Some(c) = &classifier {
                    let cycle = log
                        .result
                        .cycles
                        .unwrap_or_else(|| t.events.last().map_or(0, |e| e.cycle));
                    t.events.push(TraceEvent {
                        cycle,
                        kind: TraceEventKind::Classified,
                        detail: c.classify(&log.result).name().to_string(),
                    });
                }
                for s in sinks {
                    s.on_trace(i, &t);
                }
            }
        };

        // One job = one simulator dispatch plus (for collapsed latch
        // classes) the replication of its result to the class members.
        // Replication happens in the same worker, after the
        // representative's own delivery, so the journal records the class
        // evidence before any line that depends on it.
        let run_job = |job: &(usize, Vec<usize>)| {
            let (rep, members) = job;
            let i = *rep;
            let (result, trace) = run_caught(&runner, &masks[i]);
            let log = RunLog {
                spec: masks[i].clone(),
                result,
                provenance: provenance[i],
            };
            deliver(i, &log, trace);
            for &j in members {
                let member_log = RunLog {
                    spec: masks[j].clone(),
                    result: replicate_result(&log.result),
                    provenance: provenance[j],
                };
                deliver(j, &member_log, None);
            }
        };

        let phase = Instant::now();
        if threads <= 1 || jobs.len() < 2 {
            for job in &jobs {
                run_job(job);
            }
        } else {
            // Work-stealing by atomic index: each worker claims the next
            // unclaimed position in the (strategy-ordered) dispatch list.
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= jobs.len() {
                            return;
                        }
                        run_job(&jobs[k]);
                    });
                }
            });
        }
        if let Some(m) = &self.metrics {
            m.gauge("phase.injection_ns")
                .set(phase.elapsed().as_nanos() as u64);
        }

        collector.on_end();
        for s in sinks {
            s.on_end();
        }

        let log = CampaignLog {
            injector: header.injector,
            benchmark: header.benchmark,
            structure: header.structure,
            seed: self.seed,
            golden,
            runs: collector.into_runs(),
        };

        // The classify phase: final per-class tallies over the complete
        // ordered log (including journal-preloaded runs, which sinks never
        // re-observe but the verdict totals must count).
        if let Some(m) = &self.metrics {
            let phase = Instant::now();
            let c = Classifier::from_golden(&log.golden);
            for r in &log.runs {
                m.counter(&format!("campaign.class.{}", c.classify(&r.result).name()))
                    .inc();
            }
            m.gauge("phase.classify_ns")
                .set(phase.elapsed().as_nanos() as u64);
        }
        log
    }
}

/// Runs a full campaign: golden run, then every mask, in parallel.
/// Thin wrapper over [`CampaignRunner`] with [`Strategy::Cold`].
///
/// # Panics
///
/// Panics if the golden run does not complete — an injector/benchmark pair
/// that cannot run fault-free cannot be studied.
pub fn run_campaign(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
) -> CampaignLog {
    CampaignRunner::new(dispatcher, program, structure, seed, cfg).run(masks)
}

/// Runs a campaign through the **checkpointed warm-start engine** — a thin
/// wrapper over [`CampaignRunner`] with [`Strategy::Checkpointed`].
///
/// Masks that cannot warm-start (instruction-scheduled faults, injection
/// before the first checkpoint) and dispatchers without snapshot support
/// fall back to the cold path, which is always equivalent: the fault-free
/// prefix is deterministic, so skipping it changes wall-clock only. The
/// returned log is byte-identical to [`run_campaign`]'s — which therefore
/// stays available as a differential oracle.
///
/// # Panics
///
/// Panics if the golden run does not complete (same contract as
/// [`run_campaign`]).
pub fn run_campaign_checkpointed(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
    checkpoints: usize,
) -> CampaignLog {
    CampaignRunner::new(dispatcher, program, structure, seed, cfg)
        .with_strategy(Strategy::Checkpointed { checkpoints })
        .run(masks)
}

/// A campaign run with static-ACE pre-dispatch pruning applied.
#[derive(Debug)]
pub struct PrunedCampaign {
    /// The complete log: every mask appears exactly once, pruned ones as
    /// [`EarlyStop::StaticallyPruned`] runs.
    pub log: CampaignLog,
    /// Spec ids classified Masked before dispatch (logged, not dropped).
    pub pruned_ids: Vec<u64>,
    /// Masks actually dispatched to the simulator (excluding the golden
    /// run).
    pub dispatched: usize,
}

/// Runs a campaign with ACE pruning — a thin wrapper over
/// [`CampaignRunner`] with [`Strategy::Pruned`]. Masks the golden-run
/// residency `profile` proves masked are logged as
/// [`EarlyStop::StaticallyPruned`] without booting a simulator; the rest
/// run normally. Verdict totals are identical to [`run_campaign`] — only
/// the dispatch count changes. Pruned runs carry *no* measurements
/// ([`RawRunResult::unexecuted`]): they never executed, so a fabricated
/// `cycles: 0` would poison cycle aggregates.
///
/// # Panics
///
/// Panics if the golden run does not complete (same contract as
/// [`run_campaign`]).
pub fn run_campaign_pruned(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
    profile: &AceProfile,
) -> PrunedCampaign {
    let (pruned, dispatch) = partition_provably_masked(masks, profile);
    let log = CampaignRunner::new(dispatcher, program, structure, seed, cfg)
        .with_strategy(Strategy::Pruned { profile })
        .run(masks);
    PrunedCampaign {
        log,
        pruned_ids: pruned.iter().map(|&i| masks[i].id).collect(),
        dispatched: dispatch.len(),
    }
}

/// A campaign run through fault-equivalence collapsing.
#[derive(Debug)]
pub struct CollapsedCampaign {
    /// The complete log: every mask appears exactly once, each stamped with
    /// its [`ClassProvenance`]; dead-class members as
    /// [`EarlyStop::StaticallyPruned`] runs, latch-class members with their
    /// representative's replicated result.
    pub log: CampaignLog,
    /// The equivalence partition the campaign collapsed through.
    pub partition: MaskPartition,
    /// Masks actually dispatched to the simulator (one representative per
    /// non-dead class; excluding the golden run).
    pub dispatched: usize,
}

/// Runs a campaign with **fault-equivalence collapsing** — a thin wrapper
/// over [`CampaignRunner`] with [`Strategy::Collapsed`] (cold
/// representatives; compose `Strategy::Collapsed { checkpoints, .. }`
/// directly to warm-start them). The masks repository is statically
/// partitioned against `profile`; only one representative per
/// non-dead class boots a simulator. Per-mask classifications are
/// identical to [`run_campaign`] — the `tests/collapse_equivalence.rs`
/// differential oracle — while dispatch count drops by the collapse ratio.
///
/// # Panics
///
/// Panics if the golden run does not complete (same contract as
/// [`run_campaign`]).
pub fn run_campaign_collapsed(
    dispatcher: &dyn InjectorDispatcher,
    program: &Program,
    structure: StructureId,
    seed: u64,
    masks: &[InjectionSpec],
    cfg: &CampaignConfig,
    profile: &AceProfile,
) -> CollapsedCampaign {
    let partition = partition_equivalence(masks, profile);
    let log = CampaignRunner::new(dispatcher, program, structure, seed, cfg)
        .with_strategy(Strategy::Collapsed {
            profile,
            checkpoints: 0,
        })
        .run(masks);
    let dispatched = partition.dispatch_count();
    CollapsedCampaign {
        log,
        partition,
        dispatched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RawRunResult, RunStatus};
    use difi_isa::program::{Isa, MemoryMap};
    use difi_uarch::fault::StructureDesc;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic fake dispatcher for controller tests.
    struct FakeDispatcher {
        calls: AtomicU64,
    }

    impl FakeDispatcher {
        fn new() -> FakeDispatcher {
            FakeDispatcher {
                calls: AtomicU64::new(0),
            }
        }
    }

    impl InjectorDispatcher for FakeDispatcher {
        fn name(&self) -> &str {
            "Fake-x86"
        }

        fn isa(&self) -> Isa {
            Isa::X86e
        }

        fn structures(&self) -> Vec<StructureDesc> {
            vec![StructureDesc {
                id: StructureId::IntRegFile,
                entries: 8,
                bits: 64,
            }]
        }

        fn run(
            &self,
            _program: &Program,
            spec: &InjectionSpec,
            _limits: &RunLimits,
        ) -> RawRunResult {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let status = if spec.faults.is_empty() {
                RunStatus::Completed { exit_code: 0 }
            } else if spec.id.is_multiple_of(3) {
                RunStatus::SimulatorAssert("x".into())
            } else {
                RunStatus::Completed { exit_code: 0 }
            };
            RawRunResult {
                status,
                output: b"out".to_vec(),
                exceptions: Some(0),
                cycles: Some(100),
                instructions: Some(50),
                fault_consumed: !spec.faults.is_empty(),
            }
        }
    }

    /// Panics on every third faulty run — simulates a dispatcher bug.
    struct PanickingDispatcher {
        inner: FakeDispatcher,
    }

    impl InjectorDispatcher for PanickingDispatcher {
        fn name(&self) -> &str {
            "Panicky-x86"
        }

        fn isa(&self) -> Isa {
            Isa::X86e
        }

        fn structures(&self) -> Vec<StructureDesc> {
            self.inner.structures()
        }

        fn run(&self, program: &Program, spec: &InjectionSpec, limits: &RunLimits) -> RawRunResult {
            assert!(
                spec.faults.is_empty() || !spec.id.is_multiple_of(3),
                "internal model state corrupt (mask {})",
                spec.id
            );
            self.inner.run(program, spec, limits)
        }
    }

    fn program() -> Program {
        Program {
            isa: Isa::X86e,
            code: vec![0x01],
            data: vec![],
            entry: MemoryMap::DEFAULT.code_base,
            map: MemoryMap::DEFAULT,
            name: "fake".into(),
        }
    }

    fn masks(n: u64) -> Vec<InjectionSpec> {
        (0..n)
            .map(|i| InjectionSpec::single_transient(i, StructureId::IntRegFile, 0, 0, i))
            .collect()
    }

    fn temp_journal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("difi_campaign_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn campaign_runs_every_mask_in_order() {
        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            9,
            &masks(30),
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 30);
        assert_eq!(d.calls.load(Ordering::SeqCst), 31, "30 masks + golden");
        // Results stay aligned with their masks.
        for (i, run) in log.runs.iter().enumerate() {
            assert_eq!(run.spec.id, i as u64);
            let expect_assert = run.spec.id % 3 == 0;
            assert_eq!(
                matches!(run.result.status, RunStatus::SimulatorAssert(_)),
                expect_assert
            );
        }
        assert_eq!(log.injector, "Fake-x86");
        assert_eq!(log.structure, "int_prf");
        assert_eq!(log.seed, 9);
    }

    #[test]
    fn single_threaded_path_matches() {
        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            0,
            &masks(5),
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 5);
    }

    #[test]
    fn auto_parallelism_resolves_thread_count() {
        // threads == 0 must resolve to available parallelism and still run
        // every mask exactly once, aligned with its slot.
        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            3,
            &masks(17),
            &CampaignConfig {
                threads: 0,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 17);
        assert_eq!(d.calls.load(Ordering::SeqCst), 18, "17 masks + golden");
        for (i, run) in log.runs.iter().enumerate() {
            assert_eq!(run.spec.id, i as u64);
        }
    }

    #[test]
    fn short_mask_list_takes_sequential_fallback() {
        // masks.len() < 2 must run sequentially even with many threads.
        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            1,
            &masks(1),
            &CampaignConfig {
                threads: 8,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 1);
        assert_eq!(d.calls.load(Ordering::SeqCst), 2, "1 mask + golden");

        let d = FakeDispatcher::new();
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            1,
            &masks(0),
            &CampaignConfig {
                threads: 8,
                ..Default::default()
            },
        );
        assert!(log.runs.is_empty());
        assert_eq!(d.calls.load(Ordering::SeqCst), 1, "golden only");
    }

    #[test]
    fn panicking_run_is_logged_as_crash_and_loses_nothing() {
        let d = PanickingDispatcher {
            inner: FakeDispatcher::new(),
        };
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            5,
            &masks(30),
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        );
        // Zero results lost: every mask has a slot, in order.
        assert_eq!(log.runs.len(), 30);
        for (i, run) in log.runs.iter().enumerate() {
            assert_eq!(run.spec.id, i as u64);
            if run.spec.id % 3 == 0 {
                // The panicking runs become SimulatorCrash records with the
                // panic message preserved and no fabricated measurements.
                match &run.result.status {
                    RunStatus::SimulatorCrash(m) => {
                        assert!(m.contains("worker panic"), "got {m}");
                        assert!(m.contains("internal model state corrupt"), "got {m}");
                    }
                    other => panic!("mask {i}: expected SimulatorCrash, got {other:?}"),
                }
                assert!(!run.result.is_measured());
            } else {
                assert!(matches!(
                    run.result.status,
                    RunStatus::Completed { exit_code: 0 }
                ));
            }
        }
    }

    #[test]
    fn panicking_run_is_caught_on_the_sequential_path_too() {
        let d = PanickingDispatcher {
            inner: FakeDispatcher::new(),
        };
        let log = run_campaign(
            &d,
            &program(),
            StructureId::IntRegFile,
            5,
            &masks(4),
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(log.runs.len(), 4);
        assert!(matches!(
            log.runs[0].result.status,
            RunStatus::SimulatorCrash(_)
        ));
        assert!(matches!(
            log.runs[1].result.status,
            RunStatus::Completed { .. }
        ));
    }

    #[test]
    fn checkpointed_campaign_without_snapshot_support_matches_cold() {
        // FakeDispatcher keeps the default golden_snapshots (None): the
        // checkpointed strategy must fall back to cold starts and still
        // produce an identical log.
        let d = FakeDispatcher::new();
        let cfg = CampaignConfig {
            threads: 2,
            ..Default::default()
        };
        let cold = run_campaign(&d, &program(), StructureId::IntRegFile, 7, &masks(12), &cfg);
        let warm = run_campaign_checkpointed(
            &d,
            &program(),
            StructureId::IntRegFile,
            7,
            &masks(12),
            &cfg,
            4,
        );
        assert_eq!(cold, warm);
    }

    #[test]
    fn warm_start_cycle_picks_earliest_cycle_fault() {
        let spec = InjectionSpec::single_transient(0, StructureId::IntRegFile, 0, 0, 500);
        assert_eq!(warm_start_cycle(&spec), Some(500));

        let mut multi = InjectionSpec::single_transient(1, StructureId::IntRegFile, 0, 0, 900);
        multi
            .faults
            .extend(InjectionSpec::single_transient(1, StructureId::IntRegFile, 1, 1, 300).faults);
        assert_eq!(warm_start_cycle(&multi), Some(300));

        // Instruction-scheduled faults force a cold start.
        let mut inst = InjectionSpec::single_transient(2, StructureId::IntRegFile, 0, 0, 900);
        inst.faults[0].at = InjectTime::Instruction(10);
        assert_eq!(warm_start_cycle(&inst), None);

        // So does a fault-free mask.
        let empty = InjectionSpec {
            id: 3,
            faults: Vec::new(),
        };
        assert_eq!(warm_start_cycle(&empty), None);
    }

    #[test]
    fn golden_run_has_no_faults() {
        let d = FakeDispatcher::new();
        let g = golden_run(&d, &program(), 1000);
        assert!(matches!(g.status, RunStatus::Completed { .. }));
        assert!(!g.fault_consumed);
    }

    #[test]
    fn journaled_run_then_full_resume_skips_every_mask() {
        // Resuming a *complete* journal must dispatch zero injection runs
        // (golden only) and return the identical log.
        let path = temp_journal("complete.jsonl");
        let cfg = CampaignConfig {
            threads: 2,
            ..Default::default()
        };
        let p = program();
        let m = masks(10);

        let d = FakeDispatcher::new();
        let runner = CampaignRunner::new(&d, &p, StructureId::IntRegFile, 4, &cfg);
        let full = runner.run_journaled(&m, &path, &[]).expect("journaled run");
        assert_eq!(d.calls.load(Ordering::SeqCst), 11, "10 masks + golden");

        let d2 = FakeDispatcher::new();
        let runner2 = CampaignRunner::new(&d2, &p, StructureId::IntRegFile, 4, &cfg);
        let resumed = runner2.resume(&m, &path, &[]).expect("resume");
        assert_eq!(d2.calls.load(Ordering::SeqCst), 1, "golden only");
        assert_eq!(full, resumed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_dispatches_only_the_remainder() {
        let path = temp_journal("partial.jsonl");
        let cfg = CampaignConfig {
            threads: 1,
            ..Default::default()
        };
        let p = program();
        let m = masks(8);

        let d = FakeDispatcher::new();
        let runner = CampaignRunner::new(&d, &p, StructureId::IntRegFile, 4, &cfg);
        let full = runner.run_journaled(&m, &path, &[]).expect("journaled run");

        // Keep the header and the first 3 completed runs.
        let text = std::fs::read_to_string(&path).expect("read journal");
        let kept: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, kept).expect("truncate journal");

        let d2 = FakeDispatcher::new();
        let runner2 = CampaignRunner::new(&d2, &p, StructureId::IntRegFile, 4, &cfg);
        let resumed = runner2.resume(&m, &path, &[]).expect("resume");
        assert_eq!(
            d2.calls.load(Ordering::SeqCst),
            6,
            "golden + the 5 not-yet-journaled masks"
        );
        assert_eq!(full, resumed);

        // The journal is now complete: a second resume dispatches nothing.
        let d3 = FakeDispatcher::new();
        let runner3 = CampaignRunner::new(&d3, &p, StructureId::IntRegFile, 4, &cfg);
        let again = runner3.resume(&m, &path, &[]).expect("second resume");
        assert_eq!(d3.calls.load(Ordering::SeqCst), 1, "golden only");
        assert_eq!(full, again);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_campaigns() {
        let path = temp_journal("mismatch.jsonl");
        let cfg = CampaignConfig {
            threads: 1,
            ..Default::default()
        };
        let p = program();
        let m = masks(4);
        let d = FakeDispatcher::new();
        let runner = CampaignRunner::new(&d, &p, StructureId::IntRegFile, 4, &cfg);
        runner.run_journaled(&m, &path, &[]).expect("journaled run");

        // Wrong seed.
        let r = CampaignRunner::new(&d, &p, StructureId::IntRegFile, 5, &cfg);
        assert!(r.resume(&m, &path, &[]).is_err(), "seed mismatch accepted");

        // Wrong mask count.
        let r = CampaignRunner::new(&d, &p, StructureId::IntRegFile, 4, &cfg);
        assert!(
            r.resume(&masks(5), &path, &[]).is_err(),
            "mask-count mismatch accepted"
        );

        // Same shape but different mask content.
        let mut other = masks(4);
        other[2].faults[0].bit = 63;
        let r = CampaignRunner::new(&d, &p, StructureId::IntRegFile, 4, &cfg);
        assert!(
            r.resume(&other, &path, &[]).is_err(),
            "mask-content mismatch accepted"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_from_empty_journal_runs_everything() {
        let path = temp_journal("fresh.jsonl");
        std::fs::write(&path, "").expect("empty journal");
        let cfg = CampaignConfig {
            threads: 1,
            ..Default::default()
        };
        let p = program();
        let m = masks(5);
        let d = FakeDispatcher::new();
        let runner = CampaignRunner::new(&d, &p, StructureId::IntRegFile, 4, &cfg);
        let log = runner.resume(&m, &path, &[]).expect("resume from scratch");
        assert_eq!(d.calls.load(Ordering::SeqCst), 6, "golden + 5 masks");
        assert_eq!(log.runs.len(), 5);

        // And the journal it wrote is complete.
        let back = load_journal(&path).expect("journal loads");
        assert_eq!(back.runs.len(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pruned_strategy_streams_pruned_runs_to_sinks() {
        // A journaled pruned campaign journals its statically-pruned runs
        // too — resume must not re-dispatch them.
        use difi_ace::AceProfile;

        let path = temp_journal("pruned.jsonl");
        let cfg = CampaignConfig {
            threads: 1,
            ..Default::default()
        };
        let p = program();
        let m = masks(6);
        // An incomplete empty profile proves nothing masked; the strategy
        // still works end-to-end (all masks dispatch). A full pruning test
        // with a real profile lives in tests/ace_pruning.rs.
        let profile = AceProfile::new(difi_uarch::residency::ResidencyLog {
            structure: StructureId::IntRegFile,
            entries: 8,
            bits: 64,
            cycles: 0,
            complete: false,
            events: std::collections::BTreeMap::new(),
        })
        .expect("int_prf is a data plane");
        let d = FakeDispatcher::new();
        let runner = CampaignRunner::new(&d, &p, StructureId::IntRegFile, 4, &cfg)
            .with_strategy(Strategy::Pruned { profile: &profile });
        let log = runner.run_journaled(&m, &path, &[]).expect("journaled run");
        assert_eq!(log.runs.len(), 6);
        let back = load_journal(&path).expect("journal loads");
        assert_eq!(back.runs.len(), 6, "every run journaled");
        std::fs::remove_file(&path).ok();
    }

    /// A profile over FakeDispatcher's register file with one
    /// write@2 → read@5 interval on (entry 0, bit 0): `masks(9)` (cycles
    /// 0..9 at that site) partitions into Dead[0,1,2], Latch[3,4,5],
    /// Dead[6,7,8].
    fn collapse_profile() -> AceProfile {
        use difi_uarch::residency::ResidencyTracker;
        let mut t = ResidencyTracker::new();
        t.set_cycle(2);
        t.on_write(0, 0, 64);
        t.set_cycle(5);
        t.on_read(0, 0, 64);
        let desc = StructureDesc {
            id: StructureId::IntRegFile,
            entries: 8,
            bits: 64,
        };
        AceProfile::new(t.into_log(desc, 100)).expect("int_prf is a data plane")
    }

    #[test]
    fn collapsed_strategy_dispatches_one_representative_per_latch_class() {
        let d = FakeDispatcher::new();
        let profile = collapse_profile();
        let collapsed = run_campaign_collapsed(
            &d,
            &program(),
            StructureId::IntRegFile,
            4,
            &masks(9),
            &CampaignConfig {
                threads: 2,
                ..Default::default()
            },
            &profile,
        );
        assert_eq!(
            d.calls.load(Ordering::SeqCst),
            2,
            "golden + 1 representative"
        );
        assert_eq!(collapsed.dispatched, 1);
        assert_eq!(collapsed.partition.class_count(), 3);
        assert!((collapsed.partition.collapse_ratio() - 3.0).abs() < 1e-12);
        let log = &collapsed.log;
        assert_eq!(log.runs.len(), 9, "every mask logged exactly once");
        for (i, run) in log.runs.iter().enumerate() {
            assert_eq!(run.spec.id, i as u64);
            let prov = run.provenance.expect("collapsed runs carry provenance");
            if (3..6).contains(&i) {
                assert_eq!(prov.proof, ProofKind::LatchInterval);
                assert_eq!(prov.representative, 3);
                assert_eq!(prov.members, 3);
            } else {
                assert_eq!(prov.proof, ProofKind::DeadInterval);
                assert_eq!(
                    run.result.status,
                    RunStatus::EarlyStopMasked(EarlyStop::StaticallyPruned)
                );
                assert!(!run.result.is_measured());
            }
        }
        // The representative executed for real; members inherited its
        // classification fields but no fabricated measurements.
        let rep = &log.runs[3].result;
        assert!(matches!(rep.status, RunStatus::SimulatorAssert(_)));
        assert_eq!(rep.cycles, Some(100));
        for i in [4usize, 5] {
            let member = &log.runs[i].result;
            assert_eq!(member.status, rep.status);
            assert_eq!(member.output, rep.output);
            assert_eq!(member.exceptions, rep.exceptions);
            assert_eq!(member.fault_consumed, rep.fault_consumed);
            assert_eq!(member.cycles, None, "member {i} never executed");
            assert_eq!(member.instructions, None);
        }
    }

    #[test]
    fn collapsed_journal_resumes_without_redispatching_classes() {
        let cfg = CampaignConfig {
            threads: 1,
            ..Default::default()
        };
        let p = program();
        let m = masks(9);
        let profile = collapse_profile();

        let path = temp_journal("collapsed.jsonl");
        let d = FakeDispatcher::new();
        let runner = CampaignRunner::new(&d, &p, StructureId::IntRegFile, 4, &cfg).with_strategy(
            Strategy::Collapsed {
                profile: &profile,
                checkpoints: 0,
            },
        );
        let full = runner.run_journaled(&m, &path, &[]).expect("journaled run");
        assert_eq!(d.calls.load(Ordering::SeqCst), 2, "golden + representative");
        let back = load_journal(&path).expect("journal loads");
        assert_eq!(back.runs.len(), 9, "members journaled too");
        for (_, log) in &back.runs {
            assert!(log.provenance.is_some(), "provenance survives the journal");
        }

        // Crash after the dead classes and the representative line: resume
        // replicates the remaining members from the journaled
        // representative without booting a simulator for them.
        let text = std::fs::read_to_string(&path).expect("read journal");
        let kept: String = text.lines().take(8).map(|l| format!("{l}\n")).collect();
        assert!(kept.lines().count() < text.lines().count());
        std::fs::write(&path, kept).expect("truncate journal");
        let d2 = FakeDispatcher::new();
        let runner2 = CampaignRunner::new(&d2, &p, StructureId::IntRegFile, 4, &cfg).with_strategy(
            Strategy::Collapsed {
                profile: &profile,
                checkpoints: 0,
            },
        );
        let resumed = runner2.resume(&m, &path, &[]).expect("resume");
        assert_eq!(d2.calls.load(Ordering::SeqCst), 1, "golden only");
        assert_eq!(full, resumed);

        // Crash before the representative ran: resume re-dispatches it once
        // and replicates, still converging on the identical log.
        let text = std::fs::read_to_string(&path).expect("read journal");
        let kept: String = text.lines().take(5).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, kept).expect("truncate journal");
        let d3 = FakeDispatcher::new();
        let runner3 = CampaignRunner::new(&d3, &p, StructureId::IntRegFile, 4, &cfg).with_strategy(
            Strategy::Collapsed {
                profile: &profile,
                checkpoints: 0,
            },
        );
        let again = runner3.resume(&m, &path, &[]).expect("resume");
        assert_eq!(
            d3.calls.load(Ordering::SeqCst),
            2,
            "golden + re-dispatched representative"
        );
        assert_eq!(full, again);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn collapsed_metrics_report_partition_and_savings() {
        let d = FakeDispatcher::new();
        let profile = collapse_profile();
        let reg = Arc::new(MetricsRegistry::new());
        let cfg = CampaignConfig {
            threads: 2,
            ..Default::default()
        };
        let log = CampaignRunner::new(&d, &program(), StructureId::IntRegFile, 4, &cfg)
            .with_strategy(Strategy::Collapsed {
                profile: &profile,
                checkpoints: 0,
            })
            .with_metrics(Arc::clone(&reg))
            .run(&masks(9));
        assert_eq!(log.runs.len(), 9);
        assert_eq!(reg.value("campaign.collapse.masks"), Some(9));
        assert_eq!(reg.value("campaign.collapse.classes"), Some(3));
        assert_eq!(reg.value("campaign.collapse.classes.dead"), Some(2));
        assert_eq!(reg.value("campaign.collapse.classes.latch"), Some(1));
        assert_eq!(reg.value("campaign.collapse.classes.singleton"), Some(0));
        assert_eq!(reg.value("campaign.collapse.dead_masks"), Some(6));
        assert_eq!(reg.value("campaign.collapse.replicated"), Some(2));
        assert_eq!(reg.value("campaign.collapse.dispatched"), Some(1));
        assert_eq!(
            reg.value("campaign.collapse.ratio_permille"),
            Some(3000),
            "9 masks / 3 classes = 3.000×"
        );
    }

    #[test]
    fn metrics_registry_tallies_runs_statuses_and_phases() {
        let d = FakeDispatcher::new();
        let reg = Arc::new(MetricsRegistry::new());
        let cfg = CampaignConfig {
            threads: 2,
            ..Default::default()
        };
        let log = CampaignRunner::new(&d, &program(), StructureId::IntRegFile, 9, &cfg)
            .with_metrics(Arc::clone(&reg))
            .run(&masks(9));
        assert_eq!(log.runs.len(), 9);
        assert_eq!(reg.value("campaign.runs"), Some(9));
        assert_eq!(reg.value("campaign.status.completed"), Some(6));
        assert_eq!(reg.value("campaign.status.sim_assert"), Some(3));
        assert_eq!(reg.value("campaign.sim_cycles"), Some(900));
        // Final classification: masks 0/3/6 assert, the rest match golden.
        assert_eq!(reg.value("campaign.class.assert"), Some(3));
        assert_eq!(reg.value("campaign.class.masked"), Some(6));
        // Every phase gauge is stamped (a fake campaign can be faster than
        // 1ns, so presence — not magnitude — is what's checked).
        for phase in [
            "phase.golden_ns",
            "phase.snapshots_ns",
            "phase.injection_ns",
            "phase.classify_ns",
        ] {
            assert!(reg.value(phase).is_some(), "{phase} never stamped");
        }
    }

    #[test]
    fn tracing_without_dispatcher_support_matches_untraced_run() {
        // FakeDispatcher keeps the default traced paths (no event streams):
        // a traced campaign must produce the identical log and zero traces.
        let d = FakeDispatcher::new();
        let cfg = CampaignConfig {
            threads: 2,
            ..Default::default()
        };
        let plain = run_campaign(&d, &program(), StructureId::IntRegFile, 9, &masks(8), &cfg);
        let reg = Arc::new(MetricsRegistry::new());
        let traced = CampaignRunner::new(&d, &program(), StructureId::IntRegFile, 9, &cfg)
            .with_tracing(true)
            .with_metrics(Arc::clone(&reg))
            .run(&masks(8));
        assert_eq!(plain, traced);
        assert_eq!(reg.value("campaign.traces").unwrap_or(0), 0);
    }
}
