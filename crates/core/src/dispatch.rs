//! The injector-dispatcher interface between the campaign controller and a
//! microarchitectural simulator.
//!
//! In the paper, "the *Injection Campaign Controller* reads the masks from
//! the repository and sends injection requests to the *Injector Dispatcher*
//! which is the module that directly communicates with the MARSS or Gem5
//! simulator". [`InjectorDispatcher`] is that module's contract: MaFIN's
//! implementation (over MarsSim) lives in `difi-mars`, GeFIN's (over GemSim)
//! in `difi-gem`.

use crate::model::{InjectionSpec, RawRunResult, RunLimits};
use difi_isa::program::{Isa, Program};
use difi_obs::trace::FaultTrace;
use difi_uarch::fault::{StructureDesc, StructureId};
use difi_uarch::residency::ResidencyLog;
use std::sync::Arc;

/// An opaque snapshot of a simulator paused mid-way through the golden run.
///
/// Captured by [`InjectorDispatcher::golden_snapshots`] and consumed by
/// [`InjectorDispatcher::run_from`], which downcasts `state` back to the
/// dispatcher's concrete simulator type. The campaign controller only reads
/// `cycle` — to pick, per mask, the latest snapshot at or before the
/// injection cycle — and shares the set immutably across worker threads
/// (restoring is a clone; the snapshot itself is never mutated).
pub struct GoldenSnapshot {
    /// Cycle at which the golden run was paused (state is exactly the
    /// cold-run state at the *top* of this cycle, before any of its work).
    pub cycle: u64,
    /// Dispatcher-private simulator state.
    pub state: Box<dyn std::any::Any + Send + Sync>,
}

impl std::fmt::Debug for GoldenSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoldenSnapshot")
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

/// A stateless handle that can run one workload under one fault mask on a
/// freshly booted simulator instance.
///
/// Implementations must be `Sync`: the campaign controller calls
/// [`InjectorDispatcher::run`] from several worker threads at once, each
/// call booting its own simulator.
pub trait InjectorDispatcher: Sync {
    /// Human-readable injector name (`"MaFIN-x86"`, `"GeFIN-ARM"`, …).
    fn name(&self) -> &str;

    /// The ISA this dispatcher simulates.
    fn isa(&self) -> Isa;

    /// Geometry of every injectable structure in this simulator's
    /// configuration (the per-simulator realization of Table IV).
    fn structures(&self) -> Vec<StructureDesc>;

    /// Boots a fresh simulator, loads `program`, injects per `spec`, and
    /// runs to a terminal state. `spec.faults` may be empty (a golden run).
    fn run(&self, program: &Program, spec: &InjectionSpec, limits: &RunLimits) -> RawRunResult;

    /// Runs one golden (fault-free) execution with residency tracing
    /// enabled on `structures`, returning the recorded per-structure traces
    /// for the ACE analysis.
    ///
    /// The default returns no traces — a dispatcher without instrumentation
    /// support simply yields nothing to prune with, which is always safe.
    fn golden_residency(
        &self,
        program: &Program,
        structures: &[StructureId],
        max_cycles: u64,
    ) -> Vec<ResidencyLog> {
        let _ = (program, structures, max_cycles);
        Vec::new()
    }

    /// Runs the golden (fault-free) prefix once, capturing a resumable
    /// snapshot at each cycle in `at_cycles` (must be sorted ascending).
    /// Capture stops early if the program terminates first, so the returned
    /// set may be shorter than requested.
    ///
    /// The default returns `None` — a dispatcher without checkpoint support
    /// simply opts out, and the campaign controller falls back to cold
    /// starts.
    fn golden_snapshots(
        &self,
        program: &Program,
        at_cycles: &[u64],
        limits: &RunLimits,
    ) -> Option<Vec<GoldenSnapshot>> {
        let _ = (program, at_cycles, limits);
        None
    }

    /// Runs `spec` warm: restores `snap` (a clone of the golden state at
    /// `snap.cycle`) and simulates only the remainder.
    ///
    /// Contract: when every fault in `spec` is cycle-scheduled at or after
    /// `snap.cycle`, the result is byte-identical to a cold
    /// [`InjectorDispatcher::run`] of the same `(program, spec, limits)` —
    /// the fault-free prefix is deterministic, so replaying it adds
    /// information the snapshot already holds. The default falls back to
    /// the cold path, which is always correct.
    fn run_from(
        &self,
        snap: &GoldenSnapshot,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
    ) -> RawRunResult {
        let _ = snap;
        self.run(program, spec, limits)
    }

    /// Runs the golden (fault-free) execution while recording the
    /// per-commit architectural signature vector the tracer compares
    /// injection runs against. Recording is pure observation: the returned
    /// result must be byte-identical to a plain golden
    /// [`InjectorDispatcher::run`].
    ///
    /// The default records nothing — a dispatcher without tracing support
    /// still produces a correct golden run, and downstream divergence
    /// events are simply absent.
    fn golden_run_recording(
        &self,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
    ) -> (RawRunResult, Option<Arc<Vec<u64>>>) {
        (self.run(program, spec, limits), None)
    }

    /// Runs `spec` cold with fault-lifecycle tracing enabled, comparing
    /// committed state against `golden_sig` (when given) for the
    /// divergence event.
    ///
    /// Contract: the [`RawRunResult`] is byte-identical to a plain
    /// [`InjectorDispatcher::run`] of the same arguments — tracing
    /// observes, never perturbs. The default opts out of tracing.
    fn run_traced(
        &self,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
        golden_sig: Option<&Arc<Vec<u64>>>,
    ) -> (RawRunResult, Option<FaultTrace>) {
        let _ = golden_sig;
        (self.run(program, spec, limits), None)
    }

    /// Runs `spec` warm from `snap` with fault-lifecycle tracing enabled.
    /// Same observation-only contract as [`InjectorDispatcher::run_traced`];
    /// the trace must equal the cold-run trace of the same mask. The
    /// default opts out of tracing.
    fn run_from_traced(
        &self,
        snap: &GoldenSnapshot,
        program: &Program,
        spec: &InjectionSpec,
        limits: &RunLimits,
        golden_sig: Option<&Arc<Vec<u64>>>,
    ) -> (RawRunResult, Option<FaultTrace>) {
        let _ = golden_sig;
        (self.run_from(snap, program, spec, limits), None)
    }
}

/// Looks up a structure's geometry on a dispatcher.
pub fn structure_desc(
    d: &dyn InjectorDispatcher,
    id: difi_uarch::fault::StructureId,
) -> Option<StructureDesc> {
    d.structures().into_iter().find(|s| s.id == id)
}
