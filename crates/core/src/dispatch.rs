//! The injector-dispatcher interface between the campaign controller and a
//! microarchitectural simulator.
//!
//! In the paper, "the *Injection Campaign Controller* reads the masks from
//! the repository and sends injection requests to the *Injector Dispatcher*
//! which is the module that directly communicates with the MARSS or Gem5
//! simulator". [`InjectorDispatcher`] is that module's contract: MaFIN's
//! implementation (over MarsSim) lives in `difi-mars`, GeFIN's (over GemSim)
//! in `difi-gem`.

use crate::model::{InjectionSpec, RawRunResult, RunLimits};
use difi_isa::program::{Isa, Program};
use difi_uarch::fault::{StructureDesc, StructureId};
use difi_uarch::residency::ResidencyLog;

/// A stateless handle that can run one workload under one fault mask on a
/// freshly booted simulator instance.
///
/// Implementations must be `Sync`: the campaign controller calls
/// [`InjectorDispatcher::run`] from several worker threads at once, each
/// call booting its own simulator.
pub trait InjectorDispatcher: Sync {
    /// Human-readable injector name (`"MaFIN-x86"`, `"GeFIN-ARM"`, …).
    fn name(&self) -> &str;

    /// The ISA this dispatcher simulates.
    fn isa(&self) -> Isa;

    /// Geometry of every injectable structure in this simulator's
    /// configuration (the per-simulator realization of Table IV).
    fn structures(&self) -> Vec<StructureDesc>;

    /// Boots a fresh simulator, loads `program`, injects per `spec`, and
    /// runs to a terminal state. `spec.faults` may be empty (a golden run).
    fn run(&self, program: &Program, spec: &InjectionSpec, limits: &RunLimits) -> RawRunResult;

    /// Runs one golden (fault-free) execution with residency tracing
    /// enabled on `structures`, returning the recorded per-structure traces
    /// for the ACE analysis.
    ///
    /// The default returns no traces — a dispatcher without instrumentation
    /// support simply yields nothing to prune with, which is always safe.
    fn golden_residency(
        &self,
        program: &Program,
        structures: &[StructureId],
        max_cycles: u64,
    ) -> Vec<ResidencyLog> {
        let _ = (program, structures, max_cycles);
        Vec::new()
    }
}

/// Looks up a structure's geometry on a dispatcher.
pub fn structure_desc(
    d: &dyn InjectorDispatcher,
    id: difi_uarch::fault::StructureId,
) -> Option<StructureDesc> {
    d.structures().into_iter().find(|s| s.id == id)
}
