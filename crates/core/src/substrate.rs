//! The shared dispatcher substrate: everything a simulator-backed
//! [`InjectorDispatcher`](crate::dispatch::InjectorDispatcher) needs to
//! translate between campaign vocabulary ([`crate::model`]) and the
//! pipeline engine (`difi_uarch::pipeline`), plus the run shapes every
//! backend shares (cold run, warm resume, snapshot capture, residency
//! tracing).
//!
//! Both injectors of the paper are *configurations*, not codebases: MaFIN
//! and GeFIN differ in their Table-II core parameters and policy bits, while
//! the mask→engine translation and the run loop are identical. Keeping that
//! substrate here (rather than in one injector crate) keeps the dependency
//! graph honest — `difi-mars` and `difi-gem` both depend on `difi-core`,
//! and neither depends on the other.

use crate::dispatch::GoldenSnapshot;
use crate::model::{
    EarlyStop, FaultDuration, InjectTime, InjectionSpec, RawRunResult, RunLimits, RunStatus,
};
use difi_isa::program::Program;
use difi_obs::trace::{FaultTrace, TraceEvent, TraceEventKind};
use difi_uarch::fault::StructureId;
use difi_uarch::pipeline::engine::{EarlyWhy, EngineFault, EngineLimits};
use difi_uarch::pipeline::{CoreConfig, OoOCore, SimExit, SimRun};
use difi_uarch::residency::ResidencyLog;
use std::sync::Arc;

/// Translates campaign fault records into engine coordinates.
pub fn to_engine_faults(spec: &InjectionSpec) -> Vec<EngineFault> {
    spec.faults
        .iter()
        .map(|f| EngineFault {
            structure: f.structure,
            entry: f.entry,
            bit: f.bit,
            kind: f.kind.into(),
            at_cycle: match f.at {
                InjectTime::Cycle(c) => Some(c),
                InjectTime::Instruction(_) => None,
            },
            at_instruction: match f.at {
                InjectTime::Instruction(n) => Some(n),
                InjectTime::Cycle(_) => None,
            },
            duration_cycles: match f.duration {
                FaultDuration::Intermittent { cycles } => Some(cycles),
                _ => None,
            },
        })
        .collect()
}

/// Translates campaign limits into engine limits.
pub fn to_engine_limits(limits: &RunLimits) -> EngineLimits {
    EngineLimits {
        max_cycles: limits.max_cycles,
        early_stop: limits.early_stop,
        deadlock_window: limits.deadlock_window,
    }
}

/// Converts an engine exit into the campaign's raw status vocabulary.
pub fn to_run_status(core: &OoOCore, exit: SimExit) -> RunStatus {
    match exit {
        SimExit::Exited(code) => RunStatus::Completed { exit_code: code },
        SimExit::ProcessCrash(f) => RunStatus::ProcessCrash(f.to_string()),
        SimExit::SystemCrash(m) => RunStatus::SystemCrash(m.to_string()),
        SimExit::SimAssert(m) => RunStatus::SimulatorAssert(m),
        SimExit::SimCrash(m) => RunStatus::SimulatorCrash(m),
        SimExit::Timeout => RunStatus::Timeout,
        SimExit::EarlyMasked => RunStatus::EarlyStopMasked(match core.early_reason() {
            EarlyWhy::DeadEntry => EarlyStop::DeadEntry,
            EarlyWhy::Overwritten => EarlyStop::OverwrittenBeforeRead,
        }),
    }
}

/// Assembles a finished engine run into the campaign's raw-result record.
pub fn to_raw_result(core: &OoOCore, run: SimRun) -> RawRunResult {
    RawRunResult {
        status: to_run_status(core, run.exit),
        output: run.output,
        exceptions: Some(run.exceptions),
        cycles: Some(run.stats.cycles),
        instructions: Some(run.stats.committed_instructions),
        fault_consumed: run.fault_consumed,
    }
}

/// The shared cold-run shape: boots a fresh core over `cfg`, arms the
/// mask's faults, and simulates to a terminal state.
pub fn cold_run(
    cfg: CoreConfig,
    program: &Program,
    spec: &InjectionSpec,
    limits: &RunLimits,
) -> RawRunResult {
    let mut core = OoOCore::new(cfg, program);
    let faults = to_engine_faults(spec);
    let run = core.run(&faults, &to_engine_limits(limits));
    to_raw_result(&core, run)
}

/// The shared warm-resume shape: clones the snapshotted core, arms the
/// mask's faults, and simulates the remainder. Returns `None` when `snap`
/// does not hold this engine's core type (a foreign snapshot) — the caller
/// falls back to the always-correct cold path.
pub fn warm_run(
    snap: &GoldenSnapshot,
    spec: &InjectionSpec,
    limits: &RunLimits,
) -> Option<RawRunResult> {
    let paused = snap.state.downcast_ref::<OoOCore>()?;
    let mut core = paused.clone();
    let faults = to_engine_faults(spec);
    let run = core.run(&faults, &to_engine_limits(limits));
    Some(to_raw_result(&core, run))
}

/// Shared warm-start capture: drives a fresh `core` through the fault-free
/// prefix, pausing at each cycle of `at_cycles` (sorted ascending) and
/// snapshotting via `Clone`. Capture stops early if the program terminates
/// before a requested cycle. Used by both MaFIN and GeFIN.
pub fn capture_snapshots(
    mut core: OoOCore,
    at_cycles: &[u64],
    limits: &RunLimits,
) -> Vec<GoldenSnapshot> {
    let elim = to_engine_limits(limits);
    let mut snaps = Vec::with_capacity(at_cycles.len());
    for &cycle in at_cycles {
        if core.run_until(&[], &elim, Some(cycle)).is_some() {
            break; // terminal state before this checkpoint — stop capturing
        }
        snaps.push(GoldenSnapshot {
            cycle,
            state: Box::new(core.clone()),
        });
    }
    snaps
}

/// The shared golden-recording shape: one fault-free run with commit
/// signature recording enabled, returning both the golden result (identical
/// to [`cold_run`] of the same empty mask) and the signature vector the
/// tracer compares injection runs against.
pub fn recording_run(
    cfg: CoreConfig,
    program: &Program,
    spec: &InjectionSpec,
    limits: &RunLimits,
) -> (RawRunResult, Option<Arc<Vec<u64>>>) {
    let mut core = OoOCore::new(cfg, program);
    core.enable_signature_recording();
    let faults = to_engine_faults(spec);
    let run = core.run(&faults, &to_engine_limits(limits));
    let result = to_raw_result(&core, run);
    (result, Some(Arc::new(core.take_signature())))
}

/// The shared traced cold-run shape: [`cold_run`] with fault-lifecycle
/// tracing enabled, assembling the observed events into a [`FaultTrace`].
pub fn traced_cold_run(
    cfg: CoreConfig,
    program: &Program,
    spec: &InjectionSpec,
    limits: &RunLimits,
    golden_sig: Option<&Arc<Vec<u64>>>,
) -> (RawRunResult, Option<FaultTrace>) {
    let mut core = OoOCore::new(cfg, program);
    core.enable_fault_tracing(golden_sig.cloned());
    let faults = to_engine_faults(spec);
    let run = core.run(&faults, &to_engine_limits(limits));
    let result = to_raw_result(&core, run);
    let trace = assemble_trace(&core, spec);
    (result, trace)
}

/// The shared traced warm-resume shape: [`warm_run`] with tracing enabled.
/// Returns `None` for a foreign snapshot, exactly like [`warm_run`].
pub fn traced_warm_run(
    snap: &GoldenSnapshot,
    spec: &InjectionSpec,
    limits: &RunLimits,
    golden_sig: Option<&Arc<Vec<u64>>>,
) -> Option<(RawRunResult, Option<FaultTrace>)> {
    let paused = snap.state.downcast_ref::<OoOCore>()?;
    let mut core = paused.clone();
    core.enable_fault_tracing(golden_sig.cloned());
    let faults = to_engine_faults(spec);
    let run = core.run(&faults, &to_engine_limits(limits));
    let result = to_raw_result(&core, run);
    let trace = assemble_trace(&core, spec);
    Some((result, trace))
}

/// Assembles the event stream of one traced run from the core's raw
/// observations. Events are ordered by cycle; construction order (injected,
/// then watch lifecycles in arm order, then divergence) breaks ties
/// deterministically via the stable sort.
fn assemble_trace(core: &OoOCore, spec: &InjectionSpec) -> Option<FaultTrace> {
    let report = core.trace_report()?;
    let mut events = Vec::new();
    for ev in &report.injected {
        events.push(TraceEvent {
            cycle: ev.cycle,
            kind: TraceEventKind::Injected,
            detail: format!("{} entry {} bit {}", ev.structure.name(), ev.entry, ev.bit),
        });
    }
    for (s, w) in &report.watches {
        // The hook keeps the two stamps mutually exclusive: a read blocks
        // the overwritten transition and vice versa.
        if let Some(cycle) = w.first_read_at {
            events.push(TraceEvent {
                cycle,
                kind: TraceEventKind::FirstConsumed,
                detail: format!("{} entry {} bit {}", s.name(), w.entry, w.bit),
            });
        } else if let Some(cycle) = w.overwritten_at {
            events.push(TraceEvent {
                cycle,
                kind: TraceEventKind::OverwrittenDead,
                detail: format!("{} entry {} bit {}", s.name(), w.entry, w.bit),
            });
        }
    }
    if let Some(d) = report.divergence {
        events.push(TraceEvent {
            cycle: d.cycle,
            kind: TraceEventKind::ArchDivergence,
            detail: format!("commit #{}", d.commit_index),
        });
    }
    events.sort_by_key(|e| e.cycle);
    Some(FaultTrace {
        id: spec.id,
        structure: spec
            .faults
            .first()
            .map(|f| f.structure.name())
            .unwrap_or("none")
            .to_string(),
        events,
    })
}

/// The shared golden-residency shape: one fault-free run with residency
/// tracing enabled on `structures`, feeding the ACE analysis.
pub fn residency_run(
    cfg: CoreConfig,
    program: &Program,
    structures: &[StructureId],
    max_cycles: u64,
) -> Vec<ResidencyLog> {
    let mut core = OoOCore::new(cfg, program);
    core.enable_residency(structures);
    let elim = EngineLimits {
        max_cycles,
        early_stop: false,
        deadlock_window: RunLimits::golden(max_cycles).deadlock_window,
    };
    core.run(&[], &elim);
    core.take_residency()
}
