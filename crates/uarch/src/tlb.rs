//! Translation lookaside buffers with injectable entry (tag + translation)
//! and valid planes.
//!
//! Table IV lists "Data TLB — Valid, Tag" and "Instr. TLB — Valid, Tag" among
//! the injectable structures of both MaFIN and GeFIN. The simulated machine
//! uses an identity mapping (virtual = physical), but the TLB still caches
//! translations in real storage bits: a corrupted PPN silently redirects an
//! access (wild loads/stores → SDC or crash), a corrupted tag or valid bit
//! causes spurious misses or garbage hits.

use crate::fault::FaultHook;
use difi_util::bits::BitPlane;

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (direct-mapped; power of two).
    pub entries: usize,
    /// Page size as a power of two (12 → 4 KiB pages).
    pub page_bits: u32,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 64,
            page_bits: 12,
        }
    }
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translation hits.
    pub hits: u64,
    /// Misses (hardware-walked refills; latency added by the pipeline).
    pub misses: u64,
}

/// A direct-mapped TLB over a 32-bit physical space.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    idx_bits: u32,
    tag_bits: u32,
    ppn_bits: u32,
    /// Entry payload plane: `[tag | ppn]`.
    entries: BitPlane,
    valid: BitPlane,
    /// Fault hook of the entry (tag+translation) plane.
    pub entry_hook: FaultHook,
    /// Fault hook of the valid bits.
    pub valid_hook: FaultHook,
    /// Statistics.
    pub stats: TlbStats,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.entries.is_power_of_two());
        let idx_bits = cfg.entries.trailing_zeros();
        let vpn_bits = 32 - cfg.page_bits;
        let tag_bits = vpn_bits - idx_bits;
        let ppn_bits = vpn_bits;
        Tlb {
            cfg,
            idx_bits,
            tag_bits,
            ppn_bits,
            entries: BitPlane::new(cfg.entries, (tag_bits + ppn_bits) as usize),
            valid: BitPlane::new(cfg.entries, 1),
            entry_hook: FaultHook::new(),
            valid_hook: FaultHook::new(),
            stats: TlbStats::default(),
        }
    }

    /// Bits per entry in the entry plane.
    pub fn entry_bits(&self) -> u32 {
        self.tag_bits + self.ppn_bits
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.cfg.entries
    }

    /// Translates `vaddr`, refilling on miss (identity mapping). Returns the
    /// physical address and whether the lookup hit.
    pub fn translate(&mut self, vaddr: u64) -> (u64, bool) {
        let off_mask = (1u64 << self.cfg.page_bits) - 1;
        let vpn = (vaddr >> self.cfg.page_bits) & ((1u64 << (32 - self.cfg.page_bits)) - 1);
        let idx = (vpn & ((1 << self.idx_bits) - 1)) as usize;
        let want_tag = vpn >> self.idx_bits;
        self.valid_hook.note_read(idx as u64, 0, 1);
        if self.valid.get(idx, 0) {
            self.entry_hook.note_read(idx as u64, 0, self.tag_bits);
            let tag = self.entries.get_field(idx, 0, self.tag_bits as usize);
            if tag == want_tag {
                self.stats.hits += 1;
                self.entry_hook
                    .note_read(idx as u64, self.tag_bits, self.ppn_bits);
                let ppn =
                    self.entries
                        .get_field(idx, self.tag_bits as usize, self.ppn_bits as usize);
                return ((ppn << self.cfg.page_bits) | (vaddr & off_mask), true);
            }
        }
        // Miss: hardware walk installs the identity translation.
        self.stats.misses += 1;
        let fix = self
            .entry_hook
            .note_write(idx as u64, 0, self.tag_bits + self.ppn_bits);
        self.entries
            .set_field(idx, 0, self.tag_bits as usize, want_tag);
        self.entries
            .set_field(idx, self.tag_bits as usize, self.ppn_bits as usize, vpn);
        if fix {
            let fixes: Vec<(u32, bool)> = self.entry_hook.stuck_fixups(idx as u64).collect();
            for (bit, v) in fixes {
                self.entries.set(idx, bit as usize, v);
            }
        }
        let vfix = self.valid_hook.note_write(idx as u64, 0, 1);
        self.valid.set(idx, 0, true);
        if vfix {
            let fixes: Vec<(u32, bool)> = self.valid_hook.stuck_fixups(idx as u64).collect();
            for (bit, v) in fixes {
                self.valid.set(idx, bit as usize, v);
            }
        }
        (vaddr & 0xFFFF_FFFF, false)
    }

    /// Flips a bit in the entry plane (tag + translation bits).
    pub fn inject_entry_flip(&mut self, entry: u64, bit: u32) {
        self.entries.flip(entry as usize, bit as usize);
        self.entry_hook.arm_flip(entry, bit);
    }

    /// Forces a bit in the entry plane stuck at `value`.
    pub fn inject_entry_stuck(&mut self, entry: u64, bit: u32, value: bool) {
        self.entries.set(entry as usize, bit as usize, value);
        self.entry_hook.arm_stuck(entry, bit, value);
    }

    /// Flips an entry's valid bit.
    pub fn inject_valid_flip(&mut self, entry: u64) {
        self.valid.flip(entry as usize, 0);
        self.valid_hook.arm_flip(entry, 0);
    }

    /// Forces an entry's valid bit stuck at `value`.
    pub fn inject_valid_stuck(&mut self, entry: u64, value: bool) {
        self.valid.set(entry as usize, 0, value);
        self.valid_hook.arm_stuck(entry, 0, value);
    }

    /// Peeks at validity without fault-hook side effects.
    pub fn peek_valid(&self, entry: usize) -> bool {
        self.valid.get(entry, 0)
    }

    /// True when every armed fault is provably dead.
    pub fn all_faults_dead(&self) -> bool {
        self.entry_hook.all_faults_dead() && self.valid_hook.all_faults_dead()
    }

    /// True when any armed fault has been consumed.
    pub fn any_fault_consumed(&self) -> bool {
        self.entry_hook.any_fault_consumed() || self.valid_hook.any_fault_consumed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_translation_miss_then_hit() {
        let mut t = Tlb::new(TlbConfig::default());
        let (p1, hit1) = t.translate(0x12_3456);
        assert_eq!(p1, 0x12_3456);
        assert!(!hit1);
        let (p2, hit2) = t.translate(0x12_3456);
        assert_eq!(p2, 0x12_3456);
        assert!(hit2);
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn different_pages_use_different_entries() {
        let mut t = Tlb::new(TlbConfig::default());
        t.translate(0x1000);
        t.translate(0x2000);
        let (_, hit) = t.translate(0x1000);
        assert!(hit, "entry 1 undisturbed by entry 2");
    }

    #[test]
    fn conflicting_pages_evict() {
        let cfg = TlbConfig {
            entries: 4,
            page_bits: 12,
        };
        let mut t = Tlb::new(cfg);
        t.translate(0x1000); // vpn 1 → idx 1
        t.translate(0x1000 + 4 * 4096); // vpn 5 → idx 1, different tag
        let (_, hit) = t.translate(0x1000);
        assert!(!hit, "conflicting vpn evicted the entry");
    }

    #[test]
    fn ppn_fault_redirects_translation() {
        let mut t = Tlb::new(TlbConfig::default());
        t.translate(0x5000); // install vpn 5 at idx 5
                             // Flip PPN bit 0 (plane layout: [tag | ppn]).
        let tag_bits = t.entry_bits() - (32 - 12);
        t.inject_entry_flip(5, tag_bits);
        let (p, hit) = t.translate(0x5042);
        assert!(hit, "tag still matches");
        assert_eq!(p, 0x4042, "ppn bit 0 flipped: page 5 → page 4");
        assert!(t.any_fault_consumed());
    }

    #[test]
    fn tag_fault_forces_miss_and_is_overwritten_by_refill() {
        let mut t = Tlb::new(TlbConfig::default());
        t.translate(0x5000);
        t.inject_entry_flip(5, 0); // tag bit 0
        let (p, hit) = t.translate(0x5000);
        assert!(!hit, "corrupted tag mismatches");
        assert_eq!(p, 0x5000, "walk still produces the right translation");
        // The refill rewrote the whole entry: fault dead (it was read during
        // the failed compare though, so it counts as consumed).
        assert!(t.any_fault_consumed());
    }

    #[test]
    fn valid_fault_on_empty_entry_creates_garbage_hit_risk() {
        let mut t = Tlb::new(TlbConfig::default());
        // Force valid on an entry whose tag/ppn are zero.
        t.inject_valid_flip(0);
        assert!(t.peek_valid(0));
        // vaddr with vpn 0 → tag 0 matches the zeroed entry → ppn 0: the
        // garbage hit translates page 0 to page 0 (identity by luck).
        let (p, hit) = t.translate(0x0123);
        assert!(hit);
        assert_eq!(p, 0x0123);
    }

    #[test]
    fn stuck_valid_zero_forces_permanent_misses() {
        let mut t = Tlb::new(TlbConfig::default());
        t.inject_valid_stuck(5, false);
        t.translate(0x5000);
        let (_, hit) = t.translate(0x5000);
        assert!(!hit, "valid stuck at 0 never hits");
        assert!(!t.all_faults_dead());
    }
}
