//! Main memory and the two-level cache hierarchy.
//!
//! [`MemSystem`] wires L1I, L1D and a unified L2 (Table II geometries) over a
//! flat main memory, with the two policy switches that reproduce the
//! fundamental MARSS/gem5 difference the paper's Remark 3 analyses:
//!
//! * `store_through_to_memory` — MARSS keeps the QEMU hypervisor's memory
//!   image coherent by propagating committed stores to main memory as well
//!   as the cache; gem5 is a pure write-back hierarchy where a dirty line is
//!   the *only* copy of the data.
//! * next-line prefetchers on L1D/L1I — the components the paper *added* to
//!   MARSS (Table IV, "New").
//!
//! The hypervisor escape itself ([`MemSystem::bypass_read`] /
//! [`MemSystem::bypass_write`]) reads and writes main memory without
//! touching the caches — "when QEMU is invoked, the cache of the
//! microarchitecture is not accessed".

use crate::cache::{Cache, CacheConfig, Writeback};

/// Flat main memory. The paper injects only into on-core structures, so DRAM
/// carries no fault planes.
#[derive(Debug, Clone)]
pub struct MainMemory {
    bytes: Vec<u8>,
}

impl MainMemory {
    /// Allocates zeroed memory of `size` bytes.
    pub fn new(size: u64) -> MainMemory {
        MainMemory {
            bytes: vec![0; size as usize],
        }
    }

    /// Builds memory from an existing image.
    pub fn from_image(image: Vec<u8>) -> MainMemory {
        MainMemory { bytes: image }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Reads `buf.len()` bytes at `addr`. Out-of-range reads return zeros
    /// (an open bus), matching how a memory controller responds to wild
    /// addresses produced by corrupted tags/translations.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let n = self.bytes.len() as u64;
        if addr < n && addr + buf.len() as u64 <= n {
            let a = addr as usize;
            buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
        } else {
            buf.fill(0);
        }
    }

    /// Writes bytes at `addr`; out-of-range writes are dropped.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) {
        let n = self.bytes.len() as u64;
        if addr < n && addr + bytes.len() as u64 <= n {
            let a = addr as usize;
            self.bytes[a..a + bytes.len()].copy_from_slice(bytes);
        }
    }

    /// Direct slice view (loader/diagnostics).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Direct mutable view (loader only).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

/// Access latencies in cycles, added on top of the probing level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1_hit: u32,
    /// Additional latency of an L2 hit.
    pub l2_hit: u32,
    /// Additional latency of a main-memory access.
    pub memory: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l1_hit: 2,
            l2_hit: 12,
            memory: 80,
        }
    }
}

/// Policy switches distinguishing the MARSS-like from the gem5-like
/// hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPolicy {
    /// Committed stores also update main memory (MARSS/QEMU coherence).
    /// Required when the simulator uses the hypervisor bypass, which reads
    /// main memory directly.
    pub store_through_to_memory: bool,
    /// Next-line prefetch into L1D on misses (MaFIN's added prefetcher).
    pub l1d_prefetch: bool,
    /// Next-line prefetch into L1I on misses.
    pub l1i_prefetch: bool,
    /// Model the cache data/instruction arrays (the extension the paper
    /// added to MARSS at ≈40% throughput cost, §III.C). When `false` —
    /// original-MARSS performance mode — tags/valid/LRU are still modeled
    /// for timing, but data reads come straight from main memory and data
    /// arrays are neither filled nor written, so cache data faults cannot
    /// be injected. Requires `store_through_to_memory`.
    pub model_data_arrays: bool,
}

impl Default for MemPolicy {
    fn default() -> Self {
        MemPolicy {
            store_through_to_memory: false,
            l1d_prefetch: false,
            l1i_prefetch: false,
            model_data_arrays: true,
        }
    }
}

/// Hierarchy-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemSystemStats {
    /// Data reads served.
    pub data_reads: u64,
    /// Data writes served.
    pub data_writes: u64,
    /// Instruction fetch requests served.
    pub fetches: u64,
    /// Prefetch fills issued.
    pub prefetches: u64,
    /// Hypervisor-bypass accesses.
    pub bypasses: u64,
}

/// The two-level memory system.
#[derive(Debug, Clone)]
pub struct MemSystem {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Main memory.
    pub mem: MainMemory,
    /// Policy switches.
    pub policy: MemPolicy,
    /// Latency model.
    pub lat: LatencyModel,
    /// Statistics.
    pub stats: MemSystemStats,
}

impl MemSystem {
    /// Builds the hierarchy with the paper's Table II cache geometries over
    /// the given memory image.
    pub fn new(image: Vec<u8>, policy: MemPolicy) -> MemSystem {
        MemSystem {
            l1i: Cache::new(CacheConfig::L1),
            l1d: Cache::new(CacheConfig::L1),
            l2: Cache::new(CacheConfig::L2),
            mem: MainMemory::from_image(image),
            policy,
            lat: LatencyModel::default(),
            stats: MemSystemStats::default(),
        }
    }

    /// Builds with explicit cache configurations (used by sizing studies).
    pub fn with_configs(
        image: Vec<u8>,
        policy: MemPolicy,
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
    ) -> MemSystem {
        MemSystem {
            l1i: Cache::new(l1i),
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            mem: MainMemory::from_image(image),
            policy,
            lat: LatencyModel::default(),
            stats: MemSystemStats::default(),
        }
    }

    fn line_size(&self) -> usize {
        self.l2.config().line
    }

    /// Fetches a line into L2 (from memory if absent) and returns its index
    /// plus the added latency.
    fn l2_line(&mut self, line_addr: u64) -> (usize, u32) {
        if let Some(idx) = self.l2.lookup(line_addr) {
            self.l2.stats.read_hits += 1;
            return (idx, self.lat.l2_hit);
        }
        self.l2.stats.read_misses += 1;
        let mut data = vec![0u8; self.line_size()];
        if self.policy.model_data_arrays {
            self.mem.read(line_addr, &mut data);
        }
        if let Some(wb) = self.l2.fill(line_addr, &data) {
            self.mem.write(wb.addr, &wb.data);
        }
        let idx = self.l2.lookup(line_addr).expect("just filled");
        (idx, self.lat.l2_hit + self.lat.memory)
    }

    /// Copies a line out of L2 (filling it from memory if needed).
    fn line_via_l2(&mut self, line_addr: u64) -> (Vec<u8>, u32) {
        let (idx, lat) = self.l2_line(line_addr);
        let mut data = vec![0u8; self.line_size()];
        if self.policy.model_data_arrays {
            self.l2.read(idx, 0, &mut data);
        }
        (data, lat)
    }

    /// Accepts a dirty line evicted from an L1 and installs it in L2.
    fn absorb_writeback(&mut self, wb: Writeback) {
        if let Some(idx) = self.l2.lookup(wb.addr) {
            self.l2.stats.write_hits += 1;
            self.l2.write(idx, 0, &wb.data);
        } else {
            // Write-allocate on writeback: install, then mark dirty by
            // rewriting the data through the write path.
            self.l2.stats.write_misses += 1;
            if let Some(deeper) = self.l2.fill(wb.addr, &wb.data) {
                self.mem.write(deeper.addr, &deeper.data);
            }
            if let Some(idx) = self.l2.lookup(wb.addr) {
                self.l2.write(idx, 0, &wb.data);
            }
        }
    }

    /// Ensures the line containing `addr` is resident in L1I; returns its
    /// index and the added latency of any refill.
    fn ensure_l1i(&mut self, addr: u64) -> (usize, u32) {
        if let Some(idx) = self.l1i.lookup(addr) {
            self.l1i.stats.read_hits += 1;
            return (idx, 0);
        }
        self.l1i.stats.read_misses += 1;
        let line_addr = addr & !(self.line_size() as u64 - 1);
        let (data, lat) = self.line_via_l2(line_addr);
        // L1I lines are never dirty; fills cannot write back.
        let wb = self.l1i.fill(line_addr, &data);
        debug_assert!(wb.is_none());
        if self.policy.l1i_prefetch {
            self.prefetch_into_l1i(line_addr + self.line_size() as u64);
        }
        (self.l1i.lookup(addr).expect("just filled"), lat)
    }

    /// Ensures the line containing `addr` is resident in L1D; counts the
    /// probe as a read or write per `is_write`.
    fn ensure_l1d(&mut self, addr: u64, is_write: bool) -> (usize, u32) {
        if let Some(idx) = self.l1d.lookup(addr) {
            if is_write {
                self.l1d.stats.write_hits += 1;
            } else {
                self.l1d.stats.read_hits += 1;
            }
            return (idx, 0);
        }
        if is_write {
            self.l1d.stats.write_misses += 1;
        } else {
            self.l1d.stats.read_misses += 1;
        }
        let line_addr = addr & !(self.line_size() as u64 - 1);
        let (data, lat) = self.line_via_l2(line_addr);
        if let Some(wb) = self.l1d.fill(line_addr, &data) {
            self.absorb_writeback(wb);
        }
        if self.policy.l1d_prefetch && !is_write {
            self.prefetch_into_l1d(line_addr + self.line_size() as u64);
        }
        (self.l1d.lookup(addr).expect("just filled"), lat)
    }

    /// Instruction fetch of `buf.len()` bytes at `addr`. Returns latency.
    pub fn fetch(&mut self, addr: u64, buf: &mut [u8]) -> u32 {
        self.stats.fetches += 1;
        let line = self.line_size() as u64;
        let mut total = self.lat.l1_hit;
        let (mut a, mut off) = (addr, 0usize);
        while off < buf.len() {
            let n = ((line - a % line) as usize).min(buf.len() - off);
            let (idx, lat) = self.ensure_l1i(a);
            total += lat;
            if self.policy.model_data_arrays {
                let line_off = (a % line) as usize;
                self.l1i.read(idx, line_off, &mut buf[off..off + n]);
            } else {
                self.mem.read(a, &mut buf[off..off + n]);
            }
            off += n;
            a += n as u64;
        }
        total
    }

    /// Data read of `buf.len()` bytes at `addr`. Returns latency.
    pub fn read_data(&mut self, addr: u64, buf: &mut [u8]) -> u32 {
        self.stats.data_reads += 1;
        let line = self.line_size() as u64;
        let mut total = self.lat.l1_hit;
        let (mut a, mut off) = (addr, 0usize);
        while off < buf.len() {
            let n = ((line - a % line) as usize).min(buf.len() - off);
            let (idx, lat) = self.ensure_l1d(a, false);
            total += lat;
            if self.policy.model_data_arrays {
                let line_off = (a % line) as usize;
                self.l1d.read(idx, line_off, &mut buf[off..off + n]);
            } else {
                self.mem.read(a, &mut buf[off..off + n]);
            }
            off += n;
            a += n as u64;
        }
        total
    }

    /// Data write of `bytes` at `addr` (write-back, write-allocate).
    /// Returns latency.
    pub fn write_data(&mut self, addr: u64, bytes: &[u8]) -> u32 {
        self.stats.data_writes += 1;
        let line = self.line_size() as u64;
        let mut total = self.lat.l1_hit;
        let (mut a, mut off) = (addr, 0usize);
        while off < bytes.len() {
            let n = ((line - a % line) as usize).min(bytes.len() - off);
            let (idx, lat) = self.ensure_l1d(a, true);
            total += lat;
            if self.policy.model_data_arrays {
                let line_off = (a % line) as usize;
                self.l1d.write(idx, line_off, &bytes[off..off + n]);
            } else {
                // Performance mode still marks the line dirty for traffic
                // realism but does not maintain its data.
                let line_off = (a % line) as usize;
                let _ = (idx, line_off);
            }
            off += n;
            a += n as u64;
        }
        if self.policy.store_through_to_memory {
            self.mem.write(addr, bytes);
        }
        total
    }

    fn prefetch_into_l1i(&mut self, line_addr: u64) {
        if line_addr >= self.mem.size() || self.l1i.lookup(line_addr).is_some() {
            return;
        }
        self.stats.prefetches += 1;
        let (data, _) = self.line_via_l2(line_addr);
        let wb = self.l1i.fill(line_addr, &data);
        debug_assert!(wb.is_none());
    }

    fn prefetch_into_l1d(&mut self, line_addr: u64) {
        if line_addr >= self.mem.size() || self.l1d.lookup(line_addr).is_some() {
            return;
        }
        self.stats.prefetches += 1;
        let (data, _) = self.line_via_l2(line_addr);
        if let Some(wb) = self.l1d.fill(line_addr, &data) {
            self.absorb_writeback(wb);
        }
    }

    /// Hypervisor-bypass read: straight from main memory, caches untouched.
    pub fn bypass_read(&mut self, addr: u64, buf: &mut [u8]) {
        self.stats.bypasses += 1;
        self.mem.read(addr, buf);
    }

    /// Hypervisor-bypass write: straight to main memory.
    pub fn bypass_write(&mut self, addr: u64, bytes: &[u8]) {
        self.stats.bypasses += 1;
        self.mem.write(addr, bytes);
    }

    /// True when every armed cache fault is provably dead.
    pub fn all_cache_faults_dead(&self) -> bool {
        self.l1i.all_faults_dead() && self.l1d.all_faults_dead() && self.l2.all_faults_dead()
    }

    /// True when any armed cache fault has been consumed.
    pub fn any_cache_fault_consumed(&self) -> bool {
        self.l1i.any_fault_consumed()
            || self.l1d.any_fault_consumed()
            || self.l2.any_fault_consumed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(policy: MemPolicy) -> MemSystem {
        let mut image = vec![0u8; 1 << 20];
        for (i, b) in image.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        MemSystem::new(image, policy)
    }

    #[test]
    fn read_miss_then_hit_latency_ordering() {
        let mut s = sys(MemPolicy::default());
        let mut b = [0u8; 8];
        let miss_lat = s.read_data(0x4000, &mut b);
        let hit_lat = s.read_data(0x4000, &mut b);
        assert!(miss_lat > hit_lat);
        assert_eq!(hit_lat, s.lat.l1_hit);
        assert_eq!(s.l1d.stats.read_misses, 1);
        assert_eq!(s.l1d.stats.read_hits, 1);
    }

    #[test]
    fn read_returns_memory_contents() {
        let mut s = sys(MemPolicy::default());
        let mut b = [0u8; 4];
        s.read_data(1000, &mut b);
        let expect: Vec<u8> = (1000..1004).map(|i| (i % 251) as u8).collect();
        assert_eq!(&b, expect.as_slice());
    }

    #[test]
    fn write_then_read_through_cache() {
        let mut s = sys(MemPolicy::default());
        s.write_data(0x5000, &[1, 2, 3, 4]);
        let mut b = [0u8; 4];
        s.read_data(0x5000, &mut b);
        assert_eq!(b, [1, 2, 3, 4]);
        // Pure write-back: memory still has the old bytes.
        let mut m = [0u8; 1];
        s.mem.read(0x5000, &mut m);
        assert_eq!(m[0], (0x5000 % 251) as u8);
    }

    #[test]
    fn store_through_updates_memory_immediately() {
        let mut s = sys(MemPolicy {
            store_through_to_memory: true,
            ..Default::default()
        });
        s.write_data(0x5000, &[9, 9]);
        let mut m = [0u8; 2];
        s.mem.read(0x5000, &mut m);
        assert_eq!(m, [9, 9]);
    }

    #[test]
    fn straddling_access_spans_two_lines() {
        let mut s = sys(MemPolicy::default());
        let addr = 64 * 100 - 3; // 3 bytes in one line, 5 in the next
        s.write_data(addr, &[7; 8]);
        let mut b = [0u8; 8];
        s.read_data(addr, &mut b);
        assert_eq!(b, [7; 8]);
        assert!(s.l1d.stats.write_misses >= 2);
    }

    #[test]
    fn dirty_l1_eviction_lands_in_l2_and_survives() {
        let mut s = sys(MemPolicy::default());
        // Write a line, then blow it out of L1D by filling its set.
        s.write_data(0x0, &[0xAB; 8]);
        // L1: 128 sets * 64B = 8KB stride per set.
        for i in 1..=4u64 {
            let mut b = [0u8; 1];
            s.read_data(i * 8192, &mut b);
        }
        // The dirty line left L1D…
        assert!(s.l1d.stats.writebacks >= 1);
        // …but reading it back still returns the written data (from L2).
        let mut b = [0u8; 8];
        s.read_data(0x0, &mut b);
        assert_eq!(b, [0xAB; 8]);
    }

    #[test]
    fn bypass_accesses_skip_caches() {
        let mut s = sys(MemPolicy {
            store_through_to_memory: true,
            ..Default::default()
        });
        let mut b = [0u8; 4];
        s.bypass_read(0x6000, &mut b);
        assert_eq!(s.l1d.stats.read_hits + s.l1d.stats.read_misses, 0);
        s.bypass_write(0x6000, &[1, 2, 3, 4]);
        let mut m = [0u8; 4];
        s.mem.read(0x6000, &mut m);
        assert_eq!(m, [1, 2, 3, 4]);
        assert_eq!(s.stats.bypasses, 2);
    }

    #[test]
    fn bypass_sees_committed_stores_under_store_through() {
        // The MARSS coherence contract: hypervisor reads observe committed
        // stores because stores go through to memory.
        let mut s = sys(MemPolicy {
            store_through_to_memory: true,
            ..Default::default()
        });
        s.write_data(0x7000, &[0x42; 8]);
        let mut b = [0u8; 8];
        s.bypass_read(0x7000, &mut b);
        assert_eq!(b, [0x42; 8]);
    }

    #[test]
    fn fetch_path_uses_l1i_only() {
        let mut s = sys(MemPolicy::default());
        let mut b = [0u8; 16];
        s.fetch(0x10_000, &mut b);
        assert_eq!(s.l1i.stats.read_misses, 1);
        assert_eq!(s.l1d.stats.read_misses, 0);
        s.fetch(0x10_000, &mut b);
        assert_eq!(s.l1i.stats.read_hits, 1);
    }

    #[test]
    fn l1i_prefetch_pulls_next_line() {
        let mut s = sys(MemPolicy {
            l1i_prefetch: true,
            ..Default::default()
        });
        let mut b = [0u8; 4];
        s.fetch(0x10_000, &mut b);
        assert_eq!(s.stats.prefetches, 1);
        // Next line is already resident: no new miss.
        s.fetch(0x10_040, &mut b);
        assert_eq!(s.l1i.stats.read_misses, 1);
    }

    #[test]
    fn l1d_data_fault_corrupts_load_until_eviction() {
        let mut s = sys(MemPolicy::default());
        let mut b = [0u8; 1];
        s.read_data(0x8000, &mut b);
        let clean = b[0];
        let line = s.l1d.lookup(0x8000).unwrap();
        s.l1d.inject_data_flip(line as u64, 0);
        s.read_data(0x8000, &mut b);
        assert_eq!(b[0], clean ^ 1);
        assert!(s.l1d.any_fault_consumed());
    }

    #[test]
    fn clean_line_fault_dies_on_eviction_without_reaching_memory() {
        // MARSS-like store-through: a fault in a *clean* L1D line is lost on
        // eviction because memory already has the good copy — one source of
        // the extra masking the paper reports for MaFIN's L1D.
        let mut s = sys(MemPolicy {
            store_through_to_memory: true,
            ..Default::default()
        });
        let mut b = [0u8; 1];
        s.read_data(0x0, &mut b);
        let clean = b[0];
        let line = s.l1d.lookup(0x0).unwrap();
        s.l1d.inject_data_flip(line as u64, 0);
        // Evict by touching the same set (clean line: no writeback).
        for i in 1..=4u64 {
            s.read_data(i * 8192, &mut b);
        }
        s.read_data(0x0, &mut b);
        assert_eq!(b[0], clean, "refetched from clean memory");
    }

    #[test]
    fn dirty_line_fault_propagates_through_writeback() {
        let mut s = sys(MemPolicy::default());
        s.write_data(0x0, &[0x00; 8]);
        let line = s.l1d.lookup(0x0).unwrap();
        s.l1d.inject_data_flip(line as u64, 0);
        let mut b = [0u8; 1];
        for i in 1..=4u64 {
            s.read_data(i * 8192, &mut b);
        }
        s.read_data(0x0, &mut b);
        assert_eq!(b[0], 0x01, "corrupted dirty data survived the writeback");
    }

    #[test]
    fn out_of_range_writeback_is_dropped() {
        let mut m = MainMemory::new(64);
        m.write(1000, &[1, 2, 3]);
        let mut b = [9u8; 3];
        m.read(1000, &mut b);
        assert_eq!(b, [0, 0, 0], "open bus reads zeros");
    }
}
