//! The shared out-of-order core engine.
//!
//! One engine, two personalities: every policy switch in [`CorePolicy`]
//! corresponds to a MARSS/gem5 difference the paper documents (§IV and
//! Remarks 1–8). `difi-mars` instantiates the MARSS-flavoured configuration
//! behind MaFIN; `difi-gem` the gem5-flavoured ones behind GeFIN. See
//! DESIGN.md ("Engine-sharing note") for why the reproduction makes the
//! divergences explicit knobs instead of duplicating the codebase.
//!
//! The pipeline models fetch (with tournament + BTB + RAS prediction and
//! wrong-path execution), decode/crack, rename (physical register files,
//! walk-back recovery via the ROB), dispatch into a packed-payload issue
//! queue and a load/store queue, out-of-order issue with functional-unit
//! limits, speculative load issue with alias replay (MARSS policy),
//! store-to-load forwarding, branch resolution with full squash, and
//! in-order commit that drains stores, raises deferred ISA faults, trains
//! predictors, and calls into the nano-kernel.

pub mod engine;

use crate::cache::CacheConfig;
use crate::fault::{StructureDesc, StructureId};
use crate::mem::{MemPolicy, MemSystem};
use crate::predictor::{Btb, BtbConfig, Ras, Tournament, TournamentConfig};
use crate::queues::{IssueQueue, LsqDataArray, PayloadLimits, RenamedUop};
use crate::regfile::{FreeList, PhysRegFile, RenameMap};
use crate::residency::{Instrument, ResidencyLog};
use crate::stats::SimStats;
use crate::tlb::{Tlb, TlbConfig};
use crate::trace::{CoreTrace, TraceReport};
use difi_isa::program::{Isa, MemoryMap, Program};
use difi_isa::uop::{Fault, Reg, Width};

/// Branch-target-buffer organization (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtbOrg {
    /// MARSS: a 4-way 1K-entry BTB for direct branches plus a 4-way
    /// 512-entry BTB for indirect branches.
    MarssSplit,
    /// gem5: one direct-mapped 2K-entry BTB for all branches.
    Gem5Unified,
}

/// Load/store queue organization (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsqOrg {
    /// MARSS: one unified queue; loads *and* stores hold data.
    Unified {
        /// Total entries (32 in the paper's configuration).
        entries: usize,
    },
    /// gem5: split queues; only the store queue holds data.
    Split {
        /// Load-queue entries (16).
        loads: usize,
        /// Store-queue entries (16).
        stores: usize,
    },
}

impl LsqOrg {
    /// Entries carrying injectable data bits.
    pub fn data_entries(&self) -> usize {
        match *self {
            LsqOrg::Unified { entries } => entries,
            LsqOrg::Split { stores, .. } => stores,
        }
    }

    /// Total queue capacity.
    pub fn total_entries(&self) -> usize {
        match *self {
            LsqOrg::Unified { entries } => entries,
            LsqOrg::Split { loads, stores } => loads + stores,
        }
    }
}

/// Behavioural switches — each one is a documented MARSS/gem5 difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorePolicy {
    /// MARSS issues loads before older store addresses are known and
    /// replays on alias violations; gem5 waits (Remark 3).
    pub aggressive_loads: bool,
    /// Kernel services run through the QEMU-style hypervisor: memory
    /// accesses bypass the caches (MARSS), vs. through the cache hierarchy
    /// (gem5). Implies `store_through`.
    pub hypervisor_kernel: bool,
    /// Committed stores also update main memory (MARSS/QEMU coherence).
    pub store_through: bool,
    /// Undecodable instruction bytes raise a simulator assertion at decode
    /// time, even on the wrong path (MARSS); otherwise they become deferred
    /// ISA faults raised at commit (gem5) — Remark 8.
    pub decode_fault_asserts: bool,
    /// Corrupted issue-queue payloads raise assertions (MARSS) vs.
    /// simulator crashes (gem5) — Remark 8.
    pub payload_error_asserts: bool,
    /// Dense internal consistency checking (MARSS's assert-rich style).
    pub rich_asserts: bool,
    /// Next-line prefetchers on the L1 caches (added to MARSS, Table IV).
    pub prefetchers: bool,
    /// Model the cache data arrays (MaFIN's §III.C extension). `false`
    /// reproduces *original* MARSS performance mode: no cache-data fault
    /// injection, ≈40% faster (the EXP-OVH comparison). Requires
    /// `store_through`.
    pub model_cache_data: bool,
}

/// Full core configuration (Table II parameters plus the policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Integer physical registers.
    pub int_prf: usize,
    /// FP physical registers.
    pub fp_prf: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// LSQ organization.
    pub lsq: LsqOrg,
    /// Fetch/rename/issue/commit width in µops.
    pub width: usize,
    /// Fetch bytes per cycle.
    pub fetch_bytes: usize,
    /// Simple integer ALUs.
    pub int_alus: usize,
    /// Multiply/divide units.
    pub mul_div_units: usize,
    /// FP units.
    pub fp_units: usize,
    /// Memory ports (AGUs).
    pub mem_ports: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
    /// Tournament predictor configuration.
    pub predictor: TournamentConfig,
    /// BTB organization.
    pub btb: BtbOrg,
    /// L1I geometry.
    pub l1i: CacheConfig,
    /// L1D geometry.
    pub l1d: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Behaviour switches.
    pub policy: CorePolicy,
}

impl CoreConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when a parameter combination is unusable (e.g. too
    /// few physical registers to cover the architectural state).
    pub fn validate(&self) -> Result<(), String> {
        if self.int_prf < Reg::NUM_INT + self.width {
            return Err("integer PRF too small".into());
        }
        if self.fp_prf < Reg::NUM_FP + self.width {
            return Err("fp PRF too small".into());
        }
        if self.rob_entries == 0 || self.rob_entries > 256 {
            return Err("rob entries out of range (1..=256)".into());
        }
        if self.policy.hypervisor_kernel && !self.policy.store_through {
            return Err("hypervisor kernel requires store-through coherence".into());
        }
        if !self.policy.model_cache_data && !self.policy.store_through {
            return Err("performance mode (no data arrays) requires store-through".into());
        }
        if self.lsq.data_entries() > 128 {
            return Err("lsq too large for payload encoding".into());
        }
        Ok(())
    }
}

/// Terminal state of one detailed-simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimExit {
    /// Workload exited with this code.
    Exited(u64),
    /// Unrecoverable ISA fault killed the process.
    ProcessCrash(Fault),
    /// Nano-kernel panic.
    SystemCrash(&'static str),
    /// Simulator assertion fired (message attached).
    SimAssert(String),
    /// Simulator reached an unhandled internal state.
    SimCrash(String),
    /// Cycle budget or commit watchdog expired.
    Timeout,
    /// Early stop: every injected fault proven masked.
    EarlyMasked,
}

/// Result of a detailed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRun {
    /// Terminal state.
    pub exit: SimExit,
    /// Console output.
    pub output: Vec<u8>,
    /// Handled (logged) ISA exceptions.
    pub exceptions: u64,
    /// Runtime statistics.
    pub stats: SimStats,
    /// True when any injected fault was read after injection.
    pub fault_consumed: bool,
}

/// One reorder-buffer slot.
#[derive(Debug, Clone)]
pub(crate) struct RobSlot {
    pub seq: u64,
    pub pc: u64,
    pub ilen: u8,
    pub uop: RenamedUop,
    /// Destination architectural register (for walk-back), with its class.
    pub dest_arch: Option<Reg>,
    pub prev_preg: u16,
    pub completed: bool,
    pub issued: bool,
    /// Deferred ISA fault, surfaced at commit.
    pub fault: Option<Fault>,
    /// The fault came from the decoder (an undecodable instruction) — the
    /// Remark 8 case where MARSS asserts and gem5 raises an ISA fault.
    pub from_decoder: bool,
    /// Misaligned access fixed up at execute; logged at commit (arme).
    pub alignment_exc: bool,
    /// Resolved branch outcome.
    pub taken: bool,
    pub actual_next: u64,
    /// The fetch path taken after this instruction (prediction).
    pub pred_next: u64,
    pub iq_slot: Option<usize>,
    pub lsq_slot: Option<u16>,
    /// Last µop of its architectural instruction.
    pub inst_end: bool,
    /// Retry backoff for loads blocked on partial store overlaps.
    pub retry_at: u64,
}

/// Load/store queue entry metadata (data bits live in [`LsqDataArray`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LsqMeta {
    pub valid: bool,
    pub is_store: bool,
    pub addr: Option<u64>,
    pub width: Width,
    pub seq: u64,
    /// Store data written / load value staged.
    pub data_ready: bool,
    /// For split organization: index into the data array (stores only).
    pub data_slot: u16,
    /// Load already performed its memory access.
    pub executed: bool,
    /// Load obtained its value by forwarding from this store seq.
    pub forwarded_from: Option<u64>,
    pub rob: u16,
}

impl LsqMeta {
    pub(crate) fn empty() -> LsqMeta {
        LsqMeta {
            valid: false,
            is_store: false,
            addr: None,
            width: Width::B8,
            seq: 0,
            data_ready: false,
            data_slot: 0,
            executed: false,
            forwarded_from: None,
            rob: 0,
        }
    }
}

/// Pending completion event.
#[derive(Debug, Clone)]
pub(crate) enum EventKind {
    /// Write `value` to a physical register and wake dependents.
    WriteBack { preg: u16, fp: bool, value: u64 },
    /// Load writeback: read the staged value from the LSQ data array
    /// (unified organization) or use the captured value (split).
    LoadWriteBack {
        preg: u16,
        fp: bool,
        lsq_data_slot: Option<u16>,
        value: u64,
        width: Width,
        signed: bool,
    },
    /// Resolve a branch: compare against prediction, squash on mispredict.
    BranchResolve,
    /// Plain completion (stores, effect-free ops).
    Complete,
    /// Disarm an intermittent stuck fault.
    DisarmStuck {
        structure: StructureId,
        entry: u64,
        bit: u32,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Event {
    pub at: u64,
    pub rob: usize,
    pub seq: u64,
    pub kind: EventKind,
}

/// Front-end BTB unit covering both Table II organizations.
#[derive(Debug, Clone)]
pub(crate) struct BtbUnit {
    pub direct: Btb,
    /// Present only in the MARSS split organization.
    pub indirect: Option<Btb>,
}

impl BtbUnit {
    pub(crate) fn new(org: BtbOrg) -> BtbUnit {
        match org {
            BtbOrg::MarssSplit => BtbUnit {
                direct: Btb::new(BtbConfig::MARSS_DIRECT),
                indirect: Some(Btb::new(BtbConfig::MARSS_INDIRECT)),
            },
            BtbOrg::Gem5Unified => BtbUnit {
                direct: Btb::new(BtbConfig::GEM5),
                indirect: None,
            },
        }
    }

    pub(crate) fn lookup_direct(&mut self, pc: u64) -> Option<u64> {
        self.direct.lookup(pc)
    }

    pub(crate) fn lookup_indirect(&mut self, pc: u64) -> Option<u64> {
        match &mut self.indirect {
            Some(b) => b.lookup(pc),
            None => self.direct.lookup(pc),
        }
    }

    pub(crate) fn update_direct(&mut self, pc: u64, target: u64) {
        self.direct.update(pc, target);
    }

    pub(crate) fn update_indirect(&mut self, pc: u64, target: u64) {
        match &mut self.indirect {
            Some(b) => b.update(pc, target),
            None => self.direct.update(pc, target),
        }
    }

    /// Total injectable entries across the unit.
    pub(crate) fn entries(&self) -> usize {
        self.direct.entries() + self.indirect.as_ref().map_or(0, |b| b.entries())
    }

    pub(crate) fn entry_bits(&self) -> u64 {
        self.direct.entry_bits()
    }

    /// Routes an injection entry index to the right BTB.
    pub(crate) fn inject_flip(&mut self, entry: u64, bit: u32) {
        let d = self.direct.entries() as u64;
        if entry < d {
            self.direct.inject_flip(entry, bit);
        } else if let Some(b) = &mut self.indirect {
            b.inject_flip(entry - d, bit);
        }
    }

    pub(crate) fn inject_stuck(&mut self, entry: u64, bit: u32, value: bool) {
        let d = self.direct.entries() as u64;
        if entry < d {
            self.direct.inject_stuck(entry, bit, value);
        } else if let Some(b) = &mut self.indirect {
            b.inject_stuck(entry - d, bit, value);
        }
    }

    pub(crate) fn all_faults_dead(&self) -> bool {
        self.direct.hook.all_faults_dead()
            && self
                .indirect
                .as_ref()
                .is_none_or(|b| b.hook.all_faults_dead())
    }

    pub(crate) fn any_fault_consumed(&self) -> bool {
        self.direct.hook.any_fault_consumed()
            || self
                .indirect
                .as_ref()
                .is_some_and(|b| b.hook.any_fault_consumed())
    }
}

/// A decoded instruction waiting for rename.
#[derive(Debug, Clone)]
pub(crate) struct PendingInst {
    pub pc: u64,
    pub len: u8,
    pub uops: Vec<difi_isa::uop::Uop>,
    pub pred_next: u64,
    /// Deferred decode fault (gem5 policy).
    pub decode_fault: Option<Fault>,
}

/// The out-of-order core. Construct one per run via [`OoOCore::new`], apply
/// faults with [`OoOCore::apply_engine_fault`] (or mid-run via the engine's
/// schedule), and drive it with [`OoOCore::run`].
#[derive(Debug, Clone)]
pub struct OoOCore {
    pub(crate) cfg: CoreConfig,
    pub(crate) isa: Isa,
    pub(crate) map: MemoryMap,
    /// The memory system (public for diagnostics and injection glue).
    pub sys: MemSystem,
    pub(crate) itlb: Tlb,
    pub(crate) dtlb: Tlb,
    pub(crate) pred: Tournament,
    pub(crate) btb: BtbUnit,
    pub(crate) ras: Ras,
    pub(crate) iprf: PhysRegFile,
    pub(crate) fprf: PhysRegFile,
    pub(crate) imap: RenameMap,
    pub(crate) fmap: RenameMap,
    pub(crate) ifree: FreeList,
    pub(crate) ffree: FreeList,
    pub(crate) iq: IssueQueue,
    pub(crate) rob: Vec<Option<RobSlot>>,
    pub(crate) rob_head: usize,
    pub(crate) rob_tail: usize,
    pub(crate) rob_count: usize,
    pub(crate) lsq_meta: Vec<LsqMeta>,
    pub(crate) lsq_order: Vec<u16>,
    pub(crate) lsq_data: LsqDataArray,
    pub(crate) events: Vec<Event>,
    pub(crate) fetch_pc: u64,
    pub(crate) fetch_queue: std::collections::VecDeque<PendingInst>,
    pub(crate) fetch_wait: bool,
    pub(crate) fetch_stall_until: u64,
    /// Syscalls serialize the pipeline (x86 `syscall` semantics): rename
    /// stalls while one is in flight so commit sees architectural state.
    pub(crate) syscalls_in_rob: u32,
    pub(crate) cycle: u64,
    pub(crate) seq_counter: u64,
    pub(crate) last_commit_cycle: u64,
    pub(crate) output: Vec<u8>,
    pub(crate) exit: Option<SimExit>,
    /// Runtime statistics (public: dispatchers snapshot it).
    pub stats: SimStats,
    pub(crate) injected: Vec<StructureId>,
    pub(crate) residency_enabled: Vec<StructureId>,
    /// Fault-propagation tracing state; `None` (the common case) costs one
    /// pointer test per cycle and per committed µop.
    pub(crate) trace: Option<Box<CoreTrace>>,
}

impl OoOCore {
    /// Boots a core with `program` loaded and the nano-kernel installed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`] or the
    /// program fails validation — both indicate caller bugs, not runtime
    /// conditions.
    pub fn new(cfg: CoreConfig, program: &Program) -> OoOCore {
        cfg.validate().expect("invalid core configuration");
        program.validate().expect("invalid program");
        let mut image = program.initial_memory();
        difi_isa::kernel::install(&mut image, &program.map);
        let mem_policy = MemPolicy {
            store_through_to_memory: cfg.policy.store_through,
            l1d_prefetch: cfg.policy.prefetchers,
            l1i_prefetch: cfg.policy.prefetchers,
            model_data_arrays: cfg.policy.model_cache_data,
        };
        let sys = MemSystem::with_configs(image, mem_policy, cfg.l1i, cfg.l1d, cfg.l2);
        let mut iprf = PhysRegFile::new(cfg.int_prf);
        let fprf = PhysRegFile::new(cfg.fp_prf);
        // Boot register state: arch reg i → phys i; SP initialized.
        iprf.write(Reg::SP.0 as u16, program.map.stack_top);
        let lsq_n = cfg.lsq.total_entries();
        let payload_limits = PayloadLimits {
            int_prf: cfg.int_prf as u16,
            fp_prf: cfg.fp_prf as u16,
            rob: cfg.rob_entries as u16,
            lsq: lsq_n as u16,
        };
        OoOCore {
            isa: program.isa,
            map: program.map,
            sys,
            itlb: Tlb::new(TlbConfig::default()),
            dtlb: Tlb::new(TlbConfig::default()),
            pred: Tournament::new(cfg.predictor),
            btb: BtbUnit::new(cfg.btb),
            ras: Ras::new(cfg.ras_depth),
            iprf,
            fprf,
            imap: RenameMap::identity(Reg::NUM_INT),
            fmap: RenameMap::identity(Reg::NUM_FP),
            ifree: FreeList::new(Reg::NUM_INT as u16, cfg.int_prf as u16),
            ffree: FreeList::new(Reg::NUM_FP as u16, cfg.fp_prf as u16),
            iq: IssueQueue::new(cfg.iq_entries, payload_limits),
            rob: vec![None; cfg.rob_entries],
            rob_head: 0,
            rob_tail: 0,
            rob_count: 0,
            lsq_meta: vec![LsqMeta::empty(); lsq_n],
            lsq_order: Vec::with_capacity(lsq_n),
            lsq_data: LsqDataArray::new(cfg.lsq.data_entries()),
            events: Vec::new(),
            fetch_pc: program.entry,
            fetch_queue: std::collections::VecDeque::new(),
            fetch_wait: false,
            fetch_stall_until: 0,
            syscalls_in_rob: 0,
            cycle: 0,
            seq_counter: 0,
            last_commit_cycle: 0,
            output: Vec::new(),
            exit: None,
            stats: SimStats::default(),
            injected: Vec::new(),
            residency_enabled: Vec::new(),
            trace: None,
            cfg,
        }
    }

    /// The injectable structures of this configuration (the per-simulator
    /// realization of Table IV).
    pub fn structures(cfg: &CoreConfig) -> Vec<StructureDesc> {
        let l1_lines = (cfg.l1d.sets * cfg.l1d.ways) as u64;
        let l1i_lines = (cfg.l1i.sets * cfg.l1i.ways) as u64;
        let l2_lines = (cfg.l2.sets * cfg.l2.ways) as u64;
        let line_bits = (cfg.l1d.line * 8) as u64;
        // Tag widths per the cache's 32-bit physical space.
        let tag_bits =
            |sets: usize, line: usize| (32 - sets.trailing_zeros() - line.trailing_zeros()) as u64;
        let tlb = Tlb::new(TlbConfig::default());
        let btb_unit = BtbUnit::new(cfg.btb);
        vec![
            StructureDesc {
                id: StructureId::IntRegFile,
                entries: cfg.int_prf as u64,
                bits: 64,
            },
            StructureDesc {
                id: StructureId::FpRegFile,
                entries: cfg.fp_prf as u64,
                bits: 64,
            },
            StructureDesc {
                id: StructureId::IssueQueue,
                entries: cfg.iq_entries as u64,
                bits: crate::queues::IQ_ENTRY_BITS as u64,
            },
            StructureDesc {
                id: StructureId::LsqData,
                entries: cfg.lsq.data_entries() as u64,
                bits: 64,
            },
            StructureDesc {
                id: StructureId::L1dData,
                entries: l1_lines,
                bits: line_bits,
            },
            StructureDesc {
                id: StructureId::L1dTag,
                entries: l1_lines,
                bits: tag_bits(cfg.l1d.sets, cfg.l1d.line),
            },
            StructureDesc {
                id: StructureId::L1dValid,
                entries: l1_lines,
                bits: 1,
            },
            StructureDesc {
                id: StructureId::L1iData,
                entries: l1i_lines,
                bits: line_bits,
            },
            StructureDesc {
                id: StructureId::L1iTag,
                entries: l1i_lines,
                bits: tag_bits(cfg.l1i.sets, cfg.l1i.line),
            },
            StructureDesc {
                id: StructureId::L1iValid,
                entries: l1i_lines,
                bits: 1,
            },
            StructureDesc {
                id: StructureId::L2Data,
                entries: l2_lines,
                bits: line_bits,
            },
            StructureDesc {
                id: StructureId::L2Tag,
                entries: l2_lines,
                bits: tag_bits(cfg.l2.sets, cfg.l2.line),
            },
            StructureDesc {
                id: StructureId::L2Valid,
                entries: l2_lines,
                bits: 1,
            },
            StructureDesc {
                id: StructureId::DtlbEntry,
                entries: tlb.entries() as u64,
                bits: tlb.entry_bits() as u64,
            },
            StructureDesc {
                id: StructureId::DtlbValid,
                entries: tlb.entries() as u64,
                bits: 1,
            },
            StructureDesc {
                id: StructureId::ItlbEntry,
                entries: tlb.entries() as u64,
                bits: tlb.entry_bits() as u64,
            },
            StructureDesc {
                id: StructureId::ItlbValid,
                entries: tlb.entries() as u64,
                bits: 1,
            },
            StructureDesc {
                id: StructureId::Btb,
                entries: btb_unit.entries() as u64,
                bits: btb_unit.entry_bits(),
            },
            StructureDesc {
                id: StructureId::Ras,
                entries: cfg.ras_depth as u64,
                bits: crate::predictor::RAS_ENTRY_BITS as u64,
            },
        ]
    }

    /// The instrumented component backing a data-plane structure, if any.
    fn instrumented(&mut self, s: StructureId) -> Option<&mut dyn Instrument> {
        Some(match s {
            StructureId::IntRegFile => &mut self.iprf,
            StructureId::FpRegFile => &mut self.fprf,
            StructureId::IssueQueue => &mut self.iq,
            StructureId::LsqData => &mut self.lsq_data,
            StructureId::L1dData => &mut self.sys.l1d,
            StructureId::L1iData => &mut self.sys.l1i,
            StructureId::L2Data => &mut self.sys.l2,
            _ => return None,
        })
    }

    /// Enables residency tracing (golden-run instrumentation for the ACE
    /// analysis) on every data-plane structure in `which`.
    ///
    /// Structures for which
    /// [`residency_prune_safe`](crate::residency::residency_prune_safe) is
    /// false are silently skipped: their traces could not license any
    /// pruning or AVF conclusion, so recording them would only mislead.
    pub fn enable_residency(&mut self, which: &[StructureId]) {
        for &s in which {
            if !crate::residency::residency_prune_safe(s) || self.residency_enabled.contains(&s) {
                continue;
            }
            let Some(c) = self.instrumented(s) else {
                continue;
            };
            c.enable_residency();
            self.residency_enabled.push(s);
        }
    }

    /// Advances every attached tracker's cycle stamp (called once per cycle
    /// at the top of the run loop).
    pub(crate) fn residency_tick_all(&mut self) {
        if self.residency_enabled.is_empty() {
            return;
        }
        let cycle = self.cycle;
        for i in 0..self.residency_enabled.len() {
            let s = self.residency_enabled[i];
            if let Some(c) = self.instrumented(s) {
                c.residency_tick(cycle);
            }
        }
    }

    /// Detaches all residency trackers, sealing each into a
    /// [`ResidencyLog`] stamped with this run's cycle count.
    pub fn take_residency(&mut self) -> Vec<ResidencyLog> {
        let descs = Self::structures(&self.cfg);
        let cycles = self.cycle;
        let enabled = std::mem::take(&mut self.residency_enabled);
        let mut logs = Vec::new();
        for s in enabled {
            let Some(c) = self.instrumented(s) else {
                continue;
            };
            let Some(t) = c.take_residency() else {
                continue;
            };
            let Some(desc) = descs.iter().find(|d| d.id == s) else {
                continue;
            };
            logs.push(t.into_log(*desc, cycles));
        }
        logs
    }

    // ---------------------------------------------------------------- tracing

    /// Enables golden-mode tracing: the core records one FNV-1a signature
    /// per committed architectural instruction (PC + destination values).
    /// Pure observation — destination values are read with
    /// [`PhysRegFile::peek`], so machine state and fault liveness are
    /// untouched and the run's result is unchanged.
    pub fn enable_signature_recording(&mut self) {
        self.trace = Some(Box::new(CoreTrace::recording()));
    }

    /// Detaches the trace and returns the recorded golden signature vector
    /// (empty when recording was never enabled).
    pub fn take_signature(&mut self) -> Vec<u64> {
        match self.trace.take() {
            Some(t) => t.into_signature(),
            None => Vec::new(),
        }
    }

    /// Enables injection-mode tracing: fault applications and liveness
    /// transitions are cycle-stamped, and each committed instruction is
    /// compared against `golden` (when given) to find the first
    /// architectural divergence. Comparison starts at this core's current
    /// committed-instruction count, so a warm-started clone — whose
    /// fault-free prefix already retired inside the snapshot — lines up
    /// with the golden vector exactly as a cold run does.
    pub fn enable_fault_tracing(&mut self, golden: Option<std::sync::Arc<Vec<u64>>>) {
        let at = self.stats.committed_instructions as usize;
        self.trace = Some(Box::new(CoreTrace::comparing(golden, at)));
    }

    /// The raw observations of a traced run: fault applications, per-watch
    /// lifecycles and the first divergence. `None` when tracing was never
    /// enabled.
    pub fn trace_report(&self) -> Option<TraceReport> {
        let t = self.trace.as_ref()?;
        let mut watches = Vec::new();
        for &s in &self.injected {
            for r in self.hook_watch_reports(s) {
                watches.push((s, r));
            }
        }
        Some(TraceReport {
            injected: t.injected_events().to_vec(),
            watches,
            divergence: t.divergence(),
        })
    }

    /// Watch lifecycles of every hook `s` arms into, in arm order. The
    /// routing mirrors the engine's fault routing.
    fn hook_watch_reports(&self, s: StructureId) -> Vec<crate::fault::WatchReport> {
        match s {
            StructureId::IntRegFile => self.iprf.hook.watch_reports(),
            StructureId::FpRegFile => self.fprf.hook.watch_reports(),
            StructureId::IssueQueue => self.iq.hook.watch_reports(),
            StructureId::LsqData => self.lsq_data.hook.watch_reports(),
            StructureId::L1dData => self.sys.l1d.data_hook.watch_reports(),
            StructureId::L1dTag => self.sys.l1d.tag_hook.watch_reports(),
            StructureId::L1dValid => self.sys.l1d.valid_hook.watch_reports(),
            StructureId::L1iData => self.sys.l1i.data_hook.watch_reports(),
            StructureId::L1iTag => self.sys.l1i.tag_hook.watch_reports(),
            StructureId::L1iValid => self.sys.l1i.valid_hook.watch_reports(),
            StructureId::L2Data => self.sys.l2.data_hook.watch_reports(),
            StructureId::L2Tag => self.sys.l2.tag_hook.watch_reports(),
            StructureId::L2Valid => self.sys.l2.valid_hook.watch_reports(),
            StructureId::DtlbEntry => self.dtlb.entry_hook.watch_reports(),
            StructureId::DtlbValid => self.dtlb.valid_hook.watch_reports(),
            StructureId::ItlbEntry => self.itlb.entry_hook.watch_reports(),
            StructureId::ItlbValid => self.itlb.valid_hook.watch_reports(),
            StructureId::Btb => {
                let mut v = self.btb.direct.hook.watch_reports();
                if let Some(i) = &self.btb.indirect {
                    v.extend(i.hook.watch_reports());
                }
                v
            }
            StructureId::Ras => self.ras.hook.watch_reports(),
        }
    }

    /// Advances the cycle stamp of every hook holding injected faults.
    /// Called from the run loop only while tracing; an untraced run never
    /// reaches the routing below.
    pub(crate) fn fault_trace_tick(&mut self) {
        if self.trace.is_none() || self.injected.is_empty() {
            return;
        }
        let cycle = self.cycle;
        for i in 0..self.injected.len() {
            self.set_hook_now(self.injected[i], cycle);
        }
    }

    fn set_hook_now(&mut self, s: StructureId, cycle: u64) {
        match s {
            StructureId::IntRegFile => self.iprf.hook.set_now(cycle),
            StructureId::FpRegFile => self.fprf.hook.set_now(cycle),
            StructureId::IssueQueue => self.iq.hook.set_now(cycle),
            StructureId::LsqData => self.lsq_data.hook.set_now(cycle),
            StructureId::L1dData => self.sys.l1d.data_hook.set_now(cycle),
            StructureId::L1dTag => self.sys.l1d.tag_hook.set_now(cycle),
            StructureId::L1dValid => self.sys.l1d.valid_hook.set_now(cycle),
            StructureId::L1iData => self.sys.l1i.data_hook.set_now(cycle),
            StructureId::L1iTag => self.sys.l1i.tag_hook.set_now(cycle),
            StructureId::L1iValid => self.sys.l1i.valid_hook.set_now(cycle),
            StructureId::L2Data => self.sys.l2.data_hook.set_now(cycle),
            StructureId::L2Tag => self.sys.l2.tag_hook.set_now(cycle),
            StructureId::L2Valid => self.sys.l2.valid_hook.set_now(cycle),
            StructureId::DtlbEntry => self.dtlb.entry_hook.set_now(cycle),
            StructureId::DtlbValid => self.dtlb.valid_hook.set_now(cycle),
            StructureId::ItlbEntry => self.itlb.entry_hook.set_now(cycle),
            StructureId::ItlbValid => self.itlb.valid_hook.set_now(cycle),
            StructureId::Btb => {
                self.btb.direct.hook.set_now(cycle);
                if let Some(i) = &mut self.btb.indirect {
                    i.hook.set_now(cycle);
                }
            }
            StructureId::Ras => self.ras.hook.set_now(cycle),
        }
    }
}
