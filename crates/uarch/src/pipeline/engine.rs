//! Cycle-driven execution engine of [`OoOCore`].

use super::*;
use crate::fault::FaultKind;
use difi_isa::emu::{eval_fp_op, eval_fp_predicate, eval_int_op, extend};
use difi_isa::kernel::{self, KernelMem, KernelOutcome};
use difi_isa::uop::{BranchKind, FpOp, Uop, UopKind};
use difi_isa::MAX_INST_LEN;

/// One fault in engine coordinates (dispatchers translate the campaign's
/// serializable records into this form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineFault {
    /// Target structure.
    pub structure: StructureId,
    /// Entry within the structure.
    pub entry: u64,
    /// Bit within the entry.
    pub bit: u32,
    /// Flip or stuck polarity.
    pub kind: FaultKind,
    /// Injection cycle (`None` = use `at_instruction`).
    pub at_cycle: Option<u64>,
    /// Injection at the Nth committed instruction.
    pub at_instruction: Option<u64>,
    /// Stuck window length in cycles (`None` = permanent for stuck kinds).
    pub duration_cycles: Option<u64>,
}

/// Engine-level run limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineLimits {
    /// Hard cycle ceiling.
    pub max_cycles: u64,
    /// Enable the §III.B.2 early-stop optimizations.
    pub early_stop: bool,
    /// Cycles without a commit before declaring deadlock.
    pub deadlock_window: u64,
}

/// Why an early-masked stop fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EarlyWhy {
    /// Fault landed in an invalid/unused entry of a data plane.
    DeadEntry,
    /// Every faulty bit was overwritten before being read.
    Overwritten,
}

const ITLB_MISS_PENALTY: u64 = 5;
const FETCH_QUEUE_CAP: usize = 12;

impl OoOCore {
    /// Runs the core to a terminal state, injecting `faults` on schedule.
    pub fn run(&mut self, faults: &[EngineFault], limits: &EngineLimits) -> SimRun {
        self.run_until(faults, limits, None)
            .expect("a run without a pause cycle always reaches a terminal state")
    }

    /// Runs the core like [`OoOCore::run`], but pauses at the *beginning* of
    /// cycle `pause_at` — before any of that cycle's work (residency tick,
    /// limit checks, fault application, pipeline stages).
    ///
    /// Returns `None` on a pause. The core then holds exactly the state a
    /// cold run would have at the top of cycle `pause_at`, so a `Clone` of
    /// it is a resumable snapshot: calling `run`/`run_until` on the clone
    /// with the full fault list replays the remainder identically, because
    /// the per-run scheduling state (`pending` faults) is rebuilt from the
    /// argument and no fault can have fired before the pause on a
    /// fault-free prefix.
    ///
    /// Pausing is only meaningful while no fault has been applied yet; the
    /// warm-start engine pauses fault-free golden runs exclusively.
    pub fn run_until(
        &mut self,
        faults: &[EngineFault],
        limits: &EngineLimits,
        pause_at: Option<u64>,
    ) -> Option<SimRun> {
        let mut pending: Vec<EngineFault> = faults.to_vec();
        let mut dead_entry_all = !pending.is_empty();
        let mut applied_any = false;

        while self.exit.is_none() {
            if pause_at == Some(self.cycle) {
                return None;
            }
            self.residency_tick_all();
            if self.cycle >= limits.max_cycles {
                self.exit = Some(SimExit::Timeout);
                break;
            }
            if self.cycle.saturating_sub(self.last_commit_cycle) > limits.deadlock_window {
                self.exit = Some(SimExit::Timeout);
                break;
            }
            // Apply cycle-scheduled faults.
            let mut i = 0;
            while i < pending.len() {
                if pending[i].at_cycle == Some(self.cycle) {
                    let f = pending.remove(i);
                    let unused = self.apply_engine_fault(&f);
                    dead_entry_all &= unused;
                    applied_any = true;
                } else {
                    i += 1;
                }
            }
            self.fault_trace_tick();
            if applied_any
                && pending.is_empty()
                && limits.early_stop
                && (dead_entry_all || (self.faults_dead() && !self.faults_consumed()))
            {
                self.exit = Some(SimExit::EarlyMasked);
                break;
            }

            let committed_before = self.stats.committed_instructions;
            self.commit_stage();
            // Instruction-scheduled faults fire when the commit counter
            // crosses their threshold.
            if self.stats.committed_instructions > committed_before {
                let now = self.stats.committed_instructions;
                let mut i = 0;
                while i < pending.len() {
                    if pending[i].at_instruction.is_some_and(|n| n <= now) {
                        let f = pending.remove(i);
                        let unused = self.apply_engine_fault(&f);
                        dead_entry_all &= unused;
                        applied_any = true;
                    } else {
                        i += 1;
                    }
                }
                self.fault_trace_tick();
            }
            if self.exit.is_some() {
                break;
            }
            self.fire_events();
            if self.exit.is_some() {
                break;
            }
            self.issue_stage();
            if self.exit.is_some() {
                break;
            }
            self.rename_stage();
            self.fetch_stage();
            self.cycle += 1;
        }

        self.stats.cycles = self.cycle;
        self.stats.predictor = self.pred.stats;
        self.stats.l1i = self.sys.l1i.stats;
        self.stats.l1d = self.sys.l1d.stats;
        self.stats.l2 = self.sys.l2.stats;
        self.stats.itlb = self.itlb.stats;
        self.stats.dtlb = self.dtlb.stats;
        let exit = self.exit.clone().unwrap_or(SimExit::Timeout);
        Some(SimRun {
            exit,
            output: std::mem::take(&mut self.output),
            exceptions: self.stats.exceptions,
            stats: self.stats,
            fault_consumed: self.faults_consumed(),
        })
    }

    /// Why the most recent [`SimExit::EarlyMasked`] fired. Valid right after
    /// `run` returns that exit; derived from the hooks.
    pub fn early_reason(&self) -> EarlyWhy {
        if self.faults_dead() {
            EarlyWhy::Overwritten
        } else {
            EarlyWhy::DeadEntry
        }
    }

    // ----------------------------------------------------------------- faults

    /// Applies one fault now. Returns `true` when it landed in a provably
    /// unused entry of a dead-entry-safe data plane (early-stop rule i).
    pub fn apply_engine_fault(&mut self, f: &EngineFault) -> bool {
        if !self.injected.contains(&f.structure) {
            self.injected.push(f.structure);
        }
        if let Some(t) = &mut self.trace {
            t.note_injected(crate::trace::InjectedEvent {
                cycle: self.cycle,
                structure: f.structure,
                entry: f.entry,
                bit: f.bit,
            });
        }
        let unused = f.structure.dead_entry_stop_safe() && self.entry_unused(f.structure, f.entry);
        match f.kind {
            FaultKind::Flip => self.route_flip(f.structure, f.entry, f.bit),
            FaultKind::Stuck0 | FaultKind::Stuck1 => {
                let v = f.kind == FaultKind::Stuck1;
                self.route_stuck(f.structure, f.entry, f.bit, v);
                if let Some(d) = f.duration_cycles {
                    self.events.push(Event {
                        at: self.cycle + d,
                        rob: usize::MAX,
                        seq: u64::MAX,
                        kind: EventKind::DisarmStuck {
                            structure: f.structure,
                            entry: f.entry,
                            bit: f.bit,
                        },
                    });
                }
            }
        }
        unused
    }

    fn route_flip(&mut self, s: StructureId, e: u64, b: u32) {
        match s {
            StructureId::IntRegFile => self.iprf.inject_flip(e, b),
            StructureId::FpRegFile => self.fprf.inject_flip(e, b),
            StructureId::IssueQueue => self.iq.inject_flip(e, b),
            StructureId::LsqData => self.lsq_data.inject_flip(e, b),
            StructureId::L1dData => self.sys.l1d.inject_data_flip(e, b),
            StructureId::L1dTag => self.sys.l1d.inject_tag_flip(e, b),
            StructureId::L1dValid => self.sys.l1d.inject_valid_flip(e),
            StructureId::L1iData => self.sys.l1i.inject_data_flip(e, b),
            StructureId::L1iTag => self.sys.l1i.inject_tag_flip(e, b),
            StructureId::L1iValid => self.sys.l1i.inject_valid_flip(e),
            StructureId::L2Data => self.sys.l2.inject_data_flip(e, b),
            StructureId::L2Tag => self.sys.l2.inject_tag_flip(e, b),
            StructureId::L2Valid => self.sys.l2.inject_valid_flip(e),
            StructureId::DtlbEntry => self.dtlb.inject_entry_flip(e, b),
            StructureId::DtlbValid => self.dtlb.inject_valid_flip(e),
            StructureId::ItlbEntry => self.itlb.inject_entry_flip(e, b),
            StructureId::ItlbValid => self.itlb.inject_valid_flip(e),
            StructureId::Btb => self.btb.inject_flip(e, b),
            StructureId::Ras => self.ras.inject_flip(e, b),
        }
    }

    fn route_stuck(&mut self, s: StructureId, e: u64, b: u32, v: bool) {
        match s {
            StructureId::IntRegFile => self.iprf.inject_stuck(e, b, v),
            StructureId::FpRegFile => self.fprf.inject_stuck(e, b, v),
            StructureId::IssueQueue => self.iq.inject_stuck(e, b, v),
            StructureId::LsqData => self.lsq_data.inject_stuck(e, b, v),
            StructureId::L1dData => self.sys.l1d.inject_data_stuck(e, b, v),
            StructureId::L1dTag => self.sys.l1d.inject_tag_stuck(e, b, v),
            StructureId::L1dValid => self.sys.l1d.inject_valid_stuck(e, v),
            StructureId::L1iData => self.sys.l1i.inject_data_stuck(e, b, v),
            StructureId::L1iTag => self.sys.l1i.inject_tag_stuck(e, b, v),
            StructureId::L1iValid => self.sys.l1i.inject_valid_stuck(e, v),
            StructureId::L2Data => self.sys.l2.inject_data_stuck(e, b, v),
            StructureId::L2Tag => self.sys.l2.inject_tag_stuck(e, b, v),
            StructureId::L2Valid => self.sys.l2.inject_valid_stuck(e, v),
            StructureId::DtlbEntry => self.dtlb.inject_entry_stuck(e, b, v),
            StructureId::DtlbValid => self.dtlb.inject_valid_stuck(e, v),
            StructureId::ItlbEntry => self.itlb.inject_entry_stuck(e, b, v),
            StructureId::ItlbValid => self.itlb.inject_valid_stuck(e, v),
            StructureId::Btb => self.btb.inject_stuck(e, b, v),
            StructureId::Ras => self.ras.inject_stuck(e, b, v),
        }
    }

    fn disarm_stuck(&mut self, s: StructureId, e: u64, b: u32) {
        match s {
            StructureId::IntRegFile => self.iprf.hook.disarm_stuck(e, b),
            StructureId::FpRegFile => self.fprf.hook.disarm_stuck(e, b),
            StructureId::IssueQueue => self.iq.hook.disarm_stuck(e, b),
            StructureId::LsqData => self.lsq_data.hook.disarm_stuck(e, b),
            StructureId::L1dData => self.sys.l1d.data_hook.disarm_stuck(e, b),
            StructureId::L1dTag => self.sys.l1d.tag_hook.disarm_stuck(e, b),
            StructureId::L1dValid => self.sys.l1d.valid_hook.disarm_stuck(e, b),
            StructureId::L1iData => self.sys.l1i.data_hook.disarm_stuck(e, b),
            StructureId::L1iTag => self.sys.l1i.tag_hook.disarm_stuck(e, b),
            StructureId::L1iValid => self.sys.l1i.valid_hook.disarm_stuck(e, b),
            StructureId::L2Data => self.sys.l2.data_hook.disarm_stuck(e, b),
            StructureId::L2Tag => self.sys.l2.tag_hook.disarm_stuck(e, b),
            StructureId::L2Valid => self.sys.l2.valid_hook.disarm_stuck(e, b),
            StructureId::DtlbEntry => self.dtlb.entry_hook.disarm_stuck(e, b),
            StructureId::DtlbValid => self.dtlb.valid_hook.disarm_stuck(e, b),
            StructureId::ItlbEntry => self.itlb.entry_hook.disarm_stuck(e, b),
            StructureId::ItlbValid => self.itlb.valid_hook.disarm_stuck(e, b),
            StructureId::Btb => {
                self.btb.direct.hook.disarm_stuck(e, b);
                if let Some(i) = &mut self.btb.indirect {
                    i.hook.disarm_stuck(e, b);
                }
            }
            StructureId::Ras => self.ras.hook.disarm_stuck(e, b),
        }
    }

    /// True when `entry` of `structure` is currently unused (early-stop
    /// rule i applies only to data planes; see
    /// [`StructureId::dead_entry_stop_safe`]).
    pub fn entry_unused(&self, s: StructureId, e: u64) -> bool {
        match s {
            StructureId::IntRegFile => self.ifree.contains(e as u16),
            StructureId::FpRegFile => self.ffree.contains(e as u16),
            StructureId::IssueQueue => self.iq.peek_unused(e as usize),
            StructureId::LsqData => {
                let idx = match self.cfg.lsq {
                    LsqOrg::Unified { .. } => e as usize,
                    LsqOrg::Split { loads, .. } => loads + e as usize,
                };
                !self.lsq_meta[idx].valid
            }
            StructureId::L1dData => !self.sys.l1d.peek_valid(e as usize),
            StructureId::L1iData => !self.sys.l1i.peek_valid(e as usize),
            StructureId::L2Data => !self.sys.l2.peek_valid(e as usize),
            _ => false,
        }
    }

    fn faults_dead(&self) -> bool {
        self.injected.iter().all(|s| match s {
            StructureId::IntRegFile => self.iprf.hook.all_faults_dead(),
            StructureId::FpRegFile => self.fprf.hook.all_faults_dead(),
            StructureId::IssueQueue => self.iq.hook.all_faults_dead(),
            StructureId::LsqData => self.lsq_data.hook.all_faults_dead(),
            StructureId::L1dData | StructureId::L1dTag | StructureId::L1dValid => {
                self.sys.l1d.all_faults_dead()
            }
            StructureId::L1iData | StructureId::L1iTag | StructureId::L1iValid => {
                self.sys.l1i.all_faults_dead()
            }
            StructureId::L2Data | StructureId::L2Tag | StructureId::L2Valid => {
                self.sys.l2.all_faults_dead()
            }
            StructureId::DtlbEntry | StructureId::DtlbValid => self.dtlb.all_faults_dead(),
            StructureId::ItlbEntry | StructureId::ItlbValid => self.itlb.all_faults_dead(),
            StructureId::Btb => self.btb.all_faults_dead(),
            StructureId::Ras => self.ras.hook.all_faults_dead(),
        })
    }

    fn faults_consumed(&self) -> bool {
        self.injected.iter().any(|s| match s {
            StructureId::IntRegFile => self.iprf.hook.any_fault_consumed(),
            StructureId::FpRegFile => self.fprf.hook.any_fault_consumed(),
            StructureId::IssueQueue => self.iq.hook.any_fault_consumed(),
            StructureId::LsqData => self.lsq_data.hook.any_fault_consumed(),
            StructureId::L1dData | StructureId::L1dTag | StructureId::L1dValid => {
                self.sys.l1d.any_fault_consumed()
            }
            StructureId::L1iData | StructureId::L1iTag | StructureId::L1iValid => {
                self.sys.l1i.any_fault_consumed()
            }
            StructureId::L2Data | StructureId::L2Tag | StructureId::L2Valid => {
                self.sys.l2.any_fault_consumed()
            }
            StructureId::DtlbEntry | StructureId::DtlbValid => self.dtlb.any_fault_consumed(),
            StructureId::ItlbEntry | StructureId::ItlbValid => self.itlb.any_fault_consumed(),
            StructureId::Btb => self.btb.any_fault_consumed(),
            StructureId::Ras => self.ras.hook.any_fault_consumed(),
        })
    }

    // --------------------------------------------------------------- asserts

    /// Checks an internal invariant. Under the MARSS-style `rich_asserts`
    /// policy a violation raises a simulator assertion; under the gem5-style
    /// policy it surfaces as a simulator crash (Remark 8).
    fn massert(&mut self, cond: bool, msg: &str) -> bool {
        if !cond && self.exit.is_none() {
            self.exit = Some(if self.cfg.policy.rich_asserts {
                SimExit::SimAssert(msg.to_string())
            } else {
                SimExit::SimCrash(msg.to_string())
            });
        }
        cond
    }

    // ------------------------------------------------------------------- rob

    #[inline]
    fn rob_next(&self, i: usize) -> usize {
        (i + 1) % self.rob.len()
    }

    #[inline]
    fn rob_prev(&self, i: usize) -> usize {
        (i + self.rob.len() - 1) % self.rob.len()
    }

    fn rob_free(&self) -> usize {
        self.rob.len() - self.rob_count
    }

    // ---------------------------------------------------------------- kernel

    fn kernel_call<R>(&mut self, f: impl FnOnce(&mut dyn KernelMem, &MemoryMap) -> R) -> R {
        let map = self.map;
        if self.cfg.policy.hypervisor_kernel {
            self.stats.hypervisor_calls += 1;
            let mut adapter = BypassKernelMem {
                sys: &mut self.sys,
                map,
            };
            f(&mut adapter, &map)
        } else {
            let mut adapter = CachedKernelMem {
                sys: &mut self.sys,
                map,
            };
            f(&mut adapter, &map)
        }
    }

    // ---------------------------------------------------------------- commit

    fn commit_stage(&mut self) {
        let mut budget = self.cfg.width;
        while budget > 0 && self.rob_count > 0 && self.exit.is_none() {
            let head = self.rob_head;
            let Some(slot) = self.rob[head].as_ref() else {
                self.massert(false, "rob head empty while count nonzero");
                return;
            };
            if !slot.completed {
                break;
            }
            let slot = self.rob[head].clone().expect("checked above");
            // Deferred ISA fault reaching commit (architecturally real).
            if let Some(f) = slot.fault {
                self.exit = Some(
                    if slot.from_decoder && self.cfg.policy.decode_fault_asserts {
                        // MARSS-style: the model cannot represent the corrupted
                        // instruction and stops with an assertion (Remark 8).
                        SimExit::SimAssert(format!(
                            "decoder: cannot decode instruction at {:#x} ({f})",
                            slot.pc
                        ))
                    } else {
                        // gem5-style: surface the ISA fault to the guest.
                        SimExit::ProcessCrash(f)
                    },
                );
                return;
            }
            // Alignment fixups are handled + logged by the kernel.
            if slot.alignment_exc {
                let out = self.kernel_call(|m, map| kernel::log_exception(m, map));
                match out {
                    Ok(()) => self.stats.exceptions += 1,
                    Err(KernelOutcome::Panic(msg)) => {
                        self.exit = Some(SimExit::SystemCrash(msg));
                        return;
                    }
                    Err(_) => {}
                }
            }
            match slot.uop.kind {
                UopKind::Store if self.commit_store(&slot).is_err() => {
                    return;
                }
                UopKind::Syscall => {
                    self.syscalls_in_rob = self.syscalls_in_rob.saturating_sub(1);
                    if self.commit_syscall().is_err() {
                        return;
                    }
                }
                UopKind::Hint => {
                    let out = self.kernel_call(|m, map| kernel::log_exception(m, map));
                    match out {
                        Ok(()) => self.stats.exceptions += 1,
                        Err(KernelOutcome::Panic(msg)) => {
                            self.exit = Some(SimExit::SystemCrash(msg));
                            return;
                        }
                        Err(_) => {}
                    }
                }
                UopKind::Branch => {
                    if slot.uop.branch == BranchKind::CondDirect {
                        self.pred.update(slot.pc, slot.taken);
                        if slot.taken {
                            self.btb.update_direct(slot.pc, slot.uop.target);
                        }
                    } else if slot.uop.branch == BranchKind::JumpInd {
                        self.btb.update_indirect(slot.pc, slot.actual_next);
                    }
                }
                UopKind::Load => self.stats.committed_loads += 1,
                _ => {}
            }
            if matches!(
                self.exit,
                Some(SimExit::SystemCrash(_) | SimExit::ProcessCrash(_))
            ) {
                return;
            }
            // Release the previous mapping of the destination.
            if let Some(dest) = slot.dest_arch {
                let keep = slot.prev_preg;
                if dest.is_fp() {
                    self.ffree.release(keep);
                    self.fprf.set_ready(keep, true);
                } else {
                    self.ifree.release(keep);
                    self.iprf.set_ready(keep, true);
                }
            }
            // Free the LSQ entry (commit order must match allocation order).
            if let Some(l) = slot.lsq_slot {
                let ok = self.lsq_order.first() == Some(&l);
                if !self.massert(ok, "lsq commit order violated") {
                    return;
                }
                self.lsq_order.remove(0);
                self.lsq_meta[l as usize] = LsqMeta::empty();
            }
            if slot.uop.kind == UopKind::Store {
                self.stats.committed_stores += 1;
            }
            self.rob[head] = None;
            self.rob_head = self.rob_next(head);
            self.rob_count -= 1;
            if self.trace.is_some() {
                // Committed-state signature: PC + destination value, read
                // without fault-hook side effects so tracing never perturbs
                // liveness or the run's result.
                let val = match slot.uop.pd {
                    Some((p, true)) => self.fprf.peek(p),
                    Some((p, false)) => self.iprf.peek(p),
                    None => 0,
                };
                let cycle = self.cycle;
                if let Some(t) = &mut self.trace {
                    t.fold(slot.pc);
                    t.fold(val);
                    if slot.inst_end {
                        t.commit_boundary(cycle);
                    }
                }
            }
            self.stats.committed_uops += 1;
            if slot.inst_end {
                self.stats.committed_instructions += 1;
            }
            self.last_commit_cycle = self.cycle;
            budget -= 1;
        }
    }

    fn commit_store(&mut self, slot: &RobSlot) -> Result<(), ()> {
        let Some(l) = slot.lsq_slot else {
            self.massert(false, "store commit without lsq slot");
            return Err(());
        };
        let meta = self.lsq_meta[l as usize];
        let Some(addr) = meta.addr else {
            self.massert(false, "store commit without resolved address");
            return Err(());
        };
        let value = self.lsq_data.read(meta.data_slot);
        let w = meta.width.bytes() as usize;
        let bytes = value.to_le_bytes();
        self.sys.write_data(addr, &bytes[..w]);
        Ok(())
    }

    fn commit_syscall(&mut self) -> Result<(), ()> {
        let r0 = self.read_arch_int(0);
        let r1 = self.read_arch_int(1);
        let r2 = self.read_arch_int(2);
        let out = self.kernel_call(|m, map| kernel::handle_syscall(m, map, r0, r1, r2));
        match out {
            KernelOutcome::Continue(bytes) => {
                // Unknown syscall numbers are the ENOSYS path: the kernel
                // logged an exception before resuming the process.
                if !matches!(
                    r0,
                    kernel::sys::EXIT | kernel::sys::WRITE | kernel::sys::WRITE_INT
                ) {
                    self.stats.exceptions += 1;
                }
                self.output.extend_from_slice(&bytes);
                Ok(())
            }
            KernelOutcome::Exit(code) => {
                // Let the syscall instruction finish its commit accounting;
                // the run loop observes `exit` afterwards.
                self.exit = Some(SimExit::Exited(code));
                Ok(())
            }
            KernelOutcome::Panic(msg) => {
                self.exit = Some(SimExit::SystemCrash(msg));
                Err(())
            }
            KernelOutcome::Kill(f) => {
                self.exit = Some(SimExit::ProcessCrash(f));
                Err(())
            }
        }
    }

    /// Architectural read of an integer register through the current rename
    /// map (used by syscall commit; notes PRF reads like real operand reads).
    fn read_arch_int(&mut self, arch: usize) -> u64 {
        let p = self.imap.get(arch);
        self.iprf.read(p)
    }

    // ---------------------------------------------------------------- events

    fn fire_events(&mut self) {
        let now = self.cycle;
        let due: Vec<Event> = {
            let mut due = Vec::new();
            let mut i = 0;
            while i < self.events.len() {
                if self.events[i].at <= now {
                    due.push(self.events.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            due.sort_by_key(|e| e.seq);
            due
        };
        for e in due {
            if self.exit.is_some() {
                return;
            }
            if let EventKind::DisarmStuck {
                structure,
                entry,
                bit,
            } = e.kind
            {
                self.disarm_stuck(structure, entry, bit);
                continue;
            }
            // Squashed entries drop their events.
            let valid = self.rob[e.rob]
                .as_ref()
                .is_some_and(|s| s.seq == e.seq && !s.completed);
            if !valid {
                continue;
            }
            match e.kind {
                EventKind::WriteBack { preg, fp, value } => {
                    self.write_preg(preg, fp, value);
                    self.rob[e.rob].as_mut().expect("valid").completed = true;
                }
                EventKind::LoadWriteBack {
                    preg,
                    fp,
                    lsq_data_slot,
                    value,
                    width,
                    signed,
                } => {
                    let raw = match lsq_data_slot {
                        // Unified LSQ: the staged value is read back from
                        // the (injectable) data array at writeback time.
                        Some(slot) => self.lsq_data.read(slot),
                        None => value,
                    };
                    let v = extend(mask_width(raw, width), width, signed);
                    self.write_preg(preg, fp, v);
                    self.rob[e.rob].as_mut().expect("valid").completed = true;
                }
                EventKind::BranchResolve => {
                    self.resolve_branch(e.rob);
                }
                EventKind::Complete => {
                    self.rob[e.rob].as_mut().expect("valid").completed = true;
                }
                EventKind::DisarmStuck { .. } => unreachable!("handled above"),
            }
        }
    }

    fn write_preg(&mut self, preg: u16, fp: bool, value: u64) {
        if fp {
            self.fprf.write(preg, value);
            self.fprf.set_ready(preg, true);
        } else {
            self.iprf.write(preg, value);
            self.iprf.set_ready(preg, true);
        }
    }

    fn resolve_branch(&mut self, rob_idx: usize) {
        let slot = self.rob[rob_idx].as_ref().expect("validated by caller");
        let pred_next = slot.pred_next;
        let actual_next = slot.actual_next;
        let inst_seq = slot.seq;
        self.rob[rob_idx].as_mut().expect("valid").completed = true;
        if actual_next != pred_next {
            self.squash_younger(inst_seq, actual_next);
        }
    }

    // ---------------------------------------------------------------- squash

    /// Squashes every ROB entry with `seq > bound` (strictly younger),
    /// restores the rename maps, frees resources, and redirects fetch.
    fn squash_younger(&mut self, bound: u64, new_pc: u64) {
        while self.rob_count > 0 {
            let idx = self.rob_prev(self.rob_tail);
            let Some(slot) = self.rob[idx].as_ref() else {
                self.massert(false, "rob tail empty during squash");
                return;
            };
            if slot.seq <= bound {
                break;
            }
            let slot = self.rob[idx].take().expect("checked above");
            self.rob_tail = idx;
            self.rob_count -= 1;
            if slot.uop.kind == UopKind::Syscall {
                self.syscalls_in_rob = self.syscalls_in_rob.saturating_sub(1);
            }
            if let Some(dest) = slot.dest_arch {
                let newp = if dest.is_fp() {
                    let cur = self.fmap.get(dest.class_index());
                    self.fmap.set(dest.class_index(), slot.prev_preg);
                    cur
                } else {
                    let cur = self.imap.get(dest.class_index());
                    self.imap.set(dest.class_index(), slot.prev_preg);
                    cur
                };
                if self.cfg.policy.rich_asserts
                    && !self.massert(
                        Some((newp, dest.is_fp())) == slot.uop.pd,
                        "rename walk-back mismatch",
                    )
                {
                    return;
                }
                if dest.is_fp() {
                    self.ffree.release(newp);
                    self.fprf.set_ready(newp, true);
                } else {
                    self.ifree.release(newp);
                    self.iprf.set_ready(newp, true);
                }
            }
            if let Some(iqs) = slot.iq_slot {
                if self.iq.occupied(iqs) {
                    self.iq.free(iqs);
                }
            }
            if let Some(l) = slot.lsq_slot {
                let ok = self.lsq_order.last() == Some(&l);
                if !self.massert(ok, "lsq squash order violated") {
                    return;
                }
                self.lsq_order.pop();
                self.lsq_meta[l as usize] = LsqMeta::empty();
            }
        }
        self.fetch_queue.clear();
        self.fetch_wait = false;
        self.fetch_pc = new_pc;
        self.stats.flushes += 1;
    }

    // ----------------------------------------------------------------- issue

    fn issue_stage(&mut self) {
        // Gather ready candidates oldest-first.
        let mut candidates: Vec<(u64, usize)> = Vec::new();
        for slot in 0..self.iq.slots() {
            if !self.iq.occupied(slot) {
                continue;
            }
            let u = match self.iq.read(slot) {
                Ok(u) => u,
                Err(e) => {
                    // Corrupted payload: impossible encoding reached the
                    // scheduler (Remark 8 divergence).
                    self.exit = Some(if self.cfg.policy.payload_error_asserts {
                        SimExit::SimAssert(format!("issue queue payload: {e}"))
                    } else {
                        SimExit::SimCrash(format!("scheduler wedged: {e}"))
                    });
                    return;
                }
            };
            let rob_idx = u.rob as usize;
            let Some(r) = self.rob[rob_idx].as_ref() else {
                // A fault retargeted the payload's ROB pointer at a hole.
                self.exit = Some(if self.cfg.policy.payload_error_asserts {
                    SimExit::SimAssert("iq entry references empty rob slot".into())
                } else {
                    SimExit::SimCrash("iq entry references empty rob slot".into())
                });
                return;
            };
            if r.retry_at > self.cycle {
                continue;
            }
            if !self.operands_ready(&u) {
                continue;
            }
            if u.kind == UopKind::Load && !self.cfg.policy.aggressive_loads {
                // gem5 policy: wait until all older stores have addresses.
                let seq = r.seq;
                let blocked = self.lsq_order.iter().any(|&l| {
                    let m = &self.lsq_meta[l as usize];
                    m.valid && m.is_store && m.seq < seq && m.addr.is_none()
                });
                if blocked {
                    continue;
                }
            }
            candidates.push((r.seq, slot));
        }
        candidates.sort_unstable();

        let mut int_budget = self.cfg.int_alus;
        let mut muldiv_budget = self.cfg.mul_div_units;
        let mut fp_budget = self.cfg.fp_units;
        let mut mem_budget = self.cfg.mem_ports;
        let mut issued = 0;
        let flushes_before = self.stats.flushes;
        for (_, slot) in candidates {
            if issued >= self.cfg.width || self.exit.is_some() {
                break;
            }
            // A mid-issue squash (alias replay) invalidates the candidate
            // list: freed slots must not be touched again this cycle.
            if self.stats.flushes != flushes_before {
                break;
            }
            if !self.iq.occupied(slot) {
                continue;
            }
            let u = match self.iq.read(slot) {
                Ok(u) => u,
                Err(_) => continue,
            };
            let ok = match u.kind {
                UopKind::Alu if u.alu.is_div() || u.alu == difi_isa::uop::IntOp::Mul => {
                    if muldiv_budget == 0 {
                        false
                    } else {
                        muldiv_budget -= 1;
                        true
                    }
                }
                UopKind::Alu | UopKind::Branch => {
                    if int_budget == 0 {
                        false
                    } else {
                        int_budget -= 1;
                        true
                    }
                }
                UopKind::Fp => {
                    if fp_budget == 0 {
                        false
                    } else {
                        fp_budget -= 1;
                        true
                    }
                }
                UopKind::Load | UopKind::Store => {
                    if mem_budget == 0 {
                        false
                    } else {
                        mem_budget -= 1;
                        true
                    }
                }
                _ => true,
            };
            if !ok {
                continue;
            }
            let keep_in_iq = self.execute_uop(&u);
            if !keep_in_iq {
                self.iq.free(slot);
                if let Some(r) = self.rob[u.rob as usize].as_mut() {
                    r.issued = true;
                    r.iq_slot = None;
                }
            }
            issued += 1;
        }
    }

    fn operands_ready(&self, u: &RenamedUop) -> bool {
        let ready = |r: Option<(u16, bool)>| match r {
            None => true,
            Some((p, true)) => self.fprf.is_ready(p),
            Some((p, false)) => self.iprf.is_ready(p),
        };
        ready(u.pa) && ready(u.pb)
    }

    fn read_src(&mut self, r: Option<(u16, bool)>, imm: i64) -> u64 {
        match r {
            None => imm as u64,
            Some((p, true)) => self.fprf.read(p),
            Some((p, false)) => self.iprf.read(p),
        }
    }

    /// Executes one µop. Returns `true` when the µop must stay in the issue
    /// queue for a retry (blocked partial store overlap).
    fn execute_uop(&mut self, u: &RenamedUop) -> bool {
        let rob_idx = u.rob as usize;
        match u.kind {
            UopKind::Alu => {
                let a = self.read_src(u.pa, u.imm);
                let b = self.read_src(u.pb, u.imm);
                let lat = if u.alu.is_div() {
                    12
                } else if u.alu == difi_isa::uop::IntOp::Mul {
                    3
                } else {
                    1
                };
                let value = match eval_int_op(u.alu, u.width, a, b) {
                    Ok(v) => v,
                    Err(f) => {
                        if let Some(r) = self.rob[rob_idx].as_mut() {
                            r.fault = Some(f);
                        }
                        0
                    }
                };
                let Some((preg, fp)) = u.pd else {
                    // Only reachable through payload corruption: the encoded
                    // destination-valid bit was cleared.
                    self.massert(false, "alu uop without destination");
                    return false;
                };
                self.push_event(rob_idx, lat, EventKind::WriteBack { preg, fp, value });
                false
            }
            UopKind::Fp => {
                let a = self.read_src(u.pa, 0);
                let b = self.read_src(u.pb, 0);
                let value = if u.fp == FpOp::CmpFlags
                    && u.pd.is_some_and(|(_, fp)| !fp)
                    && !self.flags_dest(u)
                {
                    eval_fp_predicate(u.imm, a, b)
                } else {
                    eval_fp_op(u.fp, a, b, u.imm)
                };
                let lat = if matches!(u.fp, FpOp::Div | FpOp::Sqrt) {
                    12
                } else {
                    4
                };
                let Some((preg, fp)) = u.pd else {
                    self.massert(false, "fp uop without destination");
                    return false;
                };
                self.push_event(rob_idx, lat, EventKind::WriteBack { preg, fp, value });
                false
            }
            UopKind::Load => self.execute_load(u),
            UopKind::Store => {
                self.execute_store(u);
                false
            }
            UopKind::Branch => {
                self.execute_branch(u);
                false
            }
            // Nop/Syscall/Hint complete at dispatch and never reach here.
            _ => {
                self.massert(false, "non-executable uop issued");
                false
            }
        }
    }

    /// The x86e FP compare writes the renamed FLAGS register (an integer
    /// preg); the arme predicate form writes a plain integer register. They
    /// are distinguished at decode by `cond_on_flags` being irrelevant —
    /// here by the destination's *architectural* identity, recorded in the
    /// ROB slot.
    fn flags_dest(&self, u: &RenamedUop) -> bool {
        self.rob[u.rob as usize].as_ref().and_then(|s| s.dest_arch)
            == Some(difi_isa::uop::Reg::FLAGS)
    }

    fn push_event(&mut self, rob_idx: usize, lat: u64, kind: EventKind) {
        let seq = self.rob[rob_idx].as_ref().map_or(0, |s| s.seq);
        self.events.push(Event {
            at: self.cycle + lat.max(1),
            rob: rob_idx,
            seq,
            kind,
        });
    }

    fn execute_load(&mut self, u: &RenamedUop) -> bool {
        let rob_idx = u.rob as usize;
        let base = self.read_src(u.pa, 0);
        let vaddr = base.wrapping_add(u.imm as u64);
        let (paddr, _hit) = self.dtlb.translate(vaddr);
        let w = u.width.bytes();
        let (Some((preg, fp)), Some(lsq_slot)) = (u.pd, u.lsq) else {
            self.massert(false, "load uop with corrupted destination/lsq fields");
            return false;
        };
        if (lsq_slot as usize) >= self.lsq_meta.len() {
            self.massert(false, "load lsq index out of range");
            return false;
        }
        self.stats.issued_loads += 1;

        if !self.map.contains(paddr, w) {
            if let Some(r) = self.rob[rob_idx].as_mut() {
                r.fault = Some(difi_isa::uop::Fault::OutOfBounds(paddr));
            }
            self.push_event(
                rob_idx,
                1,
                EventKind::LoadWriteBack {
                    preg,
                    fp,
                    lsq_data_slot: None,
                    value: 0,
                    width: u.width,
                    signed: u.signed,
                },
            );
            return false;
        }
        if self.isa == difi_isa::program::Isa::Arme && paddr % w != 0 {
            if let Some(r) = self.rob[rob_idx].as_mut() {
                r.alignment_exc = true;
            }
        }

        // Record the resolved address.
        let seq;
        {
            let m = &mut self.lsq_meta[lsq_slot as usize];
            m.addr = Some(paddr);
            m.width = u.width;
            seq = m.seq;
        }

        // Store scan: youngest older store overlapping this access.
        let mut forward: Option<(u16, u64)> = None; // (data_slot, store_seq)
        let mut partial_block = false;
        for &l in &self.lsq_order {
            let m = &self.lsq_meta[l as usize];
            if !m.valid || !m.is_store || m.seq >= seq {
                continue;
            }
            let Some(saddr) = m.addr else {
                continue; // aggressive policy: unknown-address stores ignored
            };
            let sw = m.width.bytes();
            let overlap = saddr < paddr + w && paddr < saddr + sw;
            if !overlap {
                continue;
            }
            if saddr == paddr && sw == w && m.data_ready {
                match forward {
                    Some((_, fseq)) if fseq > m.seq => {}
                    _ => forward = Some((m.data_slot, m.seq)),
                }
            } else {
                partial_block = true;
            }
        }
        if partial_block {
            // Retry once the conflicting store drains.
            if let Some(r) = self.rob[rob_idx].as_mut() {
                r.retry_at = self.cycle + 3;
            }
            return true;
        }

        let (raw, lat) = if let Some((dslot, fseq)) = forward {
            let v = self.lsq_data.read(dslot);
            self.lsq_meta[lsq_slot as usize].forwarded_from = Some(fseq);
            (mask_width(v, u.width), 1u32)
        } else {
            let mut buf = [0u8; 8];
            let lat = self.sys.read_data(paddr, &mut buf[..w as usize]);
            (u64::from_le_bytes(buf), lat)
        };

        {
            let m = &mut self.lsq_meta[lsq_slot as usize];
            m.executed = true;
            m.data_ready = true;
        }

        let staged = match self.cfg.lsq {
            LsqOrg::Unified { .. } => {
                // MARSS: the load stages its value in the unified queue's
                // data field; writeback re-reads it (so LSQ faults can hit
                // load data — Remark 1).
                self.lsq_data.write(lsq_slot, raw);
                Some(lsq_slot)
            }
            LsqOrg::Split { .. } => None,
        };
        self.push_event(
            rob_idx,
            lat as u64,
            EventKind::LoadWriteBack {
                preg,
                fp,
                lsq_data_slot: staged,
                value: raw,
                width: u.width,
                signed: u.signed,
            },
        );
        false
    }

    fn execute_store(&mut self, u: &RenamedUop) {
        let rob_idx = u.rob as usize;
        let base = self.read_src(u.pa, 0);
        let vaddr = base.wrapping_add(u.imm as u64);
        let (paddr, _hit) = self.dtlb.translate(vaddr);
        let w = u.width.bytes();
        let data = self.read_src(u.pb, 0);
        let Some(lsq_slot) = u.lsq else {
            self.massert(false, "store uop with corrupted lsq field");
            return;
        };
        if (lsq_slot as usize) >= self.lsq_meta.len() {
            self.massert(false, "store lsq index out of range");
            return;
        }

        if !self.map.contains(paddr, w) {
            if let Some(r) = self.rob[rob_idx].as_mut() {
                r.fault = Some(difi_isa::uop::Fault::OutOfBounds(paddr));
            }
        } else if self.map.in_code(paddr, w) {
            if let Some(r) = self.rob[rob_idx].as_mut() {
                r.fault = Some(difi_isa::uop::Fault::CodeWrite(paddr));
            }
        } else if self.isa == difi_isa::program::Isa::Arme && paddr % w != 0 {
            if let Some(r) = self.rob[rob_idx].as_mut() {
                r.alignment_exc = true;
            }
        }

        let seq;
        {
            let m = &mut self.lsq_meta[lsq_slot as usize];
            m.addr = Some(paddr);
            m.width = u.width;
            m.data_ready = true;
            m.executed = true;
            seq = m.seq;
        }
        self.lsq_data
            .write(self.lsq_meta[lsq_slot as usize].data_slot, data);
        self.push_event(rob_idx, 1, EventKind::Complete);

        // MARSS aggressive policy: detect younger loads that already ran
        // past this store (memory-order violation) and replay them.
        if self.cfg.policy.aggressive_loads {
            let mut violator: Option<(u64, usize)> = None;
            for &l in &self.lsq_order {
                let m = &self.lsq_meta[l as usize];
                if !m.valid || m.is_store || m.seq <= seq || !m.executed {
                    continue;
                }
                let Some(laddr) = m.addr else { continue };
                let lw = m.width.bytes();
                let overlap = paddr < laddr + lw && laddr < paddr + w;
                if overlap && m.forwarded_from != Some(seq) {
                    match violator {
                        Some((vseq, _)) if vseq < m.seq => {}
                        _ => violator = Some((m.seq, m.rob as usize)),
                    }
                }
            }
            if let Some((_, load_rob)) = violator {
                if let Some(load_slot) = self.rob[load_rob].as_ref() {
                    let replay_pc = load_slot.pc;
                    let bound = load_slot.seq;
                    self.stats.load_replays += 1;
                    // Squash the load and everything younger; the bound is
                    // one below the load's own seq so the load itself goes.
                    self.squash_younger(bound.saturating_sub(1), replay_pc);
                }
            }
        }
    }

    fn execute_branch(&mut self, u: &RenamedUop) {
        let rob_idx = u.rob as usize;
        let Some(slot) = self.rob[rob_idx].as_ref() else {
            return;
        };
        let fallthrough = slot.pc + slot.ilen as u64;
        let (taken, actual_next) = match u.branch {
            BranchKind::CondDirect => {
                let taken = if u.cond_on_flags {
                    let fl = self.read_src(u.pa, 0);
                    u.cond.eval_flags(fl)
                } else {
                    let a = self.read_src(u.pa, 0);
                    let b = u.pb.map_or(0, |_| self.read_src(u.pb, 0));
                    u.cond.eval_regs(a, b)
                };
                (taken, if taken { u.target } else { fallthrough })
            }
            BranchKind::Jump | BranchKind::Call => {
                if let Some((preg, fp)) = u.pd {
                    // arme bl: write the link register.
                    self.write_preg(preg, fp, u.imm as u64);
                }
                (true, u.target)
            }
            BranchKind::JumpInd | BranchKind::Ret => {
                let t = self.read_src(u.pa, 0);
                (true, t)
            }
        };
        if let Some(r) = self.rob[rob_idx].as_mut() {
            r.taken = taken;
            r.actual_next = actual_next;
        }
        self.push_event(rob_idx, 1, EventKind::BranchResolve);
    }

    // ---------------------------------------------------------------- rename

    fn requires_iq(kind: UopKind) -> bool {
        !matches!(kind, UopKind::Nop | UopKind::Syscall | UopKind::Hint)
    }

    fn rename_stage(&mut self) {
        let mut budget = self.cfg.width;
        while budget > 0 && self.exit.is_none() {
            // Serialize behind in-flight syscalls so their commit observes
            // clean architectural register state.
            if self.syscalls_in_rob > 0 {
                break;
            }
            let Some(inst) = self.fetch_queue.front() else {
                break;
            };
            let n = inst.uops.len().max(1);
            if n > budget && budget < self.cfg.width {
                break; // let the instruction start a fresh cycle
            }
            // Resource check across the whole instruction.
            if self.rob_free() < n {
                break;
            }
            let iq_needed = inst
                .uops
                .iter()
                .filter(|u| Self::requires_iq(u.kind))
                .count();
            let mut iq_free = (0..self.iq.slots())
                .filter(|&s| !self.iq.occupied(s))
                .count();
            if iq_free < iq_needed {
                break;
            }
            let int_dests = inst
                .uops
                .iter()
                .filter(|u| u.rd.is_some_and(|r| !r.is_fp()))
                .count();
            let fp_dests = inst
                .uops
                .iter()
                .filter(|u| u.rd.is_some_and(|r| r.is_fp()))
                .count();
            if self.ifree.available() < int_dests || self.ffree.available() < fp_dests {
                break;
            }
            let loads = inst.uops.iter().filter(|u| u.kind == UopKind::Load).count();
            let stores = inst
                .uops
                .iter()
                .filter(|u| u.kind == UopKind::Store)
                .count();
            if !self.lsq_has_room(loads, stores) {
                break;
            }

            let inst = self.fetch_queue.pop_front().expect("checked above");
            if let Some(f) = inst.decode_fault {
                // gem5 policy: a pseudo-entry carries the decode fault to
                // commit (squashed if wrong-path).
                let seq = self.alloc_seq();
                let idx = self.rob_tail;
                self.rob[idx] = Some(RobSlot {
                    seq,
                    pc: inst.pc,
                    ilen: inst.len,
                    uop: RenamedUop::nop(),
                    dest_arch: None,
                    prev_preg: 0,
                    completed: true,
                    issued: true,
                    fault: Some(f),
                    from_decoder: true,
                    alignment_exc: false,
                    taken: false,
                    actual_next: 0,
                    pred_next: inst.pred_next,
                    iq_slot: None,
                    lsq_slot: None,
                    inst_end: true,
                    retry_at: 0,
                });
                self.rob_tail = self.rob_next(idx);
                self.rob_count += 1;
                budget -= 1;
                continue;
            }

            let last = inst.uops.len().saturating_sub(1);
            for (i, uop) in inst.uops.iter().enumerate() {
                self.dispatch_uop(&inst, uop, i == last);
                iq_free = iq_free.saturating_sub(1);
                budget = budget.saturating_sub(1);
                if self.exit.is_some() {
                    return;
                }
            }
            if inst.uops.is_empty() {
                // A bare NOP-only instruction still retires.
                let nop = Uop::nop();
                self.dispatch_uop(&inst, &nop, true);
                budget = budget.saturating_sub(1);
            }
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        self.seq_counter += 1;
        self.seq_counter
    }

    fn dispatch_uop(&mut self, inst: &PendingInst, uop: &Uop, is_last: bool) {
        let seq = self.alloc_seq();
        let idx = self.rob_tail;

        let rename_src = |core: &OoOCore, r: Option<difi_isa::uop::Reg>| -> Option<(u16, bool)> {
            r.map(|reg| {
                if reg.is_fp() {
                    (core.fmap.get(reg.class_index()), true)
                } else {
                    (core.imap.get(reg.class_index()), false)
                }
            })
        };
        let pa = rename_src(self, uop.ra);
        let pb = rename_src(self, uop.rb);

        // Destination rename.
        let (pd, dest_arch, prev_preg) = if let Some(rd) = uop.rd {
            if rd.is_fp() {
                let Some(newp) = self.ffree.alloc() else {
                    self.massert(false, "fp free list exhausted at dispatch");
                    return;
                };
                let prev = self.fmap.set(rd.class_index(), newp);
                self.fprf.set_ready(newp, false);
                (Some((newp, true)), Some(rd), prev)
            } else {
                let Some(newp) = self.ifree.alloc() else {
                    self.massert(false, "int free list exhausted at dispatch");
                    return;
                };
                let prev = self.imap.set(rd.class_index(), newp);
                self.iprf.set_ready(newp, false);
                (Some((newp, false)), Some(rd), prev)
            }
        } else {
            (None, None, 0)
        };

        // LSQ allocation.
        let lsq_slot = match uop.kind {
            UopKind::Load => self.lsq_alloc(false, seq, idx as u16),
            UopKind::Store => self.lsq_alloc(true, seq, idx as u16),
            _ => None,
        };

        let renamed = RenamedUop {
            kind: uop.kind,
            alu: uop.alu,
            fp: uop.fp,
            width: uop.width,
            signed: uop.signed,
            cond: uop.cond,
            cond_on_flags: uop.cond_on_flags,
            branch: uop.branch,
            pd,
            pa,
            pb,
            imm: uop.imm,
            target: uop.target,
            rob: idx as u16,
            lsq: lsq_slot,
        };

        let needs_iq = Self::requires_iq(uop.kind);
        let iq_slot = if needs_iq {
            let Some(s) = self.iq.find_free() else {
                self.massert(false, "issue queue full at dispatch");
                return;
            };
            self.iq.insert(s, renamed);
            Some(s)
        } else {
            None
        };

        self.rob[idx] = Some(RobSlot {
            seq,
            pc: inst.pc,
            ilen: inst.len,
            uop: renamed,
            dest_arch,
            prev_preg,
            completed: !needs_iq,
            issued: !needs_iq,
            fault: None,
            from_decoder: false,
            alignment_exc: false,
            taken: false,
            actual_next: 0,
            pred_next: inst.pred_next,
            iq_slot,
            lsq_slot,
            inst_end: is_last,
            retry_at: 0,
        });
        self.rob_tail = self.rob_next(idx);
        self.rob_count += 1;
        if uop.kind == UopKind::Syscall {
            self.syscalls_in_rob += 1;
        }
    }

    fn lsq_has_room(&self, loads: usize, stores: usize) -> bool {
        match self.cfg.lsq {
            LsqOrg::Unified { entries } => {
                let used = self.lsq_order.len();
                entries - used >= loads + stores
            }
            LsqOrg::Split {
                loads: lq,
                stores: sq,
            } => {
                let lq_used = self
                    .lsq_order
                    .iter()
                    .filter(|&&l| (l as usize) < lq)
                    .count();
                let sq_used = self.lsq_order.len() - lq_used;
                lq - lq_used >= loads && sq - sq_used >= stores
            }
        }
    }

    fn lsq_alloc(&mut self, is_store: bool, seq: u64, rob: u16) -> Option<u16> {
        let slot = match self.cfg.lsq {
            LsqOrg::Unified { entries } => {
                (0..entries as u16).find(|&i| !self.lsq_meta[i as usize].valid)
            }
            LsqOrg::Split { loads, stores } => {
                if is_store {
                    (loads as u16..(loads + stores) as u16)
                        .find(|&i| !self.lsq_meta[i as usize].valid)
                } else {
                    (0..loads as u16).find(|&i| !self.lsq_meta[i as usize].valid)
                }
            }
        }?;
        let data_slot = match self.cfg.lsq {
            LsqOrg::Unified { .. } => slot,
            LsqOrg::Split { loads, .. } => {
                if is_store {
                    slot - loads as u16
                } else {
                    0 // loads carry no data in the split organization
                }
            }
        };
        self.lsq_meta[slot as usize] = LsqMeta {
            valid: true,
            is_store,
            addr: None,
            width: Width::B8,
            seq,
            data_ready: false,
            data_slot,
            executed: false,
            forwarded_from: None,
            rob,
        };
        self.lsq_order.push(slot);
        Some(slot)
    }

    // ----------------------------------------------------------------- fetch

    fn fetch_stage(&mut self) {
        if self.fetch_wait || self.cycle < self.fetch_stall_until || self.exit.is_some() {
            return;
        }
        let mut budget = self.cfg.fetch_bytes as i64;
        let mut fetched = 0usize;
        while budget > 0
            && fetched < self.cfg.width
            && self.fetch_queue.len() < FETCH_QUEUE_CAP
            && self.exit.is_none()
        {
            let pc = self.fetch_pc;
            let (paddr, itlb_hit) = self.itlb.translate(pc);
            if !itlb_hit {
                self.fetch_stall_until = self.cycle + ITLB_MISS_PENALTY;
            }
            if !self.map.contains(paddr, 1) {
                self.fetch_fault(pc, difi_isa::uop::Fault::OutOfBounds(paddr));
                return;
            }
            let avail = (self.map.size - paddr).min(MAX_INST_LEN as u64) as usize;
            let mut buf = [0u8; MAX_INST_LEN];
            let lat = self.sys.fetch(paddr, &mut buf[..avail]);
            if lat > self.sys.lat.l1_hit {
                self.fetch_stall_until = self.cycle + (lat - self.sys.lat.l1_hit) as u64;
            }
            let d = difi_isa::decode(self.isa, &buf[..avail], pc);
            if let Some(f) = d.fault {
                self.fetch_fault(pc, f);
                return;
            }
            budget -= d.len as i64;
            let (pred_next, _pred_taken) = self.predict(pc, d.len, &d.uops);
            self.fetch_queue.push_back(PendingInst {
                pc,
                len: d.len,
                uops: d.uops,
                pred_next,
                decode_fault: None,
            });
            fetched += 1;
            let fallthrough = pc + self.fetch_queue.back().expect("just pushed").len as u64;
            self.fetch_pc = pred_next;
            if pred_next != fallthrough {
                break; // taken-branch fetch break
            }
        }
    }

    /// Handles an undecodable fetch: a pseudo-instruction carries the fault
    /// to commit (squashed when the fetch was down the wrong path). The
    /// Remark 8 divergence is decided at commit: MARSS-style models assert,
    /// gem5-style models raise the ISA fault to the guest.
    fn fetch_fault(&mut self, pc: u64, f: difi_isa::uop::Fault) {
        self.fetch_queue.push_back(PendingInst {
            pc,
            len: 1,
            uops: Vec::new(),
            pred_next: pc + 1,
            decode_fault: Some(f),
        });
        self.fetch_wait = true;
    }

    fn predict(&mut self, pc: u64, len: u8, uops: &[Uop]) -> (u64, bool) {
        let fallthrough = pc + len as u64;
        let Some(b) = uops.iter().find(|u| u.is_branch()) else {
            return (fallthrough, false);
        };
        match b.branch {
            BranchKind::CondDirect => {
                let taken = self.pred.predict(pc);
                if taken {
                    let target = self.btb.lookup_direct(pc).unwrap_or(b.target);
                    (target, true)
                } else {
                    (fallthrough, false)
                }
            }
            BranchKind::Jump => (b.target, true),
            BranchKind::Call => {
                self.ras.push(fallthrough);
                (b.target, true)
            }
            BranchKind::Ret => match self.ras.pop() {
                Some(t) => (t, true),
                None => (fallthrough, false),
            },
            BranchKind::JumpInd => match self.btb.lookup_indirect(pc) {
                Some(t) => (t, true),
                None => (fallthrough, false),
            },
        }
    }
}

fn mask_width(v: u64, w: Width) -> u64 {
    match w {
        Width::B1 => v & 0xFF,
        Width::B2 => v & 0xFFFF,
        Width::B4 => v & 0xFFFF_FFFF,
        Width::B8 => v,
    }
}

/// Kernel memory adapter: hypervisor style — straight to main memory.
struct BypassKernelMem<'a> {
    sys: &'a mut MemSystem,
    map: MemoryMap,
}

impl KernelMem for BypassKernelMem<'_> {
    fn read_u64(&mut self, addr: u64) -> Result<u64, difi_isa::uop::Fault> {
        if !self.map.contains(addr, 8) {
            return Err(difi_isa::uop::Fault::OutOfBounds(addr));
        }
        let mut b = [0u8; 8];
        self.sys.bypass_read(addr, &mut b);
        Ok(u64::from_le_bytes(b))
    }

    fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), difi_isa::uop::Fault> {
        if !self.map.contains(addr, 8) {
            return Err(difi_isa::uop::Fault::OutOfBounds(addr));
        }
        self.sys.bypass_write(addr, &value.to_le_bytes());
        Ok(())
    }

    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), difi_isa::uop::Fault> {
        if !self.map.contains(addr, buf.len() as u64) {
            return Err(difi_isa::uop::Fault::OutOfBounds(addr));
        }
        self.sys.bypass_read(addr, buf);
        Ok(())
    }
}

/// Kernel memory adapter: gem5 style — kernel accesses travel through the
/// data cache like any other access (so cache faults reach kernel state).
struct CachedKernelMem<'a> {
    sys: &'a mut MemSystem,
    map: MemoryMap,
}

impl KernelMem for CachedKernelMem<'_> {
    fn read_u64(&mut self, addr: u64) -> Result<u64, difi_isa::uop::Fault> {
        if !self.map.contains(addr, 8) {
            return Err(difi_isa::uop::Fault::OutOfBounds(addr));
        }
        let mut b = [0u8; 8];
        self.sys.read_data(addr, &mut b);
        Ok(u64::from_le_bytes(b))
    }

    fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), difi_isa::uop::Fault> {
        if !self.map.contains(addr, 8) {
            return Err(difi_isa::uop::Fault::OutOfBounds(addr));
        }
        self.sys.write_data(addr, &value.to_le_bytes());
        Ok(())
    }

    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), difi_isa::uop::Fault> {
        if !self.map.contains(addr, buf.len() as u64) {
            return Err(difi_isa::uop::Fault::OutOfBounds(addr));
        }
        self.sys.read_data(addr, buf);
        Ok(())
    }
}
