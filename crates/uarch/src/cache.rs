//! Set-associative write-back caches with bit-accurate, fault-injectable
//! tag, data, and valid-bit arrays.
//!
//! The paper's key enabling work on MARSS was adding exactly these arrays
//! ("MARSS … models the control information of cache memories (tags and
//! control bits) but only keeps the actual data … at the main memory model";
//! Table IV lists the added L1D/L1I/L2 data arrays and valid bits). Here the
//! arrays are first-class: data lives per line, tags and valid bits in
//! [`BitPlane`]s, and every probe, refill, read, write, and writeback flows
//! through the planes — so an injected fault has precisely the consequences
//! it would have in hardware, including **writebacks to a wrong address**
//! when a dirty line's tag is corrupted.

use crate::fault::FaultHook;
use crate::residency::{Instrument, ResidencyTracker};
use difi_util::bits::{self, BitPlane};

/// Static geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line
    }

    /// The paper's L1 configuration: 32 KB, 64 B lines, 128 sets, 4-way.
    pub const L1: CacheConfig = CacheConfig {
        sets: 128,
        ways: 4,
        line: 64,
    };

    /// The paper's L2 configuration: 1 MB, 64 B lines, 1024 sets, 16-way.
    pub const L2: CacheConfig = CacheConfig {
        sets: 1024,
        ways: 16,
        line: 64,
    };
}

/// Per-cache runtime statistics (drives the Remark 3/5/10/11 analyses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read (or fetch) probes that hit.
    pub read_hits: u64,
    /// Read probes that missed.
    pub read_misses: u64,
    /// Write probes that hit.
    pub write_hits: u64,
    /// Write probes that missed.
    pub write_misses: u64,
    /// Valid lines replaced by fills.
    pub replacements: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

/// A dirty line leaving the cache, addressed by its (tag-derived) line
/// address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Writeback {
    /// Line-aligned address reconstructed from the stored tag — corrupted
    /// tags send the data to the wrong place, exactly as in hardware.
    pub addr: u64,
    /// The line contents.
    pub data: Vec<u8>,
}

/// One set-associative write-back cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    off_bits: u32,
    set_bits: u32,
    tag_bits: u32,
    tags: BitPlane,
    data: Vec<u8>,
    valid: BitPlane,
    dirty: Vec<bool>,
    lru: Vec<u64>,
    tick: u64,
    /// Fault hook of the tag array.
    pub tag_hook: FaultHook,
    /// Fault hook of the data array.
    pub data_hook: FaultHook,
    /// Fault hook of the valid bits.
    pub valid_hook: FaultHook,
    /// Access statistics.
    pub stats: CacheStats,
    residency: Option<Box<ResidencyTracker>>,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless `sets`, `ways` and `line` are nonzero and `sets`/`line`
    /// are powers of two.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.sets.is_power_of_two() && cfg.line.is_power_of_two());
        assert!(cfg.ways > 0);
        let lines = cfg.sets * cfg.ways;
        let off_bits = cfg.line.trailing_zeros();
        let set_bits = cfg.sets.trailing_zeros();
        // 32-bit physical address space bounds the tag width.
        let tag_bits = 32 - off_bits - set_bits;
        Cache {
            cfg,
            off_bits,
            set_bits,
            tag_bits,
            tags: BitPlane::new(lines, tag_bits as usize),
            data: vec![0; lines * cfg.line],
            valid: BitPlane::new(lines, 1),
            dirty: vec![false; lines],
            lru: vec![0; lines],
            tick: 0,
            tag_hook: FaultHook::new(),
            data_hook: FaultHook::new(),
            valid_hook: FaultHook::new(),
            stats: CacheStats::default(),
            residency: None,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Number of lines (`sets * ways`).
    pub fn lines(&self) -> usize {
        self.cfg.sets * self.cfg.ways
    }

    /// Bits per line in the data array.
    pub fn data_bits_per_line(&self) -> u64 {
        self.cfg.line as u64 * 8
    }

    /// Bits per tag entry.
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.off_bits) as usize) & (self.cfg.sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        (addr >> (self.off_bits + self.set_bits)) & ((1u64 << self.tag_bits) - 1)
    }

    #[inline]
    fn line_index(&self, set: usize, way: usize) -> usize {
        set * self.cfg.ways + way
    }

    /// Reconstructs a line's base address from its *stored* tag (faults
    /// included) — the address a writeback of this line will target.
    pub fn line_addr(&mut self, line: usize) -> u64 {
        let set = (line / self.cfg.ways) as u64;
        self.tag_hook.note_read(line as u64, 0, self.tag_bits);
        let tag = self.tags.get_field(line, 0, self.tag_bits as usize);
        (tag << (self.off_bits + self.set_bits)) | (set << self.off_bits)
    }

    /// Probes the cache for the line containing `addr`. Touches the tag and
    /// valid planes of every way in the set (which is what makes tag/valid
    /// faults observable). Does not update statistics — callers know whether
    /// the probe was a read or a write.
    pub fn lookup(&mut self, addr: u64) -> Option<usize> {
        let set = self.set_of(addr);
        let want = self.tag_of(addr);
        let mut found = None;
        for way in 0..self.cfg.ways {
            let line = self.line_index(set, way);
            self.valid_hook.note_read(line as u64, 0, 1);
            if !self.valid.get(line, 0) {
                continue;
            }
            self.tag_hook.note_read(line as u64, 0, self.tag_bits);
            let tag = self.tags.get_field(line, 0, self.tag_bits as usize);
            if tag == want {
                found = Some(line);
                // Keep scanning: remaining ways' valid bits were probed by
                // the parallel comparators anyway; tags of invalid ways are
                // not driven.
            }
        }
        if let Some(line) = found {
            self.tick += 1;
            self.lru[line] = self.tick;
        }
        found
    }

    /// Reads `buf.len()` bytes at `off` within `line` through the data
    /// plane's fault hook.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the line.
    pub fn read(&mut self, line: usize, off: usize, buf: &mut [u8]) {
        assert!(off + buf.len() <= self.cfg.line);
        self.data_hook
            .note_read(line as u64, (off * 8) as u32, (buf.len() * 8) as u32);
        if let Some(t) = &mut self.residency {
            t.on_read(line as u64, (off * 8) as u32, (buf.len() * 8) as u32);
        }
        let base = line * self.cfg.line + off;
        buf.copy_from_slice(&self.data[base..base + buf.len()]);
    }

    /// Writes `bytes` at `off` within `line`, marks the line dirty, and
    /// re-asserts any stuck-at bits overlapping the write.
    pub fn write(&mut self, line: usize, off: usize, bytes: &[u8]) {
        assert!(off + bytes.len() <= self.cfg.line);
        let needs_fixup =
            self.data_hook
                .note_write(line as u64, (off * 8) as u32, (bytes.len() * 8) as u32);
        if let Some(t) = &mut self.residency {
            t.on_write(line as u64, (off * 8) as u32, (bytes.len() * 8) as u32);
        }
        let base = line * self.cfg.line + off;
        self.data[base..base + bytes.len()].copy_from_slice(bytes);
        if needs_fixup {
            self.apply_data_stuck(line);
        }
        self.dirty[line] = true;
    }

    fn apply_data_stuck(&mut self, line: usize) {
        let base = line * self.cfg.line;
        let line_len = self.cfg.line;
        // Collect first to avoid holding a borrow of the hook.
        let fixes: Vec<(u32, bool)> = self.data_hook.stuck_fixups(line as u64).collect();
        for (bit, v) in fixes {
            bits::set_bit_in_bytes(&mut self.data[base..base + line_len], bit as u64, v);
        }
    }

    /// Installs the line containing `addr` (full `line`-sized `data`),
    /// evicting a victim if necessary. Returns the dirty victim as a
    /// [`Writeback`] when one must be propagated down the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not exactly one line.
    pub fn fill(&mut self, addr: u64, data: &[u8]) -> Option<Writeback> {
        assert_eq!(data.len(), self.cfg.line);
        let set = self.set_of(addr);
        // Victim selection: first invalid way, else LRU.
        let mut victim = None;
        for way in 0..self.cfg.ways {
            let line = self.line_index(set, way);
            self.valid_hook.note_read(line as u64, 0, 1);
            if !self.valid.get(line, 0) {
                victim = Some(line);
                break;
            }
        }
        let line = victim.unwrap_or_else(|| {
            (0..self.cfg.ways)
                .map(|w| self.line_index(set, w))
                .min_by_key(|&l| self.lru[l])
                .expect("ways > 0")
        });

        let mut wb = None;
        if self.valid.get(line, 0) {
            self.stats.replacements += 1;
            if self.dirty[line] {
                self.stats.writebacks += 1;
                let victim_addr = self.line_addr(line);
                let mut victim_data = vec![0u8; self.cfg.line];
                self.read(line, 0, &mut victim_data);
                wb = Some(Writeback {
                    addr: victim_addr,
                    data: victim_data,
                });
            }
        }

        // Install tag.
        let tag = self.tag_of(addr);
        let tag_fix = self.tag_hook.note_write(line as u64, 0, self.tag_bits);
        self.tags.set_field(line, 0, self.tag_bits as usize, tag);
        if tag_fix {
            let fixes: Vec<(u32, bool)> = self.tag_hook.stuck_fixups(line as u64).collect();
            for (bit, v) in fixes {
                self.tags.set(line, bit as usize, v);
            }
        }
        // Install data (fill does not dirty the line).
        let data_fix = self
            .data_hook
            .note_write(line as u64, 0, (self.cfg.line * 8) as u32);
        if let Some(t) = &mut self.residency {
            t.on_write(line as u64, 0, (self.cfg.line * 8) as u32);
        }
        let base = line * self.cfg.line;
        self.data[base..base + self.cfg.line].copy_from_slice(data);
        if data_fix {
            self.apply_data_stuck(line);
        }
        self.dirty[line] = false;
        // Set valid.
        let valid_fix = self.valid_hook.note_write(line as u64, 0, 1);
        self.valid.set(line, 0, true);
        if valid_fix {
            let fixes: Vec<(u32, bool)> = self.valid_hook.stuck_fixups(line as u64).collect();
            for (bit, v) in fixes {
                self.valid.set(line, bit as usize, v);
            }
        }
        self.tick += 1;
        self.lru[line] = self.tick;
        wb
    }

    /// Peeks at a line's valid bit without touching fault hooks (used by the
    /// injector's unused-entry check, not by the simulated machine).
    pub fn peek_valid(&self, line: usize) -> bool {
        self.valid.get(line, 0)
    }

    /// Peeks at a line's dirty flag.
    pub fn peek_dirty(&self, line: usize) -> bool {
        self.dirty[line]
    }

    /// Flips one bit of the **data** array and arms its liveness watch.
    pub fn inject_data_flip(&mut self, line: u64, bit: u32) {
        let base = line as usize * self.cfg.line;
        let line_len = self.cfg.line;
        bits::flip_bit_in_bytes(&mut self.data[base..base + line_len], bit as u64);
        self.data_hook.arm_flip(line, bit);
    }

    /// Forces one bit of the data array stuck at `value`.
    pub fn inject_data_stuck(&mut self, line: u64, bit: u32, value: bool) {
        let base = line as usize * self.cfg.line;
        let line_len = self.cfg.line;
        bits::set_bit_in_bytes(&mut self.data[base..base + line_len], bit as u64, value);
        self.data_hook.arm_stuck(line, bit, value);
    }

    /// Flips one bit of the **tag** array.
    pub fn inject_tag_flip(&mut self, line: u64, bit: u32) {
        self.tags.flip(line as usize, bit as usize);
        self.tag_hook.arm_flip(line, bit);
    }

    /// Forces one tag bit stuck at `value`.
    pub fn inject_tag_stuck(&mut self, line: u64, bit: u32, value: bool) {
        self.tags.set(line as usize, bit as usize, value);
        self.tag_hook.arm_stuck(line, bit, value);
    }

    /// Flips a line's **valid** bit.
    pub fn inject_valid_flip(&mut self, line: u64) {
        self.valid.flip(line as usize, 0);
        self.valid_hook.arm_flip(line, 0);
    }

    /// Forces a line's valid bit stuck at `value`.
    pub fn inject_valid_stuck(&mut self, line: u64, value: bool) {
        self.valid.set(line as usize, 0, value);
        self.valid_hook.arm_stuck(line, 0, value);
    }

    /// True when every armed fault across all three planes is provably dead.
    pub fn all_faults_dead(&self) -> bool {
        self.tag_hook.all_faults_dead()
            && self.data_hook.all_faults_dead()
            && self.valid_hook.all_faults_dead()
    }

    /// True when any armed fault has been consumed.
    pub fn any_fault_consumed(&self) -> bool {
        self.tag_hook.any_fault_consumed()
            || self.data_hook.any_fault_consumed()
            || self.valid_hook.any_fault_consumed()
    }
}

/// Residency instrumentation of the **data** plane only. Tag and valid
/// planes are control state whose faults act through lookup behavior, not
/// through the recorded access trace, so tracing them would invite unsound
/// conclusions (see `residency::residency_prune_safe`).
impl Instrument for Cache {
    fn enable_residency(&mut self) {
        self.residency = Some(Box::new(ResidencyTracker::new()));
    }

    fn residency_tick(&mut self, cycle: u64) {
        if let Some(t) = &mut self.residency {
            t.set_cycle(cycle);
        }
    }

    fn take_residency(&mut self) -> Option<ResidencyTracker> {
        self.residency.take().map(|b| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 16-byte lines = 128 B.
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line: 16,
        })
    }

    fn line_of(addr: u64, val: u8) -> Vec<u8> {
        let mut v = vec![val; 16];
        v[0] = addr as u8;
        v
    }

    #[test]
    fn miss_then_hit_roundtrip() {
        let mut c = tiny();
        assert!(c.lookup(0x1000).is_none());
        assert!(c.fill(0x1000, &line_of(0x1000, 7)).is_none());
        let line = c.lookup(0x1000).expect("hit after fill");
        let mut b = [0u8; 4];
        c.read(line, 4, &mut b);
        assert_eq!(b, [7, 7, 7, 7]);
    }

    #[test]
    fn set_indexing_separates_addresses() {
        let mut c = tiny();
        // 0x00 and 0x10 differ in set bits.
        c.fill(0x00, &line_of(0, 1));
        c.fill(0x10, &line_of(0x10, 2));
        assert!(c.lookup(0x00).is_some());
        assert!(c.lookup(0x10).is_some());
        assert_ne!(c.lookup(0x00), c.lookup(0x10));
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        let mut c = tiny();
        // Three addresses mapping to set 0 (set stride = 16 * 4 = 64).
        c.fill(0x000, &line_of(0, 1));
        c.fill(0x040, &line_of(0x40, 2));
        // Touch 0x000 so 0x040 is LRU.
        assert!(c.lookup(0x000).is_some());
        c.fill(0x080, &line_of(0x80, 3));
        assert!(c.lookup(0x000).is_some(), "recently used line survives");
        assert!(c.lookup(0x040).is_none(), "LRU line evicted");
        assert_eq!(c.stats.replacements, 1);
    }

    #[test]
    fn dirty_eviction_produces_writeback_with_correct_address() {
        let mut c = tiny();
        c.fill(0x000, &line_of(0, 1));
        let l = c.lookup(0x000).unwrap();
        c.write(l, 0, &[0xAA; 16]);
        c.fill(0x040, &line_of(0x40, 2));
        let wb = c.fill(0x080, &line_of(0x80, 3));
        // 0x000 was LRU (0x040 filled later): dirty → writeback.
        let wb = wb.expect("dirty line must write back");
        assert_eq!(wb.addr, 0x000);
        assert_eq!(wb.data, vec![0xAA; 16]);
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = tiny();
        c.fill(0x000, &line_of(0, 1));
        c.fill(0x040, &line_of(0x40, 2));
        assert!(c.lookup(0x040).is_some()); // make 0x000 LRU
        assert!(c.fill(0x080, &line_of(0x80, 3)).is_none());
    }

    #[test]
    fn data_fault_flips_loaded_value_and_is_consumed() {
        let mut c = tiny();
        c.fill(0x000, &line_of(0, 0));
        let l = c.lookup(0x000).unwrap();
        c.inject_data_flip(l as u64, 8 * 5 + 1); // bit 1 of byte 5
        let mut b = [0u8; 1];
        c.read(l, 5, &mut b);
        assert_eq!(b[0], 0b10);
        assert!(c.any_fault_consumed());
        assert!(!c.all_faults_dead());
    }

    #[test]
    fn data_fault_overwritten_before_read_is_dead() {
        let mut c = tiny();
        c.fill(0x000, &line_of(0, 0));
        let l = c.lookup(0x000).unwrap();
        c.inject_data_flip(l as u64, 8 * 5);
        c.write(l, 4, &[9, 9]); // covers byte 5
        assert!(c.all_faults_dead());
        let mut b = [0u8; 1];
        c.read(l, 5, &mut b);
        assert_eq!(b[0], 9);
    }

    #[test]
    fn refill_overwrites_data_fault() {
        let mut c = tiny();
        c.fill(0x000, &line_of(0, 0));
        let l = c.lookup(0x000).unwrap();
        c.inject_data_flip(l as u64, 3);
        // Fill the same set twice more so line l is replaced.
        c.fill(0x040, &line_of(0x40, 1));
        c.fill(0x080, &line_of(0x80, 2));
        assert!(c.all_faults_dead(), "refill rewrote the whole line");
    }

    #[test]
    fn tag_fault_causes_miss_and_misdirected_writeback() {
        let mut c = tiny();
        c.fill(0x000, &line_of(0, 1));
        let l = c.lookup(0x000).unwrap();
        c.write(l, 0, &[0x55; 16]);
        c.inject_tag_flip(l as u64, 0); // flip tag bit 0
        assert!(c.lookup(0x000).is_none(), "corrupted tag no longer matches");
        assert!(c.any_fault_consumed(), "probe read the corrupted tag");
        // Force eviction of the dirty line; its writeback address is wrong.
        c.fill(0x040, &line_of(0x40, 2));
        let wb = c.fill(0x080, &line_of(0x80, 3)).expect("dirty writeback");
        // Tag bit 0 is address bit 6 (4 offset bits + 2 set bits): 0x000 ^ 0x40.
        assert_eq!(wb.addr, 0x40);
    }

    #[test]
    fn valid_fault_invalidates_line_silently_losing_data() {
        let mut c = tiny();
        c.fill(0x000, &line_of(0, 1));
        let l = c.lookup(0x000).unwrap();
        c.inject_valid_flip(l as u64);
        assert!(!c.peek_valid(l));
        assert!(c.lookup(0x000).is_none(), "line vanished");
    }

    #[test]
    fn stuck_data_bit_survives_writes() {
        let mut c = tiny();
        c.fill(0x000, &line_of(0, 0));
        let l = c.lookup(0x000).unwrap();
        c.inject_data_stuck(l as u64, 0, true);
        c.write(l, 0, &[0u8; 16]);
        let mut b = [0u8; 1];
        c.read(l, 0, &mut b);
        assert_eq!(b[0], 1, "stuck-at-1 re-asserted after the write");
        assert!(!c.all_faults_dead());
    }

    #[test]
    fn paper_configs_have_expected_geometry() {
        let l1 = Cache::new(CacheConfig::L1);
        assert_eq!(l1.config().capacity(), 32 * 1024);
        assert_eq!(l1.lines(), 512);
        assert_eq!(l1.data_bits_per_line(), 512);
        let l2 = Cache::new(CacheConfig::L2);
        assert_eq!(l2.config().capacity(), 1024 * 1024);
        assert_eq!(l2.lines(), 16384);
    }

    #[test]
    fn peek_does_not_consume_faults() {
        let mut c = tiny();
        c.fill(0x000, &line_of(0, 1));
        let l = c.lookup(0x000).unwrap();
        c.inject_valid_flip(l as u64);
        let _ = c.peek_valid(l);
        let _ = c.peek_dirty(l);
        assert!(!c.any_fault_consumed());
    }
}
