//! Fault targeting: structure identifiers, geometries, and the per-structure
//! [`FaultHook`] that applies stuck-at faults and tracks fault liveness.
//!
//! Table IV of the paper lists the structures MaFIN and GeFIN can inject
//! into; [`StructureId`] reproduces that list. Each injectable storage array
//! owns a [`FaultHook`]; the simulator routes every read and write of the
//! array through the hook so that:
//!
//! * **stuck-at** bits (intermittent/permanent models) are re-asserted after
//!   every write that touches them;
//! * the campaign controller can ask whether every injected fault is
//!   provably **dead** — overwritten before ever being read — which licenses
//!   the paper's early-stop optimization (§III.B.2, item ii);
//! * a fault that has been **consumed** (read after injection) is flagged,
//!   since such runs must execute to completion for an accurate verdict.

/// Identifies one injectable hardware structure.
///
/// The names follow Table IV of the paper. The same identifier maps to
/// different geometries per simulator (e.g. `LsqData` is a 32×64-bit unified
/// queue in MaFIN but the 16×64-bit store queue in GeFIN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StructureId {
    /// Integer physical register file (data bits).
    IntRegFile,
    /// Floating-point physical register file (data bits).
    FpRegFile,
    /// Issue-queue entry payloads.
    IssueQueue,
    /// Load/store queue data field (Fig. 6's target).
    LsqData,
    /// L1 data cache — data arrays (Fig. 3's target).
    L1dData,
    /// L1 data cache — tag array.
    L1dTag,
    /// L1 data cache — valid bits.
    L1dValid,
    /// L1 instruction cache — instruction arrays (Fig. 4's target).
    L1iData,
    /// L1 instruction cache — tag array.
    L1iTag,
    /// L1 instruction cache — valid bits.
    L1iValid,
    /// Unified L2 cache — data arrays (Fig. 5's target).
    L2Data,
    /// Unified L2 cache — tag array.
    L2Tag,
    /// Unified L2 cache — valid bits.
    L2Valid,
    /// Data TLB — tag (VPN) and translation (PPN) bits.
    DtlbEntry,
    /// Data TLB — valid bits.
    DtlbValid,
    /// Instruction TLB — tag and translation bits.
    ItlbEntry,
    /// Instruction TLB — valid bits.
    ItlbValid,
    /// Branch target buffer entries (valid + tag + target).
    Btb,
    /// Return address stack entries.
    Ras,
}

impl StructureId {
    /// All structure identifiers, in a stable report order.
    pub const ALL: [StructureId; 19] = [
        StructureId::IntRegFile,
        StructureId::FpRegFile,
        StructureId::IssueQueue,
        StructureId::LsqData,
        StructureId::L1dData,
        StructureId::L1dTag,
        StructureId::L1dValid,
        StructureId::L1iData,
        StructureId::L1iTag,
        StructureId::L1iValid,
        StructureId::L2Data,
        StructureId::L2Tag,
        StructureId::L2Valid,
        StructureId::DtlbEntry,
        StructureId::DtlbValid,
        StructureId::ItlbEntry,
        StructureId::ItlbValid,
        StructureId::Btb,
        StructureId::Ras,
    ];

    /// Short stable name used in logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            StructureId::IntRegFile => "int_prf",
            StructureId::FpRegFile => "fp_prf",
            StructureId::IssueQueue => "issue_queue",
            StructureId::LsqData => "lsq_data",
            StructureId::L1dData => "l1d_data",
            StructureId::L1dTag => "l1d_tag",
            StructureId::L1dValid => "l1d_valid",
            StructureId::L1iData => "l1i_data",
            StructureId::L1iTag => "l1i_tag",
            StructureId::L1iValid => "l1i_valid",
            StructureId::L2Data => "l2_data",
            StructureId::L2Tag => "l2_tag",
            StructureId::L2Valid => "l2_valid",
            StructureId::DtlbEntry => "dtlb_entry",
            StructureId::DtlbValid => "dtlb_valid",
            StructureId::ItlbEntry => "itlb_entry",
            StructureId::ItlbValid => "itlb_valid",
            StructureId::Btb => "btb",
            StructureId::Ras => "ras",
        }
    }

    /// Parses a [`StructureId::name`] back into an identifier.
    pub fn from_name(s: &str) -> Option<StructureId> {
        StructureId::ALL.into_iter().find(|id| id.name() == s)
    }

    /// True when a fault injected into an *unused* entry of this structure
    /// is provably masked (every allocation writes the data before any read)
    /// — the paper's early-stop optimization (§III.B.2, item i). Holds for
    /// data planes; control planes (tags, valid bits) have live effects even
    /// on invalid entries.
    pub fn dead_entry_stop_safe(self) -> bool {
        matches!(
            self,
            StructureId::IntRegFile
                | StructureId::FpRegFile
                | StructureId::IssueQueue
                | StructureId::LsqData
                | StructureId::L1dData
                | StructureId::L1iData
                | StructureId::L2Data
        )
    }
}

impl std::fmt::Display for StructureId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Geometry of one injectable structure: `entries` rows of `bits` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureDesc {
    /// Which structure.
    pub id: StructureId,
    /// Number of entries (rows).
    pub entries: u64,
    /// Bits per entry.
    pub bits: u64,
}

impl StructureDesc {
    /// Total storage bits.
    pub fn total_bits(&self) -> u64 {
        self.entries * self.bits
    }
}

/// The fault model of a single bit-level fault (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Transient: the stored bit is flipped once at the injection time.
    Flip,
    /// Stuck-at-zero for the fault's duration (intermittent or permanent).
    Stuck0,
    /// Stuck-at-one for the fault's duration.
    Stuck1,
}

#[derive(Debug, Clone, Copy)]
struct StuckBit {
    entry: u64,
    bit: u32,
    value: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    entry: u64,
    bit: u32,
    read_after: bool,
    overwritten: bool,
    /// Stuck faults stay live while active; flips die on overwrite.
    sticky: bool,
    /// Cycle stamp (from [`FaultHook::set_now`]) of the first read, when the
    /// core is tracing. Meaningless (always `Some(0)`) when it is not.
    first_read_at: Option<u64>,
    /// Cycle stamp of the killing overwrite, under the same caveat.
    overwritten_at: Option<u64>,
}

/// The observable lifecycle of one watched fault, for trace assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchReport {
    /// Entry index the fault was injected into.
    pub entry: u64,
    /// Bit position within the entry.
    pub bit: u32,
    /// Cycle of the first read of the faulted bit, if it was ever read.
    pub first_read_at: Option<u64>,
    /// Cycle of the overwrite that killed the fault before any read.
    pub overwritten_at: Option<u64>,
}

/// Per-structure fault state: active stuck-at bits plus liveness watches for
/// every injected fault.
///
/// Structures call [`FaultHook::note_read`] / [`FaultHook::note_write`] with
/// the bit range each operation touches. The hook is deliberately cheap when
/// no faults are active (the overwhelmingly common case): both lists are
/// empty `Vec`s and the notifications reduce to an `is_empty` check.
#[derive(Debug, Default, Clone)]
pub struct FaultHook {
    stuck: Vec<StuckBit>,
    watches: Vec<Watch>,
    /// Current simulated cycle, ticked by the core only while tracing is
    /// enabled; stamps read/overwrite transitions for the event tracer.
    now: u64,
}

impl FaultHook {
    /// Creates an empty hook.
    pub fn new() -> FaultHook {
        FaultHook::default()
    }

    /// Advances the hook's cycle stamp. Called once per cycle by the core,
    /// and only on hooks of structures with injected faults while tracing —
    /// the untraced path never touches it.
    #[inline]
    pub fn set_now(&mut self, cycle: u64) {
        self.now = cycle;
    }

    /// Lifecycle reports for every watched fault, in arm order.
    pub fn watch_reports(&self) -> Vec<WatchReport> {
        self.watches
            .iter()
            .map(|w| WatchReport {
                entry: w.entry,
                bit: w.bit,
                first_read_at: if w.read_after { w.first_read_at } else { None },
                overwritten_at: if w.overwritten {
                    w.overwritten_at
                } else {
                    None
                },
            })
            .collect()
    }

    /// True if no faults were ever registered (fast path).
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.stuck.is_empty() && self.watches.is_empty()
    }

    /// Registers a transient flip at `(entry, bit)`. The caller must flip the
    /// stored bit itself (storage layouts differ per structure).
    pub fn arm_flip(&mut self, entry: u64, bit: u32) {
        self.watches.push(Watch {
            entry,
            bit,
            read_after: false,
            overwritten: false,
            sticky: false,
            first_read_at: None,
            overwritten_at: None,
        });
    }

    /// Registers a stuck-at fault. The caller must also force the stored bit
    /// now; the hook re-asserts it after each overlapping write via
    /// [`FaultHook::stuck_fixups`].
    pub fn arm_stuck(&mut self, entry: u64, bit: u32, value: bool) {
        self.stuck.push(StuckBit { entry, bit, value });
        self.watches.push(Watch {
            entry,
            bit,
            read_after: false,
            overwritten: false,
            sticky: true,
            first_read_at: None,
            overwritten_at: None,
        });
    }

    /// Removes a stuck-at fault (end of an intermittent window). The stored
    /// bit keeps its last forced value, as real intermittents do.
    pub fn disarm_stuck(&mut self, entry: u64, bit: u32) {
        self.stuck.retain(|s| !(s.entry == entry && s.bit == bit));
        for w in &mut self.watches {
            if w.entry == entry && w.bit == bit {
                w.sticky = false;
            }
        }
    }

    /// Notes a read of `len` bits starting at `bit_lo` within `entry`.
    #[inline]
    pub fn note_read(&mut self, entry: u64, bit_lo: u32, len: u32) {
        if self.watches.is_empty() {
            return;
        }
        for w in &mut self.watches {
            if w.entry == entry && !w.overwritten && w.bit >= bit_lo && w.bit < bit_lo + len {
                if !w.read_after {
                    w.first_read_at = Some(self.now);
                }
                w.read_after = true;
            }
        }
    }

    /// Notes a write covering `len` bits starting at `bit_lo` within `entry`.
    /// Returns `true` if any stuck bit overlaps the range (the caller must
    /// then apply [`FaultHook::stuck_fixups`] to the stored data).
    #[inline]
    pub fn note_write(&mut self, entry: u64, bit_lo: u32, len: u32) -> bool {
        if self.is_idle() {
            return false;
        }
        for w in &mut self.watches {
            if w.entry == entry
                && !w.sticky
                && !w.read_after
                && !w.overwritten
                && w.bit >= bit_lo
                && w.bit < bit_lo + len
            {
                w.overwritten = true;
                w.overwritten_at = Some(self.now);
            }
        }
        self.stuck
            .iter()
            .any(|s| s.entry == entry && s.bit >= bit_lo && s.bit < bit_lo + len)
    }

    /// The stuck bits overlapping `entry` — callers force these values back
    /// into storage after a write that [`FaultHook::note_write`] flagged.
    pub fn stuck_fixups(&self, entry: u64) -> impl Iterator<Item = (u32, bool)> + '_ {
        self.stuck
            .iter()
            .filter(move |s| s.entry == entry)
            .map(|s| (s.bit, s.value))
    }

    /// True when *every* registered fault is provably dead: flips overwritten
    /// before being read, and no stuck faults remain active. A campaign may
    /// then stop the run and classify it Masked.
    pub fn all_faults_dead(&self) -> bool {
        self.stuck.is_empty() && self.watches.iter().all(|w| w.overwritten && !w.read_after)
    }

    /// True when any fault has been read after injection (the run must then
    /// execute to completion for an accurate classification).
    pub fn any_fault_consumed(&self) -> bool {
        self.watches.iter().any(|w| w.read_after)
    }

    /// Number of faults registered on this hook.
    pub fn armed_count(&self) -> usize {
        self.watches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for id in StructureId::ALL {
            assert_eq!(StructureId::from_name(id.name()), Some(id));
        }
        assert_eq!(StructureId::from_name("bogus"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(StructureId::L1dData.to_string(), "l1d_data");
    }

    #[test]
    fn dead_entry_stop_only_for_data_planes() {
        assert!(StructureId::L1dData.dead_entry_stop_safe());
        assert!(StructureId::IntRegFile.dead_entry_stop_safe());
        assert!(!StructureId::L1dTag.dead_entry_stop_safe());
        assert!(!StructureId::L1dValid.dead_entry_stop_safe());
        assert!(!StructureId::Btb.dead_entry_stop_safe());
    }

    #[test]
    fn desc_total_bits() {
        let d = StructureDesc {
            id: StructureId::IntRegFile,
            entries: 256,
            bits: 64,
        };
        assert_eq!(d.total_bits(), 16384);
    }

    #[test]
    fn flip_overwritten_before_read_is_dead() {
        let mut h = FaultHook::new();
        h.arm_flip(5, 12);
        assert!(!h.all_faults_dead());
        h.note_write(5, 0, 64);
        assert!(h.all_faults_dead());
        assert!(!h.any_fault_consumed());
        // A later read of the (now clean) entry does not resurrect it.
        h.note_read(5, 0, 64);
        assert!(h.all_faults_dead());
    }

    #[test]
    fn flip_read_first_is_consumed() {
        let mut h = FaultHook::new();
        h.arm_flip(5, 12);
        h.note_read(5, 0, 64);
        assert!(h.any_fault_consumed());
        h.note_write(5, 0, 64);
        assert!(!h.all_faults_dead(), "consumed faults are never dead");
    }

    #[test]
    fn range_granularity_is_respected() {
        let mut h = FaultHook::new();
        h.arm_flip(3, 40);
        // Read of bits 0..32 does not touch bit 40.
        h.note_read(3, 0, 32);
        assert!(!h.any_fault_consumed());
        // Write of bits 0..32 does not kill it either.
        h.note_write(3, 0, 32);
        assert!(!h.all_faults_dead());
        // Write covering bit 40 kills it.
        h.note_write(3, 32, 32);
        assert!(h.all_faults_dead());
    }

    #[test]
    fn different_entries_do_not_interact() {
        let mut h = FaultHook::new();
        h.arm_flip(1, 0);
        h.note_write(2, 0, 64);
        h.note_read(2, 0, 64);
        assert!(!h.all_faults_dead());
        assert!(!h.any_fault_consumed());
    }

    #[test]
    fn stuck_faults_require_fixups_and_stay_live() {
        let mut h = FaultHook::new();
        h.arm_stuck(7, 3, true);
        assert!(h.note_write(7, 0, 8), "write overlapping stuck bit flagged");
        let fix: Vec<_> = h.stuck_fixups(7).collect();
        assert_eq!(fix, vec![(3, true)]);
        assert!(!h.all_faults_dead(), "active stuck faults are never dead");
        h.disarm_stuck(7, 3);
        // After disarm the (non-sticky now) watch still isn't overwritten.
        assert!(!h.all_faults_dead());
        h.note_write(7, 0, 8);
        assert!(h.all_faults_dead());
    }

    #[test]
    fn multiple_faults_all_must_die() {
        let mut h = FaultHook::new();
        h.arm_flip(1, 1);
        h.arm_flip(2, 2);
        h.note_write(1, 0, 8);
        assert!(!h.all_faults_dead());
        h.note_write(2, 0, 8);
        assert!(h.all_faults_dead());
        assert_eq!(h.armed_count(), 2);
    }

    #[test]
    fn idle_hook_is_cheap_and_inert() {
        let mut h = FaultHook::new();
        assert!(h.is_idle());
        assert!(!h.note_write(0, 0, 64));
        h.note_read(0, 0, 64);
        assert!(h.all_faults_dead(), "vacuously dead when nothing armed");
        assert!(!h.any_fault_consumed());
    }
}
