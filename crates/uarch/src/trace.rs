//! Raw fault-propagation observation points on the out-of-order core.
//!
//! This module carries no event model of its own — it records the minimal
//! facts the dispatcher layer needs to assemble a `difi-obs` fault trace:
//! when each fault was applied, how each watched bit lived and died (via
//! [`FaultHook`](crate::fault::FaultHook) cycle stamps), and the first
//! commit at which architectural state diverged from the golden run.
//!
//! Divergence detection hashes the committed instruction stream: for every
//! retiring µop the PC and the committed destination value (read with
//! [`PhysRegFile::peek`](crate::regfile::PhysRegFile::peek), which has no
//! fault-hook side effects) are folded (FNV-1a-style multiply–xor) into a
//! per-instruction signature. A golden run records the signature vector; an injection run
//! compares each committed instruction against the golden entry at the same
//! commit index and records the first mismatch. Signatures are
//! *per-instruction*, not accumulated, so a warm-started run — whose
//! fault-free prefix is replayed inside the snapshot — can begin comparing
//! at its restored commit index and still agree with a cold run.
//!
//! Cost when disabled: the core holds `Option<Box<CoreTrace>>` = `None`,
//! so tracing adds one pointer test per cycle and one per committed µop.

use crate::fault::{StructureId, WatchReport};
use std::sync::Arc;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into the signature hash: a word-wise FNV-1a-style
/// multiply–xor step. One xor and one multiply per µop value keeps the
/// per-commit tracing cost inside the <5% overhead budget (the byte-wise
/// FNV loop was 8× this); order sensitivity — the property divergence
/// detection needs — is preserved by the multiply between folds.
#[inline]
pub fn fnv1a_fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// One fault application, stamped with the cycle it landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedEvent {
    /// Cycle at which the fault was applied.
    pub cycle: u64,
    /// Target structure.
    pub structure: StructureId,
    /// Entry index within the structure.
    pub entry: u64,
    /// Bit position within the entry.
    pub bit: u32,
}

/// The first committed-state divergence from the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Cycle of the diverging commit.
    pub cycle: u64,
    /// Zero-based commit index (architectural instruction count) of the
    /// diverging instruction.
    pub commit_index: u64,
}

/// Per-run tracing state attached to the core while observability is on.
#[derive(Debug, Clone)]
pub struct CoreTrace {
    /// Golden mode: record signatures instead of comparing them.
    record: bool,
    /// Golden signature vector to compare against (injection mode).
    golden_sig: Option<Arc<Vec<u64>>>,
    /// Recorded signatures (golden mode).
    sig: Vec<u64>,
    /// Commit index of the *next* instruction to retire.
    commit_index: usize,
    /// Running FNV-1a hash of the in-flight instruction's µops.
    inst_hash: u64,
    /// First divergence found, if any.
    divergence: Option<Divergence>,
    /// Fault applications, in application order.
    injected: Vec<InjectedEvent>,
}

impl CoreTrace {
    /// Golden-mode trace: records the commit signature vector.
    pub fn recording() -> CoreTrace {
        CoreTrace {
            record: true,
            golden_sig: None,
            sig: Vec::new(),
            commit_index: 0,
            inst_hash: FNV_OFFSET,
            divergence: None,
            injected: Vec::new(),
        }
    }

    /// Injection-mode trace comparing against `golden` starting at
    /// `commit_index` (non-zero for warm-started cores that already
    /// committed their fault-free prefix).
    pub fn comparing(golden: Option<Arc<Vec<u64>>>, commit_index: usize) -> CoreTrace {
        CoreTrace {
            record: false,
            golden_sig: golden,
            sig: Vec::new(),
            commit_index,
            inst_hash: FNV_OFFSET,
            divergence: None,
            injected: Vec::new(),
        }
    }

    /// Folds one value of the committing µop into the instruction hash.
    #[inline]
    pub fn fold(&mut self, v: u64) {
        self.inst_hash = fnv1a_fold(self.inst_hash, v);
    }

    /// Seals the in-flight instruction at an architectural commit boundary:
    /// records its signature (golden mode) or compares it against the
    /// golden vector (injection mode), noting the first mismatch. Committing
    /// past the end of the golden vector is itself a divergence — the run
    /// is executing instructions the golden program never committed.
    pub fn commit_boundary(&mut self, cycle: u64) {
        let h = std::mem::replace(&mut self.inst_hash, FNV_OFFSET);
        if self.record {
            self.sig.push(h);
        } else if self.divergence.is_none() {
            if let Some(golden) = &self.golden_sig {
                let matches = golden.get(self.commit_index) == Some(&h);
                if !matches {
                    self.divergence = Some(Divergence {
                        cycle,
                        commit_index: self.commit_index as u64,
                    });
                }
            }
        }
        self.commit_index += 1;
    }

    /// Records one fault application.
    pub fn note_injected(&mut self, ev: InjectedEvent) {
        self.injected.push(ev);
    }

    /// The recorded golden signature vector (golden mode).
    pub fn into_signature(self) -> Vec<u64> {
        self.sig
    }

    /// Fault applications so far, in application order.
    pub fn injected_events(&self) -> &[InjectedEvent] {
        &self.injected
    }

    /// First divergence, if one was found.
    pub fn divergence(&self) -> Option<Divergence> {
        self.divergence
    }
}

/// Everything the dispatcher layer needs to assemble a fault trace, pulled
/// off the core after a traced run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Fault applications, in application order.
    pub injected: Vec<InjectedEvent>,
    /// Per-structure watch lifecycles, in structure-injection then arm
    /// order.
    pub watches: Vec<(StructureId, WatchReport)>,
    /// First committed-state divergence from the golden run, if any.
    pub divergence: Option<Divergence>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_then_comparing_agrees() {
        let mut golden = CoreTrace::recording();
        for inst in 0..4u64 {
            golden.fold(0x1000 + inst); // pc
            golden.fold(inst * 7); // dest value
            golden.commit_boundary(10 + inst);
        }
        let sig = Arc::new(golden.into_signature());
        assert_eq!(sig.len(), 4);

        // Identical stream: no divergence.
        let mut same = CoreTrace::comparing(Some(sig.clone()), 0);
        for inst in 0..4u64 {
            same.fold(0x1000 + inst);
            same.fold(inst * 7);
            same.commit_boundary(10 + inst);
        }
        assert_eq!(same.divergence(), None);

        // Third instruction's value differs: divergence at commit 2.
        let mut diff = CoreTrace::comparing(Some(sig.clone()), 0);
        for inst in 0..4u64 {
            diff.fold(0x1000 + inst);
            diff.fold(if inst == 2 { 999 } else { inst * 7 });
            diff.commit_boundary(10 + inst);
        }
        assert_eq!(
            diff.divergence(),
            Some(Divergence {
                cycle: 12,
                commit_index: 2
            })
        );

        // Warm start: begin at commit index 2, matching suffix — clean.
        let mut warm = CoreTrace::comparing(Some(sig.clone()), 2);
        for inst in 2..4u64 {
            warm.fold(0x1000 + inst);
            warm.fold(inst * 7);
            warm.commit_boundary(10 + inst);
        }
        assert_eq!(warm.divergence(), None);

        // Committing past the golden end is a divergence.
        let mut over = CoreTrace::comparing(Some(sig), 4);
        over.fold(0xdead);
        over.commit_boundary(99);
        assert_eq!(
            over.divergence(),
            Some(Divergence {
                cycle: 99,
                commit_index: 4
            })
        );
    }

    #[test]
    fn no_golden_vector_means_no_divergence_claims() {
        let mut t = CoreTrace::comparing(None, 0);
        t.fold(1);
        t.commit_boundary(5);
        assert_eq!(t.divergence(), None);
    }

    #[test]
    fn fnv_distinguishes_order() {
        let a = fnv1a_fold(fnv1a_fold(FNV_OFFSET, 1), 2);
        let b = fnv1a_fold(fnv1a_fold(FNV_OFFSET, 2), 1);
        assert_ne!(a, b);
    }
}
