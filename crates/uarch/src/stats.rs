//! Runtime statistics collected by both simulators.
//!
//! Section IV of the paper explains every MaFIN/GeFIN divergence with
//! benchmark runtime statistics — issued vs. committed loads (Remark 3),
//! L1D read/write hit rates, store counts and write misses (Remark 5),
//! mispredictions (Remark 6), L1I replacements (Remark 7), L2 hit/miss
//! behaviour (Remarks 10–11). [`SimStats`] is the common vocabulary the
//! report generator consumes.

use crate::cache::CacheStats;
use crate::predictor::PredictorStats;
use crate::tlb::TlbStats;

/// End-of-run statistics snapshot from one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed architectural instructions.
    pub committed_instructions: u64,
    /// Committed µops.
    pub committed_uops: u64,
    /// Load µops *issued* to the memory system (including speculative and
    /// replayed issues — MARSS's aggressive policy makes this much larger
    /// than the committed count; Remark 3's key statistic).
    pub issued_loads: u64,
    /// Load µops committed.
    pub committed_loads: u64,
    /// Store µops committed (drained to the cache).
    pub committed_stores: u64,
    /// Loads replayed due to store-alias ordering violations.
    pub load_replays: u64,
    /// Pipeline flushes (mispredicts + replays + exceptions).
    pub flushes: u64,
    /// Handled (logged) ISA exceptions.
    pub exceptions: u64,
    /// Hypervisor escapes taken (MaFIN only; zero on GeFIN).
    pub hypervisor_calls: u64,
    /// Conditional branch predictor statistics.
    pub predictor: PredictorStats,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Instruction TLB statistics.
    pub itlb: TlbStats,
    /// Data TLB statistics.
    pub dtlb: TlbStats,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instructions as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictor.lookups == 0 {
            0.0
        } else {
            self.predictor.mispredicts as f64 / self.predictor.lookups as f64
        }
    }

    /// Ratio of issued to committed loads (≥ 1; MARSS ≫ gem5).
    pub fn load_issue_ratio(&self) -> f64 {
        if self.committed_loads == 0 {
            0.0
        } else {
            self.issued_loads as f64 / self.committed_loads as f64
        }
    }

    /// L1D read hit rate.
    pub fn l1d_read_hit_rate(&self) -> f64 {
        let total = self.l1d.read_hits + self.l1d.read_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d.read_hits as f64 / total as f64
        }
    }

    /// L1D write hit rate.
    pub fn l1d_write_hit_rate(&self) -> f64 {
        let total = self.l1d.write_hits + self.l1d.write_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d.write_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        s.cycles = 100;
        s.committed_instructions = 150;
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        s.predictor.lookups = 10;
        s.predictor.mispredicts = 3;
        assert!((s.mispredict_rate() - 0.3).abs() < 1e-12);
        s.issued_loads = 40;
        s.committed_loads = 10;
        assert!((s.load_issue_ratio() - 4.0).abs() < 1e-12);
        s.l1d.read_hits = 9;
        s.l1d.read_misses = 1;
        assert!((s.l1d_read_hit_rate() - 0.9).abs() < 1e-12);
        s.l1d.write_hits = 1;
        s.l1d.write_misses = 3;
        assert!((s.l1d_write_hit_rate() - 0.25).abs() < 1e-12);
    }
}
