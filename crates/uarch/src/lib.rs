//! # difi-uarch
//!
//! Fault-injectable microarchitectural components shared by the two detailed
//! simulators (MarsSim in `difi-mars`, GemSim in `difi-gem`).
//!
//! The paper's injectors target *storage arrays*: "on-chip caches, register
//! files, buffers, queues … occupy the majority of a chip's area and thus
//! largely determine vulnerability to faults". Every component here therefore
//! keeps its architectural payload in real bit-accurate storage
//! ([`difi_util::bits::BitPlane`] or byte arrays) equipped with a
//! [`fault::FaultHook`]:
//!
//! * transient faults **flip** stored bits;
//! * intermittent/permanent faults hold bits **stuck** at 0/1 across writes;
//! * every read/write is tracked at bit-range granularity so a campaign can
//!   prove a fault *dead* (overwritten before ever read) and stop the run
//!   early — the paper's §III.B.2 optimization worth 30–70% per-run time.
//!
//! Components:
//!
//! * [`fault`] — structure identifiers, geometries, hooks, liveness.
//! * [`cache`] — set-associative write-back caches with separate tag, data
//!   and valid-bit planes and LRU replacement.
//! * [`mem`] — main memory plus the two-level [`mem::MemSystem`] hierarchy
//!   with the policy switches that differentiate MARSS-like from gem5-like
//!   memory behaviour.
//! * [`tlb`] — instruction/data TLBs with injectable tag/valid planes.
//! * [`predictor`] — tournament branch predictors with the two
//!   chooser-indexing schemes (branch-address vs global-history), both BTB
//!   organizations of Table II, and the return-address stack.
//! * [`regfile`] — physical register files, the rename map and free list.
//! * [`queues`] — the issue queue with its packed payload codec, the unified
//!   LSQ (MARSS) and split load/store queues (gem5), and the reorder buffer.
//! * [`stats`] — runtime statistics used for the paper's Remark analyses.
//! * [`trace`] — raw fault-propagation observation points (commit-stream
//!   signatures, injection/liveness cycle stamps) behind the `difi-obs`
//!   event tracer.

pub mod cache;
pub mod fault;
pub mod mem;
pub mod pipeline;
pub mod predictor;
pub mod queues;
pub mod regfile;
pub mod residency;
pub mod stats;
pub mod tlb;
pub mod trace;

pub use fault::{FaultHook, FaultKind, StructureDesc, StructureId};
pub use pipeline::engine::{EarlyWhy, EngineFault, EngineLimits};
pub use pipeline::{CoreConfig, CorePolicy, OoOCore, SimExit, SimRun};
pub use residency::{Instrument, ResidencyEvent, ResidencyLog, ResidencyTracker};
pub use trace::{CoreTrace, Divergence, InjectedEvent, TraceReport};
