//! Issue-queue storage with a packed payload codec, and the load/store-queue
//! data arrays.
//!
//! The issue queue's entries are stored as real packed bit-fields
//! ([`IssueQueue`]), so an injected fault lands in an *encoded* µop — it can
//! flip an opcode, retarget an operand to a different physical register, or
//! corrupt an immediate, exactly the failure surface hardware has. Decoding
//! a corrupted payload can also produce an *impossible* encoding
//! ([`PayloadError`]); whether the simulator reacts with an assertion
//! (MARSS's style) or stumbles on into a crash (gem5's style) is the
//! Remark 8 divergence, decided by the pipelines, not here.
//!
//! The LSQ **data field** (Fig. 6's injection target) is a [`LsqDataArray`]:
//! a unified 32×64-bit array in MaFIN, the 16×64-bit store queue in GeFIN.

use crate::fault::FaultHook;
use crate::residency::{Instrument, ResidencyTracker};
use difi_isa::uop::{BranchKind, Cond, FpOp, IntOp, UopKind, Width};
use difi_util::bits::BitPlane;

/// A register-renamed µop — the payload the issue queue stores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenamedUop {
    /// Functional class.
    pub kind: UopKind,
    /// Integer ALU operation.
    pub alu: IntOp,
    /// FP operation.
    pub fp: FpOp,
    /// Width.
    pub width: Width,
    /// Sign-extend loads.
    pub signed: bool,
    /// Branch condition.
    pub cond: Cond,
    /// Condition reads FLAGS (x86e) instead of registers.
    pub cond_on_flags: bool,
    /// Branch class.
    pub branch: BranchKind,
    /// Destination physical register and its class (`true` = FP file).
    pub pd: Option<(u16, bool)>,
    /// First source physical register.
    pub pa: Option<(u16, bool)>,
    /// Second source physical register.
    pub pb: Option<(u16, bool)>,
    /// Immediate / displacement.
    pub imm: i64,
    /// Direct branch target.
    pub target: u64,
    /// ROB index of the parent instruction.
    pub rob: u16,
    /// LSQ slot for memory µops.
    pub lsq: Option<u16>,
}

impl RenamedUop {
    /// A blank NOP payload.
    pub fn nop() -> RenamedUop {
        RenamedUop {
            kind: UopKind::Nop,
            alu: IntOp::Add,
            fp: FpOp::Add,
            width: Width::B8,
            signed: false,
            cond: Cond::Eq,
            cond_on_flags: false,
            branch: BranchKind::Jump,
            pd: None,
            pa: None,
            pb: None,
            imm: 0,
            target: 0,
            rob: 0,
            lsq: None,
        }
    }
}

/// A corrupted issue-queue payload decoded into an impossible encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadError {
    /// Reserved ALU opcode bits.
    BadAlu(u8),
    /// Reserved FP opcode bits.
    BadFp(u8),
    /// Reserved condition code.
    BadCond(u8),
    /// Reserved branch kind.
    BadBranch(u8),
    /// Physical register number beyond the register file.
    BadReg(u16),
    /// ROB index beyond the reorder buffer.
    BadRob(u16),
}

impl std::fmt::Display for PayloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayloadError::BadAlu(v) => write!(f, "reserved alu opcode {v}"),
            PayloadError::BadFp(v) => write!(f, "reserved fp opcode {v}"),
            PayloadError::BadCond(v) => write!(f, "reserved condition {v}"),
            PayloadError::BadBranch(v) => write!(f, "reserved branch kind {v}"),
            PayloadError::BadReg(v) => write!(f, "physical register {v} out of range"),
            PayloadError::BadRob(v) => write!(f, "rob index {v} out of range"),
        }
    }
}

const KIND_TABLE: [UopKind; 8] = [
    UopKind::Alu,
    UopKind::Load,
    UopKind::Store,
    UopKind::Branch,
    UopKind::Fp,
    UopKind::Syscall,
    UopKind::Hint,
    UopKind::Nop,
];

fn kind_index(k: UopKind) -> u64 {
    KIND_TABLE
        .iter()
        .position(|&x| x == k)
        .expect("every UopKind is in KIND_TABLE") as u64
}

const BRANCH_TABLE: [BranchKind; 5] = [
    BranchKind::CondDirect,
    BranchKind::Jump,
    BranchKind::JumpInd,
    BranchKind::Call,
    BranchKind::Ret,
];

fn branch_index(b: BranchKind) -> u64 {
    BRANCH_TABLE
        .iter()
        .position(|&x| x == b)
        .expect("every BranchKind is in BRANCH_TABLE") as u64
}

/// Payload width in bits (three 64-bit words per entry).
pub const IQ_ENTRY_BITS: usize = 192;

fn pack_reg(r: Option<(u16, bool)>) -> u64 {
    match r {
        None => 0,
        Some((p, fp)) => 1 | ((p as u64 & 0x1FF) << 1) | ((fp as u64) << 10),
    }
}

fn unpack_reg(v: u64) -> Option<(u16, bool)> {
    if v & 1 == 0 {
        None
    } else {
        Some((((v >> 1) & 0x1FF) as u16, (v >> 10) & 1 != 0))
    }
}

/// Encodes a renamed µop into its three payload words.
pub fn encode_payload(u: &RenamedUop) -> [u64; 3] {
    let w0 = u.imm as u64;
    let mut w1 = 0u64;
    w1 |= kind_index(u.kind);
    w1 |= (u.alu.index() as u64) << 3;
    w1 |= (u.fp.index() as u64) << 7;
    w1 |= (u.width.code() as u64) << 11;
    w1 |= (u.signed as u64) << 13;
    w1 |= (u.cond.index() as u64) << 14;
    w1 |= (u.cond_on_flags as u64) << 18;
    w1 |= branch_index(u.branch) << 19;
    w1 |= pack_reg(u.pd) << 22;
    w1 |= pack_reg(u.pa) << 33;
    w1 |= pack_reg(u.pb) << 44;
    let mut w2 = u.target & 0xFF_FFFF_FFFF; // 40 bits
    w2 |= (u.rob as u64 & 0xFF) << 40;
    if let Some(l) = u.lsq {
        w2 |= 1 << 48;
        w2 |= (l as u64 & 0x7F) << 49;
    }
    [w0, w1, w2]
}

/// Limits used to validate decoded payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadLimits {
    /// Integer PRF size.
    pub int_prf: u16,
    /// FP PRF size.
    pub fp_prf: u16,
    /// ROB entries.
    pub rob: u16,
    /// LSQ data entries.
    pub lsq: u16,
}

/// Decodes three payload words back into a µop, validating every field.
///
/// # Errors
///
/// Returns a [`PayloadError`] naming the first impossible field — the raw
/// material for a simulator assertion or crash.
pub fn decode_payload(w: [u64; 3], lim: &PayloadLimits) -> Result<RenamedUop, PayloadError> {
    let kind = KIND_TABLE[(w[1] & 0x7) as usize];
    let alu_bits = (w[1] >> 3 & 0xF) as u8;
    let alu = IntOp::from_index(alu_bits).ok_or(PayloadError::BadAlu(alu_bits))?;
    let fp_bits = (w[1] >> 7 & 0xF) as u8;
    let fp = FpOp::from_index(fp_bits).ok_or(PayloadError::BadFp(fp_bits))?;
    let width = Width::from_code((w[1] >> 11 & 0x3) as u8);
    let signed = w[1] >> 13 & 1 != 0;
    let cond_bits = (w[1] >> 14 & 0xF) as u8;
    let cond = Cond::from_index(cond_bits).ok_or(PayloadError::BadCond(cond_bits))?;
    let cond_on_flags = w[1] >> 18 & 1 != 0;
    let branch_bits = (w[1] >> 19 & 0x7) as u8;
    let branch = *BRANCH_TABLE
        .get(branch_bits as usize)
        .ok_or(PayloadError::BadBranch(branch_bits))?;
    let check = |r: Option<(u16, bool)>| -> Result<Option<(u16, bool)>, PayloadError> {
        if let Some((p, fp_class)) = r {
            let lim_n = if fp_class { lim.fp_prf } else { lim.int_prf };
            if p >= lim_n {
                return Err(PayloadError::BadReg(p));
            }
        }
        Ok(r)
    };
    let pd = check(unpack_reg(w[1] >> 22 & 0x7FF))?;
    let pa = check(unpack_reg(w[1] >> 33 & 0x7FF))?;
    let pb = check(unpack_reg(w[1] >> 44 & 0x7FF))?;
    let target = w[2] & 0xFF_FFFF_FFFF;
    let rob = (w[2] >> 40 & 0xFF) as u16;
    if rob >= lim.rob {
        return Err(PayloadError::BadRob(rob));
    }
    let lsq = if w[2] >> 48 & 1 != 0 {
        let l = (w[2] >> 49 & 0x7F) as u16;
        if l >= lim.lsq {
            return Err(PayloadError::BadRob(l));
        }
        Some(l)
    } else {
        None
    };
    Ok(RenamedUop {
        kind,
        alu,
        fp,
        width,
        signed,
        cond,
        cond_on_flags,
        branch,
        pd,
        pa,
        pb,
        imm: w[0] as i64,
        target,
        rob,
        lsq,
    })
}

/// Issue-queue storage: packed payload plane plus a decoded mirror used as a
/// fast path while no faults are armed.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    plane: BitPlane,
    mirror: Vec<Option<RenamedUop>>,
    lim: PayloadLimits,
    /// Fault hook over the payload plane.
    pub hook: FaultHook,
    residency: Option<Box<ResidencyTracker>>,
}

impl IssueQueue {
    /// Builds an empty issue queue of `entries` slots.
    pub fn new(entries: usize, lim: PayloadLimits) -> IssueQueue {
        IssueQueue {
            plane: BitPlane::new(entries, IQ_ENTRY_BITS),
            mirror: vec![None; entries],
            lim,
            hook: FaultHook::new(),
            residency: None,
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.mirror.len()
    }

    /// Occupied slot count.
    pub fn occupancy(&self) -> usize {
        self.mirror.iter().filter(|s| s.is_some()).count()
    }

    /// First free slot, if any.
    pub fn find_free(&self) -> Option<usize> {
        self.mirror.iter().position(|s| s.is_none())
    }

    /// True when `slot` holds a µop.
    pub fn occupied(&self, slot: usize) -> bool {
        self.mirror[slot].is_some()
    }

    /// Writes a µop into `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied.
    pub fn insert(&mut self, slot: usize, u: RenamedUop) {
        assert!(self.mirror[slot].is_none(), "issue-queue slot in use");
        let words = encode_payload(&u);
        let fix = self.hook.note_write(slot as u64, 0, IQ_ENTRY_BITS as u32);
        if let Some(t) = &mut self.residency {
            t.on_write(slot as u64, 0, IQ_ENTRY_BITS as u32);
        }
        for (i, w) in words.iter().enumerate() {
            self.plane.set_field(slot, i * 64, 64, *w);
        }
        if fix {
            let fixes: Vec<(u32, bool)> = self.hook.stuck_fixups(slot as u64).collect();
            for (bit, v) in fixes {
                self.plane.set(slot, bit as usize, v);
            }
        }
        self.mirror[slot] = Some(u);
    }

    /// Reads the µop in `slot`. While faults are armed the packed plane is
    /// the source of truth (every read notes consumption); otherwise the
    /// decoded mirror serves as a fast path.
    ///
    /// # Errors
    ///
    /// Returns a [`PayloadError`] if the (possibly corrupted) payload
    /// decodes to an impossible encoding.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn read(&mut self, slot: usize) -> Result<RenamedUop, PayloadError> {
        assert!(
            self.mirror[slot].is_some(),
            "reading empty issue-queue slot"
        );
        if let Some(t) = &mut self.residency {
            t.on_read(slot as u64, 0, IQ_ENTRY_BITS as u32);
        }
        if self.hook.is_idle() {
            return Ok(self.mirror[slot].expect("checked occupied"));
        }
        self.hook.note_read(slot as u64, 0, IQ_ENTRY_BITS as u32);
        let w = [
            self.plane.get_field(slot, 0, 64),
            self.plane.get_field(slot, 64, 64),
            self.plane.get_field(slot, 128, 64),
        ];
        decode_payload(w, &self.lim)
    }

    /// Frees `slot` after issue.
    pub fn free(&mut self, slot: usize) {
        self.mirror[slot] = None;
    }

    /// Clears all slots (pipeline flush).
    pub fn flush(&mut self) {
        for s in &mut self.mirror {
            *s = None;
        }
    }

    /// Flips one payload bit.
    pub fn inject_flip(&mut self, slot: u64, bit: u32) {
        self.plane.flip(slot as usize, bit as usize);
        self.hook.arm_flip(slot, bit);
    }

    /// Forces one payload bit stuck at `value`.
    pub fn inject_stuck(&mut self, slot: u64, bit: u32, value: bool) {
        self.plane.set(slot as usize, bit as usize, value);
        self.hook.arm_stuck(slot, bit, value);
    }

    /// True when `slot` is unoccupied (the injector's unused-entry check).
    pub fn peek_unused(&self, slot: usize) -> bool {
        self.mirror[slot].is_none()
    }
}

impl Instrument for IssueQueue {
    fn enable_residency(&mut self) {
        self.residency = Some(Box::new(ResidencyTracker::new()));
    }

    fn residency_tick(&mut self, cycle: u64) {
        if let Some(t) = &mut self.residency {
            t.set_cycle(cycle);
        }
    }

    fn take_residency(&mut self) -> Option<ResidencyTracker> {
        self.residency.take().map(|b| *b)
    }
}

/// The load/store-queue data array — Fig. 6's injection target.
#[derive(Debug, Clone)]
pub struct LsqDataArray {
    plane: BitPlane,
    /// Fault hook over the data bits.
    pub hook: FaultHook,
    residency: Option<Box<ResidencyTracker>>,
}

impl LsqDataArray {
    /// Builds a data array of `entries` 64-bit slots.
    pub fn new(entries: usize) -> LsqDataArray {
        LsqDataArray {
            plane: BitPlane::new(entries, 64),
            hook: FaultHook::new(),
            residency: None,
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.plane.entries()
    }

    /// Reads slot `i`.
    #[inline]
    pub fn read(&mut self, i: u16) -> u64 {
        self.hook.note_read(i as u64, 0, 64);
        if let Some(t) = &mut self.residency {
            t.on_read(i as u64, 0, 64);
        }
        self.plane.get_field(i as usize, 0, 64)
    }

    /// Writes slot `i`.
    #[inline]
    pub fn write(&mut self, i: u16, v: u64) {
        let fix = self.hook.note_write(i as u64, 0, 64);
        if let Some(t) = &mut self.residency {
            t.on_write(i as u64, 0, 64);
        }
        self.plane.set_field(i as usize, 0, 64, v);
        if fix {
            let fixes: Vec<(u32, bool)> = self.hook.stuck_fixups(i as u64).collect();
            for (bit, val) in fixes {
                self.plane.set(i as usize, bit as usize, val);
            }
        }
    }

    /// Flips one stored bit.
    pub fn inject_flip(&mut self, entry: u64, bit: u32) {
        self.plane.flip(entry as usize, bit as usize);
        self.hook.arm_flip(entry, bit);
    }

    /// Forces one stored bit stuck at `value`.
    pub fn inject_stuck(&mut self, entry: u64, bit: u32, value: bool) {
        self.plane.set(entry as usize, bit as usize, value);
        self.hook.arm_stuck(entry, bit, value);
    }
}

impl Instrument for LsqDataArray {
    fn enable_residency(&mut self) {
        self.residency = Some(Box::new(ResidencyTracker::new()));
    }

    fn residency_tick(&mut self, cycle: u64) {
        if let Some(t) = &mut self.residency {
            t.set_cycle(cycle);
        }
    }

    fn take_residency(&mut self) -> Option<ResidencyTracker> {
        self.residency.take().map(|b| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> PayloadLimits {
        PayloadLimits {
            int_prf: 256,
            fp_prf: 128,
            rob: 64,
            lsq: 32,
        }
    }

    fn sample() -> RenamedUop {
        RenamedUop {
            kind: UopKind::Load,
            alu: IntOp::Xor,
            fp: FpOp::Mul,
            width: Width::B4,
            signed: true,
            cond: Cond::LtS,
            cond_on_flags: true,
            branch: BranchKind::Call,
            pd: Some((200, false)),
            pa: Some((17, false)),
            pb: Some((99, true)),
            imm: -123456789,
            target: 0x0012_3456,
            rob: 42,
            lsq: Some(13),
        }
    }

    #[test]
    fn payload_roundtrip_every_field() {
        let u = sample();
        let d = decode_payload(encode_payload(&u), &limits()).unwrap();
        assert_eq!(u, d);
    }

    #[test]
    fn payload_roundtrip_minimal_nop() {
        let u = RenamedUop::nop();
        let d = decode_payload(encode_payload(&u), &limits()).unwrap();
        assert_eq!(u, d);
    }

    #[test]
    fn corrupted_alu_field_is_detected() {
        let mut u = RenamedUop::nop();
        u.alu = IntOp::CmpFlags; // index 14
        let mut w = encode_payload(&u);
        // Flip alu bit 0: 14 → 15 (reserved).
        w[1] ^= 1 << 3;
        assert_eq!(decode_payload(w, &limits()), Err(PayloadError::BadAlu(15)));
    }

    #[test]
    fn corrupted_reg_field_is_detected() {
        let mut u = RenamedUop::nop();
        u.pa = Some((255, false));
        let mut w = encode_payload(&u);
        // Set pa's fp-class bit: p255 is out of range for the 128-entry FP file.
        w[1] ^= 1 << (33 + 10);
        assert_eq!(decode_payload(w, &limits()), Err(PayloadError::BadReg(255)));
    }

    #[test]
    fn corrupted_rob_field_is_detected() {
        let u = RenamedUop::nop();
        let mut w = encode_payload(&u);
        w[2] |= 0x7F << 40; // rob = 127 ≥ 64
        assert!(matches!(
            decode_payload(w, &limits()),
            Err(PayloadError::BadRob(127))
        ));
    }

    #[test]
    fn iq_insert_read_free_cycle() {
        let mut iq = IssueQueue::new(4, limits());
        let slot = iq.find_free().unwrap();
        iq.insert(slot, sample());
        assert_eq!(iq.occupancy(), 1);
        assert_eq!(iq.read(slot).unwrap(), sample());
        iq.free(slot);
        assert_eq!(iq.occupancy(), 0);
        assert!(iq.peek_unused(slot));
    }

    #[test]
    fn iq_fault_changes_decoded_operand() {
        let mut iq = IssueQueue::new(4, limits());
        iq.insert(0, sample());
        // Flip pa bit 0 (w1 bit 33+1): p17 → p16.
        iq.inject_flip(0, 64 + 34);
        let u = iq.read(0).unwrap();
        assert_eq!(u.pa, Some((16, false)));
        assert!(iq.hook.any_fault_consumed());
    }

    #[test]
    fn iq_fault_can_make_payload_undecodable() {
        let mut iq = IssueQueue::new(4, limits());
        let mut u = RenamedUop::nop();
        u.alu = IntOp::CmpFlags;
        iq.insert(0, u);
        iq.inject_flip(0, 64 + 3); // alu index 14 → 15
        assert!(iq.read(0).is_err());
    }

    #[test]
    fn iq_fault_in_free_slot_dies_on_next_insert() {
        let mut iq = IssueQueue::new(4, limits());
        iq.inject_flip(2, 70);
        iq.insert(2, sample());
        assert!(iq.hook.all_faults_dead());
        assert_eq!(iq.read(2).unwrap(), sample());
    }

    #[test]
    #[should_panic(expected = "slot in use")]
    fn iq_double_insert_panics() {
        let mut iq = IssueQueue::new(2, limits());
        iq.insert(0, RenamedUop::nop());
        iq.insert(0, RenamedUop::nop());
    }

    #[test]
    fn lsq_data_roundtrip_and_fault() {
        let mut l = LsqDataArray::new(32);
        l.write(5, 0xABCD);
        assert_eq!(l.read(5), 0xABCD);
        l.inject_flip(5, 0);
        assert_eq!(l.read(5), 0xABCC);
        l.write(5, 1);
        assert_eq!(l.read(5), 1);
    }

    #[test]
    fn lsq_stuck_bit_reasserts() {
        let mut l = LsqDataArray::new(16);
        l.inject_stuck(3, 4, true);
        l.write(3, 0);
        assert_eq!(l.read(3), 0x10);
    }
}
