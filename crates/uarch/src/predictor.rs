//! Branch prediction: tournament predictors, branch target buffers, and the
//! return-address stack.
//!
//! The paper's Remark 6 traces part of the MaFIN/GeFIN L1I divergence to the
//! front-ends: "the final prediction is bound to the branch address in the
//! case of MARSS and to the global branch history in the case of Gem5.
//! Branch address is not taken into account at all on the decision of Gem5
//! global predictor". [`ChooserIndex`] reproduces exactly that difference,
//! and [`Btb`] supports both Table II organizations (MARSS: two set-
//! associative BTBs for direct/indirect branches; gem5: one direct-mapped
//! 2K-entry BTB).

use crate::fault::FaultHook;
use difi_util::bits::BitPlane;

/// How the tournament meta-predictor (and the global component) index their
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChooserIndex {
    /// MARSS style: chooser indexed by the branch address.
    BranchAddress,
    /// gem5 style: chooser indexed by the global history register only.
    GlobalHistory,
}

/// Tournament predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TournamentConfig {
    /// Local pattern-history-table entries (power of two).
    pub local_entries: usize,
    /// Global PHT entries (power of two).
    pub global_entries: usize,
    /// Chooser entries (power of two).
    pub chooser_entries: usize,
    /// Chooser/global indexing scheme.
    pub chooser_index: ChooserIndex,
}

impl TournamentConfig {
    /// The MARSS-flavoured configuration.
    pub const MARSS: TournamentConfig = TournamentConfig {
        local_entries: 4096,
        global_entries: 4096,
        chooser_entries: 4096,
        chooser_index: ChooserIndex::BranchAddress,
    };

    /// The gem5-flavoured configuration.
    pub const GEM5: TournamentConfig = TournamentConfig {
        local_entries: 2048,
        global_entries: 8192,
        chooser_entries: 8192,
        chooser_index: ChooserIndex::GlobalHistory,
    };
}

/// Predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional-branch predictions made.
    pub lookups: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
}

/// A local/global/chooser tournament predictor with 2-bit counters.
///
/// The PHTs are performance state, not architectural storage, and are not
/// fault-injection targets (Table IV lists only the BTB among front-end
/// structures) — they are plain arrays.
#[derive(Debug, Clone)]
pub struct Tournament {
    cfg: TournamentConfig,
    local: Vec<u8>,
    global: Vec<u8>,
    chooser: Vec<u8>,
    ghr: u64,
    /// Statistics.
    pub stats: PredictorStats,
}

impl Tournament {
    /// Builds a predictor with all counters weakly not-taken.
    pub fn new(cfg: TournamentConfig) -> Tournament {
        assert!(cfg.local_entries.is_power_of_two());
        assert!(cfg.global_entries.is_power_of_two());
        assert!(cfg.chooser_entries.is_power_of_two());
        Tournament {
            cfg,
            local: vec![1; cfg.local_entries],
            global: vec![1; cfg.global_entries],
            chooser: vec![1; cfg.chooser_entries],
            ghr: 0,
            stats: PredictorStats::default(),
        }
    }

    fn chooser_idx(&self, pc: u64) -> usize {
        match self.cfg.chooser_index {
            ChooserIndex::BranchAddress => (pc >> 2) as usize & (self.cfg.chooser_entries - 1),
            ChooserIndex::GlobalHistory => self.ghr as usize & (self.cfg.chooser_entries - 1),
        }
    }

    fn global_idx(&self, pc: u64) -> usize {
        match self.cfg.chooser_index {
            // MARSS xors some address bits into the global index…
            ChooserIndex::BranchAddress => {
                (self.ghr ^ (pc >> 2)) as usize & (self.cfg.global_entries - 1)
            }
            // …gem5's global component ignores the branch address entirely.
            ChooserIndex::GlobalHistory => self.ghr as usize & (self.cfg.global_entries - 1),
        }
    }

    fn local_idx(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.cfg.local_entries - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.stats.lookups += 1;
        let l = self.local[self.local_idx(pc)] >= 2;
        let g = self.global[self.global_idx(pc)] >= 2;
        let use_global = self.chooser[self.chooser_idx(pc)] >= 2;
        if use_global {
            g
        } else {
            l
        }
    }

    /// Trains the predictor with the resolved direction. Call once per
    /// committed conditional branch; counts a mispredict when the current
    /// prediction state disagrees with `taken`.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let li = self.local_idx(pc);
        let gi = self.global_idx(pc);
        let ci = self.chooser_idx(pc);
        let l_pred = self.local[li] >= 2;
        let g_pred = self.global[gi] >= 2;
        let use_global = self.chooser[ci] >= 2;
        let pred = if use_global { g_pred } else { l_pred };
        if pred != taken {
            self.stats.mispredicts += 1;
        }
        // Chooser trains toward whichever component was right.
        if l_pred != g_pred {
            if g_pred == taken {
                self.chooser[ci] = (self.chooser[ci] + 1).min(3);
            } else {
                self.chooser[ci] = self.chooser[ci].saturating_sub(1);
            }
        }
        bump(&mut self.local[li], taken);
        bump(&mut self.global[gi], taken);
        self.ghr = (self.ghr << 1) | taken as u64;
    }
}

fn bump(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
}

impl BtbConfig {
    /// MARSS direct-branch BTB: 4-way, 1K entries.
    pub const MARSS_DIRECT: BtbConfig = BtbConfig { sets: 256, ways: 4 };
    /// MARSS indirect-branch BTB: 4-way, 512 entries.
    pub const MARSS_INDIRECT: BtbConfig = BtbConfig { sets: 128, ways: 4 };
    /// gem5 unified BTB: direct-mapped, 2K entries.
    pub const GEM5: BtbConfig = BtbConfig {
        sets: 2048,
        ways: 1,
    };

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// Entry layout: `[valid:1 | tag:TAG_BITS | target:TARGET_BITS]`.
const BTB_TAG_BITS: usize = 16;
const BTB_TARGET_BITS: usize = 32;

/// A branch target buffer with injectable entries.
#[derive(Debug, Clone)]
pub struct Btb {
    cfg: BtbConfig,
    plane: BitPlane,
    lru: Vec<u64>,
    tick: u64,
    /// Fault hook over the entry plane.
    pub hook: FaultHook,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl Btb {
    /// Builds an empty BTB.
    pub fn new(cfg: BtbConfig) -> Btb {
        assert!(cfg.sets.is_power_of_two() && cfg.ways > 0);
        Btb {
            cfg,
            plane: BitPlane::new(cfg.entries(), 1 + BTB_TAG_BITS + BTB_TARGET_BITS),
            lru: vec![0; cfg.entries()],
            tick: 0,
            hook: FaultHook::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Bits per entry.
    pub fn entry_bits(&self) -> u64 {
        (1 + BTB_TAG_BITS + BTB_TARGET_BITS) as u64
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.cfg.entries()
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.sets - 1)
    }

    fn tag_of(&self, pc: u64) -> u64 {
        (pc >> (2 + self.cfg.sets.trailing_zeros())) & ((1 << BTB_TAG_BITS) - 1)
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let set = self.set_of(pc);
        let want = self.tag_of(pc);
        for way in 0..self.cfg.ways {
            let e = set * self.cfg.ways + way;
            self.hook.note_read(e as u64, 0, 1 + BTB_TAG_BITS as u32);
            if !self.plane.get(e, 0) {
                continue;
            }
            let tag = self.plane.get_field(e, 1, BTB_TAG_BITS);
            if tag == want {
                self.hook
                    .note_read(e as u64, 1 + BTB_TAG_BITS as u32, BTB_TARGET_BITS as u32);
                let target = self.plane.get_field(e, 1 + BTB_TAG_BITS, BTB_TARGET_BITS);
                self.tick += 1;
                self.lru[e] = self.tick;
                self.hits += 1;
                return Some(target);
            }
        }
        self.misses += 1;
        None
    }

    /// Installs/updates the target for the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let set = self.set_of(pc);
        let want = self.tag_of(pc);
        // Prefer an existing entry, then an invalid way, then LRU.
        let mut slot = None;
        for way in 0..self.cfg.ways {
            let e = set * self.cfg.ways + way;
            if self.plane.get(e, 0) && self.plane.get_field(e, 1, BTB_TAG_BITS) == want {
                slot = Some(e);
                break;
            }
        }
        if slot.is_none() {
            slot = (0..self.cfg.ways)
                .map(|w| set * self.cfg.ways + w)
                .find(|&e| !self.plane.get(e, 0));
        }
        let e = slot.unwrap_or_else(|| {
            (0..self.cfg.ways)
                .map(|w| set * self.cfg.ways + w)
                .min_by_key(|&e| self.lru[e])
                .expect("ways > 0")
        });
        let width = 1 + BTB_TAG_BITS + BTB_TARGET_BITS;
        let fix = self.hook.note_write(e as u64, 0, width as u32);
        self.plane.set(e, 0, true);
        self.plane.set_field(e, 1, BTB_TAG_BITS, want);
        self.plane
            .set_field(e, 1 + BTB_TAG_BITS, BTB_TARGET_BITS, target & 0xFFFF_FFFF);
        if fix {
            let fixes: Vec<(u32, bool)> = self.hook.stuck_fixups(e as u64).collect();
            for (bit, v) in fixes {
                self.plane.set(e, bit as usize, v);
            }
        }
        self.tick += 1;
        self.lru[e] = self.tick;
    }

    /// Flips one stored bit of entry `e`.
    pub fn inject_flip(&mut self, e: u64, bit: u32) {
        self.plane.flip(e as usize, bit as usize);
        self.hook.arm_flip(e, bit);
    }

    /// Forces one stored bit of entry `e` stuck at `value`.
    pub fn inject_stuck(&mut self, e: u64, bit: u32, value: bool) {
        self.plane.set(e as usize, bit as usize, value);
        self.hook.arm_stuck(e, bit, value);
    }
}

/// Return-address stack with injectable entries.
#[derive(Debug, Clone)]
pub struct Ras {
    plane: BitPlane,
    sp: usize,
    depth: usize,
    /// Fault hook over the address entries.
    pub hook: FaultHook,
}

/// RAS entry width (32-bit return addresses).
pub const RAS_ENTRY_BITS: usize = 32;

impl Ras {
    /// Builds an empty stack of `depth` entries (Table II: 16).
    pub fn new(depth: usize) -> Ras {
        Ras {
            plane: BitPlane::new(depth, RAS_ENTRY_BITS),
            sp: 0,
            depth,
            hook: FaultHook::new(),
        }
    }

    /// Stack capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes a return address (wrapping overwrite when full, as real RAS
    /// hardware does).
    pub fn push(&mut self, addr: u64) {
        let e = self.sp % self.depth;
        let fix = self.hook.note_write(e as u64, 0, RAS_ENTRY_BITS as u32);
        self.plane
            .set_field(e, 0, RAS_ENTRY_BITS, addr & 0xFFFF_FFFF);
        if fix {
            let fixes: Vec<(u32, bool)> = self.hook.stuck_fixups(e as u64).collect();
            for (bit, v) in fixes {
                self.plane.set(e, bit as usize, v);
            }
        }
        self.sp += 1;
    }

    /// Pops the predicted return address (`None` when empty).
    pub fn pop(&mut self) -> Option<u64> {
        if self.sp == 0 {
            return None;
        }
        self.sp -= 1;
        let e = self.sp % self.depth;
        self.hook.note_read(e as u64, 0, RAS_ENTRY_BITS as u32);
        Some(self.plane.get_field(e, 0, RAS_ENTRY_BITS))
    }

    /// Flips one stored bit.
    pub fn inject_flip(&mut self, e: u64, bit: u32) {
        self.plane.flip(e as usize, bit as usize);
        self.hook.arm_flip(e, bit);
    }

    /// Forces one stored bit stuck at `value`.
    pub fn inject_stuck(&mut self, e: u64, bit: u32, value: bool) {
        self.plane.set(e as usize, bit as usize, value);
        self.hook.arm_stuck(e, bit, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tournament_learns_a_bias() {
        let mut t = Tournament::new(TournamentConfig::MARSS);
        for _ in 0..20 {
            t.update(0x1000, true);
        }
        assert!(t.predict(0x1000));
        let before = t.stats.mispredicts;
        t.update(0x1000, true);
        assert_eq!(t.stats.mispredicts, before);
    }

    #[test]
    fn tournament_learns_alternation_via_global() {
        // A strict alternating pattern is global-history predictable.
        let mut t = Tournament::new(TournamentConfig::GEM5);
        let mut taken = false;
        for _ in 0..400 {
            t.update(0x2000, taken);
            taken = !taken;
        }
        // After training, mispredict rate over the next 100 must be low.
        let before = t.stats.mispredicts;
        for _ in 0..100 {
            t.update(0x2000, taken);
            taken = !taken;
        }
        assert!(
            t.stats.mispredicts - before < 10,
            "alternation should be learned"
        );
    }

    #[test]
    fn chooser_index_schemes_differ() {
        // Two branches at different addresses with opposite biases: the
        // address-indexed chooser can separate them even with shared global
        // history.
        let mut marss = Tournament::new(TournamentConfig::MARSS);
        let mut gem5 = Tournament::new(TournamentConfig::GEM5);
        for i in 0..600u64 {
            let (pc, dir) = if i % 2 == 0 {
                (0x1000, true)
            } else {
                (0x2004, false)
            };
            marss.update(pc, dir);
            gem5.update(pc, dir);
        }
        // Both should learn this easy pattern, but their internal indexing
        // differs — smoke-check they diverge on at least some state.
        assert!(marss.predict(0x1000));
        assert!(!marss.predict(0x2004));
        assert!(gem5.predict(0x1000));
        assert!(!gem5.predict(0x2004));
        assert!(gem5.stats.lookups > 0, "gem5 predictor must have trained");
    }

    #[test]
    fn btb_miss_update_hit() {
        let mut b = Btb::new(BtbConfig::GEM5);
        assert_eq!(b.lookup(0x1234), None);
        b.update(0x1234, 0x9ABC);
        assert_eq!(b.lookup(0x1234), Some(0x9ABC));
        assert_eq!(b.hits, 1);
        assert_eq!(b.misses, 1);
    }

    #[test]
    fn direct_mapped_btb_conflicts_set_associative_survives() {
        // Two branch PCs that collide in a direct-mapped 2K BTB but coexist
        // in a 4-way set-associative one — the Table II organizational
        // difference that drives different refetch behaviour.
        let pc_a = 0x1_0000u64;
        let pc_b = pc_a + (2048 << 2); // same direct-mapped set
        let mut dm = Btb::new(BtbConfig::GEM5);
        dm.update(pc_a, 0xA);
        dm.update(pc_b, 0xB);
        assert_eq!(dm.lookup(pc_a), None, "evicted by the conflicting branch");
        let mut sa = Btb::new(BtbConfig::MARSS_DIRECT);
        sa.update(pc_a, 0xA);
        // Collide in the same set of the 256-set 4-way BTB.
        let pc_c = pc_a + (256 << 2);
        sa.update(pc_c, 0xC);
        assert_eq!(sa.lookup(pc_a), Some(0xA), "associativity preserved it");
    }

    #[test]
    fn btb_target_fault_redirects_prediction() {
        let mut b = Btb::new(BtbConfig::GEM5);
        b.update(0x4000, 0x5000);
        // entry index = set for direct-mapped
        let e = (0x4000u64 >> 2) & 2047;
        b.inject_flip(e, (1 + BTB_TAG_BITS) as u32); // target bit 0
        assert_eq!(b.lookup(0x4000), Some(0x5001));
        assert!(b.hook.any_fault_consumed());
    }

    #[test]
    fn btb_valid_fault_erases_entry() {
        let mut b = Btb::new(BtbConfig::GEM5);
        b.update(0x4000, 0x5000);
        let e = (0x4000u64 >> 2) & 2047;
        b.inject_flip(e, 0);
        assert_eq!(b.lookup(0x4000), None);
    }

    #[test]
    fn ras_push_pop_lifo() {
        let mut r = Ras::new(16);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut r = Ras::new(4);
        for i in 0..6u64 {
            r.push(0x100 + i);
        }
        assert_eq!(r.pop(), Some(0x105));
        assert_eq!(r.pop(), Some(0x104));
        // Older entries were overwritten by wrap.
        assert_eq!(r.pop(), Some(0x103));
        assert_eq!(r.pop(), Some(0x102));
    }

    #[test]
    fn ras_fault_corrupts_return_prediction() {
        let mut r = Ras::new(16);
        r.push(0x4000);
        r.inject_flip(0, 4);
        assert_eq!(r.pop(), Some(0x4010));
        assert!(r.hook.any_fault_consumed());
    }
}
