//! Structure-residency instrumentation: per-entry access traces recorded
//! during one golden run, the raw material of static AVF estimation and of
//! provably-sound fault-site pruning (`difi-ace`).
//!
//! A [`ResidencyTracker`] rides alongside a structure's
//! [`FaultHook`](crate::fault::FaultHook): the owning component mirrors every
//! `note_read`/`note_write` pair into [`ResidencyTracker::on_read`] /
//! [`ResidencyTracker::on_write`], stamped with the simulated cycle the core
//! advances via [`Instrument::residency_tick`]. Peek paths (injector
//! diagnostics, unused-entry checks) are deliberately *not* recorded — they
//! are not machine behavior.
//!
//! ## Soundness contract
//!
//! The recorded trace must over-approximate nothing and miss nothing that
//! the simulated machine does to the structure's **data plane**: a consumer
//! may conclude "a transient flip of bit *b* of entry *e* at cycle *c* is
//! masked" only if the first recorded access at cycle ≥ *c* overlapping *b*
//! is a write, or no such access exists *and* the trace is
//! [`complete`](ResidencyLog::complete). Event recording therefore fails
//! safe: if the event cap is hit, `complete` turns false and "no further
//! access" no longer licenses any conclusion, while "write seen first"
//! remains valid (the prefix of the trace is still exact).

use crate::fault::{StructureDesc, StructureId};
use std::collections::BTreeMap;

/// One recorded access to a structure entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyEvent {
    /// Simulated cycle of the access (top-of-cycle stamp).
    pub cycle: u64,
    /// First bit touched.
    pub bit_lo: u32,
    /// Number of bits touched.
    pub len: u32,
    /// `true` for a write (the whole `bit_lo..bit_lo+len` range is
    /// overwritten), `false` for a read.
    pub write: bool,
}

impl ResidencyEvent {
    /// True when the event touches `bit`.
    #[inline]
    pub fn covers(&self, bit: u32) -> bool {
        bit >= self.bit_lo && bit < self.bit_lo + self.len
    }
}

/// Default cap on recorded events per structure (~24 MiB worst case).
pub const DEFAULT_EVENT_CAP: usize = 1_500_000;

/// Records the access trace of one structure during a run.
#[derive(Debug, Clone)]
pub struct ResidencyTracker {
    now: u64,
    count: usize,
    cap: usize,
    complete: bool,
    events: BTreeMap<u64, Vec<ResidencyEvent>>,
}

impl Default for ResidencyTracker {
    fn default() -> Self {
        ResidencyTracker::new()
    }
}

impl ResidencyTracker {
    /// A tracker with the default event cap.
    pub fn new() -> ResidencyTracker {
        ResidencyTracker::with_capacity(DEFAULT_EVENT_CAP)
    }

    /// A tracker that stops recording (and marks the trace incomplete) after
    /// `cap` events.
    pub fn with_capacity(cap: usize) -> ResidencyTracker {
        ResidencyTracker {
            now: 0,
            count: 0,
            cap,
            complete: true,
            events: BTreeMap::new(),
        }
    }

    /// Stamps subsequent events with `cycle`.
    #[inline]
    pub fn set_cycle(&mut self, cycle: u64) {
        self.now = cycle;
    }

    #[inline]
    fn push(&mut self, entry: u64, bit_lo: u32, len: u32, write: bool) {
        if self.count >= self.cap {
            self.complete = false;
            return;
        }
        self.count += 1;
        self.events.entry(entry).or_default().push(ResidencyEvent {
            cycle: self.now,
            bit_lo,
            len,
            write,
        });
    }

    /// Records a read of `len` bits at `bit_lo` of `entry`.
    #[inline]
    pub fn on_read(&mut self, entry: u64, bit_lo: u32, len: u32) {
        self.push(entry, bit_lo, len, false);
    }

    /// Records a write of `len` bits at `bit_lo` of `entry`.
    #[inline]
    pub fn on_write(&mut self, entry: u64, bit_lo: u32, len: u32) {
        self.push(entry, bit_lo, len, true);
    }

    /// Events recorded so far.
    pub fn event_count(&self) -> usize {
        self.count
    }

    /// False once the cap was hit and events were dropped.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Seals the trace into a [`ResidencyLog`].
    pub fn into_log(self, desc: StructureDesc, cycles: u64) -> ResidencyLog {
        ResidencyLog {
            structure: desc.id,
            entries: desc.entries,
            bits: desc.bits,
            cycles,
            complete: self.complete,
            events: self.events,
        }
    }
}

/// The sealed access trace of one structure over one (golden) run.
#[derive(Debug, Clone)]
pub struct ResidencyLog {
    /// Which structure was traced.
    pub structure: StructureId,
    /// Entries (rows) of the structure.
    pub entries: u64,
    /// Bits per entry.
    pub bits: u64,
    /// Total simulated cycles of the traced run.
    pub cycles: u64,
    /// True when no events were dropped; required for "never accessed
    /// again ⇒ masked" conclusions.
    pub complete: bool,
    /// Per-entry event lists, in cycle order.
    pub events: BTreeMap<u64, Vec<ResidencyEvent>>,
}

impl ResidencyLog {
    /// Events of one entry (empty slice when the entry was never touched).
    pub fn events_for(&self, entry: u64) -> &[ResidencyEvent] {
        self.events.get(&entry).map_or(&[], Vec::as_slice)
    }

    /// Total recorded events.
    pub fn event_count(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }
}

/// Lightweight instrumentation implemented by every residency-traceable
/// storage component (register files, cache data arrays, queues).
///
/// Tracing is off by default and costs one `Option` check per access when
/// enabled on a *different* component; a component with no tracker attached
/// pays nothing beyond that check.
pub trait Instrument {
    /// Attaches a fresh tracker, discarding any previous recording.
    fn enable_residency(&mut self);

    /// Advances the attached tracker's cycle stamp (no-op when disabled).
    fn residency_tick(&mut self, cycle: u64);

    /// Detaches and returns the tracker recorded so far.
    fn take_residency(&mut self) -> Option<ResidencyTracker>;
}

/// True when `structure` is a pure data plane whose access trace licenses
/// masked-fault pruning.
///
/// Control planes (tags, valid bits, TLB entries, predictor state) influence
/// machine behavior even when "not read" through their hooks — e.g. a
/// flipped tag redirects a writeback — so residency-based pruning is
/// restricted to the same data-plane set for which the paper's dead-entry
/// early stop is safe.
pub fn residency_prune_safe(structure: StructureId) -> bool {
    structure.dead_entry_stop_safe()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> StructureDesc {
        StructureDesc {
            id: StructureId::IntRegFile,
            entries: 8,
            bits: 64,
        }
    }

    #[test]
    fn events_are_stamped_and_ordered() {
        let mut t = ResidencyTracker::new();
        t.set_cycle(5);
        t.on_write(3, 0, 64);
        t.set_cycle(9);
        t.on_read(3, 0, 64);
        let log = t.into_log(desc(), 100);
        let ev = log.events_for(3);
        assert_eq!(ev.len(), 2);
        assert_eq!((ev[0].cycle, ev[0].write), (5, true));
        assert_eq!((ev[1].cycle, ev[1].write), (9, false));
        assert!(log.complete);
        assert_eq!(log.cycles, 100);
        assert!(log.events_for(4).is_empty());
    }

    #[test]
    fn cap_overflow_marks_incomplete_but_keeps_prefix() {
        let mut t = ResidencyTracker::with_capacity(2);
        t.on_write(0, 0, 1);
        t.on_write(0, 1, 1);
        t.on_write(0, 2, 1); // dropped
        assert!(!t.is_complete());
        let log = t.into_log(desc(), 10);
        assert!(!log.complete);
        assert_eq!(log.event_count(), 2);
        assert_eq!(log.events_for(0)[1].bit_lo, 1);
    }

    #[test]
    fn zero_length_interval_keeps_same_cycle_event_order() {
        // A write and a read of the same bits in the same cycle: a
        // zero-length residency interval. Both events must be recorded,
        // stamped identically, and kept in program order — consumers decide
        // same-cycle behavior by list position, so reordering here would
        // flip a latch interval into a dead one.
        let mut t = ResidencyTracker::new();
        t.set_cycle(7);
        t.on_write(2, 0, 64);
        t.on_read(2, 0, 64);
        let log = t.into_log(desc(), 10);
        let ev = log.events_for(2);
        assert_eq!(ev.len(), 2);
        assert_eq!((ev[0].cycle, ev[0].write), (7, true));
        assert_eq!((ev[1].cycle, ev[1].write), (7, false));
    }

    #[test]
    fn write_after_write_records_both_events() {
        // Two writes with no intervening read are NOT coalesced: each write
        // is its own erasing event, and equivalence classes are keyed per
        // event index, so dropping the second write would silently merge
        // two distinct dead intervals.
        let mut t = ResidencyTracker::new();
        t.set_cycle(10);
        t.on_write(1, 0, 32);
        t.set_cycle(20);
        t.on_write(1, 0, 32);
        let log = t.into_log(desc(), 100);
        let ev = log.events_for(1);
        assert_eq!(ev.len(), 2);
        assert!(ev.iter().all(|e| e.write));
        assert_eq!((ev[0].cycle, ev[1].cycle), (10, 20));
        assert_eq!(log.event_count(), 2);
    }

    #[test]
    fn interval_open_at_end_of_run_relies_on_completeness() {
        // A write with no read before the run ends: the interval is
        // truncated by end-of-run, and "never accessed again" is only
        // provable when the trace says it is complete.
        let mut t = ResidencyTracker::new();
        t.set_cycle(90);
        t.on_write(5, 0, 64);
        let log = t.into_log(desc(), 100);
        assert!(log.complete);
        let ev = log.events_for(5);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].write);

        // The same trailing write on a capped tracker loses the license:
        // complete flips false even though the retained prefix is identical.
        let mut t = ResidencyTracker::with_capacity(1);
        t.set_cycle(90);
        t.on_write(5, 0, 64);
        t.set_cycle(95);
        t.on_read(5, 0, 64); // dropped at the cap
        let log = t.into_log(desc(), 100);
        assert!(!log.complete);
        assert_eq!(log.events_for(5).len(), 1);
    }

    #[test]
    fn covers_is_half_open() {
        let e = ResidencyEvent {
            cycle: 0,
            bit_lo: 8,
            len: 8,
            write: false,
        };
        assert!(!e.covers(7));
        assert!(e.covers(8));
        assert!(e.covers(15));
        assert!(!e.covers(16));
    }

    #[test]
    fn prune_safety_matches_dead_entry_rule() {
        assert!(residency_prune_safe(StructureId::IntRegFile));
        assert!(residency_prune_safe(StructureId::L1dData));
        assert!(!residency_prune_safe(StructureId::L1dTag));
        assert!(!residency_prune_safe(StructureId::Btb));
    }
}
